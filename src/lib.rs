//! # numa-gpu
//!
//! A production-quality Rust reproduction of **"Beyond the Socket:
//! NUMA-Aware GPUs"** (Milic, Villa, Bolotin, Arunkumar, Ebrahimi, Jaleel,
//! Ramirez, Nellans — MICRO-50, 2017).
//!
//! The paper proposes exposing 2–8 switch-connected GPU sockets as a single
//! programmer-transparent logical GPU, and shows that two mechanisms recover
//! most of the NUMA penalty:
//!
//! 1. **Dynamic asymmetric interconnect** (§4): per-GPU links built from
//!    individually reversible lanes; a load balancer turns lanes toward the
//!    saturated direction at runtime.
//! 2. **NUMA-aware cache partitioning** (§5): L1/L2 ways are dynamically
//!    divided between local- and remote-homed data based on link and DRAM
//!    saturation.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`types`] | ids, addresses, time base, [`SystemConfig`](types::SystemConfig) (Table 1) |
//! | [`engine`] | event queue, bandwidth resources |
//! | [`mem`] | page placement (§3), DRAM |
//! | [`cache`] | set-associative arrays, way partitioning, MSHRs, Fig 7(d) controller |
//! | [`interconnect`] | reversible lanes, links, switch, §4 balancer |
//! | [`sm`] | streaming multiprocessors |
//! | [`runtime`] | kernel decomposition, CTA scheduling (§3) |
//! | [`core`] | the assembled [`NumaGpuSystem`](core::NumaGpuSystem) |
//! | [`workloads`] | the 41 Table 2 benchmarks as synthetic generators |
//! | [`obs`] | metrics registry, event tracing, Chrome-trace export |
//! | [`exec`] | deterministic fixed-worker thread pool for sweep fan-out |
//! | [`faults`] | deterministic fault injection plans and resilience metrics |
//!
//! # Quickstart
//!
//! ```
//! use numa_gpu::core::run_workload;
//! use numa_gpu::types::SystemConfig;
//! use numa_gpu::workloads::{by_name, Scale};
//!
//! let wl = by_name("Rodinia-Euler3D", &Scale::quick()).unwrap();
//! let single = run_workload(SystemConfig::pascal_single(), &wl)?;
//! let numa = run_workload(SystemConfig::numa_aware_sockets(4), &wl)?;
//! println!("4-socket NUMA-aware speedup: {:.2}x", numa.speedup_over(&single));
//! # Ok::<(), numa_gpu::types::SimError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use numa_gpu_bench as bench;
pub use numa_gpu_cache as cache;
pub use numa_gpu_core as core;
pub use numa_gpu_engine as engine;
pub use numa_gpu_exec as exec;
pub use numa_gpu_faults as faults;
pub use numa_gpu_interconnect as interconnect;
pub use numa_gpu_mem as mem;
pub use numa_gpu_obs as obs;
pub use numa_gpu_runtime as runtime;
pub use numa_gpu_serve as serve;
pub use numa_gpu_sm as sm;
pub use numa_gpu_types as types;
pub use numa_gpu_workloads as workloads;
