//! Command-line front end: run one catalog workload on one configuration,
//! or host/query the sim-as-a-service daemon.
//!
//! ```text
//! simulate serve --socket PATH --cache-dir DIR [--workers N] [--verbose]
//!                [--deadline SECS]   # host the daemon (blocks until SHUTDOWN)
//! simulate submit --socket PATH key=value...   # submit a job (see serve protocol)
//! simulate submit --socket PATH --ping|--stats|--shutdown
//!
//! simulate --workload Rodinia-Euler3D [--sockets N] [--quick|--full]
//!          [--topology star|ring|mesh|fattree]
//!          [--cache memside|static|shared|numa-aware]
//!          [--link static|dynamic|2x]
//!          [--placement fine|page|first-touch]
//!          [--cta interleave|contiguous]
//!          [--baseline]            # also run the single-GPU baseline
//!          [--jobs N]              # worker threads (with --baseline, runs both sims
//!                                  # concurrently; output is byte-identical to --jobs 1)
//!          [--sim-threads N]       # event-loop partitions advanced concurrently inside
//!                                  # one sim (0 = auto); byte-identical at every setting
//!          [--timeline]            # print the link utilization timeline
//!          [--metrics]             # collect counters and print the metrics snapshot JSON
//!          [--profile]             # print the self-profile work-attribution table
//!                                  # (report-time summary; cannot perturb timing)
//!          [--trace-out FILE]      # write a Chrome trace_event JSON (chrome://tracing)
//!          [--dump-trace FILE]     # record the workload's kernels as text traces
//!          [--from-trace FILE]     # run a recorded trace instead of a catalog workload
//!          [--faults SPEC]         # inject faults, e.g. "lanes:s1@5000=8; dram:s0@2000+300"
//!          [--fault-seed N]        # inject a seeded random fault plan instead
//!          [--max-cycles N]        # abort with an error if the run exceeds N cycles
//!          [--cache-dir DIR]       # read/write the on-disk content-addressed result
//!                                  # store (observability runs bypass it)
//! ```
//!
//! Simulation failures (scheduler deadlock, cycle budget exhausted) print
//! the error and exit with status 3; usage errors exit with status 2.

use numa_gpu::core::{NumaGpuSystem, SimReport};
use numa_gpu::faults::FaultPlan;
use numa_gpu::runtime::Kernel as _;
use numa_gpu::types::{
    CacheMode, CtaSchedulingPolicy, LinkMode, PagePlacement, SimError, SystemConfig, TopologyKind,
};
use numa_gpu::workloads::{by_name, collective_by_name, Scale, COLLECTIVE_NAMES, WORKLOAD_NAMES};

/// Time horizon (in cycles) over which `--fault-seed` scatters its faults.
const FAULT_HORIZON_CYCLES: u64 = 100_000;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    eprintln!(
        "usage: simulate --workload NAME [--sockets N] [--quick|--full] \
         [--topology star|ring|mesh|fattree] \
         [--cache memside|static|shared|numa-aware] [--link static|dynamic|2x] \
         [--placement fine|page|first-touch] [--cta interleave|contiguous] \
         [--baseline] [--jobs N] [--sim-threads N] [--timeline] [--metrics] [--profile] \
         [--trace-out FILE] [--faults SPEC] [--fault-seed N] [--max-cycles N] \
         [--cache-dir DIR]\n\
         \x20      simulate serve --socket PATH --cache-dir DIR [--workers N] [--verbose] \
         [--deadline SECS]\n\
         \x20      simulate submit --socket PATH key=value... | --ping | --stats | --shutdown"
    );
    eprintln!("\nworkloads:");
    for n in WORKLOAD_NAMES {
        eprintln!("  {n}");
    }
    eprintln!("\ncollective-traffic workloads (scale with --sockets):");
    for n in COLLECTIVE_NAMES {
        eprintln!("  {n}");
    }
    std::process::exit(2);
}

/// Prints a simulation failure and exits with a status distinct from usage
/// errors so harnesses can tell "bad invocation" from "run did not finish".
fn fail(e: &SimError) -> ! {
    eprintln!("simulation error: {e}");
    std::process::exit(3);
}

fn unwrap_report(r: Result<SimReport, SimError>) -> SimReport {
    r.unwrap_or_else(|e| fail(&e))
}

/// `simulate serve`: host the daemon in the foreground until SHUTDOWN.
fn serve_main(args: &[String]) {
    use numa_gpu::serve::{Daemon, DaemonConfig};

    let mut socket = None;
    let mut cache_dir = None;
    let mut workers: usize = 2;
    let mut verbose = false;
    let mut deadline_secs: u64 = 600;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")),
            "--cache-dir" => cache_dir = Some(value("--cache-dir")),
            "--workers" => {
                workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| usage("--workers must be a positive integer"));
            }
            "--deadline" => {
                deadline_secs = value("--deadline")
                    .parse()
                    .unwrap_or_else(|_| usage("--deadline must be seconds"));
            }
            "--verbose" => verbose = true,
            other => usage(&format!("unknown serve argument `{other}`")),
        }
    }
    let socket = socket.unwrap_or_else(|| usage("serve requires --socket PATH"));
    let cache_dir = cache_dir.unwrap_or_else(|| usage("serve requires --cache-dir DIR"));
    let mut config = DaemonConfig::new(socket, cache_dir);
    config.workers = workers;
    config.verbose = verbose;
    config.default_deadline = std::time::Duration::from_secs(deadline_secs);
    let daemon = Daemon::bind(config).unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        std::process::exit(3);
    });
    if let Err(e) = daemon.serve() {
        eprintln!("serve: {e}");
        std::process::exit(3);
    }
}

/// `simulate submit`: one protocol exchange with a running daemon.
fn submit_main(args: &[String]) {
    use numa_gpu::serve::{Client, JobSpec};

    let mut socket = None;
    let mut action = None; // --ping | --stats | --shutdown
    let mut spec_tokens: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                socket = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--socket needs a value"))
                        .clone(),
                );
            }
            "--ping" | "--stats" | "--shutdown" => action = Some(arg.clone()),
            other if other.contains('=') => spec_tokens.push(other.to_string()),
            other => usage(&format!("unknown submit argument `{other}`")),
        }
    }
    let socket = socket.unwrap_or_else(|| usage("submit requires --socket PATH"));
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        eprintln!("submit: cannot connect to {socket}: {e}");
        std::process::exit(3);
    });
    let outcome = match action.as_deref() {
        Some("--ping") => client.ping().map(|()| println!("PONG")),
        Some("--stats") => client.stats().map(|s| println!("{s}")),
        Some("--shutdown") => client.shutdown().map(|()| println!("OK")),
        _ => {
            if spec_tokens.is_empty() {
                usage("submit requires key=value job tokens (or --ping/--stats/--shutdown)");
            }
            let spec = JobSpec::parse(&spec_tokens.join(" ")).unwrap_or_else(|e| usage(&e));
            match client.submit(&spec) {
                Err(e) => Err(e),
                Ok(sub) => {
                    for event in &sub.events {
                        eprintln!("event: {event}");
                    }
                    if let Some((class, msg)) = &sub.error {
                        eprintln!("job failed ({class}): {msg}");
                        std::process::exit(3);
                    }
                    println!("{}", sub.result.as_deref().unwrap_or(""));
                    Ok(())
                }
            }
        }
    };
    if let Err(e) = outcome {
        eprintln!("submit: {e}");
        std::process::exit(3);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return serve_main(&args[1..]),
        Some("submit") => return submit_main(&args[1..]),
        _ => {}
    }
    let mut workload_name = None;
    let mut sockets: u8 = 4;
    let mut topology = TopologyKind::Star;
    let mut scale = Scale::full();
    let mut cache = CacheMode::NumaAwareDynamic;
    let mut link = LinkMode::DynamicAsymmetric;
    let mut placement = PagePlacement::FirstTouch;
    let mut cta = CtaSchedulingPolicy::ContiguousBlock;
    let mut baseline = false;
    let mut jobs: usize = 1;
    let mut sim_threads: u16 = 1;
    let mut timeline = false;
    let mut metrics = false;
    let mut profile = false;
    let mut trace_out: Option<String> = None;
    let mut dump_trace: Option<String> = None;
    let mut from_trace: Option<String> = None;
    let mut faults_spec: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut max_cycles: u64 = 0;
    let mut cache_dir: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--workload" => workload_name = Some(value("--workload")),
            "--sockets" => {
                sockets = value("--sockets")
                    .parse()
                    .unwrap_or_else(|_| usage("--sockets must be 1..=32"));
            }
            "--topology" => {
                let v = value("--topology");
                topology = TopologyKind::from_flag(&v)
                    .unwrap_or_else(|| usage(&format!("unknown topology `{v}`")));
            }
            "--quick" => scale = Scale::quick(),
            "--full" => scale = Scale::full(),
            "--cache" => {
                cache = match value("--cache").as_str() {
                    "memside" => CacheMode::MemSideLocalOnly,
                    "static" => CacheMode::StaticRemoteCache,
                    "shared" => CacheMode::SharedCoherent,
                    "numa-aware" => CacheMode::NumaAwareDynamic,
                    other => usage(&format!("unknown cache mode `{other}`")),
                }
            }
            "--link" => {
                link = match value("--link").as_str() {
                    "static" => LinkMode::StaticSymmetric,
                    "dynamic" => LinkMode::DynamicAsymmetric,
                    "2x" => LinkMode::DoubleBandwidth,
                    other => usage(&format!("unknown link mode `{other}`")),
                }
            }
            "--placement" => {
                placement = match value("--placement").as_str() {
                    "fine" => PagePlacement::FineInterleave,
                    "page" => PagePlacement::PageInterleave,
                    "first-touch" => PagePlacement::FirstTouch,
                    other => usage(&format!("unknown placement `{other}`")),
                }
            }
            "--cta" => {
                cta = match value("--cta").as_str() {
                    "interleave" => CtaSchedulingPolicy::Interleave,
                    "contiguous" => CtaSchedulingPolicy::ContiguousBlock,
                    other => usage(&format!("unknown CTA policy `{other}`")),
                }
            }
            "--baseline" => baseline = true,
            "--jobs" => {
                jobs = value("--jobs")
                    .parse()
                    .unwrap_or_else(|_| usage("--jobs must be a positive integer"));
                jobs = jobs.max(1);
            }
            "--sim-threads" => {
                sim_threads = value("--sim-threads")
                    .parse()
                    .unwrap_or_else(|_| usage("--sim-threads must be an integer (0 = auto)"));
            }
            "--timeline" => timeline = true,
            "--metrics" => metrics = true,
            "--profile" => profile = true,
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--dump-trace" => dump_trace = Some(value("--dump-trace")),
            "--from-trace" => from_trace = Some(value("--from-trace")),
            "--faults" => faults_spec = Some(value("--faults")),
            "--fault-seed" => {
                fault_seed = Some(
                    value("--fault-seed")
                        .parse()
                        .unwrap_or_else(|_| usage("--fault-seed must be an integer")),
                );
            }
            "--max-cycles" => {
                max_cycles = value("--max-cycles")
                    .parse()
                    .unwrap_or_else(|_| usage("--max-cycles must be a positive integer"));
            }
            "--cache-dir" => cache_dir = Some(value("--cache-dir")),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let workload = if let Some(path) = &from_trace {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read trace: {e}")));
        let kernels = numa_gpu::runtime::RecordedKernel::parse_all(&text)
            .unwrap_or_else(|e| usage(&e.to_string()));
        if kernels.is_empty() {
            usage("trace file contains no kernels");
        }
        let total_ops: u64 = kernels.iter().map(|k| k.total_ops()).sum();
        numa_gpu::runtime::Workload {
            meta: numa_gpu::runtime::WorkloadMeta {
                name: format!("trace:{path}"),
                suite: numa_gpu::runtime::Suite::Other,
                paper_avg_ctas: kernels[0].num_ctas() as u64,
                paper_footprint_mb: 0,
                study_set: false,
            },
            footprint_bytes: total_ops * 128,
            kernels: kernels
                .into_iter()
                .map(|k| std::sync::Arc::new(k) as std::sync::Arc<dyn numa_gpu::runtime::Kernel>)
                .collect(),
        }
    } else {
        let Some(name) = workload_name else {
            usage("--workload or --from-trace is required");
        };
        let Some(workload) =
            by_name(&name, &scale).or_else(|| collective_by_name(&name, sockets, &scale))
        else {
            usage(&format!("unknown workload `{name}`"));
        };
        workload
    };

    if let Some(path) = &dump_trace {
        let mut out = String::new();
        for kernel in &workload.kernels {
            let recorded = numa_gpu::runtime::RecordedKernel::record(kernel.as_ref());
            out.push_str(&recorded.to_text());
        }
        std::fs::write(path, out).unwrap_or_else(|e| usage(&format!("cannot write trace: {e}")));
        eprintln!("wrote {} kernel trace(s) to {path}", workload.kernels.len());
    }

    let mut cfg = SystemConfig::numa_sockets(sockets);
    cfg.topology = topology;
    cfg.cache_mode = cache;
    cfg.link.mode = link;
    cfg.placement = placement;
    cfg.cta_policy = cta;
    cfg.obs.metrics = metrics;
    cfg.obs.profile = profile;
    cfg.obs.trace = trace_out.is_some();
    cfg.watchdog.max_cycles = max_cycles;
    cfg.sim_threads = sim_threads;
    cfg.validate().unwrap_or_else(|e| usage(&e.to_string()));

    let fault_plan: Option<FaultPlan> = match (&faults_spec, fault_seed) {
        (Some(_), Some(_)) => usage("--faults and --fault-seed are mutually exclusive"),
        (Some(spec), None) => {
            Some(FaultPlan::parse(spec).unwrap_or_else(|e| usage(&e.to_string())))
        }
        (None, Some(seed)) => Some(FaultPlan::random(
            seed,
            cfg.num_sockets,
            cfg.link.lanes_per_direction.saturating_mul(2),
            cfg.num_sockets as u32 * cfg.sm.sms_per_socket as u32,
            FAULT_HORIZON_CYCLES,
        )),
        (None, None) => None,
    };
    if let Some(plan) = &fault_plan {
        eprintln!("fault plan: {plan}");
    }

    // The on-disk store caches plain result reports only: observability
    // runs (metrics snapshots, trace capture) and ad-hoc trace-file
    // workloads (whose identity lives in a file the key cannot see)
    // bypass it. Timelines, faults, and profiles cache fine.
    use numa_gpu::bench::{DiskStore, JobKey, StoreKey};
    let store_eligible =
        !metrics && trace_out.is_none() && from_trace.is_none() && dump_trace.is_none();
    let mut store = match &cache_dir {
        Some(dir) if store_eligible => Some(DiskStore::open(dir).unwrap_or_else(|e| {
            usage(&format!("--cache-dir {dir}: {e}"));
        })),
        Some(_) => {
            eprintln!("cache: observability/trace run, store bypassed");
            None
        }
        None => None,
    };
    let scenario = fault_plan
        .as_ref()
        .map(|p| p.to_string())
        .unwrap_or_default();
    let main_key = JobKey::new("cli", workload.meta.name.clone(), timeline).with_scenario(scenario);
    let main_skey = StoreKey::new(&main_key, &cfg, &scale);
    let baseline_key = JobKey::new("single", workload.meta.name.clone(), false);
    let baseline_skey = StoreKey::new(&baseline_key, &SystemConfig::pascal_single(), &scale);
    // A stored report without a profile cannot satisfy --profile (treat
    // as a miss; the rewrite after the run heals the entry); a stored
    // profile is stripped when --profile is off so warm output is
    // byte-identical to cold output.
    let store_load = |store: &mut Option<DiskStore>, skey: &StoreKey| {
        let mut report = store.as_mut()?.load(skey)?;
        if profile && report.profile.is_none() {
            return None;
        }
        if !profile {
            report.profile = None;
        }
        Some(report)
    };
    let warm_main = store_load(&mut store, &main_skey);
    let mut warm_baseline = if baseline {
        store_load(&mut store, &baseline_skey)
    } else {
        None
    };

    // Each `NumaGpuSystem` is constructed inside the worker thread that
    // runs it; only the plain-data `SystemConfig`/`Workload`/`SimReport`
    // cross job boundaries. Printing stays serial and in the original
    // order, so stdout is byte-identical at any `--jobs` count — and the
    // partitioned event loop makes it byte-identical at any
    // `--sim-threads` count too.
    let run_main = {
        let cfg = cfg.clone();
        let workload = workload.clone();
        let fault_plan = fault_plan.clone();
        move || {
            let mut sys = NumaGpuSystem::new(cfg).expect("validated above");
            if timeline {
                sys.enable_link_timeline();
            }
            if let Some(plan) = fault_plan {
                sys.set_fault_plan(plan)?;
            }
            sys.run(&workload)
        }
    };
    let main_is_warm = warm_main.is_some();
    let (report, prerun_baseline) = if let Some(warm) = warm_main {
        eprintln!("cache: warm hit for {}", workload.meta.name);
        (Ok(warm), None)
    } else if baseline && warm_baseline.is_none() && jobs > 1 {
        let pool = numa_gpu::exec::ThreadPool::new(jobs);
        let baseline_wl = workload.clone();
        let mut results = pool.run(vec![
            numa_gpu::exec::Job::new("main", run_main),
            numa_gpu::exec::Job::new("baseline", move || {
                numa_gpu::core::run_workload(SystemConfig::pascal_single(), &baseline_wl)
            }),
        ]);
        let single = results.pop().expect("two jobs submitted");
        (results.pop().expect("two jobs submitted"), Some(single))
    } else {
        (run_main(), None)
    };
    let report = unwrap_report(report);
    let prerun_baseline = prerun_baseline.map(unwrap_report);
    if !main_is_warm {
        if let Some(s) = store.as_mut() {
            if let Err(e) = s.save(&main_skey, &report) {
                eprintln!("cache: write failed: {e}");
            }
        }
    }
    println!("{report}");
    for (i, s) in report.sockets.iter().enumerate() {
        println!(
            "  GPU{i}: egress {:>6} KiB, ingress {:>6} KiB, dram {:>6} KiB, L2 hit {:.1}%, lane turns {}{}",
            s.egress_bytes >> 10,
            s.ingress_bytes >> 10,
            s.dram_bytes >> 10,
            100.0 * s.l2.hit_rate(),
            s.lane_turns,
            match s.l2_partition {
                Some((l, r)) => format!(", L2 ways {l}L/{r}R"),
                None => String::new(),
            }
        );
    }
    if timeline {
        println!("\ncycle,gpu,egress_util,ingress_util,egress_lanes,ingress_lanes");
        for (g, tl) in report.link_timelines.iter().enumerate() {
            for s in tl {
                println!(
                    "{},{},{:.3},{:.3},{},{}",
                    s.cycle, g, s.egress_util, s.ingress_util, s.egress_lanes, s.ingress_lanes
                );
            }
        }
    }

    if let Some(res) = &report.resilience {
        println!("\nfaults applied:");
        for f in &res.applied {
            println!("  cycle {:>10}: {}", f.cycle, f.description);
        }
        for l in &res.links {
            // Edge ids below the socket count are the per-socket access
            // links; any interior fabric edges follow.
            let who = if (l.edge as usize) < report.sockets.len() {
                format!("GPU{}", l.edge)
            } else {
                format!("edge {}", l.edge)
            };
            println!(
                "  {who}: link lane availability {:.1}%{}",
                100.0 * l.availability(),
                match l.recovery_cycles {
                    Some(c) => format!(", balancer re-allocated after {c} cycles"),
                    None => String::new(),
                }
            );
        }
        if res.disabled_sms > 0 {
            println!(
                "  {} SM(s) disabled, {} CTA(s) requeued",
                res.disabled_sms, res.requeued_ctas
            );
        }
    }

    if let Some(path) = &trace_out {
        let doc = report.chrome_trace().to_string();
        std::fs::write(path, &doc).unwrap_or_else(|e| usage(&format!("cannot write trace: {e}")));
        eprintln!(
            "wrote {} trace event(s) to {path}",
            report.trace_events.len()
        );
    }
    if metrics {
        let snap = report.metrics.as_ref().expect("metrics enabled before run");
        println!("\nmetrics {}", snap.to_json());
    }
    if profile {
        let p = report.profile.as_ref().expect("profile enabled before run");
        println!("\n{}", p.render_table());
    }

    if baseline {
        let baseline_was_warm = warm_baseline.is_some();
        let single = warm_baseline.take().or(prerun_baseline).unwrap_or_else(|| {
            unwrap_report(numa_gpu::core::run_workload(
                SystemConfig::pascal_single(),
                &workload,
            ))
        });
        if !baseline_was_warm {
            if let Some(s) = store.as_mut() {
                if let Err(e) = s.save(&baseline_skey, &single) {
                    eprintln!("cache: write failed: {e}");
                }
            }
        }
        println!("\nbaseline {single}");
        println!(
            "speedup vs single GPU: {:.2}x",
            report.speedup_over(&single)
        );
    }
    if let Some(s) = &store {
        let stats = s.stats();
        eprintln!(
            "cache: {} warm hit(s), {} miss(es), {} write(s), {} quarantined",
            stats.hits, stats.misses, stats.writes, stats.quarantined
        );
    }
}
