//! Observability layer guarantees, end to end:
//!
//! 1. **Zero interference** — enabling metrics/tracing never changes
//!    simulated timing or results.
//! 2. **Determinism** — metrics snapshots and trace exports are
//!    byte-identical across runs of the same config + workload.
//! 3. **Schema sanity** — the Chrome `trace_event` export parses with the
//!    in-tree JSON parser, and `traceEvents` timestamps are monotone.

use numa_gpu::core::run_workload;
use numa_gpu::obs::TracePhase;
use numa_gpu::types::{ObsConfig, SystemConfig};
use numa_gpu::workloads::{by_name, Scale};
use numa_gpu_testkit::json::Json;
use std::process::Command;

fn workload() -> numa_gpu::runtime::Workload {
    by_name("Rodinia-Euler3D", &Scale::quick()).expect("catalog workload")
}

fn cfg(obs: ObsConfig) -> SystemConfig {
    let mut cfg = SystemConfig::numa_aware_sockets(2);
    cfg.obs = obs;
    cfg
}

#[test]
fn observability_never_changes_timing() {
    let wl = workload();
    let off = run_workload(cfg(ObsConfig::off()), &wl).unwrap();
    let on = run_workload(cfg(ObsConfig::full()), &wl).unwrap();
    assert_eq!(off.total_cycles, on.total_cycles);
    assert_eq!(off.kernel_cycles, on.kernel_cycles);
    assert_eq!(off.interconnect_bytes, on.interconnect_bytes);
    assert_eq!(off.sockets, on.sockets);
    // And the observability payload exists only when asked for.
    assert!(off.metrics.is_none());
    assert!(off.trace_events.is_empty());
    assert!(on.metrics.is_some());
    assert!(!on.trace_events.is_empty());
}

#[test]
fn metrics_snapshot_is_byte_identical_across_runs() {
    let wl = workload();
    let a = run_workload(cfg(ObsConfig::full()), &wl).unwrap();
    let b = run_workload(cfg(ObsConfig::full()), &wl).unwrap();
    let ja = a.metrics.as_ref().unwrap().to_json().to_string();
    let jb = b.metrics.as_ref().unwrap().to_json().to_string();
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "metrics snapshots differ between identical runs");
    // The snapshot also rides inside the report JSON, equally stable.
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());
}

#[test]
fn chrome_trace_is_byte_identical_across_runs() {
    let wl = workload();
    let a = run_workload(cfg(ObsConfig::full()), &wl).unwrap();
    let b = run_workload(cfg(ObsConfig::full()), &wl).unwrap();
    assert_eq!(a.trace_events, b.trace_events);
    assert_eq!(
        a.chrome_trace().to_string(),
        b.chrome_trace().to_string(),
        "trace exports differ between identical runs"
    );
}

#[test]
fn chrome_trace_parses_and_timestamps_are_monotone() {
    let wl = workload();
    let report = run_workload(cfg(ObsConfig::full()), &wl).unwrap();
    let doc = Json::parse(&report.chrome_trace().to_string()).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents is an array");
    assert!(!events.is_empty());
    let mut last_ts = 0u64;
    for e in events {
        let ts = e.get("ts").unwrap().as_u64().expect("ts is unsigned");
        assert!(ts >= last_ts, "ts went backwards: {ts} after {last_ts}");
        last_ts = ts;
        assert!(e.get("name").unwrap().as_str().is_some());
        assert!(e.get("ph").unwrap().as_str().is_some());
        assert_eq!(e.get("pid").unwrap().as_u64(), Some(1));
    }
    // The run must include at least one kernel span.
    assert!(report
        .trace_events
        .iter()
        .any(|e| e.phase == TracePhase::Complete && e.category == "kernel"));
}

#[test]
fn trace_capacity_bounds_the_ring_buffer() {
    let wl = workload();
    let mut obs = ObsConfig::full();
    obs.trace_capacity = 1;
    let report = run_workload(cfg(obs), &wl).unwrap();
    assert_eq!(
        report.trace_events.len(),
        1,
        "ring buffer keeps newest only"
    );
}

#[test]
fn metrics_report_expected_instruments() {
    let wl = workload();
    let report = run_workload(cfg(ObsConfig::full()), &wl).unwrap();
    let snap = report.metrics.as_ref().unwrap();
    for s in 0..2 {
        for name in [
            format!("sm.s{s}.issue_stalls"),
            format!("sm.s{s}.mshr_occupancy"),
            format!("l2.s{s}.repartitions"),
            format!("l2.s{s}.local_ways"),
            format!("dram.s{s}.row_hits"),
            format!("dram.s{s}.row_misses"),
            format!("link.s{s}.egress_backlog_cycles"),
            format!("link.s{s}.ingress_backlog_cycles"),
            format!("link.s{s}.conflicts"),
        ] {
            assert!(snap.get(&name).is_some(), "missing metric {name}");
        }
    }
    assert!(snap.get("engine.events_scheduled").is_some());
    assert!(snap.get("engine.events_dispatched").is_some());
    assert!(snap.get("engine.queue_max_len").is_some());
    // The quick Euler3D run misses in DRAM, so the row model saw traffic.
    let touches =
        snap.counter("dram.s0.row_hits").unwrap() + snap.counter("dram.s0.row_misses").unwrap();
    assert!(touches > 0, "row model saw no DRAM traffic");
}

#[test]
fn cli_trace_out_is_deterministic_and_parseable() {
    let dir = std::env::temp_dir();
    let run = |path: &std::path::Path| {
        let out = Command::new(env!("CARGO_BIN_EXE_simulate"))
            .args([
                "--workload",
                "HPC-HPGMG-UVM",
                "--quick",
                "--sockets",
                "2",
                "--metrics",
                "--trace-out",
            ])
            .arg(path)
            .output()
            .expect("simulate binary runs");
        assert!(
            out.status.success(),
            "simulate failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let trace = std::fs::read_to_string(path).expect("trace file written");
        (out.stdout, trace)
    };
    let p1 = dir.join("numa-gpu-obs-test-1.json");
    let p2 = dir.join("numa-gpu-obs-test-2.json");
    let (stdout1, trace1) = run(&p1);
    let (stdout2, trace2) = run(&p2);
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
    assert_eq!(stdout1, stdout2, "stdout (incl. metrics) differs");
    assert_eq!(trace1, trace2, "trace files differ between identical runs");
    let doc = Json::parse(&trace1).expect("trace file is valid JSON");
    assert!(!doc
        .get("traceEvents")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());
}
