//! Concurrency hammer for the partitioned event loop: repeated 8-socket
//! runs with randomized (but seed-deterministic) `sim_threads` counts must
//! all hash-match the serial baseline. Thread scheduling is the one input
//! the simulator does not control, so the only way to gain confidence that
//! no ordering leak survives is volume — many runs, many thread counts.

use numa_gpu::core::{run_workload, run_workload_with_faults};
use numa_gpu::faults::FaultPlan;
use numa_gpu::types::SystemConfig;
use numa_gpu::workloads::{by_name, Scale};

/// splitmix64 — a tiny, well-mixed PRNG so the "random" thread counts are
/// reproducible from the literal seed (no ambient entropy in tests).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the serialized report — a cheap stand-in for a content
/// hash; any single-byte divergence changes it.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn report_hash(cfg: SystemConfig, faults: Option<&FaultPlan>) -> u64 {
    let wl = by_name("Rodinia-Euler3D", &Scale::quick()).unwrap();
    let report = match faults {
        Some(plan) => run_workload_with_faults(cfg, &wl, plan).unwrap(),
        None => run_workload(cfg, &wl).unwrap(),
    };
    let mut doc = report.to_json().to_string();
    doc.push_str(&report.chrome_trace().to_string());
    fnv1a(doc.as_bytes())
}

fn hammer(iterations: u32, seed: u64, faults: Option<&FaultPlan>) {
    let mut cfg = SystemConfig::numa_aware_sockets(8);
    cfg.sim_threads = 1;
    let baseline = report_hash(cfg.clone(), faults);
    let mut rng = seed;
    for i in 0..iterations {
        // 0 (= auto) through 8 (one worker per socket) are all legal.
        let threads = (splitmix64(&mut rng) % 9) as u16;
        cfg.sim_threads = threads;
        assert_eq!(
            report_hash(cfg.clone(), faults),
            baseline,
            "iteration {i}: sim_threads={threads} diverged from the serial baseline"
        );
    }
}

#[test]
fn hammer_clean_8_socket_runs() {
    hammer(20, 0x5eed_0001, None);
}

#[test]
fn hammer_faulted_8_socket_runs() {
    let plan = FaultPlan::parse("lanes:s3@300=8; dram:s0@500+200; sm:0-1@800").unwrap();
    hammer(20, 0x5eed_0002, Some(&plan));
}

/// Long-soak variant for local use: `cargo test -- --ignored` runs 200
/// iterations per battery. Not part of the default tier-1 gate.
#[test]
#[ignore = "long soak; run explicitly with --ignored"]
fn hammer_long_soak() {
    hammer(200, 0x5eed_1001, None);
    let plan = FaultPlan::parse("lanes:s3@300=8; dram:s0@500+200; sm:0-1@800").unwrap();
    hammer(200, 0x5eed_1002, Some(&plan));
}
