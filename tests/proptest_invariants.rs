//! Property-based tests on the simulator's core invariants.

use numa_gpu::cache::{LineClass, MshrAllocation, MshrFile, SetAssocCache, WayPartition};
use numa_gpu::cache::{PartitionAction, PartitionController};
use numa_gpu::engine::ServiceQueue;
use numa_gpu::interconnect::{BalanceAction, LinkBalancer};
use numa_gpu::mem::PageTable;
use numa_gpu::runtime::{socket_for_cta, LaunchPlan};
use numa_gpu::types::{
    Addr, CacheConfig, CtaSchedulingPolicy, LineAddr, PagePlacement, SocketId, WritePolicy,
    LINE_SIZE, TICKS_PER_CYCLE,
};
use numa_gpu_testkit::gen::{bools, ints, pairs, select, vecs};
use numa_gpu_testkit::{prop_assert, prop_assert_eq, prop_check};

prop_check! {
    /// ServiceQueue completions are monotone in submission order and never
    /// finish before request time plus occupancy.
    fn service_queue_monotone(
        rates in ints(1u64..4096),
        reqs in vecs(pairs(ints(0u64..100_000), ints(1u32..100_000)), 1..50)
    ) {
        let mut q = ServiceQueue::new(rates);
        let mut last = 0;
        let mut now = 0;
        for (dt, bytes) in reqs {
            now += dt;
            let done = q.service(now, bytes);
            prop_assert!(done >= last, "completions must be FIFO");
            prop_assert!(done >= now, "cannot complete before submission");
            let occ = (bytes as u64 * TICKS_PER_CYCLE).div_ceil(rates);
            prop_assert!(done >= now + occ.min(1), "occupancy must be charged");
            last = done;
        }
        prop_assert_eq!(q.total_requests(), q.total_requests());
    }

    /// Way partitions always keep at least one way per class regardless of
    /// the action sequence applied.
    fn partition_floors_hold(total in ints(2u16..64), actions in vecs(ints(0u8..4), 0..200)) {
        let mut ctl = PartitionController::new(total);
        for a in actions {
            let (link, dram) = match a {
                0 => (true, false),
                1 => (false, true),
                2 => (true, true),
                _ => (false, false),
            };
            ctl.step(link, dram);
            let p = ctl.partition();
            prop_assert!(p.local_ways() >= 1);
            prop_assert!(p.remote_ways() >= 1);
            prop_assert_eq!(p.local_ways() + p.remote_ways(), total);
        }
    }

    /// Sustained one-sided saturation converges to the extreme partition
    /// and equalization converges back to balance.
    fn partition_converges(total in ints(2u16..64)) {
        let mut ctl = PartitionController::new(total);
        for _ in 0..2 * total {
            ctl.step(true, false);
        }
        prop_assert_eq!(ctl.partition().local_ways(), 1);
        for _ in 0..2 * total {
            ctl.step(true, true);
        }
        prop_assert_eq!(ctl.partition().local_ways(), total - total / 2);
    }

    /// A cache never reports more resident lines than its capacity, and a
    /// fill for a resident line never evicts.
    fn cache_capacity_invariant(lines in vecs(ints(0u64..4096), 1..300)) {
        let cfg = CacheConfig {
            size_bytes: 64 * LINE_SIZE,
            ways: 4,
            hit_latency_cycles: 1,
            write_policy: WritePolicy::WriteBack,
        };
        let mut c = SetAssocCache::new(&cfg, None);
        for l in lines {
            let line = LineAddr::from_index(l);
            let was_resident = c.contains(line);
            let evicted = c.fill(line, LineClass::Local, false);
            if was_resident {
                prop_assert!(evicted.is_none());
            }
            prop_assert!(c.resident_lines() <= 64);
            prop_assert!(c.contains(line));
        }
    }

    /// Partitioned victim selection never evicts from the other class's
    /// protected ways when the partition is full of own-class lines.
    fn partition_isolation(seed in ints(0u64..1000)) {
        let cfg = CacheConfig {
            size_bytes: 8 * LINE_SIZE, // 1 set x 8 ways
            ways: 8,
            hit_latency_cycles: 1,
            write_policy: WritePolicy::WriteBack,
        };
        let mut c = SetAssocCache::new(&cfg, Some(WayPartition::balanced(8)));
        // Fill local ways with 4 locals, then hammer remotes.
        for i in 0..4u64 {
            c.fill(LineAddr::from_index(seed * 100 + i), LineClass::Local, false);
        }
        for i in 0..32u64 {
            c.fill(LineAddr::from_index(10_000 + seed + i), LineClass::Remote, false);
        }
        for i in 0..4u64 {
            prop_assert!(c.contains(LineAddr::from_index(seed * 100 + i)));
        }
    }

    /// MSHR: waiters are returned exactly once, in order, and capacity is
    /// respected.
    fn mshr_waiters_exact(lines in vecs(ints(0u64..16), 1..100)) {
        let mut m: MshrFile<usize> = MshrFile::new(4);
        let mut expected: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        for (i, l) in lines.iter().enumerate() {
            match m.allocate(LineAddr::from_index(*l), i) {
                MshrAllocation::Primary | MshrAllocation::Merged => {
                    expected.entry(*l).or_default().push(i);
                }
                MshrAllocation::Full => {
                    prop_assert!(m.in_use() == 4);
                }
            }
        }
        for (l, want) in expected {
            prop_assert_eq!(m.complete(LineAddr::from_index(l)), want);
        }
        prop_assert_eq!(m.in_use(), 0);
    }

    /// Page table: homes are stable (same line always resolves to the same
    /// socket once placed) and within range.
    fn page_table_stable(
        policy in select(vec![
            PagePlacement::FineInterleave,
            PagePlacement::PageInterleave,
            PagePlacement::FirstTouch,
        ]),
        sockets in ints(1u8..9),
        addrs in vecs(pairs(ints(0u64..1u64 << 30), ints(0u8..8)), 1..200),
    ) {
        let mut pt = PageTable::new(policy, sockets);
        let mut seen: std::collections::HashMap<u64, SocketId> = Default::default();
        for (a, r) in addrs {
            let line = Addr::new(a).line();
            let req = SocketId::new(r % sockets);
            let home = pt.home_of_line(line, req);
            prop_assert!(home.index() < sockets as usize);
            if let Some(prev) = seen.insert(line.raw(), home) {
                prop_assert_eq!(prev, home, "home moved");
            }
        }
    }

    /// CTA assignment: contiguous blocks are monotone in CTA id; interleave
    /// is round-robin; both cover only valid sockets; the launch plan
    /// partitions the grid exactly.
    fn launch_plan_partitions(total in ints(1u32..2000), sockets in ints(1u8..9)) {
        for policy in [CtaSchedulingPolicy::Interleave, CtaSchedulingPolicy::ContiguousBlock] {
            let mut prev = 0usize;
            let mut count = 0u32;
            let mut plan = LaunchPlan::new(policy, total, sockets);
            for c in 0..total {
                let s = socket_for_cta(policy, c, total, sockets);
                prop_assert!(s.index() < sockets as usize);
                if policy == CtaSchedulingPolicy::ContiguousBlock {
                    prop_assert!(s.index() >= prev, "contiguous must be monotone");
                    prev = s.index();
                }
            }
            for s in 0..sockets {
                while plan.next_for_socket(SocketId::new(s)).is_some() {
                    count += 1;
                }
            }
            prop_assert_eq!(count, total, "plan must cover the grid exactly");
        }
    }

    /// The link balancer never steals a donor's last lane and only acts
    /// under saturation.
    fn balancer_safety(
        sat_e in bools(),
        sat_i in bools(),
        eg in ints(1u8..16),
        ing in ints(1u8..16)
    ) {
        match LinkBalancer::decide(sat_e, sat_i, eg, ing) {
            BalanceAction::TurnTowardEgress => {
                prop_assert!(sat_e && !sat_i && ing > 1);
            }
            BalanceAction::TurnTowardIngress => {
                prop_assert!(sat_i && !sat_e && eg > 1);
            }
            BalanceAction::Equalize => {
                prop_assert!(sat_e && sat_i && eg != ing);
            }
            BalanceAction::Hold => {}
        }
    }

    /// Partition controller actions match their inputs (the Fig 7(d) table).
    fn controller_action_table(link in bools(), dram in bools()) {
        let mut ctl = PartitionController::new(16);
        let action = ctl.step(link, dram);
        let want = match (link, dram) {
            (true, false) => PartitionAction::GrowRemote,
            (false, true) => PartitionAction::GrowLocal,
            (true, true) => PartitionAction::Equalize,
            (false, false) => PartitionAction::Hold,
        };
        prop_assert_eq!(action, want);
    }
}
