//! End-to-end integration tests: full workloads through full systems.

use numa_gpu::core::{run_workload, NumaGpuSystem};
use numa_gpu::runtime::{Kernel, Suite, Workload, WorkloadMeta};
use numa_gpu::types::{CacheMode, CtaSchedulingPolicy, LinkMode, PagePlacement, SystemConfig};
use numa_gpu::workloads::{by_name, catalog, KernelSpec, Pattern, PatternKernel, Scale};
use std::sync::Arc;

/// A purpose-built workload whose hot shared structure is reused heavily —
/// quick-scale catalog workloads are too small to show cache reuse.
fn shared_hot_workload() -> Workload {
    let spec = KernelSpec {
        name: "hot".into(),
        ctas: 64,
        warps_per_cta: 8,
        ops_per_warp: 64,
        compute_per_mem: 2,
        read_fraction: 0.9,
        pattern: Pattern::SharedRead {
            shared_fraction: 0.9,
            shared_bytes: 256 * 1024,
            shared_read_fraction: 1.0,
        },
        region_offset: 0,
        region_bytes: 16 << 20,
        seed: 11,
    };
    Workload {
        meta: WorkloadMeta {
            name: "shared-hot".into(),
            suite: Suite::Other,
            paper_avg_ctas: 64,
            paper_footprint_mb: 16,
            study_set: true,
        },
        kernels: vec![Arc::new(PatternKernel::new(spec)) as Arc<dyn Kernel>],
        footprint_bytes: 16 << 20,
    }
}

/// A large streaming workload with enough CTAs to feed eight sockets.
fn wide_streaming_workload() -> Workload {
    let spec = KernelSpec {
        name: "stream".into(),
        ctas: 512,
        warps_per_cta: 4,
        ops_per_warp: 16,
        compute_per_mem: 4,
        read_fraction: 0.67,
        pattern: Pattern::Streaming,
        region_offset: 0,
        region_bytes: 64 << 20,
        seed: 3,
    };
    Workload {
        meta: WorkloadMeta {
            name: "wide-streaming".into(),
            suite: Suite::Other,
            paper_avg_ctas: 512,
            paper_footprint_mb: 64,
            study_set: false,
        },
        kernels: vec![Arc::new(PatternKernel::new(spec)) as Arc<dyn Kernel>],
        footprint_bytes: 64 << 20,
    }
}

fn quick() -> Scale {
    Scale::quick()
}

#[test]
fn single_gpu_runs_every_workload() {
    for wl in catalog(&quick()) {
        let r = run_workload(SystemConfig::pascal_single(), &wl).unwrap();
        assert!(r.total_cycles > 0, "{} took zero cycles", wl.meta.name);
        assert_eq!(r.kernel_cycles.len(), wl.kernels.len());
        assert_eq!(r.sockets.len(), 1);
        // A single socket never touches the switch.
        assert_eq!(r.interconnect_bytes, 0, "{}", wl.meta.name);
        assert_eq!(r.remote_read_fraction, 0.0);
    }
}

#[test]
fn four_socket_numa_aware_runs_every_workload() {
    for wl in catalog(&quick()) {
        let r = run_workload(SystemConfig::numa_aware_sockets(4), &wl).unwrap();
        assert!(r.total_cycles > 0, "{}", wl.meta.name);
        assert_eq!(r.sockets.len(), 4);
    }
}

#[test]
fn determinism_same_config_same_cycles() {
    let wl = by_name("Rodinia-Euler3D", &quick()).unwrap();
    let a = run_workload(SystemConfig::numa_aware_sockets(4), &wl).unwrap();
    let b = run_workload(SystemConfig::numa_aware_sockets(4), &wl).unwrap();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.interconnect_bytes, b.interconnect_bytes);
    assert_eq!(a.kernel_cycles, b.kernel_cycles);
}

#[test]
fn locality_runtime_beats_traditional_on_streaming() {
    let wl = by_name("Other-Stream-Triad", &quick()).unwrap();
    let mut trad = SystemConfig::numa_sockets(4);
    trad.placement = PagePlacement::FineInterleave;
    trad.cta_policy = CtaSchedulingPolicy::Interleave;
    let trad_r = run_workload(trad, &wl).unwrap();
    let loc_r = run_workload(SystemConfig::numa_sockets(4), &wl).unwrap();
    assert!(
        loc_r.total_cycles < trad_r.total_cycles,
        "locality {} !< traditional {}",
        loc_r.total_cycles,
        trad_r.total_cycles
    );
    // Streaming under first-touch + contiguous CTAs is almost all local.
    assert!(loc_r.remote_read_fraction < 0.1);
    // Under fine interleave on 4 sockets it is ~75% remote.
    let mut trad2 = SystemConfig::numa_sockets(4);
    trad2.placement = PagePlacement::FineInterleave;
    trad2.cta_policy = CtaSchedulingPolicy::Interleave;
    let t = run_workload(trad2, &wl).unwrap();
    assert!(t.remote_read_fraction > 0.6);
}

#[test]
fn interconnect_traffic_only_with_remote_accesses() {
    let wl = by_name("Other-Stream-Triad", &quick()).unwrap();
    let loc = run_workload(SystemConfig::numa_sockets(4), &wl).unwrap();
    let mut trad = SystemConfig::numa_sockets(4);
    trad.placement = PagePlacement::FineInterleave;
    let t = run_workload(trad, &wl).unwrap();
    assert!(t.interconnect_bytes > 10 * loc.interconnect_bytes);
}

#[test]
fn double_bandwidth_never_slower() {
    for name in ["Rodinia-Euler3D", "HPC-AMG", "HPC-HPGMG-UVM"] {
        let wl = by_name(name, &quick()).unwrap();
        let base = run_workload(SystemConfig::numa_sockets(4), &wl).unwrap();
        let mut dbl = SystemConfig::numa_sockets(4);
        dbl.link.mode = LinkMode::DoubleBandwidth;
        let d = run_workload(dbl, &wl).unwrap();
        // Allow 2% noise for sampling-period interactions.
        assert!(
            (d.total_cycles as f64) < 1.02 * base.total_cycles as f64,
            "{name}: 2x BW slower ({} vs {})",
            d.total_cycles,
            base.total_cycles
        );
    }
}

#[test]
fn dynamic_links_turn_lanes_on_phased_workload() {
    let wl = by_name("HPC-HPGMG-UVM", &quick()).unwrap();
    let mut cfg = SystemConfig::numa_sockets(4);
    cfg.link.mode = LinkMode::DynamicAsymmetric;
    let r = run_workload(cfg, &wl).unwrap();
    assert!(r.lane_turns() > 0, "no lanes turned");
}

#[test]
fn static_links_never_turn() {
    let wl = by_name("HPC-HPGMG-UVM", &quick()).unwrap();
    let r = run_workload(SystemConfig::numa_sockets(4), &wl).unwrap();
    assert_eq!(r.lane_turns(), 0);
}

#[test]
fn cache_modes_all_run_and_remote_hits_only_when_cached() {
    let wl = by_name("HPC-RSBench", &quick()).unwrap();
    let mut memside = SystemConfig::numa_sockets(4);
    memside.cache_mode = CacheMode::MemSideLocalOnly;
    let m = run_workload(memside, &wl).unwrap();
    // Mem-side L2 never caches remote lines.
    for s in &m.sockets {
        assert_eq!(s.l2.remote_hits.get(), 0);
        assert_eq!(s.l2.remote_misses.get(), 0);
    }
    let mut shared = SystemConfig::numa_sockets(4);
    shared.cache_mode = CacheMode::SharedCoherent;
    let sh = run_workload(shared, &wl).unwrap();
    let remote_l2: u64 = sh.sockets.iter().map(|s| s.l2.remote_hits.get()).sum();
    assert!(
        remote_l2 > 0,
        "shared coherent L2 should hit on remote data"
    );
}

#[test]
fn numa_aware_cache_helps_shared_read_workload() {
    let wl = shared_hot_workload();
    let base = run_workload(SystemConfig::numa_sockets(4), &wl).unwrap();
    let mut na = SystemConfig::numa_sockets(4);
    na.cache_mode = CacheMode::NumaAwareDynamic;
    let n = run_workload(na, &wl).unwrap();
    assert!(
        n.total_cycles < base.total_cycles,
        "NUMA-aware cache should beat mem-side baseline on a hot shared set \
         ({} vs {})",
        n.total_cycles,
        base.total_cycles
    );
    // And it should cut interconnect traffic.
    assert!(n.interconnect_bytes < base.interconnect_bytes);
}

#[test]
fn ideal_no_invalidate_at_least_as_fast() {
    let wl = by_name("Rodinia-Euler3D", &quick()).unwrap();
    let mut real = SystemConfig::numa_sockets(4);
    real.cache_mode = CacheMode::NumaAwareDynamic;
    let mut ideal = real.clone();
    ideal.ideal_no_l2_invalidate = true;
    let r = run_workload(real, &wl).unwrap();
    let i = run_workload(ideal, &wl).unwrap();
    assert!(
        i.total_cycles <= r.total_cycles,
        "ignoring invalidations cannot be slower ({} vs {})",
        i.total_cycles,
        r.total_cycles
    );
}

#[test]
fn scalability_two_to_eight_sockets() {
    let wl = wide_streaming_workload();
    let single = run_workload(SystemConfig::pascal_single(), &wl).unwrap();
    let mut last = f64::MAX;
    for n in [2u8, 4, 8] {
        let r = run_workload(SystemConfig::numa_aware_sockets(n), &wl).unwrap();
        let cycles = r.total_cycles as f64;
        assert!(
            cycles < single.total_cycles as f64,
            "{n}-socket slower than single GPU on streaming"
        );
        // Modest slack: queueing noise at socket boundaries.
        assert!(
            cycles <= 1.05 * last,
            "more sockets should not slow streaming ({n} sockets: {cycles} vs {last})"
        );
        last = last.min(cycles);
    }
}

#[test]
fn hypothetical_scaled_gpu_helps_large_workloads() {
    let wl = by_name("HPC-MiniAMR", &quick()).unwrap();
    let single = run_workload(SystemConfig::pascal_single(), &wl).unwrap();
    let hypo = run_workload(SystemConfig::hypothetical_scaled(4), &wl).unwrap();
    assert!(hypo.total_cycles < single.total_cycles);
}

#[test]
fn timeline_recording_produces_samples() {
    let wl = by_name("HPC-HPGMG-UVM", &quick()).unwrap();
    let mut sys = NumaGpuSystem::new(SystemConfig::numa_sockets(4)).unwrap();
    sys.enable_link_timeline();
    let r = sys.run(&wl).unwrap();
    assert_eq!(r.link_timelines.len(), 4);
    assert!(r.link_timelines.iter().all(|t| !t.is_empty()));
    // Kernel start marks exist for the Fig-5 dotted lines.
    assert_eq!(r.kernel_start_cycles.len(), wl.kernels.len());
}

#[test]
fn power_model_reports_nonzero_for_communicating_workloads() {
    let wl = by_name("HPC-AMG", &quick()).unwrap();
    let mut trad = SystemConfig::numa_sockets(4);
    trad.placement = PagePlacement::FineInterleave;
    let r = run_workload(trad, &wl).unwrap();
    assert!(r.link_power_w > 0.0);
}

#[test]
fn system_run_is_single_use() {
    let wl = by_name("Other-Bitcoin-Crypto", &quick()).unwrap();
    let mut sys = NumaGpuSystem::new(SystemConfig::pascal_single()).unwrap();
    let _ = sys.run(&wl);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sys.run(&wl)));
    assert!(result.is_err(), "second run must panic");
}
