//! Topology-layer integration tests: the star fabric is the paper's
//! switch (flag and default must match byte for byte), every off-star
//! fabric stays byte-deterministic at any `sim_threads` count (interior
//! hops are charged only at serial points, so the partitioned event loop's
//! guarantee extends to them), and the collective workloads run on every
//! fabric with their NUMA-aware variants moving strictly less link
//! traffic.

use std::process::Command;

use numa_gpu::core::{run_workload, run_workload_with_faults};
use numa_gpu::faults::FaultPlan;
use numa_gpu::types::{SystemConfig, TopologyKind};
use numa_gpu::workloads::{by_name, collective_by_name, Scale};

const OFF_STAR: [TopologyKind; 3] = [
    TopologyKind::Ring,
    TopologyKind::Mesh2d,
    TopologyKind::FatTree,
];

fn cfg_with(kind: TopologyKind, sockets: u8, sim_threads: u16) -> SystemConfig {
    let mut cfg = SystemConfig::numa_aware_sockets(sockets);
    cfg.topology = kind;
    cfg.sim_threads = sim_threads;
    cfg
}

fn simulate(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_simulate"))
        .args(args)
        .output()
        .expect("simulate binary runs");
    assert!(
        out.status.success(),
        "simulate {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// `--topology star` is the default spelled out: stdout must be identical
/// with and without the flag. This is the CLI face of the refactor's
/// prime acceptance criterion — the star fabric reproduces the
/// pre-topology switch exactly.
#[test]
fn star_flag_matches_default_byte_for_byte() {
    let base = [
        "--workload",
        "Other-Stream-Triad",
        "--quick",
        "--sockets",
        "4",
    ];
    let mut with_flag = base.to_vec();
    with_flag.extend(["--topology", "star"]);
    assert_eq!(
        simulate(&base),
        simulate(&with_flag),
        "--topology star must be a no-op relative to the default"
    );
}

/// Off-star fabrics keep the partitioned event loop's headline guarantee:
/// reports are byte-identical at every `sim_threads` setting, because
/// interior-hop charging happens only at barriers (canonical merge order),
/// boundary flushes, and the serial control plane.
#[test]
fn off_star_fabrics_are_byte_identical_across_sim_threads() {
    let wl = by_name("Rodinia-Euler3D", &Scale::quick()).unwrap();
    for kind in OFF_STAR {
        let serial = run_workload(cfg_with(kind, 8, 1), &wl).unwrap();
        let parallel = run_workload(cfg_with(kind, 8, 4), &wl).unwrap();
        assert_eq!(
            serial.to_json().to_string(),
            parallel.to_json().to_string(),
            "{kind:?}: sim_threads must not change the report"
        );
    }
}

/// The same property holds past the old 8-socket ceiling.
#[test]
fn sixteen_socket_ring_is_byte_identical_across_sim_threads() {
    let wl = by_name("Other-Stream-Triad", &Scale::quick()).unwrap();
    let serial = run_workload(cfg_with(TopologyKind::Ring, 16, 1), &wl).unwrap();
    let parallel = run_workload(cfg_with(TopologyKind::Ring, 16, 4), &wl).unwrap();
    assert_eq!(serial.to_json().to_string(), parallel.to_json().to_string());
}

/// Fault injection addresses links by edge id; on an 8-socket ring edges
/// 8..16 are interior switch-to-switch links. A plan degrading one must
/// validate, perturb the run, and stay deterministic across thread counts.
#[test]
fn interior_edge_faults_are_valid_and_deterministic() {
    let wl = by_name("Rodinia-Euler3D", &Scale::quick()).unwrap();
    let plan = FaultPlan::parse("lanes:s10@300=8; retrain:s12@600+200").unwrap();
    let clean = run_workload(cfg_with(TopologyKind::Ring, 8, 1), &wl).unwrap();
    let a = run_workload_with_faults(cfg_with(TopologyKind::Ring, 8, 1), &wl, &plan).unwrap();
    let b = run_workload_with_faults(cfg_with(TopologyKind::Ring, 8, 4), &wl, &plan).unwrap();
    assert_eq!(
        a.to_json().to_string(),
        b.to_json().to_string(),
        "faulted ring run must be thread-count invariant"
    );
    assert_ne!(
        clean.total_cycles, a.total_cycles,
        "degrading an interior edge must perturb a ring run"
    );
    let res = a
        .resilience
        .as_ref()
        .expect("faulted run reports resilience");
    assert!(
        res.links.len() > 8,
        "resilience must cover interior edges, got {}",
        res.links.len()
    );
}

/// The same interior-edge plan must be rejected on the star fabric, whose
/// only edges are the 8 access links.
#[test]
fn interior_edge_fault_is_out_of_range_on_star() {
    let wl = by_name("Other-Stream-Triad", &Scale::quick()).unwrap();
    let plan = FaultPlan::parse("lanes:s10@300=8").unwrap();
    let err = run_workload_with_faults(cfg_with(TopologyKind::Star, 8, 1), &wl, &plan)
        .expect_err("edge 10 does not exist on an 8-socket star");
    assert!(
        err.to_string().contains("out of range"),
        "unexpected error: {err}"
    );
}

/// Collectives run on every fabric, and the NUMA-aware variant of each
/// moves strictly less link traffic than its naive twin (that spread is
/// the point of the workload pair).
#[test]
fn numa_aware_collectives_move_less_link_traffic() {
    for kind in [TopologyKind::Star, TopologyKind::Ring] {
        for (naive, aware) in [
            ("Coll-AllToAll", "Coll-AllToAll-NUMA"),
            ("Coll-AllReduce-Ring", "Coll-AllReduce-Ring-NUMA"),
        ] {
            let n = collective_by_name(naive, 8, &Scale::quick()).unwrap();
            let a = collective_by_name(aware, 8, &Scale::quick()).unwrap();
            let rn = run_workload(cfg_with(kind, 8, 1), &n).unwrap();
            let ra = run_workload(cfg_with(kind, 8, 1), &a).unwrap();
            assert!(
                ra.interconnect_bytes < rn.interconnect_bytes,
                "{kind:?}: {aware} must move less than {naive} ({} vs {})",
                ra.interconnect_bytes,
                rn.interconnect_bytes
            );
        }
    }
}

/// The relaxed socket cap: a 32-socket machine builds and completes a run
/// on an off-star fabric.
#[test]
fn thirty_two_socket_mesh_completes() {
    let wl = by_name("Other-Stream-Triad", &Scale::quick()).unwrap();
    let r = run_workload(cfg_with(TopologyKind::Mesh2d, 32, 4), &wl).unwrap();
    assert!(r.total_cycles > 0);
    assert_eq!(r.sockets.len(), 32);
}
