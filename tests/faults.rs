//! Fault-injection and watchdog integration tests: determinism of faulted
//! runs, graceful degradation under mid-kernel lane loss, and the two
//! watchdog trip paths (cycle budget, starvation stall).

use numa_gpu::core::{run_workload, run_workload_with_faults, NumaGpuSystem};
use numa_gpu::faults::FaultPlan;
use numa_gpu::types::{CtaSchedulingPolicy, LinkMode, PagePlacement, SimError, SystemConfig};
use numa_gpu::workloads::{by_name, Scale};

fn quick() -> Scale {
    Scale::quick()
}

/// 50% lane loss on socket 1 (16 nominal lanes -> 8 healthy), a DRAM
/// stall on socket 0, and two SMs knocked out mid-kernel.
const SCENARIO: &str = "lanes:s1@300=8; dram:s0@500+200; sm:0-1@800";

#[test]
fn faulted_runs_are_byte_identical_across_repeats() {
    let wl = by_name("Rodinia-Euler3D", &quick()).unwrap();
    let plan = FaultPlan::parse(SCENARIO).unwrap();
    let cfg = SystemConfig::numa_aware_sockets(4);
    let a = run_workload_with_faults(cfg.clone(), &wl, &plan).unwrap();
    let b = run_workload_with_faults(cfg, &wl, &plan).unwrap();
    assert_eq!(
        a.to_json().to_string(),
        b.to_json().to_string(),
        "same plan + same config must reproduce the report byte for byte"
    );
}

#[test]
fn empty_fault_plan_matches_plan_less_run_byte_for_byte() {
    let wl = by_name("Rodinia-Euler3D", &quick()).unwrap();
    let cfg = SystemConfig::numa_aware_sockets(4);
    let plain = run_workload(cfg.clone(), &wl).unwrap();
    let mut sys = NumaGpuSystem::new(cfg).unwrap();
    sys.set_fault_plan(FaultPlan::default()).unwrap();
    let empty = sys.run(&wl).unwrap();
    assert_eq!(
        plain.to_json().to_string(),
        empty.to_json().to_string(),
        "an empty plan must be indistinguishable from no plan at all"
    );
    assert!(plain.resilience.is_none());
}

#[test]
fn random_plans_are_reproducible_from_the_seed() {
    let a = FaultPlan::random(42, 4, 16, 256, 100_000);
    let b = FaultPlan::random(42, 4, 16, 256, 100_000);
    assert_eq!(a, b);
    assert!(!a.is_empty());
    // And the grammar round-trips, so `--faults "$(plan)"` replays it.
    assert_eq!(FaultPlan::parse(&a.to_string()).unwrap(), a);
    // A different seed gives a different plan (overwhelmingly likely; this
    // seed pair is fixed so the assertion is deterministic).
    assert_ne!(FaultPlan::random(43, 4, 16, 256, 100_000), a);
}

/// Runs `wl_name` under `cfg` (optionally fault-injected) and returns the
/// two serialized artifacts the determinism battery byte-compares: the
/// SimReport JSON and the Chrome trace document.
fn report_and_trace(cfg: SystemConfig, wl_name: &str, faults: Option<&str>) -> (String, String) {
    let wl = by_name(wl_name, &quick()).unwrap();
    let mut sys = NumaGpuSystem::new(cfg).unwrap();
    if let Some(spec) = faults {
        sys.set_fault_plan(FaultPlan::parse(spec).unwrap()).unwrap();
    }
    let r = sys.run(&wl).unwrap();
    (r.to_json().to_string(), r.chrome_trace().to_string())
}

/// Intra-run parallelism must not perturb results: the partitioned event
/// loop merges cross-socket traffic at window barriers in canonical
/// `(cycle, partition, seq)` order, so report JSON and Chrome trace are
/// byte-identical at every `sim_threads` setting.
#[test]
fn sim_threads_do_not_change_clean_reports() {
    for sockets in [2, 4, 8] {
        let mut cfg = SystemConfig::numa_aware_sockets(sockets);
        cfg.obs.trace = true;
        cfg.sim_threads = 1;
        let base = report_and_trace(cfg.clone(), "Rodinia-Euler3D", None);
        for threads in [2, sockets as u16, 0] {
            cfg.sim_threads = threads;
            let run = report_and_trace(cfg.clone(), "Rodinia-Euler3D", None);
            assert_eq!(
                base.0, run.0,
                "{sockets}-socket clean report diverged at sim_threads={threads}"
            );
            assert_eq!(
                base.1, run.1,
                "{sockets}-socket clean trace diverged at sim_threads={threads}"
            );
        }
    }
}

/// Same battery under fault injection: the resilience plane (lane loss,
/// DRAM stalls, SM disables, recovery accounting) lives partly on the
/// control partition and partly on the shards, so faulted runs exercise
/// the cross-partition ordering hardest.
#[test]
fn sim_threads_do_not_change_faulted_reports() {
    for sockets in [2, 4, 8] {
        let mut cfg = SystemConfig::numa_aware_sockets(sockets);
        cfg.obs.trace = true;
        cfg.sim_threads = 1;
        let base = report_and_trace(cfg.clone(), "Rodinia-Euler3D", Some(SCENARIO));
        for threads in [2, sockets as u16, 0] {
            cfg.sim_threads = threads;
            let run = report_and_trace(cfg.clone(), "Rodinia-Euler3D", Some(SCENARIO));
            assert_eq!(
                base.0, run.0,
                "{sockets}-socket faulted report diverged at sim_threads={threads}"
            );
            assert_eq!(
                base.1, run.1,
                "{sockets}-socket faulted trace diverged at sim_threads={threads}"
            );
        }
    }
}

/// Regression for the watchdog fix: cross-partition message deliveries
/// count as forward progress. A barrier-heavy run — fine-interleaved
/// cache lines plus interleaved CTA scheduling on 2 sockets, so roughly
/// half of all memory traffic crosses the switch — must complete under a
/// no-progress window far tighter than the default. Before the fix,
/// windows in which only cross-socket deliveries advanced the machine
/// looked like stalls and tripped the detector spuriously.
#[test]
fn cross_partition_deliveries_count_as_watchdog_progress() {
    let wl = by_name("HPC-HPGMG-UVM", &quick()).unwrap();
    let mut cfg = SystemConfig::numa_aware_sockets(2);
    cfg.placement = PagePlacement::FineInterleave;
    cfg.cta_policy = CtaSchedulingPolicy::Interleave;
    cfg.watchdog.stall_cycles = 2_000;
    cfg.sim_threads = 2;
    let r = run_workload(cfg, &wl).unwrap();
    assert!(
        r.total_cycles > 0,
        "barrier-heavy run must complete under a tight stall window"
    );
}

/// The acceptance scenario: a 4-socket run loses half the lanes on one
/// link mid-kernel, completes anyway, and the balancer's re-allocation is
/// visible in the resilience metrics and the trace.
#[test]
fn mid_kernel_lane_degradation_degrades_gracefully() {
    let wl = by_name("HPC-HPGMG-UVM", &quick()).unwrap();
    let mut cfg = SystemConfig::numa_aware_sockets(4);
    cfg.link.mode = LinkMode::DynamicAsymmetric;
    cfg.obs.trace = true;
    let plan = FaultPlan::parse("lanes:s1@300=8").unwrap();

    let clean = run_workload(cfg.clone(), &wl).unwrap();
    let mut sys = NumaGpuSystem::new(cfg).unwrap();
    sys.set_fault_plan(plan).unwrap();
    let faulted = sys.run(&wl).unwrap();

    assert!(faulted.total_cycles > 0, "run must complete under fault");
    let res = faulted.resilience.as_ref().expect("resilience recorded");
    assert_eq!(res.applied.len(), 1);
    assert_eq!(res.applied[0].cycle, 300);
    assert!(res.applied[0].description.contains("lanes"));
    // Socket 1 ran on fewer lane-cycles than nominal; the others did not
    // lose more than it did.
    let s1 = &res.links[1];
    assert!(
        s1.availability() < 1.0,
        "socket 1 availability {} should reflect the lane loss",
        s1.availability()
    );
    assert!(s1.availability() > 0.0);
    // The fault shows up as a trace instant for timeline tooling.
    assert!(
        faulted
            .trace_events
            .iter()
            .any(|e| e.name.starts_with("fault:")),
        "fault application must emit a trace instant"
    );
    // Losing half the lanes on a link cannot make the run faster.
    assert!(
        faulted.total_cycles >= clean.total_cycles,
        "faulted {} < clean {}",
        faulted.total_cycles,
        clean.total_cycles
    );
}

#[test]
fn sm_disable_requeues_and_completes() {
    let wl = by_name("Rodinia-Euler3D", &quick()).unwrap();
    let cfg = SystemConfig::numa_aware_sockets(4);
    // Knock out a quarter of socket 0's SMs early in the run.
    let plan = FaultPlan::parse("sm:0-15@200").unwrap();
    let r = run_workload_with_faults(cfg, &wl, &plan).unwrap();
    let res = r.resilience.as_ref().unwrap();
    assert_eq!(res.disabled_sms, 16);
    assert!(
        res.requeued_ctas > 0,
        "disabling busy SMs mid-kernel must evict and requeue CTAs"
    );
}

#[test]
fn cycle_budget_trips_the_watchdog() {
    let wl = by_name("Rodinia-Euler3D", &quick()).unwrap();
    let mut cfg = SystemConfig::numa_aware_sockets(4);
    cfg.watchdog.max_cycles = 50;
    let mut sys = NumaGpuSystem::new(cfg).unwrap();
    match sys.run(&wl) {
        Err(SimError::CycleLimit {
            limit_cycles,
            at_cycle,
        }) => {
            assert_eq!(limit_cycles, 50);
            assert!(at_cycle >= 50);
        }
        other => panic!("expected CycleLimit, got {other:?}"),
    }
}

#[test]
fn starved_machine_trips_the_stall_detector_as_deadlock() {
    let wl = by_name("Rodinia-Euler3D", &quick()).unwrap();
    let mut cfg = SystemConfig::numa_aware_sockets(4);
    // Tighten the no-progress window so the test stays fast; the default
    // (1M cycles) only matters for real runs.
    cfg.watchdog.stall_cycles = 5_000;
    // Disable every SM in the machine: outstanding CTAs can never retire.
    let total = cfg.num_sockets as u32 * cfg.sm.sms_per_socket as u32;
    let plan = FaultPlan::parse(&format!("sm:0-{}@100", total - 1)).unwrap();
    let mut sys = NumaGpuSystem::new(cfg).unwrap();
    sys.set_fault_plan(plan).unwrap();
    match sys.run(&wl) {
        Err(SimError::Deadlock {
            outstanding_ctas, ..
        }) => {
            assert!(outstanding_ctas > 0, "CTAs must still be pending");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn faults_scheduled_past_kernel_end_are_not_reported_as_applied() {
    let wl = by_name("Other-Bitcoin-Crypto", &quick()).unwrap();
    let cfg = SystemConfig::numa_aware_sockets(4);
    let probe = run_workload(cfg.clone(), &wl).unwrap();
    let late = probe.total_cycles * 10 + 1_000_000;
    let plan = FaultPlan::parse(&format!("lanes:s1@{late}=8")).unwrap();
    let r = run_workload_with_faults(cfg, &wl, &plan).unwrap();
    let res = r.resilience.as_ref().unwrap();
    assert!(
        res.applied.is_empty(),
        "the applied timeline records what actually happened, not the plan"
    );
    assert_eq!(r.total_cycles, probe.total_cycles);
}
