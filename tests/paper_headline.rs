//! Paper-headline smoke test.
//!
//! The paper's headline result (§7, Fig. 10/11): a NUMA-aware multi-socket
//! GPU achieves average speedups of roughly 1.5×, 2.3×, and 3.2× over a
//! single GPU at 2, 4, and 8 sockets. This test drives the full simulator
//! over a small basket of representative access patterns (streaming,
//! stencil exchange, and two shared-structure intensities) and checks the
//! geometric-mean speedup curve:
//!
//! - strictly monotone in socket count,
//! - every point above 1× (multi-socket must actually help), and
//! - within a documented ±35% tolerance of the paper's numbers. The
//!   tolerance is deliberately loose: the simulator reproduces the trend
//!   on synthetic traces, not the paper's exact silicon/workload mix.

use numa_gpu::core::run_workload;
use numa_gpu::runtime::{Kernel, Suite, Workload, WorkloadMeta};
use numa_gpu::types::SystemConfig;
use numa_gpu::workloads::{KernelSpec, Pattern, PatternKernel};
use std::sync::Arc;

/// Paper headline speedups over a single GPU, by socket count.
const PAPER_HEADLINE: [(u8, f64); 3] = [(2, 1.5), (4, 2.3), (8, 3.2)];
/// Relative tolerance around each paper value.
const TOLERANCE: f64 = 0.35;

fn workload(name: &str, pattern: Pattern) -> Workload {
    // Large enough to feed eight sockets: 1024 CTAs over 128 MiB.
    let spec = KernelSpec {
        name: name.into(),
        ctas: 1024,
        warps_per_cta: 4,
        ops_per_warp: 16,
        compute_per_mem: 4,
        read_fraction: 0.67,
        pattern,
        region_offset: 0,
        region_bytes: 128 << 20,
        seed: 3,
    };
    Workload {
        meta: WorkloadMeta {
            name: name.into(),
            suite: Suite::Other,
            paper_avg_ctas: 1024,
            paper_footprint_mb: 128,
            study_set: false,
        },
        kernels: vec![Arc::new(PatternKernel::new(spec)) as Arc<dyn Kernel>],
        footprint_bytes: 128 << 20,
    }
}

/// The basket mixes linear-scaling patterns (streaming, stencil) with
/// interconnect-bound ones (shared structures), like the paper's suite.
fn basket() -> Vec<Workload> {
    let shared = |fraction| Pattern::SharedRead {
        shared_fraction: fraction,
        shared_bytes: 8 << 20,
        shared_read_fraction: 1.0,
    };
    vec![
        workload("headline-stream", Pattern::Streaming),
        workload("headline-stencil", Pattern::Stencil { halo_fraction: 0.4 }),
        workload("headline-shared10", shared(0.10)),
        workload("headline-shared15", shared(0.15)),
    ]
}

#[test]
fn numa_aware_speedup_tracks_paper_headline() {
    let basket = basket();
    let singles: Vec<_> = basket
        .iter()
        .map(|w| run_workload(SystemConfig::pascal_single(), w).unwrap())
        .collect();

    let mut previous = 0.0f64;
    for (sockets, paper) in PAPER_HEADLINE {
        let mut logsum = 0.0f64;
        for (w, single) in basket.iter().zip(&singles) {
            let multi = run_workload(SystemConfig::numa_aware_sockets(sockets), w).unwrap();
            let speedup = multi.speedup_over(single);
            assert!(
                speedup > 0.0,
                "{} at {sockets} sockets produced no speedup value",
                w.meta.name
            );
            logsum += speedup.ln();
        }
        let geomean = (logsum / basket.len() as f64).exp();

        assert!(
            geomean > 1.0,
            "{sockets} sockets: geomean {geomean:.3} not faster than one socket"
        );
        assert!(
            geomean > previous,
            "{sockets} sockets: geomean {geomean:.3} not monotone (previous {previous:.3})"
        );
        let (lo, hi) = (paper * (1.0 - TOLERANCE), paper * (1.0 + TOLERANCE));
        assert!(
            (lo..=hi).contains(&geomean),
            "{sockets} sockets: geomean {geomean:.3} outside [{lo:.2}, {hi:.2}] \
             (paper: {paper}x +/- {TOLERANCE})",
        );
        previous = geomean;
    }
}
