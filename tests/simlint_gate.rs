//! Workspace-level simlint gate: a plain `cargo test` from the root
//! package fails on any unsuppressed determinism/model-invariant finding,
//! mirroring the gate in `crates/lint/tests/workspace_gate.rs` so the
//! check runs whether tests are invoked per-package or `--workspace`.

use numa_gpu_lint::lint_workspace;
use std::path::Path;

#[test]
fn workspace_is_simlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "simlint found {} violation(s) — run `cargo run -p numa-gpu-lint` for \
         the list, then fix them or add a site-local \
         `simlint: allow(RULE, reason = ...)`:\n{}",
        report.findings.len(),
        report.render_text()
    );
}
