//! The CLI front end is byte-deterministic: two consecutive runs with the
//! same flags must produce identical stdout, down to the last byte of the
//! stats block. This is the end-to-end witness that no wall-clock time,
//! hash-map ordering, or ambient randomness leaks into reported results.

use std::process::Command;

fn simulate(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_simulate"))
        .args(args)
        .output()
        .expect("simulate binary runs");
    assert!(
        out.status.success(),
        "simulate {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty(), "no output produced");
    out.stdout
}

#[test]
fn consecutive_runs_are_byte_identical() {
    let args = [
        "--workload",
        "Other-Stream-Triad",
        "--quick",
        "--sockets",
        "2",
    ];
    assert_eq!(
        simulate(&args),
        simulate(&args),
        "stdout differs between identical runs"
    );
}

#[test]
fn timeline_output_is_byte_identical() {
    let args = [
        "--workload",
        "HPC-HPGMG-UVM",
        "--quick",
        "--sockets",
        "2",
        "--link",
        "dynamic",
        "--timeline",
    ];
    assert_eq!(
        simulate(&args),
        simulate(&args),
        "timeline output differs between identical runs"
    );
}
