//! The CLI front end is byte-deterministic: two consecutive runs with the
//! same flags must produce identical stdout, down to the last byte of the
//! stats block. This is the end-to-end witness that no wall-clock time,
//! hash-map ordering, or ambient randomness leaks into reported results.

use std::process::Command;

fn simulate(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_simulate"))
        .args(args)
        .output()
        .expect("simulate binary runs");
    assert!(
        out.status.success(),
        "simulate {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty(), "no output produced");
    out.stdout
}

#[test]
fn consecutive_runs_are_byte_identical() {
    let args = [
        "--workload",
        "Other-Stream-Triad",
        "--quick",
        "--sockets",
        "2",
    ];
    assert_eq!(
        simulate(&args),
        simulate(&args),
        "stdout differs between identical runs"
    );
}

/// The intra-run parallelism acceptance gate: `--sim-threads N` advances
/// the per-socket event-queue partitions concurrently, and the window
/// barrier merges cross-partition traffic in canonical order — so stdout
/// (summary lines, per-socket stats, and the metrics snapshot JSON) must
/// be byte-identical to the serial windowed run at every thread count.
fn assert_sim_threads_identical(sockets: &str, threads: &[&str]) {
    let base = simulate(&[
        "--workload",
        "Rodinia-Euler3D",
        "--quick",
        "--sockets",
        sockets,
        "--metrics",
        "--sim-threads",
        "1",
    ]);
    for t in threads {
        let run = simulate(&[
            "--workload",
            "Rodinia-Euler3D",
            "--quick",
            "--sockets",
            sockets,
            "--metrics",
            "--sim-threads",
            t,
        ]);
        assert_eq!(
            base, run,
            "--sockets {sockets}: --sim-threads {t} diverged from --sim-threads 1"
        );
    }
}

#[test]
fn sim_threads_output_is_byte_identical_2_sockets() {
    assert_sim_threads_identical("2", &["2", "0"]);
}

#[test]
fn sim_threads_output_is_byte_identical_4_sockets() {
    assert_sim_threads_identical("4", &["2", "4", "0"]);
}

#[test]
fn sim_threads_output_is_byte_identical_8_sockets() {
    assert_sim_threads_identical("8", &["3", "8", "0"]);
}

#[test]
fn sim_threads_output_is_byte_identical_under_faults() {
    let args = |t: &str| {
        vec![
            "--workload".to_string(),
            "Rodinia-Euler3D".to_string(),
            "--quick".to_string(),
            "--sockets".to_string(),
            "8".to_string(),
            "--fault-seed".to_string(),
            "42".to_string(),
            "--metrics".to_string(),
            "--sim-threads".to_string(),
            t.to_string(),
        ]
    };
    let base = simulate(&args("1").iter().map(String::as_str).collect::<Vec<_>>());
    for t in ["4", "8"] {
        let run = simulate(&args(t).iter().map(String::as_str).collect::<Vec<_>>());
        assert_eq!(
            base, run,
            "faulted 8-socket run diverged at --sim-threads {t}"
        );
    }
}

#[test]
fn sim_threads_chrome_trace_is_byte_identical() {
    let trace_path =
        |t: &str| std::env::temp_dir().join(format!("numa_gpu_cli_det_trace_{t}.json"));
    let run = |t: &str| {
        let path = trace_path(t);
        simulate(&[
            "--workload",
            "HPC-HPGMG-UVM",
            "--quick",
            "--sockets",
            "4",
            "--sim-threads",
            t,
            "--trace-out",
            path.to_str().unwrap(),
        ]);
        let doc = std::fs::read(&path).expect("trace file written");
        let _ = std::fs::remove_file(&path);
        doc
    };
    let base = run("1");
    assert!(!base.is_empty());
    assert_eq!(
        base,
        run("4"),
        "Chrome trace differs between --sim-threads 1 and 4"
    );
}

#[test]
fn timeline_output_is_byte_identical() {
    let args = [
        "--workload",
        "HPC-HPGMG-UVM",
        "--quick",
        "--sockets",
        "2",
        "--link",
        "dynamic",
        "--timeline",
    ];
    assert_eq!(
        simulate(&args),
        simulate(&args),
        "timeline output differs between identical runs"
    );
}
