//! Phase behaviour under the paper's Figure 5 lens: run the multigrid
//! proxy (HPC-HPGMG-UVM) with link-timeline recording and print, per
//! sampling window, each GPU's egress/ingress utilization and lane split —
//! showing the produce (ingress-heavy at the reduction home) and reduce
//! (egress-heavy at the remote sockets) phases, and the dynamic balancer
//! reacting to them.
//!
//! ```text
//! cargo run --release --example hpc_stencil_phases
//! ```

use numa_gpu::core::NumaGpuSystem;
use numa_gpu::types::{LinkMode, SystemConfig};
use numa_gpu::workloads::{by_name, Scale};

fn main() {
    let wl = by_name("HPC-HPGMG-UVM", &Scale::quick()).expect("catalog workload");

    let mut cfg = SystemConfig::numa_sockets(4);
    cfg.link.mode = LinkMode::DynamicAsymmetric;
    let mut sys = NumaGpuSystem::new(cfg).expect("valid config");
    sys.enable_link_timeline();
    let report = sys.run(&wl).expect("simulation completes");

    println!(
        "HPC-HPGMG-UVM on a 4-socket NUMA GPU with dynamic lanes: {} cycles, {} lane turns",
        report.total_cycles,
        report.lane_turns()
    );
    println!(
        "kernel launches at cycles: {:?}\n",
        report.kernel_start_cycles
    );

    // Interleave the four per-GPU timelines by sample index.
    let samples = report
        .link_timelines
        .iter()
        .map(Vec::len)
        .min()
        .unwrap_or(0);
    println!(
        "{:>9} | {:^15} | {:^15} | {:^15} | {:^15}",
        "cycle", "GPU0 eg/in", "GPU1 eg/in", "GPU2 eg/in", "GPU3 eg/in"
    );
    for i in 0..samples {
        let cycle = report.link_timelines[0][i].cycle;
        let mut line = format!("{cycle:>9} |");
        for g in 0..4 {
            let s = &report.link_timelines[g][i];
            line.push_str(&format!(
                " {:>3.0}%/{:<3.0}% {:>2}+{:<2} |",
                100.0 * s.egress_util,
                100.0 * s.ingress_util,
                s.egress_lanes,
                s.ingress_lanes
            ));
        }
        println!("{line}");
    }
    println!("\nColumns are egress%/ingress% and the lane split (egress+ingress).");
    println!("Watch the reduce phases: the reduction home's ingress saturates and");
    println!("its lane split tilts toward ingress while the writers tilt toward egress.");
}
