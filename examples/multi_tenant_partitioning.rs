//! Multi-tenancy on a large NUMA GPU (paper §6): when two workloads cannot
//! fill an 8-socket machine individually, is it better to time-multiplex
//! the whole machine or to partition it along NUMA boundaries into two
//! 4-socket logical GPUs?
//!
//! ```text
//! cargo run --release --example multi_tenant_partitioning
//! ```

use numa_gpu::core::tenancy::{run_space_partitioned, run_time_multiplexed, TenantSpec};
use numa_gpu::types::SystemConfig;
use numa_gpu::workloads::{by_name, Scale};

fn main() {
    // Two small-grid tenants that underfill a big machine.
    let tenants = vec![
        TenantSpec {
            workload: by_name("Lonestar-SP", &Scale::quick()).expect("catalog workload"),
            sockets: 4,
        },
        TenantSpec {
            workload: by_name("HPC-MiniContact-Mesh1", &Scale::quick()).expect("catalog workload"),
            sockets: 4,
        },
    ];
    let machine = SystemConfig::numa_aware_sockets(8);

    let time = run_time_multiplexed(&machine, &tenants).expect("valid machine");
    let space = run_space_partitioned(&machine, &tenants).expect("valid partition");

    println!("8-socket NUMA-aware GPU, two tenants:\n");
    for (spec, (t, s)) in tenants
        .iter()
        .zip(time.per_tenant.iter().zip(&space.per_tenant))
    {
        println!(
            "  {:24} whole-machine: {:>9} cycles | 4-socket partition: {:>9} cycles",
            spec.workload.meta.name, t.total_cycles, s.total_cycles
        );
    }
    println!(
        "\n  time-multiplexed makespan : {:>9} cycles ({:.3} workloads/Mcycle)",
        time.makespan_cycles,
        time.throughput_per_mcycle()
    );
    println!(
        "  space-partitioned makespan: {:>9} cycles ({:.3} workloads/Mcycle)",
        space.makespan_cycles,
        space.throughput_per_mcycle()
    );
    let gain = time.makespan_cycles as f64 / space.makespan_cycles.max(1) as f64;
    println!("\n  NUMA-boundary partitioning is {gain:.2}x better for these tenants —");
    println!("  each tenant keeps whole resource islands (SMs, L2, DRAM, link), so");
    println!("  isolation costs nothing and idle sockets disappear.");
}
