//! Drive one GPU↔switch link directly with synthetic traffic to watch the
//! §4 load balancer turn lanes — no full system needed. Useful for
//! understanding the mechanism in isolation.
//!
//! ```text
//! cargo run --release --example link_balancer_demo
//! ```

use numa_gpu::interconnect::{GpuLink, LinkDirection};
use numa_gpu::types::{cycles_to_ticks, LinkConfig, LinkMode, SATURATION_THRESHOLD};

fn main() {
    let cfg = LinkConfig {
        lanes_per_direction: 8,
        lane_bytes_per_cycle: 8,
        latency_cycles: 128,
        switch_time_cycles: 100,
        sample_time_cycles: 5_000,
        mode: LinkMode::DynamicAsymmetric,
    };
    let mut link = GpuLink::new(&cfg);

    println!("phase 1: egress-only traffic (a remote-write burst, e.g. a reduction)");
    run_phase(&mut link, 0, 20, 1.5, 0.0);
    println!("\nphase 2: balanced traffic (both directions near saturation)");
    run_phase(&mut link, 20, 40, 1.2, 1.2);
    println!("\nphase 3: ingress-only traffic (remote-read responses streaming in)");
    run_phase(&mut link, 40, 60, 0.0, 1.5);

    let s = link.stats();
    println!(
        "\ntotals: {} lane turns, {} equalizations, {} B egress, {} B ingress",
        s.lane_turns.get(),
        s.equalizations.get(),
        s.egress_bytes.get(),
        s.ingress_bytes.get()
    );
}

/// Injects `demand × capacity` traffic per direction for sampling windows
/// `[from, to)` and prints the balancer's reaction each window.
fn run_phase(link: &mut GpuLink, from: u64, to: u64, egress_demand: f64, ingress_demand: f64) {
    let window = 5_000u64; // cycles per sample
    for w in from..to {
        let start = cycles_to_ticks(w * window);
        // Offered load in 128-byte packets against the symmetric capacity.
        let packets = |demand: f64| (demand * 64.0 * window as f64 / 128.0) as u64;
        for i in 0..packets(egress_demand) {
            let t = start + cycles_to_ticks(i * window / packets(egress_demand).max(1));
            link.send(t, LinkDirection::Egress, 128);
        }
        for i in 0..packets(ingress_demand) {
            let t = start + cycles_to_ticks(i * window / packets(ingress_demand).max(1));
            link.send(t, LinkDirection::Ingress, 128);
        }
        let end = cycles_to_ticks((w + 1) * window);
        let action = link.sample_and_rebalance(end, SATURATION_THRESHOLD);
        if w % 4 == 0 || format!("{action:?}") != "Hold" {
            println!(
                "  window {w:>3}: egress {:>2} lanes, ingress {:>2} lanes  -> {action:?}",
                link.lanes(LinkDirection::Egress),
                link.lanes(LinkDirection::Ingress),
            );
        }
    }
}
