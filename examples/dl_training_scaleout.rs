//! Scale-out study for the ML workloads: how far do cuDNN-style layers
//! scale across 2–8 programmer-transparent GPU sockets, with and without
//! NUMA-awareness? (The scenario motivating the paper's introduction:
//! single-GPU deep-learning programs outgrowing one die.)
//!
//! ```text
//! cargo run --release --example dl_training_scaleout
//! ```

use numa_gpu::core::run_workload;
use numa_gpu::runtime::Suite;
use numa_gpu::types::SystemConfig;
use numa_gpu::workloads::{catalog, Scale};

fn main() {
    // Mid scale: big enough for ML layers to exhibit real scaling
    // behaviour, small enough for an example (about a minute).
    let scale = Scale {
        cta_divisor: 16,
        min_ctas: 128,
        max_ctas: 1024,
        footprint_divisor: 48,
        ops_percent: 50,
    };
    let ml: Vec<_> = catalog(&scale)
        .into_iter()
        .filter(|w| w.meta.suite == Suite::Ml)
        .collect();

    println!(
        "{:28} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "workload (speedup vs 1 GPU)",
        "sw-2s",
        "sw-4s",
        "sw-8s",
        "aware-2s",
        "aware-4s",
        "aware-8s"
    );
    let mut sums = [0.0f64; 6];
    for wl in &ml {
        let single = run_workload(SystemConfig::pascal_single(), wl).expect("valid config");
        let mut row = Vec::new();
        for n in [2u8, 4, 8] {
            let sw = run_workload(SystemConfig::numa_sockets(n), wl).expect("valid config");
            row.push(sw.speedup_over(&single));
        }
        for n in [2u8, 4, 8] {
            let aware =
                run_workload(SystemConfig::numa_aware_sockets(n), wl).expect("valid config");
            row.push(aware.speedup_over(&single));
        }
        for (s, v) in sums.iter_mut().zip(&row) {
            *s += v;
        }
        println!(
            "{:28} {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}",
            wl.meta.name, row[0], row[1], row[2], row[3], row[4], row[5]
        );
    }
    let n = ml.len() as f64;
    println!(
        "{:28} {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}",
        "mean",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n,
        sums[5] / n
    );
    println!("\nNUMA-awareness pays most where the SW-only columns stall:");
    println!("layers with cross-socket weight reuse or channel reductions.");
}
