//! Quickstart: simulate one workload on a single GPU, a 4-socket NUMA GPU
//! with and without the paper's NUMA-aware mechanisms, and the hypothetical
//! 4×-larger GPU.
//!
//! ```text
//! cargo run --release --example quickstart [workload-name]
//! ```

use numa_gpu::core::run_workload;
use numa_gpu::types::SystemConfig;
use numa_gpu::workloads::{by_name, Scale, WORKLOAD_NAMES};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Rodinia-Euler3D".to_string());
    let Some(workload) = by_name(&name, &Scale::quick()) else {
        eprintln!("unknown workload `{name}`; choose one of:");
        for n in WORKLOAD_NAMES {
            eprintln!("  {n}");
        }
        std::process::exit(2);
    };

    println!(
        "workload: {} ({} kernels, {} MiB footprint, Table 2: {} CTAs / {} MB)",
        workload.meta.name,
        workload.kernels.len(),
        workload.footprint_bytes >> 20,
        workload.meta.paper_avg_ctas,
        workload.meta.paper_footprint_mb,
    );

    let single = run_workload(SystemConfig::pascal_single(), &workload).expect("valid config");
    println!(
        "single GPU                : {:>10} cycles (baseline)",
        single.total_cycles
    );

    let baseline4 = run_workload(SystemConfig::numa_sockets(4), &workload).expect("valid config");
    println!(
        "4-socket, SW locality only: {:>10} cycles ({:.2}x, {:.0}% reads remote)",
        baseline4.total_cycles,
        baseline4.speedup_over(&single),
        100.0 * baseline4.remote_read_fraction
    );

    let aware4 =
        run_workload(SystemConfig::numa_aware_sockets(4), &workload).expect("valid config");
    println!(
        "4-socket, NUMA-aware      : {:>10} cycles ({:.2}x, {} lane turns, {:.1} W links)",
        aware4.total_cycles,
        aware4.speedup_over(&single),
        aware4.lane_turns(),
        aware4.link_power_w
    );

    let hypo = run_workload(SystemConfig::hypothetical_scaled(4), &workload).expect("valid config");
    println!(
        "hypothetical 4x single GPU: {:>10} cycles ({:.2}x, theoretical ceiling)",
        hypo.total_cycles,
        hypo.speedup_over(&single)
    );

    let eff = 100.0 * aware4.speedup_over(&single) / hypo.speedup_over(&single).max(1e-9);
    println!("NUMA-aware efficiency vs theoretical scaling: {eff:.0}%");
}
