//! The sim-as-a-service daemon.
//!
//! One process owns a Unix domain socket, a [`Dispatcher`] worker pool,
//! the content-addressed [`DiskStore`], and the restart [`Journal`].
//! Each accepted connection gets its own thread speaking the line
//! protocol ([`crate::protocol`]); submitted jobs are scheduled on the
//! pool and deliver progress/result events back to the submitting
//! connection through a per-job channel.
//!
//! ## Supervision matrix
//!
//! | Failure                         | Detected by              | Policy |
//! |---------------------------------|--------------------------|--------|
//! | Invalid request                 | protocol parse           | `ERROR … parse`, connection lives on |
//! | Deterministic [`SimError`](numa_gpu_types::SimError) | `retry_class()`          | fail fast: `ERROR … deterministic` |
//! | Worker panic                    | `catch_unwind` (2 layers)| bounded retries, deterministic backoff |
//! | Hung/slow job                   | wall-clock [`Deadline`]  | `ERROR … deadline`; job finishes in background and still warms the store |
//! | Sim-level hang                  | cycle watchdog (in-sim)  | surfaces as a deterministic `SimError` |
//! | Corrupt store entry             | checksum on read         | quarantined + recomputed (store layer) |
//! | `kill -9` of the daemon         | journal replay on restart| pending jobs recomputed into the store |
//! | Client disconnect mid-job       | send on closed channel   | job completes and caches anyway |

use crate::journal::Journal;
use crate::protocol::{JobSpec, Request};
use numa_gpu_bench::codec::encode_report;
use numa_gpu_bench::{DiskStore, StoreKey};
use numa_gpu_core::SimReport;
use numa_gpu_exec::{Deadline, Dispatcher, Reporter};
use numa_gpu_testkit::json::Json;
use numa_gpu_types::RetryClass;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Bounded-retry policy for transient failures. The schedule is fixed at
/// construction, so a given failure sequence always waits the same
/// deterministic delays — no randomized jitter to make test runs flaky.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Delay before each retry; `backoff_ms.len() + 1` total attempts.
    pub backoff_ms: Vec<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            backoff_ms: vec![25, 100, 400],
        }
    }
}

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix domain socket path to listen on.
    pub socket: PathBuf,
    /// Root of the content-addressed store (and the journal).
    pub cache_dir: PathBuf,
    /// Worker threads simulating concurrently.
    pub workers: usize,
    /// Log accepted connections and job lifecycle to stderr.
    pub verbose: bool,
    /// Wall-clock budget for jobs that do not specify `deadline=`.
    pub default_deadline: Duration,
    /// Transient-failure retry schedule.
    pub retry: RetryPolicy,
}

impl DaemonConfig {
    /// A config with the given socket and cache dir and sensible
    /// defaults: 2 workers, quiet, 10-minute default deadline.
    pub fn new(socket: impl Into<PathBuf>, cache_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket: socket.into(),
            cache_dir: cache_dir.into(),
            workers: 2,
            verbose: false,
            default_deadline: Duration::from_secs(600),
            retry: RetryPolicy::default(),
        }
    }
}

/// What a worker reports back to the submitting connection.
enum JobMsg {
    Event(String),
    Done(String),
    Failed { class: &'static str, msg: String },
}

struct Shared {
    store: Mutex<DiskStore>,
    journal: Mutex<Journal>,
    dispatcher: Dispatcher,
    reporter: Arc<Reporter>,
    retry: RetryPolicy,
    default_deadline: Duration,
    socket: PathBuf,
    next_id: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    retries: AtomicU64,
    shutting_down: AtomicBool,
}

/// A bound, replayed, ready-to-serve daemon. [`Daemon::bind`] prepares
/// everything (so a caller knows the socket is live before spawning
/// clients); [`Daemon::serve`] blocks until a `SHUTDOWN` request drains
/// the pool.
pub struct Daemon {
    listener: UnixListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("socket", &self.shared.socket)
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Binds the socket, opens the store, replays the journal (pending
    /// jobs from a previous crashed process are resubmitted to the pool),
    /// and returns a daemon ready to [`serve`](Daemon::serve).
    ///
    /// A stale socket file from a crashed daemon is removed and rebound;
    /// a socket another *live* daemon answers on is an error.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors binding the socket or opening the store.
    pub fn bind(config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = match UnixListener::bind(&config.socket) {
            Ok(l) => l,
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                if UnixStream::connect(&config.socket).is_ok() {
                    return Err(std::io::Error::other(format!(
                        "another daemon is live on {}",
                        config.socket.display()
                    )));
                }
                std::fs::remove_file(&config.socket)?;
                UnixListener::bind(&config.socket)?
            }
            Err(e) => return Err(e),
        };
        let store = DiskStore::open(&config.cache_dir)?;
        let (journal, pending) = Journal::open(&config.cache_dir.join("journal"))?;
        let shared = Arc::new(Shared {
            store: Mutex::new(store),
            journal: Mutex::new(journal),
            dispatcher: Dispatcher::new(config.workers),
            reporter: Arc::new(Reporter::stderr(config.verbose)),
            retry: config.retry,
            default_deadline: config.default_deadline,
            socket: config.socket,
            next_id: AtomicU64::new(1),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        });
        shared
            .reporter
            .line(&format!("serve: listening on {}", shared.socket.display()));
        for spec in pending {
            shared.reporter.line(&format!(
                "serve: replaying journaled job: {}",
                spec.to_line()
            ));
            // Results deliver to a dropped receiver: replay has no client,
            // it exists to warm the store and clear the journal.
            let (tx, _rx) = mpsc::channel();
            submit_to_pool(&shared, spec, tx);
        }
        Ok(Daemon { listener, shared })
    }

    /// The number of journaled jobs still pending (after replay started;
    /// reaches zero once the replayed jobs complete).
    pub fn in_flight(&self) -> u64 {
        self.shared.dispatcher.in_flight()
    }

    /// Serves connections until a `SHUTDOWN` request, then drains the
    /// worker pool (every accepted job completes and is journaled done)
    /// and removes the socket file.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors.
    pub fn serve(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    self.shared
                        .reporter
                        .line(&format!("serve: accept error: {e}"));
                    continue;
                }
            };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(&shared, stream));
        }
        self.shared.reporter.line("serve: draining in-flight jobs");
        self.shared.dispatcher.drain();
        let _ = std::fs::remove_file(&self.shared.socket);
        self.shared.reporter.line("serve: stopped");
        Ok(())
    }
}

/// One thread per connection: read request lines, write response lines.
fn handle_connection(shared: &Arc<Shared>, stream: UnixStream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let keep_going = handle_request(shared, &line, &mut writer);
        if !keep_going {
            break;
        }
    }
}

/// Handles one request line; returns `false` when the connection should
/// close (shutdown).
fn handle_request(shared: &Arc<Shared>, line: &str, writer: &mut UnixStream) -> bool {
    match Request::parse(line) {
        Err(msg) => {
            let _ = writeln!(writer, "ERROR 0 parse {msg}");
            true
        }
        Ok(Request::Ping) => {
            let _ = writeln!(writer, "PONG");
            true
        }
        Ok(Request::Stats) => {
            let stats = {
                let store = shared.store.lock().unwrap();
                store.stats()
            };
            let doc = Json::obj([
                ("done", Json::UInt(shared.jobs_done.load(Ordering::Relaxed))),
                (
                    "failed",
                    Json::UInt(shared.jobs_failed.load(Ordering::Relaxed)),
                ),
                (
                    "retries",
                    Json::UInt(shared.retries.load(Ordering::Relaxed)),
                ),
                ("panics", Json::UInt(shared.dispatcher.panic_count())),
                ("in_flight", Json::UInt(shared.dispatcher.in_flight())),
                ("store", stats.to_json()),
            ]);
            let _ = writeln!(writer, "STATS {doc}");
            true
        }
        Ok(Request::Shutdown) => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            let _ = writeln!(writer, "OK draining");
            // Unblock the accept loop so it observes the flag.
            let _ = UnixStream::connect(&shared.socket);
            false
        }
        Ok(Request::Submit(spec)) => {
            handle_submit(shared, spec, writer);
            true
        }
    }
}

fn handle_submit(shared: &Arc<Shared>, spec: JobSpec, writer: &mut UnixStream) {
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let job = match spec.to_job() {
        Ok(job) => job,
        Err(msg) => {
            let _ = writeln!(writer, "ERROR {id} parse {msg}");
            return;
        }
    };
    let skey = StoreKey::new(&job.key, &job.cfg, &spec.scale());
    let _ = writeln!(writer, "ACK {id} {}", skey.hash);

    // Warm path: serve straight from the store (a corrupt entry
    // quarantines inside `load` and falls through to the cold path).
    let warm = {
        let mut store = shared.store.lock().unwrap();
        store.load(&skey)
    };
    if let Some(report) = warm {
        let _ = writeln!(writer, "EVENT {id} warm");
        match encode_report(&report) {
            Ok(doc) => {
                let _ = writeln!(writer, "RESULT {id} {doc}");
            }
            Err(e) => {
                let _ = writeln!(writer, "ERROR {id} transient cached entry unencodable: {e}");
            }
        }
        return;
    }

    if let Err(e) = shared.journal.lock().unwrap().record_queued(&spec) {
        shared
            .reporter
            .line(&format!("serve: journal write failed: {e}"));
    }
    let deadline = Deadline::after(
        spec.deadline_secs
            .map_or(shared.default_deadline, Duration::from_secs),
    );
    let (tx, rx) = mpsc::channel();
    let _ = writeln!(writer, "EVENT {id} queued");
    if !submit_to_pool(shared, spec, tx) {
        let _ = writeln!(writer, "ERROR {id} transient daemon is shutting down");
        return;
    }

    // Stream worker messages until the job resolves or the wall-clock
    // deadline expires. On expiry the job keeps running in the background
    // — its result still lands in the store for the next submit.
    loop {
        match rx.recv_timeout(deadline.remaining()) {
            Ok(JobMsg::Event(word)) => {
                let _ = writeln!(writer, "EVENT {id} {word}");
            }
            Ok(JobMsg::Done(doc)) => {
                let _ = writeln!(writer, "RESULT {id} {doc}");
                return;
            }
            Ok(JobMsg::Failed { class, msg }) => {
                let _ = writeln!(writer, "ERROR {id} {class} {msg}");
                return;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let _ = writeln!(
                    writer,
                    "ERROR {id} deadline wall-clock budget exhausted; the job continues \
                     in the background and will be served warm once complete"
                );
                return;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Queues a job on the pool. The worker closure owns the full supervised
/// lifecycle: retry loop, store write-through, journal `done`.
fn submit_to_pool(shared: &Arc<Shared>, spec: JobSpec, tx: mpsc::Sender<JobMsg>) -> bool {
    let worker_shared = Arc::clone(shared);
    let events = tx.clone();
    shared.dispatcher.submit(
        move || run_supervised(&worker_shared, &spec, &events),
        move |outcome| {
            let msg = match outcome {
                numa_gpu_exec::JobOutcome::Done(msg) => msg,
                // The in-closure catch_unwind already contains panics;
                // this is the dispatcher's backstop (e.g. a panic inside
                // our own retry bookkeeping).
                numa_gpu_exec::JobOutcome::Panicked(msg) => JobMsg::Failed {
                    class: "transient",
                    msg,
                },
            };
            let _ = tx.send(msg);
        },
    )
}

/// Runs one job under the retry policy. Returns the message to deliver.
fn run_supervised(shared: &Arc<Shared>, spec: &JobSpec, events: &mpsc::Sender<JobMsg>) -> JobMsg {
    let job = match spec.to_job() {
        // Can only happen on a journal replayed from a different build
        // (e.g. a workload was renamed); drop the entry rather than
        // replaying it forever.
        Err(msg) => {
            let _ = shared.journal.lock().unwrap().record_done(spec);
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            return JobMsg::Failed {
                class: "parse",
                msg,
            };
        }
        Ok(job) => job,
    };
    let skey = StoreKey::new(&job.key, &job.cfg, &spec.scale());
    // A replayed (or raced) job may already be in the store: done.
    {
        let mut store = shared.store.lock().unwrap();
        if let Some(report) = store.load(&skey) {
            drop(store);
            let _ = shared.journal.lock().unwrap().record_done(spec);
            return deliver_done(shared, spec, &report);
        }
    }
    shared
        .reporter
        .line(&format!("serve: sim {}", job.key.display()));
    let attempts = shared.retry.backoff_ms.len() + 1;
    for attempt in 0..attempts {
        if attempt > 0 {
            let delay = shared.retry.backoff_ms[attempt - 1];
            shared.retries.fetch_add(1, Ordering::Relaxed);
            let _ = events.send(JobMsg::Event(format!("retry:{attempt}")));
            std::thread::sleep(Duration::from_millis(delay));
        }
        match catch_unwind(AssertUnwindSafe(|| job.try_run())) {
            Ok(Ok(report)) => {
                let saved = {
                    let mut store = shared.store.lock().unwrap();
                    store.save(&skey, &report)
                };
                match saved {
                    Ok(()) => {
                        let _ = shared.journal.lock().unwrap().record_done(spec);
                        return deliver_done(shared, spec, &report);
                    }
                    // Store I/O is the canonical transient failure:
                    // retry the *write* by retrying the attempt (the
                    // recompute is wasted work but keeps the logic to a
                    // single loop; store writes almost never fail).
                    Err(e) if attempt + 1 < attempts => {
                        shared
                            .reporter
                            .line(&format!("serve: store write failed (will retry): {e}"));
                        continue;
                    }
                    Err(_) => {
                        // Out of retries for the store — the result is
                        // still correct, deliver it; the journal keeps
                        // the entry pending so a restart recomputes it
                        // into the store.
                        return deliver_done(shared, spec, &report);
                    }
                }
            }
            Ok(Err(sim_err)) => match sim_err.retry_class() {
                RetryClass::Deterministic => {
                    let _ = shared.journal.lock().unwrap().record_done(spec);
                    shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                    return JobMsg::Failed {
                        class: "deterministic",
                        msg: sim_err.to_string(),
                    };
                }
                RetryClass::Transient if attempt + 1 < attempts => continue,
                RetryClass::Transient => {
                    shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                    return JobMsg::Failed {
                        class: "transient",
                        msg: sim_err.to_string(),
                    };
                }
            },
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                if attempt + 1 < attempts {
                    shared
                        .reporter
                        .line(&format!("serve: contained panic (will retry): {msg}"));
                    continue;
                }
                shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                return JobMsg::Failed {
                    class: "transient",
                    msg,
                };
            }
        }
    }
    unreachable!("retry loop always returns")
}

fn deliver_done(shared: &Arc<Shared>, spec: &JobSpec, report: &SimReport) -> JobMsg {
    shared.jobs_done.fetch_add(1, Ordering::Relaxed);
    match encode_report(report) {
        Ok(doc) => JobMsg::Done(doc.to_string()),
        Err(e) => JobMsg::Failed {
            class: "transient",
            msg: format!("report for {} unencodable: {e}", spec.to_line()),
        },
    }
}
