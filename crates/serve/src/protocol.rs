//! The line protocol spoken over the daemon's Unix domain socket.
//!
//! Requests are single lines of `key=value` tokens; responses are single
//! lines prefixed with a tag. Everything is UTF-8, newline-delimited, and
//! order-insensitive on the request side, so a client can be `nc -U` or
//! the built-in [`Client`](crate::Client).
//!
//! ## Requests
//!
//! ```text
//! SUBMIT workload=<name> [config=<variant>] [sockets=<n>] [timeline=0|1]
//!        [scale=quick|full] [faults=<plan>] [deadline=<secs>]
//! PING
//! STATS
//! SHUTDOWN
//! ```
//!
//! ## Responses
//!
//! ```text
//! ACK <id> <store-hash>       submit accepted; <id> scopes later lines
//! EVENT <id> <word>           progress: queued | warm | retry:<n>
//! RESULT <id> <json>          the lossless report document (codec format)
//! ERROR <id> <class> <msg>    class: parse | deterministic | transient | deadline
//! PONG                        reply to PING
//! STATS <json>                store + supervision counters
//! OK <word>                   reply to SHUTDOWN
//! ```

use numa_gpu_bench::{configs, JobKey, SimJob};
use numa_gpu_faults::FaultPlan;
use numa_gpu_types::SystemConfig;
use numa_gpu_workloads::{by_name, Scale};

/// Which named configuration family a job runs under (the label grammar
/// mirrors `bench::configs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigChoice {
    /// Single-GPU baseline (`configs::single`); `sockets` is ignored.
    Single,
    /// Traditional NUMA system (`configs::traditional`).
    Traditional,
    /// Page-interleaved multi-socket (`configs::page_interleaved`).
    PageInterleaved,
    /// Locality-optimized multi-socket (`configs::locality`).
    Locality,
    /// Fully NUMA-aware design point (`configs::numa_aware`).
    NumaAware,
}

impl ConfigChoice {
    fn parse(s: &str) -> Result<ConfigChoice, String> {
        match s {
            "single" => Ok(ConfigChoice::Single),
            "traditional" => Ok(ConfigChoice::Traditional),
            "page" => Ok(ConfigChoice::PageInterleaved),
            "locality" => Ok(ConfigChoice::Locality),
            "numa" => Ok(ConfigChoice::NumaAware),
            other => Err(format!(
                "unknown config `{other}` (expected single|traditional|page|locality|numa)"
            )),
        }
    }

    fn token(self) -> &'static str {
        match self {
            ConfigChoice::Single => "single",
            ConfigChoice::Traditional => "traditional",
            ConfigChoice::PageInterleaved => "page",
            ConfigChoice::Locality => "locality",
            ConfigChoice::NumaAware => "numa",
        }
    }

    /// The sweep-style label this choice runs under (e.g. `loc4`).
    fn label(self, sockets: u8) -> String {
        match self {
            ConfigChoice::Single => "single".to_string(),
            ConfigChoice::Traditional => format!("trad{sockets}"),
            ConfigChoice::PageInterleaved => format!("page{sockets}"),
            ConfigChoice::Locality => format!("loc{sockets}"),
            ConfigChoice::NumaAware => format!("numa{sockets}"),
        }
    }

    fn config(self, sockets: u8) -> SystemConfig {
        match self {
            ConfigChoice::Single => configs::single(),
            ConfigChoice::Traditional => configs::traditional(sockets),
            ConfigChoice::PageInterleaved => configs::page_interleaved(sockets),
            ConfigChoice::Locality => configs::locality(sockets),
            ConfigChoice::NumaAware => configs::numa_aware(sockets),
        }
    }
}

/// A parsed `SUBMIT` request: everything needed to identify and run one
/// simulation. The canonical line form ([`JobSpec::to_line`]) is what the
/// restart journal stores, so parse → to_line → parse must round-trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload name (`numa_gpu_workloads::by_name`).
    pub workload: String,
    /// Configuration family.
    pub config: ConfigChoice,
    /// Socket count for multi-socket families.
    pub sockets: u8,
    /// Record per-sample link timelines.
    pub timeline: bool,
    /// Run at full paper scale instead of quick scale.
    pub full_scale: bool,
    /// Fault plan string (`FaultPlan::parse` grammar), if any.
    pub faults: Option<String>,
    /// Wall-clock supervision budget, seconds (daemon default if absent).
    pub deadline_secs: Option<u64>,
}

impl JobSpec {
    /// Parses the token list following `SUBMIT` (order-insensitive).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown keys, malformed
    /// values, or a missing `workload`.
    pub fn parse(tokens: &str) -> Result<JobSpec, String> {
        let mut spec = JobSpec {
            workload: String::new(),
            config: ConfigChoice::Locality,
            sockets: 4,
            timeline: false,
            full_scale: false,
            faults: None,
            deadline_secs: None,
        };
        for token in tokens.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed token `{token}` (expected key=value)"))?;
            match key {
                "workload" => spec.workload = value.to_string(),
                "config" => spec.config = ConfigChoice::parse(value)?,
                "sockets" => {
                    spec.sockets = value
                        .parse()
                        .map_err(|_| format!("bad sockets `{value}`"))?;
                }
                "timeline" => spec.timeline = parse_bool(key, value)?,
                "scale" => {
                    spec.full_scale = match value {
                        "quick" => false,
                        "full" => true,
                        other => return Err(format!("bad scale `{other}` (quick|full)")),
                    };
                }
                "faults" => spec.faults = Some(value.to_string()),
                "deadline" => {
                    spec.deadline_secs = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad deadline `{value}`"))?,
                    );
                }
                other => return Err(format!("unknown key `{other}`")),
            }
        }
        if spec.workload.is_empty() {
            return Err("missing required key `workload`".to_string());
        }
        if spec.workload.contains(char::is_whitespace) {
            return Err("workload names cannot contain whitespace".to_string());
        }
        if let Some(f) = &spec.faults {
            // Validate eagerly so a bad plan is a parse error at submit
            // time, not a failure deep inside a worker.
            FaultPlan::parse(f).map_err(|e| format!("bad faults `{f}`: {e}"))?;
        }
        Ok(spec)
    }

    /// Canonical single-line form (fixed key order); the journal stores
    /// exactly these bytes and [`JobSpec::parse`] round-trips them.
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "workload={} config={} sockets={} timeline={} scale={}",
            self.workload,
            self.config.token(),
            self.sockets,
            u8::from(self.timeline),
            if self.full_scale { "full" } else { "quick" },
        );
        if let Some(f) = &self.faults {
            line.push_str(&format!(" faults={f}"));
        }
        if let Some(d) = self.deadline_secs {
            line.push_str(&format!(" deadline={d}"));
        }
        line
    }

    /// The workload scale this spec runs at.
    pub fn scale(&self) -> Scale {
        if self.full_scale {
            Scale::full()
        } else {
            Scale::quick()
        }
    }

    /// The structured job identity this spec maps to.
    pub fn job_key(&self) -> JobKey {
        let key = JobKey::new(
            self.config.label(self.sockets),
            self.workload.clone(),
            self.timeline,
        );
        match &self.faults {
            // Canonicalize through the parsed plan's Display, matching
            // how `SimPlan::fault_job` builds scenarios.
            Some(f) => match FaultPlan::parse(f) {
                Ok(plan) => key.with_scenario(plan.to_string()),
                Err(_) => key.with_scenario(f.clone()),
            },
            None => key,
        }
    }

    /// Resolves this spec into a runnable [`SimJob`].
    ///
    /// # Errors
    ///
    /// Returns a message if the workload name is unknown or the fault
    /// plan does not parse.
    pub fn to_job(&self) -> Result<SimJob, String> {
        let workload = by_name(&self.workload, &self.scale())
            .ok_or_else(|| format!("unknown workload `{}`", self.workload))?;
        let faults = match &self.faults {
            Some(f) => Some(FaultPlan::parse(f).map_err(|e| format!("bad faults: {e}"))?),
            None => None,
        };
        Ok(SimJob {
            key: self.job_key(),
            cfg: self.config.config(self.sockets),
            workload,
            faults,
            topology_pinned: false,
        })
    }
}

fn parse_bool(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "0" | "false" => Ok(false),
        "1" | "true" => Ok(true),
        other => Err(format!("bad {key} `{other}` (0|1)")),
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run (or warm-fetch) a simulation.
    Submit(JobSpec),
    /// Liveness probe.
    Ping,
    /// Store + supervision counters.
    Stats,
    /// Drain and stop the daemon.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown verbs or bad
    /// `SUBMIT` tokens.
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.trim();
        let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
        match verb {
            "SUBMIT" => Ok(Request::Submit(JobSpec::parse(rest)?)),
            "PING" => Ok(Request::Ping),
            "STATS" => Ok(Request::Stats),
            "SHUTDOWN" => Ok(Request::Shutdown),
            other => Err(format!("unknown request `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_canonical_line() {
        let spec = JobSpec::parse(
            "workload=Rodinia-Euler3D config=numa sockets=2 timeline=1 scale=full \
             faults=lanes:s1@5000=8 deadline=30",
        )
        .unwrap();
        assert_eq!(spec.config, ConfigChoice::NumaAware);
        assert_eq!(spec.sockets, 2);
        assert!(spec.timeline);
        assert!(spec.full_scale);
        assert_eq!(spec.deadline_secs, Some(30));
        let reparsed = JobSpec::parse(&spec.to_line()).unwrap();
        assert_eq!(spec, reparsed, "parse → to_line → parse must round-trip");
    }

    #[test]
    fn defaults_and_errors() {
        let spec = JobSpec::parse("workload=Other-Bitcoin-Crypto").unwrap();
        assert_eq!(spec.config, ConfigChoice::Locality);
        assert_eq!(spec.sockets, 4);
        assert!(!spec.timeline);
        assert!(!spec.full_scale);
        assert_eq!(spec.job_key().label, "loc4");

        assert!(JobSpec::parse("").unwrap_err().contains("workload"));
        assert!(JobSpec::parse("workload=w nope=1")
            .unwrap_err()
            .contains("nope"));
        assert!(JobSpec::parse("workload=w config=alien")
            .unwrap_err()
            .contains("alien"));
        assert!(JobSpec::parse("workload=w faults=gibberish")
            .unwrap_err()
            .contains("faults"));
        assert!(Request::parse("DANCE").unwrap_err().contains("DANCE"));
    }

    #[test]
    fn request_verbs_parse() {
        assert_eq!(Request::parse("PING").unwrap(), Request::Ping);
        assert_eq!(Request::parse("STATS").unwrap(), Request::Stats);
        assert_eq!(Request::parse("SHUTDOWN").unwrap(), Request::Shutdown);
        assert!(matches!(
            Request::parse("SUBMIT workload=w").unwrap(),
            Request::Submit(_)
        ));
    }

    #[test]
    fn spec_resolves_to_a_runnable_job() {
        let spec =
            JobSpec::parse("workload=Other-Bitcoin-Crypto config=locality sockets=2").unwrap();
        let job = spec.to_job().unwrap();
        assert_eq!(job.key.label, "loc2");
        assert_eq!(job.key.workload, "Other-Bitcoin-Crypto");
        let missing = JobSpec::parse("workload=No-Such-Workload").unwrap();
        assert!(missing.to_job().unwrap_err().contains("No-Such-Workload"));
    }
}
