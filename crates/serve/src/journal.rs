//! The restart journal: queued work survives `kill -9`.
//!
//! The daemon appends one line per lifecycle edge — `queued <spec>` when a
//! job is accepted, `done <hash>` when its result is safely in the store —
//! with an `fsync` after each append. On restart, replay pairs the edges:
//! any `queued` without a matching `done` is resubmitted (its result lands
//! in the content-addressed store, so a client re-submitting the same job
//! gets a warm hit). The journal is compacted on open, rewriting only the
//! still-pending lines through the same temp+rename discipline the store
//! uses.
//!
//! A torn final line (the crash happened mid-append) is ignored on
//! replay: a lost `queued` means the client never got its ACK journaled —
//! it will resubmit; a lost `done` means one redundant recompute that the
//! store turns into a no-op overwrite. Either way the journal never
//! invents work and never loses acknowledged work.

use crate::protocol::JobSpec;
use numa_gpu_bench::store::fnv1a64;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Stable identity of a journal entry: the FNV-1a hash of the spec's
/// canonical line.
pub fn spec_hash(spec: &JobSpec) -> String {
    format!("{:016x}", fnv1a64(spec.to_line().as_bytes()))
}

/// Append-only journal of accepted-but-unfinished jobs.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Opens the journal at `dir/journal.log`, replays it, compacts it to
    /// the still-pending entries, and returns those entries in their
    /// original submission order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a malformed line is skipped (see module
    /// docs), never fatal.
    pub fn open(dir: &Path) -> std::io::Result<(Journal, Vec<JobSpec>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("journal.log");
        let pending = match std::fs::read_to_string(&path) {
            Ok(raw) => Self::replay(&raw),
            Err(_) => Vec::new(),
        };
        // Compact via temp+rename: the journal is either the old bytes or
        // the compacted bytes, never a prefix of the new ones.
        let tmp = dir.join(format!("journal.tmp.{}", std::process::id()));
        {
            let mut f = File::create(&tmp)?;
            for spec in &pending {
                writeln!(f, "queued {}", spec.to_line())?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((Journal { path, file }, pending))
    }

    /// Pairs `queued`/`done` edges; unmatched `queued` lines are pending.
    fn replay(raw: &str) -> Vec<JobSpec> {
        let mut pending: Vec<(String, JobSpec)> = Vec::new();
        for line in raw.lines() {
            if let Some(spec_line) = line.strip_prefix("queued ") {
                if let Ok(spec) = JobSpec::parse(spec_line) {
                    let hash = spec_hash(&spec);
                    if !pending.iter().any(|(h, _)| *h == hash) {
                        pending.push((hash, spec));
                    }
                }
            } else if let Some(hash) = line.strip_prefix("done ") {
                pending.retain(|(h, _)| h != hash.trim());
            }
            // Anything else is a torn line from a crash mid-append: skip.
        }
        pending.into_iter().map(|(_, spec)| spec).collect()
    }

    /// Records that a job was accepted. Synced to disk before returning,
    /// so an ACKed job survives a crash.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn record_queued(&mut self, spec: &JobSpec) -> std::io::Result<()> {
        writeln!(self.file, "queued {}", spec.to_line())?;
        self.file.sync_all()
    }

    /// Records that a job's result is durably in the store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn record_done(&mut self, spec: &JobSpec) -> std::io::Result<()> {
        writeln!(self.file, "done {}", spec_hash(spec))?;
        self.file.sync_all()
    }

    /// The journal file's path (tests inspect it directly).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("numa-gpu-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(workload: &str) -> JobSpec {
        JobSpec::parse(&format!("workload={workload}")).unwrap()
    }

    #[test]
    fn replay_returns_unfinished_jobs_in_order() {
        let dir = tmpdir("replay");
        {
            let (mut j, pending) = Journal::open(&dir).unwrap();
            assert!(pending.is_empty());
            j.record_queued(&spec("A")).unwrap();
            j.record_queued(&spec("B")).unwrap();
            j.record_queued(&spec("C")).unwrap();
            j.record_done(&spec("B")).unwrap();
            // No clean shutdown: simulate kill -9 by just dropping.
        }
        let (_j, pending) = Journal::open(&dir).unwrap();
        assert_eq!(
            pending
                .iter()
                .map(|s| s.workload.as_str())
                .collect::<Vec<_>>(),
            ["A", "C"],
            "only unfinished jobs replay, in submission order"
        );
        // Compaction rewrote the journal to exactly the pending lines.
        let raw = std::fs::read_to_string(dir.join("journal.log")).unwrap();
        assert_eq!(raw.lines().count(), 2);
        assert!(raw.lines().all(|l| l.starts_with("queued ")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_line_is_skipped_not_fatal() {
        let dir = tmpdir("torn");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.record_queued(&spec("A")).unwrap();
        }
        // A crash mid-append leaves a partial line with no newline.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("journal.log"))
            .unwrap();
        f.write_all(b"queued workload=B conf").unwrap();
        drop(f);
        let (_j, pending) = Journal::open(&dir).unwrap();
        // The torn token `conf` is not key=value, so B's line is dropped
        // entirely — acceptable: B's append never completed, so B was
        // never durably acknowledged.
        assert_eq!(
            pending
                .iter()
                .map(|s| s.workload.as_str())
                .collect::<Vec<_>>(),
            ["A"]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_queued_lines_collapse() {
        let dir = tmpdir("dup");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.record_queued(&spec("A")).unwrap();
            j.record_queued(&spec("A")).unwrap();
        }
        let (_j, pending) = Journal::open(&dir).unwrap();
        assert_eq!(pending.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
