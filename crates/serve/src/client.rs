//! A minimal blocking client for the daemon's line protocol, used by
//! `simulate submit`, the tests, and the CI crash-recovery job.

use crate::protocol::JobSpec;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// How a submission resolved, as seen by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// Job id assigned by the daemon.
    pub id: u64,
    /// Content address (store hash) of the job.
    pub hash: String,
    /// Progress words streamed before resolution (`queued`, `warm`,
    /// `retry:1`, …).
    pub events: Vec<String>,
    /// The result document (codec JSON) on success.
    pub result: Option<String>,
    /// `(class, message)` on failure.
    pub error: Option<(String, String)>,
}

impl Submission {
    /// Whether the daemon served this job from the warm store.
    pub fn was_warm(&self) -> bool {
        self.events.iter().any(|e| e == "warm")
    }
}

/// A connected protocol client. One request/response exchange at a time —
/// exactly the discipline the per-connection daemon thread expects.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to a daemon's socket.
    ///
    /// # Errors
    ///
    /// Propagates connection I/O errors.
    pub fn connect(socket: impl AsRef<Path>) -> std::io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Errors on I/O failure or an unexpected reply.
    pub fn ping(&mut self) -> std::io::Result<()> {
        writeln!(self.writer, "PING")?;
        let reply = self.read_line()?;
        if reply == "PONG" {
            Ok(())
        } else {
            Err(protocol_error(&format!("expected PONG, got `{reply}`")))
        }
    }

    /// Fetches the daemon's counters as a raw JSON string.
    ///
    /// # Errors
    ///
    /// Errors on I/O failure or an unexpected reply.
    pub fn stats(&mut self) -> std::io::Result<String> {
        writeln!(self.writer, "STATS")?;
        let reply = self.read_line()?;
        reply
            .strip_prefix("STATS ")
            .map(str::to_string)
            .ok_or_else(|| protocol_error(&format!("expected STATS, got `{reply}`")))
    }

    /// Asks the daemon to drain and stop.
    ///
    /// # Errors
    ///
    /// Errors on I/O failure or an unexpected reply.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        writeln!(self.writer, "SHUTDOWN")?;
        let reply = self.read_line()?;
        if reply.starts_with("OK") {
            Ok(())
        } else {
            Err(protocol_error(&format!("expected OK, got `{reply}`")))
        }
    }

    /// Submits a job and blocks until it resolves (result, error, or
    /// server-side deadline).
    ///
    /// # Errors
    ///
    /// Errors on I/O failure or a protocol violation; a *job* failure is
    /// a successful submission with [`Submission::error`] set.
    pub fn submit(&mut self, spec: &JobSpec) -> std::io::Result<Submission> {
        writeln!(self.writer, "SUBMIT {}", spec.to_line())?;
        let ack = self.read_line()?;
        let mut parts = ack.split_whitespace();
        let (id, hash) = match (parts.next(), parts.next(), parts.next()) {
            (Some("ACK"), Some(id), Some(hash)) => (
                id.parse::<u64>()
                    .map_err(|_| protocol_error(&format!("bad ACK id in `{ack}`")))?,
                hash.to_string(),
            ),
            _ => {
                // A parse failure arrives as ERROR without an ACK.
                if let Some((id, class, msg)) = parse_error_line(&ack) {
                    return Ok(Submission {
                        id,
                        hash: String::new(),
                        events: Vec::new(),
                        result: None,
                        error: Some((class, msg)),
                    });
                }
                return Err(protocol_error(&format!("expected ACK, got `{ack}`")));
            }
        };
        let mut events = Vec::new();
        loop {
            let line = self.read_line()?;
            if let Some(rest) = line.strip_prefix("EVENT ") {
                if let Some((_, word)) = rest.split_once(' ') {
                    events.push(word.to_string());
                }
            } else if let Some(rest) = line.strip_prefix("RESULT ") {
                let doc = rest.split_once(' ').map(|(_, d)| d.to_string());
                return Ok(Submission {
                    id,
                    hash,
                    events,
                    result: doc,
                    error: None,
                });
            } else if let Some((_, class, msg)) = parse_error_line(&line) {
                return Ok(Submission {
                    id,
                    hash,
                    events,
                    result: None,
                    error: Some((class, msg)),
                });
            } else {
                return Err(protocol_error(&format!("unexpected line `{line}`")));
            }
        }
    }
}

fn parse_error_line(line: &str) -> Option<(u64, String, String)> {
    let rest = line.strip_prefix("ERROR ")?;
    let (id, rest) = rest.split_once(' ')?;
    let (class, msg) = rest.split_once(' ').unwrap_or((rest, ""));
    Some((id.parse().ok()?, class.to_string(), msg.to_string()))
}

fn protocol_error(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}
