//! Crash-safe sim-as-a-service: a supervised daemon over a Unix domain
//! socket, backed by the self-healing content-addressed result store.
//!
//! Every figure sweep used to re-simulate from scratch in a fresh process;
//! this crate keeps a long-running [`Daemon`] owning a worker pool
//! ([`numa_gpu_exec::Dispatcher`]) and the on-disk store
//! ([`numa_gpu_bench::DiskStore`]), so repeated sweeps across processes
//! and CI runs hit warm results. The robustness contract, proven by the
//! crash-recovery CI job and the tests in `tests/`:
//!
//! * `kill -9` mid-sweep loses no acknowledged work — queued jobs are
//!   journaled with `fsync` and replayed on restart ([`Journal`]);
//! * torn or corrupt cache entries are quarantined and recomputed at the
//!   store layer, invisible to clients;
//! * a panicking or transiently failing job is retried on a bounded
//!   deterministic backoff schedule; deterministic
//!   [`SimError`](numa_gpu_types::SimError)s fail fast;
//! * a hung job trips a wall-clock [`Deadline`](numa_gpu_exec::Deadline)
//!   at the serving layer (the in-sim cycle watchdog covers sim-level
//!   hangs) — and still warms the store when it eventually finishes;
//! * results are byte-identical whether served cold, warm, after a
//!   crash-restart, or from a plain `figures --cache-dir` run.
//!
//! The wire protocol is a human-typable line protocol (see
//! [`protocol`]); [`Client`] is the blocking Rust client the `simulate
//! submit` CLI and the tests use.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod daemon;
pub mod journal;
pub mod protocol;

pub use client::{Client, Submission};
pub use daemon::{Daemon, DaemonConfig, RetryPolicy};
pub use journal::Journal;
pub use protocol::{JobSpec, Request};
