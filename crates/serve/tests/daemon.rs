//! End-to-end tests for the sim daemon: cold/warm submit over a real Unix
//! socket, journal replay after a simulated crash, and a concurrency
//! hammer driven by the deterministic testkit PRNG.

use numa_gpu_serve::{Client, Daemon, DaemonConfig, JobSpec};
use numa_gpu_testkit::rng::DetRng;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Unique socket + cache-dir pair per test (tests share one process).
fn paths(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("numa-gpu-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    (base.join("sock"), base.join("cache"))
}

fn start(socket: &PathBuf, cache: &PathBuf) -> std::thread::JoinHandle<()> {
    let daemon = Daemon::bind(DaemonConfig::new(socket, cache)).expect("bind");
    std::thread::spawn(move || daemon.serve().expect("serve"))
}

fn spec(line: &str) -> JobSpec {
    JobSpec::parse(line).expect("valid spec")
}

#[test]
fn submit_cold_then_warm_is_byte_identical() {
    let (socket, cache) = paths("e2e");
    let handle = start(&socket, &cache);

    let mut client = Client::connect(&socket).expect("connect");
    client.ping().expect("ping");

    let job = spec("workload=Other-Bitcoin-Crypto config=locality sockets=2");
    let cold = client.submit(&job).expect("cold submit");
    assert!(cold.error.is_none(), "cold run failed: {:?}", cold.error);
    assert!(cold.events.contains(&"queued".to_string()));
    assert!(!cold.was_warm());
    let cold_doc = cold.result.expect("cold result");

    let warm = client.submit(&job).expect("warm submit");
    assert!(
        warm.was_warm(),
        "second submit must be served from the store"
    );
    assert_eq!(warm.hash, cold.hash, "same spec, same content address");
    assert_eq!(
        warm.result.expect("warm result"),
        cold_doc,
        "warm result must be byte-identical to the cold run"
    );

    // A spec that parses but names no catalog workload fails cleanly and
    // the connection survives.
    let bad = client
        .submit(&spec("workload=No-Such-Workload"))
        .expect("submit");
    let (class, msg) = bad.error.expect("must fail");
    assert_eq!(class, "parse");
    assert!(msg.contains("No-Such-Workload"));

    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"panics\":0"), "stats: {stats}");
    assert!(stats.contains("\"failed\":0"), "stats: {stats}");

    client.shutdown().expect("shutdown");
    handle.join().expect("serve thread");
    assert!(!socket.exists(), "socket removed on clean shutdown");
}

#[test]
fn journal_replay_recomputes_pending_jobs_into_the_store() {
    let (socket, cache) = paths("replay");
    let job = spec("workload=Other-Bitcoin-Crypto config=single");

    // Hand-write the journal a crashed daemon would have left behind: a
    // job that was durably ACKed (`queued`) but never finished (`done`).
    let journal_dir = cache.join("journal");
    std::fs::create_dir_all(&journal_dir).unwrap();
    std::fs::write(
        journal_dir.join("journal.log"),
        format!("queued {}\n", job.to_line()),
    )
    .unwrap();

    let handle = start(&socket, &cache);

    // Replay runs on the pool with no client attached; wait for the
    // recomputed result to land in the store.
    let store_dir = cache.join("store/v1");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let entries = std::fs::read_dir(&store_dir).map_or(0, |d| d.count());
        if entries > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replayed job never hit the store"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The first client submit of that very spec is served warm: the
    // restart healed the interrupted work.
    let mut client = Client::connect(&socket).expect("connect");
    let sub = client.submit(&job).expect("submit");
    assert!(sub.was_warm(), "replayed job must warm the store");
    assert!(sub.result.is_some());

    client.shutdown().expect("shutdown");
    handle.join().expect("serve thread");
}

#[test]
fn concurrent_clients_get_byte_identical_results() {
    let (socket, cache) = paths("hammer");
    let handle = start(&socket, &cache);

    const CLIENTS: u64 = 4;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                // Deterministic per-client choice of spec: every client
                // draws from the same small space, so collisions (two
                // clients racing the same cold job) are likely — exactly
                // the dedup path under test.
                let mut rng = DetRng::seed_from_u64(0xC0FFEE ^ i);
                let workload = ["Other-Bitcoin-Crypto", "Rodinia-BFS"][rng.bounded_u64(2) as usize];
                let sockets = [2u64, 4][rng.bounded_u64(2) as usize];
                let job = spec(&format!(
                    "workload={workload} config=locality sockets={sockets}"
                ));

                let mut client = Client::connect(&socket).expect("connect");
                let first = client.submit(&job).expect("first submit");
                assert!(
                    first.error.is_none(),
                    "hammer job failed: {:?}",
                    first.error
                );
                let doc = first.result.expect("first result");
                // Same client resubmits: by now its own cold run has
                // committed, so this must be warm and byte-identical.
                let second = client.submit(&job).expect("second submit");
                assert!(second.was_warm(), "resubmit must be warm");
                assert_eq!(second.result.expect("second result"), doc);
                (job.to_line(), doc)
            })
        })
        .collect();

    let mut results: Vec<(String, String)> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    results.sort();
    // Clients that drew the same spec must have seen identical bytes,
    // whether computed or served warm.
    for pair in results.windows(2) {
        if pair[0].0 == pair[1].0 {
            assert_eq!(pair[0].1, pair[1].1, "divergent results for {}", pair[0].0);
        }
    }

    let mut client = Client::connect(&socket).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"panics\":0"), "stats: {stats}");
    client.shutdown().expect("shutdown");
    handle.join().expect("serve thread");
}
