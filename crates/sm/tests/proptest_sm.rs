//! Property tests for the SM state machine.

use numa_gpu_cache::LineClass;
use numa_gpu_sm::{L1ReadOutcome, Sm};
use numa_gpu_testkit::gen::{ints, vecs};
use numa_gpu_testkit::{prop_assert, prop_assert_eq, prop_check};
use numa_gpu_types::{CacheConfig, CtaId, CtaProgram, LineAddr, SmConfig, WarpOp, WritePolicy};

struct NWarps {
    warps: u32,
}

impl CtaProgram for NWarps {
    fn num_warps(&self) -> u32 {
        self.warps
    }
    fn next_op(&mut self, _w: u32) -> Option<WarpOp> {
        None
    }
}

fn make_sm(max_warps: u16, max_ctas: u16, mshrs: u16) -> Sm {
    Sm::new(
        &SmConfig {
            sms_per_socket: 1,
            max_warps,
            max_ctas,
            mshrs,
            l1_hit_latency_cycles: 28,
            max_pending_loads: 4,
        },
        &CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            hit_latency_cycles: 28,
            write_policy: WritePolicy::WriteThrough,
        },
        None,
    )
}

prop_check! {
    /// Dispatch/retire in arbitrary interleavings conserves warp slots and
    /// CTA slots; capacity checks are exact.
    fn slots_conserved(ctas in vecs(ints(1u32..5), 1..40)) {
        let mut sm = make_sm(16, 8, 8);
        let mut live: Vec<(CtaId, Vec<numa_gpu_types::WarpSlot>)> = Vec::new();
        let mut next_id = 0u32;
        let mut live_warps = 0usize;
        for w in ctas {
            if sm.can_accept_cta(w) {
                let slots = sm.dispatch_cta(CtaId::new(next_id), Box::new(NWarps { warps: w }));
                prop_assert_eq!(slots.len(), w as usize);
                live_warps += slots.len();
                live.push((CtaId::new(next_id), slots));
                next_id += 1;
            } else {
                // Retire the oldest CTA completely to make room.
                if let Some((cta, slots)) = live.first().cloned() {
                    live.remove(0);
                    let n = slots.len();
                    for (i, s) in slots.into_iter().enumerate() {
                        let done = sm.retire_warp(s);
                        if i + 1 == n {
                            prop_assert_eq!(done, Some(cta));
                        } else {
                            prop_assert_eq!(done, None);
                        }
                    }
                    live_warps -= n;
                }
            }
            prop_assert_eq!(sm.active_warps(), live_warps);
            prop_assert_eq!(sm.active_ctas(), live.len());
        }
    }

    /// Reads always resolve to one of the four outcomes, and fills wake
    /// exactly the registered waiters.
    fn mshr_bookkeeping_exact(lines in vecs(ints(0u64..8), 1..60)) {
        let mut sm = make_sm(64, 8, 4);
        let slots = sm.dispatch_cta(CtaId::new(0), Box::new(NWarps { warps: 60 }));
        let mut waiting: std::collections::HashMap<u64, Vec<numa_gpu_types::WarpSlot>> =
            Default::default();
        let mut used = 0usize;
        for (i, l) in lines.iter().enumerate() {
            let slot = slots[i % slots.len()];
            let line = LineAddr::from_index(*l);
            match sm.l1_read(line, LineClass::Local, slot) {
                L1ReadOutcome::Hit => {
                    prop_assert!(!waiting.contains_key(l), "hit while outstanding");
                }
                L1ReadOutcome::MissPrimary => {
                    prop_assert!(!waiting.contains_key(l));
                    waiting.insert(*l, vec![slot]);
                    used += 1;
                    prop_assert!(used <= 4);
                }
                L1ReadOutcome::MissMerged => {
                    waiting.get_mut(l).expect("merged into live miss").push(slot);
                }
                L1ReadOutcome::MshrFull => {
                    prop_assert_eq!(used, 4);
                }
            }
            // Occasionally complete the oldest outstanding line.
            if i % 5 == 4 {
                if let Some((&l, _)) = waiting.iter().next() {
                    let want = waiting.remove(&l).unwrap();
                    let woken = sm.l1_fill(LineAddr::from_index(l), LineClass::Local);
                    prop_assert_eq!(woken, want);
                    used -= 1;
                }
            }
        }
    }

    /// The issue port never goes backwards and spaces issues by at least a
    /// cycle under contention.
    fn issue_port_monotone(times in vecs(ints(0u64..1_000_000), 1..100)) {
        let mut sm = make_sm(8, 4, 4);
        let mut last = 0;
        let mut sorted = times.clone();
        sorted.sort();
        for t in sorted {
            let issue = sm.reserve_issue(t * 1024);
            prop_assert!(issue >= last);
            prop_assert!(issue >= t * 1024);
            last = issue;
        }
    }
}
