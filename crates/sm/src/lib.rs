//! Streaming multiprocessor (SM) model.
//!
//! Each SM hosts up to `max_warps` resident warp contexts drawn from up to
//! `max_ctas` thread blocks, a private software-coherent write-through L1
//! (Table 1: 128 KB, 4-way), and an MSHR file that merges concurrent misses
//! to the same line. The SM is an *in-order* machine per warp; latency is
//! hidden across warps, exactly as in the paper's Pascal-class baseline.
//!
//! Timing orchestration (event scheduling, the memory path below the L1)
//! lives in `numa-gpu-core`; this crate owns all per-SM state transitions
//! so they can be tested in isolation.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod sm;

pub use sm::{L1ReadOutcome, Sm, SmObs, SmStats};
