//! The SM state machine.

use numa_gpu_cache::{
    FlushOutcome, LineClass, MshrAllocation, MshrFile, SetAssocCache, WayPartition,
};
use numa_gpu_obs::{CounterHandle, HistogramHandle};
use numa_gpu_types::{
    CacheConfig, Counter, CtaId, CtaProgram, LineAddr, SmConfig, Tick, WarpOp, WarpSlot,
    TICKS_PER_CYCLE,
};
use std::collections::VecDeque;

/// Outcome of a warp read probing the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1ReadOutcome {
    /// Line resident: warp resumes after the L1 hit latency.
    Hit,
    /// First miss on the line: the caller must issue a fill request.
    MissPrimary,
    /// Miss merged into an outstanding request for the same line.
    MissMerged,
    /// No MSHR available: the warp must be parked and retried.
    MshrFull,
}

/// Observability handles for an SM, installed via [`Sm::set_obs`].
///
/// Socket-level aggregation is the intended cardinality: every SM of a
/// socket shares clones of the same handles. Default handles are disabled
/// no-ops.
#[derive(Debug, Clone, Default)]
pub struct SmObs {
    /// Warp issue attempts lost to MSHR-full stalls.
    pub issue_stalls: CounterHandle,
    /// MSHR file occupancy sampled at each L1 miss allocation.
    pub mshr_occupancy: HistogramHandle,
}

/// Per-SM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// CTAs that have completed on this SM.
    pub ctas_completed: Counter,
    /// Warp ops issued (compute + memory).
    pub ops_issued: Counter,
    /// Warp-cycles lost to MSHR-full stalls (retry parks).
    pub mshr_stalls: Counter,
}

struct CtaRuntime {
    cta: CtaId,
    program: Box<dyn CtaProgram>,
    warps_outstanding: u32,
}

impl std::fmt::Debug for CtaRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtaRuntime")
            .field("cta", &self.cta)
            .field("warps_outstanding", &self.warps_outstanding)
            .finish_non_exhaustive()
    }
}

/// Sentinel in `warp_cta_slot` marking a free warp slot. Valid CTA slots
/// are bounded by `SmConfig::max_ctas` (a `u16` count), so the maximum
/// value is never a real slot.
const NO_CTA: u16 = u16::MAX;

/// One streaming multiprocessor: warp slots, resident CTAs, private L1 and
/// MSHRs, plus a single-issue port.
///
/// # Examples
///
/// ```
/// use numa_gpu_sm::Sm;
/// use numa_gpu_types::{
///     Addr, CacheConfig, CtaId, CtaProgram, SmConfig, WarpOp, WritePolicy,
/// };
///
/// struct Nop;
/// impl CtaProgram for Nop {
///     fn num_warps(&self) -> u32 { 1 }
///     fn next_op(&mut self, _w: u32) -> Option<WarpOp> { None }
/// }
///
/// let sm_cfg = SmConfig {
///     sms_per_socket: 1, max_warps: 8, max_ctas: 4, mshrs: 8,
///     l1_hit_latency_cycles: 28, max_pending_loads: 4,
/// };
/// let l1_cfg = CacheConfig {
///     size_bytes: 16 * 1024, ways: 4, hit_latency_cycles: 28,
///     write_policy: WritePolicy::WriteThrough,
/// };
/// let mut sm = Sm::new(&sm_cfg, &l1_cfg, None);
/// assert!(sm.can_accept_cta(1));
/// let slots = sm.dispatch_cta(CtaId::new(0), Box::new(Nop));
/// assert_eq!(slots.len(), 1);
/// ```
#[derive(Debug)]
pub struct Sm {
    l1: SetAssocCache,
    l1_hit_latency: Tick,
    mshrs: MshrFile<WarpSlot>,
    // Hot warp state in structure-of-arrays form: the per-event lookups
    // (`next_op`, `retire_warp`) index two dense flat arrays instead of
    // unwrapping an array of option-structs, and [`NO_CTA`] marks free
    // slots without an `Option` discriminant.
    /// CTA slot owning each warp slot; [`NO_CTA`] when the slot is free.
    warp_cta_slot: Vec<u16>,
    /// Warp index within its CTA's program (valid only for resident slots).
    warp_in_cta: Vec<u32>,
    /// Resident warp count, kept so `active_warps` is O(1).
    active_warp_count: u32,
    free_warp_slots: Vec<u16>,
    ctas: Vec<Option<CtaRuntime>>,
    free_cta_slots: Vec<u16>,
    resident_ctas: u16,
    issue_next_free: Tick,
    retry_queue: VecDeque<WarpSlot>,
    enabled: bool,
    stats: SmStats,
    obs: SmObs,
}

impl Sm {
    /// Builds an SM from its configuration. `l1_partition` of `Some`
    /// enables NUMA way partitioning of the L1 (the paper partitions both
    /// cache levels).
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero warps/CTAs/MSHRs).
    pub fn new(sm: &SmConfig, l1: &CacheConfig, l1_partition: Option<WayPartition>) -> Self {
        assert!(
            sm.max_warps > 0 && sm.max_ctas > 0 && sm.mshrs > 0,
            "degenerate SM configuration"
        );
        Sm {
            l1: SetAssocCache::new(l1, l1_partition),
            l1_hit_latency: sm.l1_hit_latency_cycles as Tick * TICKS_PER_CYCLE,
            mshrs: MshrFile::new(sm.mshrs as usize),
            warp_cta_slot: vec![NO_CTA; sm.max_warps as usize],
            warp_in_cta: vec![0; sm.max_warps as usize],
            active_warp_count: 0,
            free_warp_slots: (0..sm.max_warps).rev().collect(),
            ctas: (0..sm.max_ctas).map(|_| None).collect(),
            free_cta_slots: (0..sm.max_ctas).rev().collect(),
            resident_ctas: 0,
            issue_next_free: 0,
            retry_queue: VecDeque::new(),
            enabled: true,
            stats: SmStats::default(),
            obs: SmObs::default(),
        }
    }

    /// Installs observability handles (disabled no-op handles by default).
    /// All SMs of a socket typically share clones of the same handles.
    pub fn set_obs(&mut self, obs: SmObs) {
        self.obs = obs;
    }

    /// Whether a CTA of `warps` warps can be dispatched right now. A
    /// disabled SM accepts nothing.
    pub fn can_accept_cta(&self, warps: u32) -> bool {
        self.enabled
            && !self.free_cta_slots.is_empty()
            && self.free_warp_slots.len() >= warps as usize
    }

    /// Whether this SM is still executing (fault injection can disable it).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Takes this SM out of service mid-kernel (fault injection). Every
    /// resident CTA is evicted and returned in slot order so the dispatcher
    /// can requeue it — a CTA restarted elsewhere re-executes from its
    /// first op, which is sound because CTA programs are pure generators.
    /// Warp slots, CTA slots, and the retry queue are cleared; in-flight
    /// fills targeting this SM must be dropped by the caller (it owns the
    /// event queue). Disabling is permanent for the run.
    pub fn disable(&mut self) -> Vec<CtaId> {
        self.enabled = false;
        let mut evicted = Vec::new();
        for (i, slot) in self.ctas.iter_mut().enumerate() {
            if let Some(rt) = slot.take() {
                evicted.push(rt.cta);
                self.free_cta_slots.push(i as u16);
            }
        }
        for (i, w) in self.warp_cta_slot.iter_mut().enumerate() {
            if *w != NO_CTA {
                *w = NO_CTA;
                self.free_warp_slots.push(i as u16);
            }
        }
        self.active_warp_count = 0;
        self.resident_ctas = 0;
        self.retry_queue.clear();
        evicted
    }

    /// Number of resident warps.
    pub fn active_warps(&self) -> usize {
        self.active_warp_count as usize
    }

    /// Number of resident CTAs.
    pub fn active_ctas(&self) -> usize {
        self.resident_ctas as usize
    }

    /// Dispatches a CTA, allocating one warp slot per program warp.
    /// Returns the allocated slots (the caller schedules their first issue).
    ///
    /// # Panics
    ///
    /// Panics if the SM cannot accept the CTA — check
    /// [`Self::can_accept_cta`] first.
    pub fn dispatch_cta(&mut self, cta: CtaId, program: Box<dyn CtaProgram>) -> Vec<WarpSlot> {
        let mut slots = Vec::new();
        self.dispatch_cta_into(cta, program, &mut slots);
        slots
    }

    /// Allocation-recycling form of [`Self::dispatch_cta`]: appends the
    /// allocated warp slots to `slots` so a caller-owned scratch buffer
    /// absorbs every dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the SM cannot accept the CTA — check
    /// [`Self::can_accept_cta`] first.
    pub fn dispatch_cta_into(
        &mut self,
        cta: CtaId,
        program: Box<dyn CtaProgram>,
        slots: &mut Vec<WarpSlot>,
    ) {
        let warps = program.num_warps();
        assert!(
            self.can_accept_cta(warps),
            "dispatch_cta without capacity check"
        );
        // simlint: allow(S004, reason = "can_accept_cta assert above guarantees free slots")
        let cta_slot = self.free_cta_slots.pop().expect("checked above");
        self.ctas[cta_slot as usize] = Some(CtaRuntime {
            cta,
            program,
            warps_outstanding: warps,
        });
        self.resident_ctas += 1;
        self.active_warp_count += warps;
        for warp_in_cta in 0..warps {
            // simlint: allow(S004, reason = "can_accept_cta assert above guarantees free slots")
            let slot = self.free_warp_slots.pop().expect("checked above");
            self.warp_cta_slot[slot as usize] = cta_slot;
            self.warp_in_cta[slot as usize] = warp_in_cta;
            slots.push(WarpSlot::new(slot));
        }
    }

    /// Pulls the next operation for the warp in `slot`. `None` means the
    /// warp has retired all work; the caller must then invoke
    /// [`Self::retire_warp`].
    ///
    /// # Panics
    ///
    /// Panics if `slot` holds no warp.
    pub fn next_op(&mut self, slot: WarpSlot) -> Option<WarpOp> {
        let cta_slot = self.warp_cta_slot[slot.index()];
        assert!(cta_slot != NO_CTA, "next_op on empty warp slot");
        let rt = self.ctas[cta_slot as usize]
            .as_mut()
            // simlint: allow(S004, reason = "a resident warp always points at its live CTA slot")
            .expect("warp points at live CTA");
        let op = rt.program.next_op(self.warp_in_cta[slot.index()]);
        if op.is_some() {
            self.stats.ops_issued.inc();
        }
        op
    }

    /// Retires a finished warp. When it was the last warp of its CTA the
    /// CTA completes and its id is returned (so the dispatcher can launch
    /// the next pending CTA).
    ///
    /// # Panics
    ///
    /// Panics if `slot` holds no warp.
    pub fn retire_warp(&mut self, slot: WarpSlot) -> Option<CtaId> {
        let cta_slot = self.warp_cta_slot[slot.index()];
        assert!(cta_slot != NO_CTA, "retire_warp on empty warp slot");
        self.warp_cta_slot[slot.index()] = NO_CTA;
        self.active_warp_count -= 1;
        self.free_warp_slots.push(slot.index() as u16);
        let rt = self.ctas[cta_slot as usize]
            .as_mut()
            // simlint: allow(S004, reason = "a resident warp always points at its live CTA slot")
            .expect("warp points at live CTA");
        rt.warps_outstanding -= 1;
        if rt.warps_outstanding == 0 {
            let cta = rt.cta;
            self.ctas[cta_slot as usize] = None;
            self.free_cta_slots.push(cta_slot);
            self.resident_ctas -= 1;
            self.stats.ctas_completed.inc();
            Some(cta)
        } else {
            None
        }
    }

    /// Reserves the single-issue port: returns the actual issue tick for a
    /// request arriving at `now` (at most one op per cycle).
    pub fn reserve_issue(&mut self, now: Tick) -> Tick {
        let t = self.issue_next_free.max(now);
        self.issue_next_free = t + TICKS_PER_CYCLE;
        t
    }

    /// L1 hit latency in ticks.
    pub fn l1_hit_latency(&self) -> Tick {
        self.l1_hit_latency
    }

    /// Probes the L1 for a read by the warp in `slot`.
    pub fn l1_read(&mut self, line: LineAddr, class: LineClass, slot: WarpSlot) -> L1ReadOutcome {
        if self.l1.probe_read(line) {
            return L1ReadOutcome::Hit;
        }
        self.l1.record_miss(class);
        match self.mshrs.allocate(line, slot) {
            MshrAllocation::Primary => {
                self.obs.mshr_occupancy.observe(self.mshrs.in_use() as u64);
                L1ReadOutcome::MissPrimary
            }
            MshrAllocation::Merged => L1ReadOutcome::MissMerged,
            MshrAllocation::Full => {
                self.stats.mshr_stalls.inc();
                self.obs.issue_stalls.inc();
                L1ReadOutcome::MshrFull
            }
        }
    }

    /// Applies a write to the L1 (write-through, no write-allocate): updates
    /// the line if resident, never dirties it.
    pub fn l1_write(&mut self, line: LineAddr) {
        let _ = self.l1.probe_write(line, false);
    }

    /// Completes a fill: installs the line and returns the warps to wake.
    pub fn l1_fill(&mut self, line: LineAddr, class: LineClass) -> Vec<WarpSlot> {
        let mut woken = Vec::new();
        self.l1_fill_into(line, class, &mut woken);
        woken
    }

    /// Allocation-recycling form of [`Self::l1_fill`]: appends the warps to
    /// wake to `woken`, and recycles the MSHR waiter storage internally, so
    /// the steady-state fill path allocates nothing.
    pub fn l1_fill_into(&mut self, line: LineAddr, class: LineClass, woken: &mut Vec<WarpSlot>) {
        // Write-through L1: fills are always clean, evictions need no
        // writeback.
        let _ = self.l1.fill(line, class, false);
        self.mshrs.complete_into(line, woken);
    }

    /// Waiter-vector allocations the MSHR file has avoided through pool
    /// reuse (feeds the self-profiler).
    pub fn recycled_allocations(&self) -> u64 {
        self.mshrs.recycled_allocations()
    }

    /// Whether a fill for `line` is already outstanding.
    pub fn l1_miss_outstanding(&self, line: LineAddr) -> bool {
        self.mshrs.is_outstanding(line)
    }

    /// Parks a warp that hit MSHR-full, to be retried on the next fill.
    pub fn park_retry(&mut self, slot: WarpSlot) {
        self.retry_queue.push_back(slot);
    }

    /// Pops one parked warp (called when an MSHR frees up).
    pub fn pop_retry(&mut self) -> Option<WarpSlot> {
        self.retry_queue.pop_front()
    }

    /// Bulk-invalidates the L1 (kernel-boundary software coherence). The
    /// write-through L1 never produces writebacks.
    pub fn flush_l1(&mut self) -> FlushOutcome {
        let out = self.l1.invalidate_all();
        debug_assert!(out.dirty_writebacks.is_empty(), "WT L1 cannot be dirty");
        out
    }

    /// Installs a new L1 way partition (NUMA-aware mode).
    pub fn set_l1_partition(&mut self, partition: WayPartition) {
        self.l1.set_partition(partition);
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> numa_gpu_cache::CacheStats {
        self.l1.stats()
    }

    /// SM statistics.
    pub fn stats(&self) -> SmStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_gpu_types::{Addr, WritePolicy};

    struct ScriptedCta {
        ops: Vec<Vec<WarpOp>>,
        cursors: Vec<usize>,
    }

    impl ScriptedCta {
        fn new(ops: Vec<Vec<WarpOp>>) -> Self {
            let cursors = vec![0; ops.len()];
            ScriptedCta { ops, cursors }
        }
    }

    impl CtaProgram for ScriptedCta {
        fn num_warps(&self) -> u32 {
            self.ops.len() as u32
        }
        fn next_op(&mut self, warp: u32) -> Option<WarpOp> {
            let w = warp as usize;
            let op = self.ops[w].get(self.cursors[w]).copied();
            if op.is_some() {
                self.cursors[w] += 1;
            }
            op
        }
    }

    fn sm_config() -> SmConfig {
        SmConfig {
            sms_per_socket: 1,
            max_warps: 8,
            max_ctas: 4,
            mshrs: 4,
            l1_hit_latency_cycles: 28,
            max_pending_loads: 4,
        }
    }

    fn l1_config() -> CacheConfig {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            hit_latency_cycles: 28,
            write_policy: WritePolicy::WriteThrough,
        }
    }

    fn make_sm() -> Sm {
        Sm::new(&sm_config(), &l1_config(), None)
    }

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn dispatch_allocates_slots() {
        let mut sm = make_sm();
        let slots = sm.dispatch_cta(
            CtaId::new(7),
            Box::new(ScriptedCta::new(vec![vec![], vec![]])),
        );
        assert_eq!(slots.len(), 2);
        assert_eq!(sm.active_warps(), 2);
        assert_eq!(sm.active_ctas(), 1);
    }

    #[test]
    fn capacity_limits_warps_and_ctas() {
        let mut sm = make_sm();
        for i in 0..4 {
            assert!(sm.can_accept_cta(2));
            sm.dispatch_cta(
                CtaId::new(i),
                Box::new(ScriptedCta::new(vec![vec![], vec![]])),
            );
        }
        assert!(!sm.can_accept_cta(1)); // max_ctas reached
        let mut sm = make_sm();
        sm.dispatch_cta(CtaId::new(0), Box::new(ScriptedCta::new(vec![vec![]; 7])));
        assert!(!sm.can_accept_cta(2)); // only 1 warp slot left
        assert!(sm.can_accept_cta(1));
    }

    #[test]
    fn next_op_streams_per_warp() {
        let mut sm = make_sm();
        let ops = vec![
            vec![WarpOp::compute(3), WarpOp::read(Addr::new(0))],
            vec![WarpOp::write(Addr::new(128))],
        ];
        let slots = sm.dispatch_cta(CtaId::new(0), Box::new(ScriptedCta::new(ops)));
        assert_eq!(sm.next_op(slots[0]), Some(WarpOp::compute(3)));
        assert_eq!(sm.next_op(slots[1]), Some(WarpOp::write(Addr::new(128))));
        assert_eq!(sm.next_op(slots[1]), None);
        assert_eq!(sm.next_op(slots[0]), Some(WarpOp::read(Addr::new(0))));
        assert_eq!(sm.stats().ops_issued.get(), 3);
    }

    #[test]
    fn cta_completes_when_last_warp_retires() {
        let mut sm = make_sm();
        let slots = sm.dispatch_cta(
            CtaId::new(9),
            Box::new(ScriptedCta::new(vec![vec![], vec![]])),
        );
        assert_eq!(sm.retire_warp(slots[0]), None);
        assert_eq!(sm.retire_warp(slots[1]), Some(CtaId::new(9)));
        assert_eq!(sm.active_ctas(), 0);
        assert_eq!(sm.active_warps(), 0);
        assert!(sm.can_accept_cta(2));
        assert_eq!(sm.stats().ctas_completed.get(), 1);
    }

    #[test]
    fn issue_port_serializes() {
        let mut sm = make_sm();
        let a = sm.reserve_issue(0);
        let b = sm.reserve_issue(0);
        let c = sm.reserve_issue(0);
        assert_eq!(a, 0);
        assert_eq!(b, TICKS_PER_CYCLE);
        assert_eq!(c, 2 * TICKS_PER_CYCLE);
        // Idle gap resets.
        let d = sm.reserve_issue(100 * TICKS_PER_CYCLE);
        assert_eq!(d, 100 * TICKS_PER_CYCLE);
    }

    #[test]
    fn l1_read_miss_then_fill_then_hit() {
        let mut sm = make_sm();
        let s = WarpSlot::new(0);
        assert_eq!(
            sm.l1_read(line(5), LineClass::Local, s),
            L1ReadOutcome::MissPrimary
        );
        assert_eq!(
            sm.l1_read(line(5), LineClass::Local, WarpSlot::new(1)),
            L1ReadOutcome::MissMerged
        );
        let woken = sm.l1_fill(line(5), LineClass::Local);
        assert_eq!(woken, vec![WarpSlot::new(0), WarpSlot::new(1)]);
        assert_eq!(sm.l1_read(line(5), LineClass::Local, s), L1ReadOutcome::Hit);
    }

    #[test]
    fn mshr_full_parks_warp() {
        let mut sm = make_sm(); // 4 MSHRs
        for i in 0..4 {
            assert_eq!(
                sm.l1_read(line(i), LineClass::Local, WarpSlot::new(i as u16)),
                L1ReadOutcome::MissPrimary
            );
        }
        assert_eq!(
            sm.l1_read(line(99), LineClass::Remote, WarpSlot::new(5)),
            L1ReadOutcome::MshrFull
        );
        sm.park_retry(WarpSlot::new(5));
        assert_eq!(sm.pop_retry(), Some(WarpSlot::new(5)));
        assert_eq!(sm.pop_retry(), None);
        assert_eq!(sm.stats().mshr_stalls.get(), 1);
    }

    #[test]
    fn obs_records_stalls_and_mshr_occupancy() {
        use numa_gpu_obs::{MetricValue, MetricsRegistry};

        let mut reg = MetricsRegistry::new();
        let obs = SmObs {
            issue_stalls: reg.counter("sm.issue_stalls"),
            mshr_occupancy: reg.histogram("sm.mshr_occupancy"),
        };
        let mut sm = make_sm(); // 4 MSHRs
        sm.set_obs(obs);
        for i in 0..4 {
            sm.l1_read(line(i), LineClass::Local, WarpSlot::new(i as u16));
        }
        assert_eq!(
            sm.l1_read(line(99), LineClass::Local, WarpSlot::new(5)),
            L1ReadOutcome::MshrFull
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sm.issue_stalls"), Some(1));
        let MetricValue::Histogram(h) = snap.get("sm.mshr_occupancy").unwrap() else {
            panic!("not a histogram");
        };
        assert_eq!(h.count, 4); // one sample per primary miss
        assert_eq!(h.max, 4); // file full at the last allocation
    }

    #[test]
    fn l1_write_never_allocates() {
        let mut sm = make_sm();
        sm.l1_write(line(3));
        assert_eq!(
            sm.l1_read(line(3), LineClass::Local, WarpSlot::new(0)),
            L1ReadOutcome::MissPrimary
        );
    }

    #[test]
    fn flush_l1_invalidates_everything_clean() {
        let mut sm = make_sm();
        sm.l1_fill(line(1), LineClass::Local);
        sm.l1_fill(line(2), LineClass::Remote);
        let out = sm.flush_l1();
        assert_eq!(out.invalidated, 2);
        assert!(out.dirty_writebacks.is_empty());
        assert_eq!(
            sm.l1_read(line(1), LineClass::Local, WarpSlot::new(0)),
            L1ReadOutcome::MissPrimary
        );
    }

    #[test]
    fn partitioned_l1_accepts_new_partition() {
        let mut sm = Sm::new(&sm_config(), &l1_config(), Some(WayPartition::balanced(4)));
        sm.set_l1_partition(WayPartition::with_local_ways(1, 4));
        // Remote fills now own 3 ways; locals 1 — just exercise the path.
        sm.l1_fill(line(1), LineClass::Remote);
        assert_eq!(
            sm.l1_read(line(1), LineClass::Remote, WarpSlot::new(0)),
            L1ReadOutcome::Hit
        );
    }

    #[test]
    fn disable_evicts_residents_and_refuses_work() {
        let mut sm = make_sm();
        sm.dispatch_cta(
            CtaId::new(3),
            Box::new(ScriptedCta::new(vec![vec![], vec![]])),
        );
        sm.dispatch_cta(CtaId::new(8), Box::new(ScriptedCta::new(vec![vec![]])));
        assert!(sm.is_enabled());
        let evicted = sm.disable();
        assert_eq!(evicted, vec![CtaId::new(3), CtaId::new(8)]);
        assert!(!sm.is_enabled());
        assert_eq!(sm.active_ctas(), 0);
        assert_eq!(sm.active_warps(), 0);
        assert!(!sm.can_accept_cta(1));
        assert_eq!(sm.pop_retry(), None);
        // Disabling twice is idempotent and evicts nothing further.
        assert!(sm.disable().is_empty());
    }

    #[test]
    #[should_panic(expected = "without capacity check")]
    fn over_dispatch_panics() {
        let mut sm = make_sm();
        for i in 0..5 {
            sm.dispatch_cta(CtaId::new(i), Box::new(ScriptedCta::new(vec![vec![]])));
        }
    }
}
