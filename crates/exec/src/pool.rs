//! Fixed-worker thread pool with deterministic result ordering.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of work: a label (used in panic reports and progress lines)
/// plus the closure to run.
pub struct Job<T> {
    label: String,
    work: Box<dyn FnOnce() -> T + Send>,
}

impl<T> Job<T> {
    /// Creates a job.
    pub fn new(label: impl Into<String>, work: impl FnOnce() -> T + Send + 'static) -> Self {
        Job {
            label: label.into(),
            work: Box::new(work),
        }
    }

    /// The job's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl<T> std::fmt::Debug for Job<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("label", &self.label).finish()
    }
}

/// A fixed-size pool of worker threads executing job batches.
///
/// The pool is a *value*, not a set of parked OS threads: workers are
/// spawned scoped per [`ThreadPool::run`] call and joined before it
/// returns, which keeps job closures free of `'static` borrows on the
/// batch state and guarantees no work outlives the batch.
///
/// With one worker the batch runs sequentially on the calling thread — the
/// exact pre-pool behavior — so `--jobs 1` reproduces serial runs bit for
/// bit, scheduling included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// Creates a pool with `workers` worker threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        ThreadPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn available() -> Self {
        ThreadPool::new(available_workers())
    }

    /// Number of worker threads used per batch.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job and returns the results **in submission order**.
    ///
    /// Jobs are claimed by workers through a shared atomic cursor, so
    /// execution order is scheduler dependent, but each result is written
    /// to the slot of its submission index: the returned vector is
    /// identical for every worker count (given deterministic jobs).
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is re-raised here once all workers have
    /// drained, with the message prefixed by the failing job's label. When
    /// several jobs panic, the one with the lowest submission index is
    /// reported (again for determinism).
    pub fn run<T: Send>(&self, jobs: Vec<Job<T>>) -> Vec<T> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let n = jobs.len();
        let workers = self.workers.min(n);

        // Shared batch state: each job slot is taken exactly once (the
        // cursor hands out distinct indices), each result slot written
        // exactly once.
        let slots: Vec<Mutex<Option<Job<T>>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let panicked: Mutex<Option<(usize, String, String)>> = Mutex::new(None);

        let body = |_worker: usize| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let job = slots[i]
                .lock()
                .expect("job slot poisoned")
                .take()
                .expect("job claimed twice");
            let label = job.label;
            match catch_unwind(AssertUnwindSafe(job.work)) {
                Ok(value) => *results[i].lock().expect("result slot poisoned") = Some(value),
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    let mut first = panicked.lock().expect("panic slot poisoned");
                    if first.as_ref().is_none_or(|(j, _, _)| i < *j) {
                        *first = Some((i, label, msg));
                    }
                }
            }
        };

        if workers == 1 {
            body(0);
        } else {
            std::thread::scope(|scope| {
                for w in 0..workers {
                    scope.spawn(move || body(w));
                }
            });
        }

        if let Some((index, label, msg)) = panicked.into_inner().expect("panic slot poisoned") {
            panic!("job `{label}` (index {index}) panicked: {msg}");
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("job finished without a result")
            })
            .collect()
    }

    /// Runs a batch of *borrowing* closures and returns the results in
    /// submission order.
    ///
    /// Unlike [`ThreadPool::run`], tasks are not `'static`: they may borrow
    /// from the caller's stack (the windowed simulation executor hands each
    /// worker a `&mut` partition plus shared read-only state). Workers are
    /// scoped to this call, claim tasks through an atomic cursor, and are
    /// joined before it returns. With one worker the batch runs inline on
    /// the calling thread, reproducing serial execution exactly.
    ///
    /// # Panics
    ///
    /// If a task panics, the panic payload of the lowest submission index
    /// is re-raised here once all workers have drained (deterministic
    /// regardless of which worker hit it first).
    pub fn run_scoped<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if tasks.is_empty() {
            return Vec::new();
        }
        let n = tasks.len();
        let workers = self.workers.min(n);

        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        type Payload = Box<dyn std::any::Any + Send>;
        let panicked: Mutex<Option<(usize, Payload)>> = Mutex::new(None);

        let body = |_worker: usize| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let task = slots[i]
                .lock()
                .expect("task slot poisoned")
                .take()
                .expect("task claimed twice");
            match catch_unwind(AssertUnwindSafe(task)) {
                Ok(value) => *results[i].lock().expect("result slot poisoned") = Some(value),
                Err(payload) => {
                    let mut first = panicked.lock().expect("panic slot poisoned");
                    if first.as_ref().is_none_or(|(j, _)| i < *j) {
                        *first = Some((i, payload));
                    }
                }
            }
        };

        if workers == 1 {
            body(0);
        } else {
            std::thread::scope(|scope| {
                for w in 0..workers {
                    scope.spawn(move || body(w));
                }
            });
        }

        if let Some((_, payload)) = panicked.into_inner().expect("panic slot poisoned") {
            std::panic::resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("task finished without a result")
            })
            .collect()
    }
}

/// The machine's available parallelism (1 when it cannot be queried).
pub(crate) fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_returns_empty() {
        let pool = ThreadPool::new(4);
        let out: Vec<u32> = pool.run(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn workers_clamped_to_one() {
        assert_eq!(ThreadPool::new(0).workers(), 1);
        assert!(ThreadPool::available().workers() >= 1);
    }

    #[test]
    fn results_follow_submission_order() {
        let pool = ThreadPool::new(3);
        let jobs = (0..17u64)
            .map(|i| Job::new(format!("j{i}"), move || i * 10))
            .collect();
        assert_eq!(
            pool.run(jobs),
            (0..17u64).map(|i| i * 10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn panic_carries_label_and_index() {
        let pool = ThreadPool::new(2);
        let jobs = vec![
            Job::new("fine", || 1u32),
            Job::new("broken", || panic!("boom")),
        ];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(jobs)))
            .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("formatted panic message");
        assert!(msg.contains("`broken`"), "{msg}");
        assert!(msg.contains("index 1"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn lowest_index_panic_wins() {
        // Sequential single-worker run makes both panics fire; the report
        // must still name the lowest index.
        let pool = ThreadPool::new(1);
        let jobs = vec![
            Job::new("first", || -> u32 { panic!("early") }),
            Job::new("second", || panic!("late")),
        ];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(jobs)))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("`first`") && msg.contains("early"), "{msg}");
    }

    #[test]
    fn scoped_tasks_borrow_caller_state() {
        // The whole point of run_scoped: tasks mutate disjoint slices of a
        // stack-local vector, no 'static required.
        let pool = ThreadPool::new(4);
        let mut parts: Vec<Vec<u64>> = (0..8).map(|i| vec![i]).collect();
        let tasks: Vec<_> = parts
            .iter_mut()
            .map(|p| {
                move || {
                    p.push(p[0] * 2);
                    p[0]
                }
            })
            .collect();
        let out = pool.run_scoped(tasks);
        assert_eq!(out, (0..8).collect::<Vec<u64>>());
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p, &vec![i as u64, 2 * i as u64]);
        }
    }

    #[test]
    fn scoped_results_identical_at_any_worker_count() {
        let work: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = work.iter().map(|v| v * v).collect();
        for workers in [1, 2, 5, 16] {
            let pool = ThreadPool::new(workers);
            let tasks: Vec<_> = work.iter().map(|v| move || v * v).collect();
            assert_eq!(pool.run_scoped(tasks), expect, "workers={workers}");
        }
    }

    #[test]
    fn scoped_empty_batch_returns_empty() {
        let pool = ThreadPool::new(3);
        let out: Vec<u8> = pool.run_scoped(Vec::<fn() -> u8>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn scoped_lowest_index_panic_wins() {
        let pool = ThreadPool::new(1);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| panic!("early")), Box::new(|| panic!("late"))];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run_scoped(tasks)))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap();
        assert_eq!(msg, "early");
    }

    #[test]
    fn job_debug_and_label() {
        let j = Job::new("named", || 0u8);
        assert_eq!(j.label(), "named");
        assert!(format!("{j:?}").contains("named"));
    }
}
