//! Shear-free progress logging for concurrent workers.

use std::io::Write;
use std::sync::Mutex;

/// A mutexed, line-buffered progress reporter.
///
/// Each [`Reporter::line`] call formats the complete line (text plus
/// newline) into one buffer and hands it to the sink in a single locked
/// write, so lines from concurrent workers interleave only at line
/// granularity — never mid-line. When not verbose every call is a no-op,
/// so quiet sweeps pay nothing.
pub struct Reporter {
    verbose: bool,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl Reporter {
    /// A reporter writing to standard error (the harness's progress
    /// channel; stdout stays reserved for artifact output).
    pub fn stderr(verbose: bool) -> Self {
        Reporter::with_sink(verbose, Box::new(std::io::stderr()))
    }

    /// A reporter writing to an arbitrary sink (used by tests to capture
    /// output).
    pub fn with_sink(verbose: bool, sink: Box<dyn Write + Send>) -> Self {
        Reporter {
            verbose,
            sink: Mutex::new(sink),
        }
    }

    /// Whether lines are actually emitted.
    pub fn verbose(&self) -> bool {
        self.verbose
    }

    /// Writes one complete line (no-op unless verbose). I/O errors are
    /// ignored, matching `eprintln!`'s panic-free-on-broken-pipe needs in
    /// long sweeps piped through `head`.
    pub fn line(&self, text: &str) {
        if !self.verbose {
            return;
        }
        let mut buf = String::with_capacity(text.len() + 1);
        buf.push_str(text);
        buf.push('\n');
        let mut sink = self.sink.lock().expect("reporter sink poisoned");
        let _ = sink.write_all(buf.as_bytes());
        let _ = sink.flush();
    }
}

impl std::fmt::Debug for Reporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reporter")
            .field("verbose", &self.verbose)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` sink sharing its buffer so tests can inspect it.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn quiet_reporter_writes_nothing() {
        let buf = Shared::default();
        let r = Reporter::with_sink(false, Box::new(buf.clone()));
        r.line("hidden");
        assert!(!r.verbose());
        assert!(buf.0.lock().unwrap().is_empty());
    }

    #[test]
    fn lines_never_shear_across_threads() {
        let buf = Shared::default();
        let r = Arc::new(Reporter::with_sink(true, Box::new(buf.clone())));
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        r.line(&format!("thread-{t} line-{i} end"));
                    }
                });
            }
        });
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 200);
        for line in lines {
            assert!(
                line.starts_with("thread-") && line.ends_with(" end"),
                "sheared line: {line:?}"
            );
        }
    }
}
