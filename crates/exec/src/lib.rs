//! Deterministic batch execution for simulation sweeps.
//!
//! The benchmark harness runs hundreds of independent `(config, workload)`
//! simulations. This crate provides the minimal, std-only execution
//! substrate for fanning those out over OS threads *without* giving up the
//! workspace's byte-for-byte determinism guarantee:
//!
//! * [`ThreadPool`] — a fixed-worker batch executor. Jobs are indexed at
//!   submission and results are returned **in submission order** no matter
//!   which worker finishes first, so any output derived from the result
//!   vector is independent of thread scheduling. A panic inside a worker is
//!   caught and re-raised on the submitting thread, labelled with the job
//!   that caused it.
//! * [`Dispatcher`] — a persistent worker pool for long-running services
//!   (the serving daemon): jobs arrive one at a time over the pool's
//!   lifetime, each delivers its outcome through a per-job callback, and a
//!   panicking job is contained (reported as [`JobOutcome::Panicked`])
//!   rather than taking the worker down. [`Deadline`] supplies the
//!   wall-clock budgets such services supervise with.
//! * [`Reporter`] — a mutexed, line-buffered progress logger. Each line is
//!   formatted completely before a single locked write, so progress output
//!   from concurrent workers never shears mid-line.
//!
//! Determinism argument: the pool imposes no ordering on *execution* (any
//! worker may run any job at any time), only on *observation*. As long as
//! each job is a pure function of its inputs — true for the simulator,
//! whose runs share no mutable state — the result vector, and everything
//! computed from it, is identical at every worker count.
//!
//! # Examples
//!
//! ```
//! use numa_gpu_exec::{Job, ThreadPool};
//!
//! let pool = ThreadPool::new(4);
//! let jobs = (0..8).map(|i| Job::new(format!("square-{i}"), move || i * i));
//! let squares = pool.run(jobs.collect());
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod dispatch;
mod pool;
mod reporter;

pub use dispatch::{Deadline, Dispatcher, JobOutcome};
pub use pool::{Job, ThreadPool};
pub use reporter::Reporter;
