//! A persistent job dispatcher for long-running services.
//!
//! [`ThreadPool`] is a *batch* executor: it is handed a complete job
//! vector, blocks until every job finishes, and returns the results in
//! submission order. A daemon has the opposite shape — jobs arrive one at
//! a time over its lifetime, each wants its result delivered somewhere
//! else (a client connection), and the process must be able to drain and
//! stop. [`Dispatcher`] is that shape: a fixed set of workers pulling from
//! a shared queue, with per-job panic containment (a panicking job is
//! reported to its completion callback as an error string, never taking a
//! worker or the process down) and a two-phase shutdown (`drain`, then
//! `shutdown`).
//!
//! [`Deadline`] is the wall-clock companion: services supervise jobs with
//! "must finish within N seconds" budgets, which the simulation itself —
//! cycle-accurate and wall-clock-oblivious by design — cannot express.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A wall-clock budget for supervising a job from outside.
///
/// The simulator's own watchdog supervises in *cycles* (deadlock and
/// cycle-budget detection inside the run); a `Deadline` supervises in
/// *seconds* from the serving layer, catching jobs that are making cycle
/// progress but too slowly to be worth waiting for.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// Starts a deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            start: Instant::now(),
            budget,
        }
    }

    /// Whether the budget is exhausted.
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.budget
    }

    /// Time left before expiry (zero once expired) — the right value for
    /// a blocking wait that must not overshoot the deadline.
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.start.elapsed())
    }
}

/// How a dispatched job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The job returned a value.
    Done(T),
    /// The job panicked; the payload is the panic message. The worker
    /// survives — panics are contained per job.
    Panicked(String),
}

type DynJob = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<DynJob>,
    shutting_down: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
    idle: Condvar,
    in_flight: AtomicU64,
    panics: AtomicU64,
}

/// A persistent worker pool: jobs are submitted one at a time over the
/// pool's lifetime and deliver their outcome through a per-job callback.
///
/// Compare [`ThreadPool`](crate::ThreadPool), the batch executor used for
/// figure sweeps: a `Dispatcher` trades its submission-order result vector
/// for an open-ended lifetime, which is the shape a daemon needs.
/// Determinism is preserved the same way — jobs are pure functions of
/// their inputs, so *what* each job produces is independent of scheduling;
/// only delivery order varies, and callers (the serving layer) key
/// deliveries by job identity, never by order.
pub struct Dispatcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("workers", &self.workers.len())
            .field("in_flight", &self.in_flight())
            .finish_non_exhaustive()
    }
}

impl Dispatcher {
    /// Spawns a dispatcher with `workers` worker threads (clamped to at
    /// least 1).
    pub fn new(workers: usize) -> Dispatcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            available: Condvar::new(),
            idle: Condvar::new(),
            in_flight: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Dispatcher { shared, workers }
    }

    /// Queues `job`; `complete` receives its outcome on the worker thread.
    /// A panicking job is delivered as [`JobOutcome::Panicked`] with the
    /// panic message — the worker, and every other queued job, is
    /// unaffected.
    ///
    /// Returns `false` (without queuing) if the dispatcher is already
    /// shutting down.
    pub fn submit<T, F, C>(&self, job: F, complete: C) -> bool
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
        C: FnOnce(JobOutcome<T>) + Send + 'static,
    {
        let shared = Arc::clone(&self.shared);
        let wrapped: DynJob = Box::new(move || {
            let outcome = match catch_unwind(AssertUnwindSafe(job)) {
                Ok(value) => JobOutcome::Done(value),
                Err(payload) => {
                    shared.panics.fetch_add(1, Ordering::Relaxed);
                    JobOutcome::Panicked(panic_message(payload.as_ref()))
                }
            };
            // The callback itself is guarded too: a panicking completion
            // handler (say, a vanished client pipe) must not kill the
            // worker.
            let _ = catch_unwind(AssertUnwindSafe(move || complete(outcome)));
        });
        let mut queue = self.shared.queue.lock().unwrap();
        if queue.shutting_down {
            return false;
        }
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        queue.jobs.push_back(wrapped);
        self.shared.available.notify_one();
        true
    }

    /// Jobs queued or running right now.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Jobs whose closure panicked over this dispatcher's lifetime.
    pub fn panic_count(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Blocks until every queued and running job has completed. New
    /// submissions remain possible afterwards; to stop for good, follow
    /// with [`Dispatcher::shutdown`].
    pub fn drain(&self) {
        let mut queue = self.shared.queue.lock().unwrap();
        while self.shared.in_flight.load(Ordering::SeqCst) > 0 {
            queue = self.shared.idle.wait(queue).unwrap();
        }
    }

    /// Drains all in-flight work, then stops and joins every worker.
    /// Submissions racing with shutdown either complete fully or are
    /// rejected by [`Dispatcher::submit`] — never half-run.
    pub fn shutdown(mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.shutting_down = true;
            while self.shared.in_flight.load(Ordering::SeqCst) > 0 {
                queue = self.shared.idle.wait(queue).unwrap();
            }
            self.shared.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        // `shutdown` already joined and emptied `workers`; a plain drop
        // still stops the workers (without waiting for queued jobs to be
        // picked up by anyone — they are dropped unrun).
        let mut queue = self.shared.queue.lock().unwrap();
        queue.shutting_down = true;
        queue.jobs.clear();
        self.shared.available.notify_all();
        drop(queue);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutting_down {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        job();
        if shared.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last job out: wake anyone blocked in drain()/shutdown().
            let _guard = shared.queue.lock().unwrap();
            shared.idle.notify_all();
        }
    }
}

/// Best-effort extraction of a panic payload's message (the two shapes
/// `panic!` actually produces, then a fallback).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn delivers_outcomes_keyed_by_job_identity() {
        let d = Dispatcher::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..16u64 {
            let tx = tx.clone();
            d.submit(move || i * i, move |out| tx.send((i, out)).unwrap());
        }
        let mut got: Vec<_> = (0..16).map(|_| rx.recv().unwrap()).collect();
        got.sort_by_key(|(i, _)| *i);
        for (i, out) in got {
            assert_eq!(out, JobOutcome::Done(i * i));
        }
        d.shutdown();
    }

    #[test]
    fn contains_panics_per_job_and_counts_them() {
        let d = Dispatcher::new(2);
        let (tx, rx) = mpsc::channel();
        let tx2 = tx.clone();
        d.submit(
            || -> u64 { panic!("boom in job") },
            move |out| tx.send(out).unwrap(),
        );
        d.submit(|| 7u64, move |out| tx2.send(out).unwrap());
        let mut outcomes = [rx.recv().unwrap(), rx.recv().unwrap()];
        outcomes.sort_by_key(|o| matches!(o, JobOutcome::Panicked(_)));
        assert_eq!(outcomes[0], JobOutcome::Done(7));
        match &outcomes[1] {
            JobOutcome::Panicked(msg) => assert!(msg.contains("boom in job"), "{msg}"),
            other => panic!("expected a contained panic, got {other:?}"),
        }
        assert_eq!(d.panic_count(), 1);
        d.drain();
        assert_eq!(d.in_flight(), 0);
        d.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_and_rejects_new() {
        let d = Dispatcher::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..8u64 {
            let tx = tx.clone();
            assert!(d.submit(move || i, move |out| tx.send(out).unwrap()));
        }
        drop(tx);
        d.shutdown();
        let mut seen: Vec<_> = rx.into_iter().collect();
        seen.sort_by_key(|o| match o {
            JobOutcome::Done(i) => *i,
            JobOutcome::Panicked(_) => u64::MAX,
        });
        assert_eq!(
            seen,
            (0..8).map(JobOutcome::Done).collect::<Vec<_>>(),
            "shutdown must drain every queued job"
        );
    }

    #[test]
    fn submit_after_shutdown_flag_is_rejected() {
        let d = Dispatcher::new(1);
        {
            let mut q = d.shared.queue.lock().unwrap();
            q.shutting_down = true;
        }
        assert!(!d.submit(|| 1u64, |_| {}));
        {
            let mut q = d.shared.queue.lock().unwrap();
            q.shutting_down = false;
        }
        d.shutdown();
    }

    #[test]
    fn deadline_expires_and_saturates() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_secs(3600));
        let z = Deadline::after(Duration::ZERO);
        assert!(z.expired());
        assert_eq!(z.remaining(), Duration::ZERO);
    }

    #[test]
    fn panicking_completion_callback_does_not_kill_worker() {
        let d = Dispatcher::new(1);
        d.submit(|| 1u64, |_| panic!("callback boom"));
        let (tx, rx) = mpsc::channel();
        d.submit(|| 2u64, move |out| tx.send(out).unwrap());
        assert_eq!(rx.recv().unwrap(), JobOutcome::Done(2));
        d.shutdown();
    }
}
