//! Property suite for the deterministic thread pool: result ordering,
//! panic propagation, and edge cases, at randomized batch shapes and
//! worker counts.

use numa_gpu_exec::{Job, ThreadPool};
use numa_gpu_testkit::gen::{ints, pairs, vecs};
use numa_gpu_testkit::{prop_assert, prop_assert_eq, prop_check};
use std::panic::{catch_unwind, AssertUnwindSafe};

prop_check! {
    #![config = numa_gpu_testkit::prop::Config::new().cases(48)]

    fn results_in_submission_order_at_any_worker_count(
        payloads in vecs(ints(0u64..1 << 32), 0..40),
        workers in ints(1usize..9),
    ) {
        let jobs: Vec<Job<u64>> = payloads
            .iter()
            .map(|&p| Job::new(format!("p{p}"), move || p.wrapping_mul(2654435761)))
            .collect();
        let got = ThreadPool::new(workers).run(jobs);
        let want: Vec<u64> = payloads.iter().map(|p| p.wrapping_mul(2654435761)).collect();
        prop_assert_eq!(got, want);
    }

    fn parallel_equals_single_thread(
        payloads in vecs(ints(0u64..1000), 0..30),
    ) {
        let make = |workers: usize| {
            let jobs: Vec<Job<u64>> = payloads
                .iter()
                .enumerate()
                .map(|(i, &p)| Job::new(format!("j{i}"), move || p + i as u64))
                .collect();
            ThreadPool::new(workers).run(jobs)
        };
        prop_assert_eq!(make(1), make(4));
    }

    fn zero_jobs_yield_empty_results(workers in ints(1usize..17)) {
        let out: Vec<u32> = ThreadPool::new(workers).run(Vec::new());
        prop_assert!(out.is_empty());
    }

    fn panic_is_propagated_with_label(
        (len, workers) in pairs(ints(1usize..20), ints(1usize..5)),
        bad in ints(0usize..20),
    ) {
        let bad = bad % len;
        let jobs: Vec<Job<usize>> = (0..len)
            .map(|i| {
                Job::new(format!("job-{i}"), move || {
                    assert!(i != bad, "deliberate failure in {i}");
                    i
                })
            })
            .collect();
        let pool = ThreadPool::new(workers);
        let err = catch_unwind(AssertUnwindSafe(|| pool.run(jobs)));
        let payload = match err {
            Ok(_) => return Err(numa_gpu_testkit::prop::Failure::fail("panic not propagated")),
            Err(p) => p,
        };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        prop_assert!(
            msg.contains(&format!("`job-{bad}`")),
            "label missing from panic: {msg}"
        );
        prop_assert!(msg.contains("deliberate failure"), "message lost: {msg}");
    }
}
