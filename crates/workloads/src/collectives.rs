//! Collective-traffic workloads: all-reduce and all-to-all exchange
//! phases, parameterized by socket count.
//!
//! Unlike the Table 2 catalog, these workloads are *shaped by the machine*:
//! each builds its exchange schedule from `num_sockets`, so the same name
//! at 8 and 32 sockets produces proportionally wider traffic. Under
//! contiguous CTA scheduling and first-touch placement, a shift of one
//! CTA-block maps onto a shift of one socket, so the [`Pattern::Shifted`]
//! kernels exercise exactly the neighbour (ring), power-of-two (tree), and
//! uniform (all-to-all) paths the fabric topology provides.
//!
//! Every collective has a `-NUMA` variant modelling a topology-aware
//! implementation that aggregates locally before exchanging: the same
//! schedule with a smaller shifted fraction (tree stages also taper with
//! distance). The spread between the naive and `-NUMA` variants is the
//! payoff a NUMA-aware collective library gets from the fabric.

use crate::patterns::{KernelSpec, Pattern, PatternKernel};
use crate::scale::Scale;
use numa_gpu_runtime::{Kernel, Suite, Workload, WorkloadMeta};
use std::sync::Arc;

/// The collective workload names, in fixed order.
pub const COLLECTIVE_NAMES: [&str; 6] = [
    "Coll-AllReduce-Ring",
    "Coll-AllReduce-Ring-NUMA",
    "Coll-AllReduce-Tree",
    "Coll-AllReduce-Tree-NUMA",
    "Coll-AllToAll",
    "Coll-AllToAll-NUMA",
];

/// Ring exchange steps are capped so >8-socket rings stay tractable: the
/// traffic pattern of every step past the first few is identical.
const MAX_RING_STEPS: u32 = 8;

/// Paper-equivalent CTA count the collectives scale from.
const PAPER_CTAS: u64 = 2048;
/// Paper-equivalent footprint in MB.
const PAPER_MB: u64 = 128;

struct CollParams {
    ctas: u32,
    ctas_per_socket: u32,
    footprint: u64,
    ops: u32,
    seed: u64,
}

fn params(index: u64, num_sockets: u8, scale: &Scale) -> CollParams {
    let n = num_sockets.max(1) as u32;
    // CTA count divisible by the socket count, so contiguous-block
    // scheduling gives every socket the same number of CTA chunks.
    let ctas_per_socket = (scale.ctas(PAPER_CTAS) / n).max(1);
    CollParams {
        ctas: ctas_per_socket * n,
        ctas_per_socket,
        footprint: scale.footprint_bytes(PAPER_MB),
        ops: scale.ops(64),
        seed: 0xC0_11EC7 ^ (index.wrapping_mul(0x9E37_79B9)),
    }
}

fn exchange_kernel(p: &CollParams, name: String, stage: u64, pattern: Pattern) -> KernelSpec {
    KernelSpec {
        name,
        ctas: p.ctas,
        warps_per_cta: 4,
        ops_per_warp: p.ops,
        compute_per_mem: 4,
        read_fraction: 0.5,
        pattern,
        region_offset: 0,
        region_bytes: p.footprint,
        seed: p.seed.wrapping_add(stage.wrapping_mul(0x5851_F42D)),
    }
}

/// One kernel per ring step: every socket exchanges with its successor
/// (shift of one CTA block), `shifted_fraction` of the traffic crossing.
fn all_reduce_ring(p: &CollParams, num_sockets: u8, shifted_fraction: f64) -> Vec<KernelSpec> {
    let steps = (num_sockets.max(1) as u32 - 1).clamp(1, MAX_RING_STEPS);
    (0..steps)
        .map(|s| {
            exchange_kernel(
                p,
                format!("ring-step{s}"),
                s as u64,
                Pattern::Shifted {
                    shift_chunks: p.ctas_per_socket as u64,
                    shifted_fraction,
                },
            )
        })
        .collect()
}

/// One kernel per tree stage: stage `k` exchanges with the partner
/// `2^k` sockets ahead. The NUMA-aware variant tapers the shifted
/// fraction with distance (local aggregation first, so less data crosses
/// the wider hops).
fn all_reduce_tree(p: &CollParams, num_sockets: u8, numa_aware: bool) -> Vec<KernelSpec> {
    let n = num_sockets.max(1) as u32;
    // ceil(log2(n)) stages, and a single local stage on a 1-socket machine.
    let stages = n.next_power_of_two().trailing_zeros().max(1);
    (0..stages)
        .map(|k| {
            let fraction = if numa_aware {
                0.5 / (1u64 << k.min(8)) as f64
            } else {
                0.5
            };
            exchange_kernel(
                p,
                format!("tree-stage{k}"),
                k as u64,
                Pattern::Shifted {
                    shift_chunks: (p.ctas_per_socket as u64) << k,
                    shifted_fraction: fraction,
                },
            )
        })
        .collect()
}

/// A single kernel whose shifted accesses land on a uniformly random other
/// socket.
fn all_to_all(p: &CollParams, shifted_fraction: f64) -> Vec<KernelSpec> {
    vec![exchange_kernel(
        p,
        "all-to-all".to_string(),
        0,
        Pattern::Shifted {
            shift_chunks: 0,
            shifted_fraction,
        },
    )]
}

fn build(index: u64, name: &str, num_sockets: u8, scale: &Scale) -> Workload {
    let p = params(index, num_sockets, scale);
    let specs = match name {
        "Coll-AllReduce-Ring" => all_reduce_ring(&p, num_sockets, 0.5),
        "Coll-AllReduce-Ring-NUMA" => all_reduce_ring(&p, num_sockets, 0.2),
        "Coll-AllReduce-Tree" => all_reduce_tree(&p, num_sockets, false),
        "Coll-AllReduce-Tree-NUMA" => all_reduce_tree(&p, num_sockets, true),
        "Coll-AllToAll" => all_to_all(&p, 0.9),
        "Coll-AllToAll-NUMA" => all_to_all(&p, 0.3),
        other => panic!("unknown collective name: {other}"),
    };
    let kernels: Vec<Arc<dyn Kernel>> = specs
        .into_iter()
        .map(|spec| Arc::new(PatternKernel::new(spec)) as Arc<dyn Kernel>)
        .collect();
    Workload {
        meta: WorkloadMeta {
            name: name.to_string(),
            suite: Suite::Other,
            paper_avg_ctas: PAPER_CTAS,
            paper_footprint_mb: PAPER_MB,
            study_set: false,
        },
        kernels,
        footprint_bytes: p.footprint,
    }
}

/// Builds every collective workload for a machine of `num_sockets`
/// sockets, in [`COLLECTIVE_NAMES`] order.
pub fn collectives(num_sockets: u8, scale: &Scale) -> Vec<Workload> {
    COLLECTIVE_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| build(i as u64, name, num_sockets, scale))
        .collect()
}

/// Builds one collective workload by name, or `None` for unknown names.
///
/// # Examples
///
/// ```
/// use numa_gpu_workloads::{collective_by_name, Scale};
///
/// let w = collective_by_name("Coll-AllReduce-Ring", 8, &Scale::quick()).unwrap();
/// assert_eq!(w.kernels.len(), 7); // one kernel per ring step
/// assert!(collective_by_name("Rodinia-BFS", 8, &Scale::quick()).is_none());
/// ```
pub fn collective_by_name(name: &str, num_sockets: u8, scale: &Scale) -> Option<Workload> {
    COLLECTIVE_NAMES
        .iter()
        .enumerate()
        .find(|(_, n)| **n == name)
        .map(|(i, n)| build(i as u64, n, num_sockets, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_collectives_build_at_many_socket_counts() {
        for n in [1u8, 2, 3, 4, 8, 16, 32] {
            for w in collectives(n, &Scale::quick()) {
                assert!(!w.kernels.is_empty(), "{} has no kernels", w.meta.name);
                assert!(w.total_ctas() > 0);
            }
        }
    }

    #[test]
    fn ring_steps_scale_with_sockets_and_cap() {
        let s = Scale::quick();
        let w4 = collective_by_name("Coll-AllReduce-Ring", 4, &s).unwrap();
        assert_eq!(w4.kernels.len(), 3);
        let w32 = collective_by_name("Coll-AllReduce-Ring", 32, &s).unwrap();
        assert_eq!(w32.kernels.len(), MAX_RING_STEPS as usize);
    }

    #[test]
    fn tree_stages_are_log2_sockets() {
        let s = Scale::quick();
        assert_eq!(
            collective_by_name("Coll-AllReduce-Tree", 8, &s)
                .unwrap()
                .kernels
                .len(),
            3
        );
        assert_eq!(
            collective_by_name("Coll-AllReduce-Tree", 32, &s)
                .unwrap()
                .kernels
                .len(),
            5
        );
        assert_eq!(
            collective_by_name("Coll-AllReduce-Tree", 1, &s)
                .unwrap()
                .kernels
                .len(),
            1
        );
    }

    #[test]
    fn cta_count_is_divisible_by_sockets() {
        for n in [2u8, 3, 5, 8, 16, 32] {
            let w = collective_by_name("Coll-AllToAll", n, &Scale::quick()).unwrap();
            assert_eq!(w.total_ctas() % n as u64, 0, "n={n}");
        }
    }

    #[test]
    fn collectives_are_deterministic() {
        let a = collective_by_name("Coll-AllToAll", 8, &Scale::quick()).unwrap();
        let b = collective_by_name("Coll-AllToAll", 8, &Scale::quick()).unwrap();
        let mut pa = a.kernels[0].cta(numa_gpu_types::CtaId::new(0));
        let mut pb = b.kernels[0].cta(numa_gpu_types::CtaId::new(0));
        for _ in 0..64 {
            assert_eq!(pa.next_op(0), pb.next_op(0));
        }
    }

    #[test]
    fn catalog_names_stay_separate_from_collectives() {
        // The Table 2 catalog and the collective set never overlap, so the
        // simulate fallback (`by_name` then `collective_by_name`) is
        // unambiguous.
        for n in COLLECTIVE_NAMES {
            assert!(crate::by_name(n, &Scale::quick()).is_none());
            assert!(collective_by_name(n, 4, &Scale::quick()).is_some());
        }
        for n in crate::WORKLOAD_NAMES {
            assert!(collective_by_name(n, 4, &Scale::quick()).is_none());
        }
    }
}
