//! Parameterized trace-pattern kernels.

use numa_gpu_runtime::Kernel;
use numa_gpu_testkit::rng::DetRng;
use numa_gpu_types::{Addr, CtaId, CtaProgram, MemKind, WarpOp, LINE_SIZE};

/// Memory access pattern family of one kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Each CTA streams once through its own contiguous chunk of the
    /// region (coalesced, no reuse). The classic grey-box pattern.
    Streaming,
    /// CTA-private tile revisited `reuse` times — cache friendly GEMM-like
    /// behaviour.
    Tiled {
        /// How many passes over the tile the trace makes.
        reuse: u32,
    },
    /// Uniformly random lines over the whole region (no locality of any
    /// kind; saturates links in both directions under NUMA).
    RandomUniform,
    /// Random with a hot subset: `hot_fraction` of accesses land in the
    /// first `hot_bytes` of the region.
    HotCold {
        /// Probability of touching the hot subset.
        hot_fraction: f64,
        /// Size of the hot subset in bytes.
        hot_bytes: u64,
    },
    /// Streaming through the CTA's chunk with `halo_fraction` of accesses
    /// going to a neighbouring CTA's chunk (stencil exchange).
    Stencil {
        /// Probability of touching a neighbour chunk.
        halo_fraction: f64,
    },
    /// Reads stream the CTA's chunk; writes scatter into a small shared
    /// output region at the start of the region (parallel reduction /
    /// data gathering — the §4 asymmetric-link motivator).
    Reduction {
        /// Size of the shared output region in bytes.
        output_bytes: u64,
    },
    /// Streaming through the CTA's chunk with `shifted_fraction` of
    /// accesses landing in the chunk `shift_chunks` positions ahead
    /// (wrapping) — the exchange step of collective operations. A shift of
    /// 1 is ring-neighbour traffic (all-reduce), powers of two are tree
    /// stages, and `shift_chunks == 0` picks a uniformly random *other*
    /// chunk per access (all-to-all). Under contiguous CTA scheduling and
    /// first-touch placement, chunk distance maps onto socket distance, so
    /// these patterns exercise exactly the fabric paths the topology
    /// provides.
    Shifted {
        /// Chunks ahead (wrapping) shifted accesses target; 0 = a random
        /// non-local chunk per access.
        shift_chunks: u64,
        /// Probability of an access targeting the shifted chunk.
        shifted_fraction: f64,
    },
    /// `shared_fraction` of accesses touch a shared structure of
    /// `shared_bytes` at the start of the region (graph / lookup-table /
    /// mesh reuse — where NUMA-aware caching wins); the rest stream
    /// privately. Shared touches read with probability
    /// `shared_read_fraction` (1.0 = read-only tables; lower values model
    /// meshes updated in place, which saturate both link directions).
    SharedRead {
        /// Probability of touching the shared structure.
        shared_fraction: f64,
        /// Size of the shared structure in bytes.
        shared_bytes: u64,
        /// Fraction of shared touches that are reads.
        shared_read_fraction: f64,
    },
}

/// Full specification of one synthetic kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Kernel name (for reports).
    pub name: String,
    /// Grid size.
    pub ctas: u32,
    /// Warps per CTA.
    pub warps_per_cta: u32,
    /// Memory operations per warp.
    pub ops_per_warp: u32,
    /// Compute cycles inserted before every memory operation.
    pub compute_per_mem: u32,
    /// Fraction of memory operations that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Access pattern.
    pub pattern: Pattern,
    /// First byte of the region this kernel touches.
    pub region_offset: u64,
    /// Size of the region in bytes.
    pub region_bytes: u64,
    /// RNG seed (combined with CTA/warp ids).
    pub seed: u64,
}

impl KernelSpec {
    /// Total memory operations this kernel will issue.
    pub fn total_mem_ops(&self) -> u64 {
        self.ctas as u64 * self.warps_per_cta as u64 * self.ops_per_warp as u64
    }
}

/// A [`Kernel`] built from a [`KernelSpec`].
#[derive(Debug, Clone)]
pub struct PatternKernel {
    spec: KernelSpec,
}

impl PatternKernel {
    /// Wraps a spec.
    ///
    /// # Panics
    ///
    /// Panics on degenerate specs (zero CTAs/warps/region, or a read
    /// fraction outside `[0, 1]`).
    pub fn new(spec: KernelSpec) -> Self {
        assert!(spec.ctas > 0 && spec.warps_per_cta > 0, "empty kernel");
        assert!(spec.region_bytes >= LINE_SIZE, "region smaller than a line");
        assert!(
            (0.0..=1.0).contains(&spec.read_fraction),
            "read_fraction out of range"
        );
        PatternKernel { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &KernelSpec {
        &self.spec
    }
}

impl Kernel for PatternKernel {
    fn num_ctas(&self) -> u32 {
        self.spec.ctas
    }

    fn warps_per_cta(&self) -> u32 {
        self.spec.warps_per_cta
    }

    fn cta(&self, cta: CtaId) -> Box<dyn CtaProgram> {
        assert!(cta.index() < self.spec.ctas, "CTA outside grid");
        Box::new(PatternProgram::new(&self.spec, cta))
    }

    fn name(&self) -> &str {
        &self.spec.name
    }
}

/// The per-CTA trace generator for a [`PatternKernel`].
///
/// Deterministic: the same `(spec.seed, cta, warp)` always yields the same
/// op stream, so CTAs can be re-created freely.
#[derive(Debug)]
pub struct PatternProgram {
    pattern: Pattern,
    warps: u32,
    ops_per_warp: u32,
    compute_per_mem: u32,
    read_fraction: f64,
    region_base_line: u64,
    region_lines: u64,
    chunk_lines: u64,
    chunk_index: u64,
    num_chunks: u64,
    emitted: Vec<u32>,
    compute_next: Vec<bool>,
    rngs: Vec<DetRng>,
}

impl PatternProgram {
    /// Builds the program for one CTA of the grid.
    pub fn new(spec: &KernelSpec, cta: CtaId) -> Self {
        let region_lines = (spec.region_bytes / LINE_SIZE).max(1);
        // With more CTAs than lines, CTAs share chunks (wrap) instead of
        // walking past the region.
        let num_chunks = (spec.ctas as u64).min(region_lines);
        let chunk_lines = (region_lines / num_chunks).max(1);
        let warps = spec.warps_per_cta;
        let rngs = (0..warps)
            .map(|w| {
                // Mix spec seed, CTA, and warp into one 64-bit seed.
                let s = spec
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((cta.index() as u64) << 20)
                    .wrapping_add(w as u64 + 1);
                DetRng::seed_from_u64(s)
            })
            .collect();
        PatternProgram {
            pattern: spec.pattern,
            warps,
            ops_per_warp: spec.ops_per_warp,
            compute_per_mem: spec.compute_per_mem,
            read_fraction: spec.read_fraction,
            region_base_line: spec.region_offset / LINE_SIZE,
            region_lines,
            chunk_lines,
            chunk_index: cta.index() as u64 % num_chunks,
            num_chunks,
            emitted: vec![0; warps as usize],
            compute_next: vec![spec.compute_per_mem > 0; warps as usize],
            rngs,
        }
    }

    fn chunk_base_line(&self, chunk: u64) -> u64 {
        self.region_base_line + (chunk % self.num_chunks) * self.chunk_lines
    }

    /// Streaming position for op `k` of warp `w` within `chunk`.
    ///
    /// Warps interleave over consecutive lines (warp 0 takes line 0, warp 1
    /// line 1, …), the layout coalesced GPU kernels produce — so a page
    /// whose first touch landed remotely is shared evenly by all warps
    /// instead of serializing one straggler.
    fn stream_line(&self, chunk: u64, w: u32, k: u32) -> u64 {
        let within = k as u64 * self.warps as u64 + w as u64;
        self.chunk_base_line(chunk) + within % self.chunk_lines
    }

    fn gen_op(&mut self, w: u32, k: u32) -> WarpOp {
        let wi = w as usize;
        let read_fraction = self.read_fraction;
        let is_read = |rng: &mut DetRng| rng.random_bool(read_fraction);
        match self.pattern {
            Pattern::Streaming => {
                let line = self.stream_line(self.chunk_index, w, k);
                let kind = if is_read(&mut self.rngs[wi]) {
                    MemKind::Read
                } else {
                    MemKind::Write
                };
                mem(line, kind)
            }
            Pattern::Tiled { reuse } => {
                let tile = (self.ops_per_warp as u64 / reuse.max(1) as u64).max(1);
                let tile = tile.min(self.chunk_lines);
                let within = (w as u64 * tile + k as u64 % tile) % self.chunk_lines;
                let line = self.chunk_base_line(self.chunk_index) + within;
                let kind = if is_read(&mut self.rngs[wi]) {
                    MemKind::Read
                } else {
                    MemKind::Write
                };
                mem(line, kind)
            }
            Pattern::RandomUniform => {
                let line = self.region_base_line + self.rngs[wi].random_range(0..self.region_lines);
                let kind = if is_read(&mut self.rngs[wi]) {
                    MemKind::Read
                } else {
                    MemKind::Write
                };
                mem(line, kind)
            }
            Pattern::HotCold {
                hot_fraction,
                hot_bytes,
            } => {
                let hot_lines = (hot_bytes / LINE_SIZE).clamp(1, self.region_lines);
                let rng = &mut self.rngs[wi];
                let line = if rng.random_bool(hot_fraction) {
                    self.region_base_line + rng.random_range(0..hot_lines)
                } else {
                    self.region_base_line + rng.random_range(0..self.region_lines)
                };
                let kind = if is_read(&mut self.rngs[wi]) {
                    MemKind::Read
                } else {
                    MemKind::Write
                };
                mem(line, kind)
            }
            Pattern::Stencil { halo_fraction } => {
                let rng = &mut self.rngs[wi];
                let chunk = if rng.random_bool(halo_fraction) {
                    let left = rng.random_bool(0.5);
                    if left {
                        (self.chunk_index + self.num_chunks - 1) % self.num_chunks
                    } else {
                        (self.chunk_index + 1) % self.num_chunks
                    }
                } else {
                    self.chunk_index
                };
                let line = self.stream_line(chunk, w, k);
                let kind = if is_read(&mut self.rngs[wi]) {
                    MemKind::Read
                } else {
                    MemKind::Write
                };
                mem(line, kind)
            }
            Pattern::Reduction { output_bytes } => {
                if is_read(&mut self.rngs[wi]) {
                    mem(self.stream_line(self.chunk_index, w, k), MemKind::Read)
                } else {
                    let out_lines = (output_bytes / LINE_SIZE).clamp(1, self.region_lines);
                    let line = self.region_base_line + self.rngs[wi].random_range(0..out_lines);
                    mem(line, MemKind::Write)
                }
            }
            Pattern::Shifted {
                shift_chunks,
                shifted_fraction,
            } => {
                let rng = &mut self.rngs[wi];
                let chunk = if rng.random_bool(shifted_fraction) {
                    let shift = if shift_chunks == 0 {
                        // All-to-all: any chunk but this one (degenerate
                        // single-chunk regions stay local).
                        if self.num_chunks > 1 {
                            1 + rng.random_range(0..self.num_chunks - 1)
                        } else {
                            0
                        }
                    } else {
                        shift_chunks % self.num_chunks
                    };
                    self.chunk_index + shift
                } else {
                    self.chunk_index
                };
                let line = self.stream_line(chunk, w, k);
                let kind = if is_read(&mut self.rngs[wi]) {
                    MemKind::Read
                } else {
                    MemKind::Write
                };
                mem(line, kind)
            }
            Pattern::SharedRead {
                shared_fraction,
                shared_bytes,
                shared_read_fraction,
            } => {
                let rng = &mut self.rngs[wi];
                if rng.random_bool(shared_fraction) {
                    let shared_lines = (shared_bytes / LINE_SIZE).clamp(1, self.region_lines);
                    let line = self.region_base_line + rng.random_range(0..shared_lines);
                    let kind = if rng.random_bool(shared_read_fraction) {
                        MemKind::Read
                    } else {
                        MemKind::Write
                    };
                    mem(line, kind)
                } else {
                    let line = self.stream_line(self.chunk_index, w, k);
                    let kind = if is_read(&mut self.rngs[wi]) {
                        MemKind::Read
                    } else {
                        MemKind::Write
                    };
                    mem(line, kind)
                }
            }
        }
    }
}

fn mem(line: u64, kind: MemKind) -> WarpOp {
    WarpOp::Mem {
        addr: Addr::new(line * LINE_SIZE),
        kind,
    }
}

impl CtaProgram for PatternProgram {
    fn num_warps(&self) -> u32 {
        self.warps
    }

    fn next_op(&mut self, warp: u32) -> Option<WarpOp> {
        let w = warp as usize;
        let k = self.emitted[w];
        if k >= self.ops_per_warp {
            return None;
        }
        if self.compute_next[w] {
            self.compute_next[w] = false;
            return Some(WarpOp::compute(self.compute_per_mem));
        }
        let op = self.gen_op(warp, k);
        self.emitted[w] = k + 1;
        if self.compute_per_mem > 0 {
            self.compute_next[w] = true;
        }
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(pattern: Pattern) -> KernelSpec {
        KernelSpec {
            name: "k".into(),
            ctas: 8,
            warps_per_cta: 2,
            ops_per_warp: 16,
            compute_per_mem: 4,
            read_fraction: 1.0,
            pattern,
            region_offset: 0,
            region_bytes: 1 << 20,
            seed: 42,
        }
    }

    fn collect_ops(p: &mut PatternProgram, warp: u32) -> Vec<WarpOp> {
        std::iter::from_fn(|| p.next_op(warp)).collect()
    }

    #[test]
    fn alternates_compute_and_mem() {
        let s = spec(Pattern::Streaming);
        let mut p = PatternProgram::new(&s, CtaId::new(0));
        let ops = collect_ops(&mut p, 0);
        assert_eq!(ops.len(), 32); // 16 compute + 16 mem
        for pair in ops.chunks(2) {
            assert!(matches!(pair[0], WarpOp::Compute { cycles: 4 }));
            assert!(pair[1].is_mem());
        }
    }

    #[test]
    fn no_compute_when_zero() {
        let mut s = spec(Pattern::Streaming);
        s.compute_per_mem = 0;
        let mut p = PatternProgram::new(&s, CtaId::new(0));
        let ops = collect_ops(&mut p, 0);
        assert_eq!(ops.len(), 16);
        assert!(ops.iter().all(WarpOp::is_mem));
    }

    #[test]
    fn deterministic_regeneration() {
        let s = spec(Pattern::RandomUniform);
        let mut a = PatternProgram::new(&s, CtaId::new(3));
        let mut b = PatternProgram::new(&s, CtaId::new(3));
        assert_eq!(collect_ops(&mut a, 1), collect_ops(&mut b, 1));
    }

    #[test]
    fn different_ctas_different_streams() {
        let s = spec(Pattern::RandomUniform);
        let mut a = PatternProgram::new(&s, CtaId::new(0));
        let mut b = PatternProgram::new(&s, CtaId::new(1));
        assert_ne!(collect_ops(&mut a, 0), collect_ops(&mut b, 0));
    }

    #[test]
    fn streaming_stays_in_cta_chunk() {
        let s = spec(Pattern::Streaming);
        let region_lines = s.region_bytes / LINE_SIZE;
        let chunk_lines = region_lines / s.ctas as u64;
        for cta in 0..s.ctas {
            let mut p = PatternProgram::new(&s, CtaId::new(cta));
            for op in collect_ops(&mut p, 0) {
                if let WarpOp::Mem { addr, .. } = op {
                    let line = addr.raw() / LINE_SIZE;
                    let chunk = line / chunk_lines;
                    assert_eq!(chunk, cta as u64, "line outside CTA chunk");
                }
            }
        }
    }

    #[test]
    fn all_addresses_inside_region() {
        for pattern in [
            Pattern::Streaming,
            Pattern::Tiled { reuse: 4 },
            Pattern::RandomUniform,
            Pattern::HotCold {
                hot_fraction: 0.8,
                hot_bytes: 4096,
            },
            Pattern::Stencil { halo_fraction: 0.3 },
            Pattern::Reduction { output_bytes: 4096 },
            Pattern::Shifted {
                shift_chunks: 1,
                shifted_fraction: 0.6,
            },
            Pattern::Shifted {
                shift_chunks: 0,
                shifted_fraction: 1.0,
            },
            Pattern::SharedRead {
                shared_fraction: 0.5,
                shared_bytes: 65536,
                shared_read_fraction: 0.8,
            },
        ] {
            let mut s = spec(pattern);
            s.read_fraction = 0.5;
            s.region_offset = 1 << 20;
            for cta in [0, 7] {
                let mut p = PatternProgram::new(&s, CtaId::new(cta));
                for w in 0..s.warps_per_cta {
                    for op in collect_ops(&mut p, w) {
                        if let WarpOp::Mem { addr, .. } = op {
                            assert!(addr.raw() >= s.region_offset, "{pattern:?}");
                            assert!(
                                addr.raw() < s.region_offset + s.region_bytes,
                                "{pattern:?}: {addr}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn reduction_writes_go_to_output_region() {
        let mut s = spec(Pattern::Reduction { output_bytes: 2048 });
        s.read_fraction = 0.0; // all writes
        let mut p = PatternProgram::new(&s, CtaId::new(5));
        for op in collect_ops(&mut p, 0) {
            if let WarpOp::Mem { addr, kind } = op {
                assert_eq!(kind, MemKind::Write);
                assert!(addr.raw() < 2048);
            }
        }
    }

    #[test]
    fn shared_read_accesses_are_reads() {
        let s = KernelSpec {
            read_fraction: 0.0, // private accesses would be writes
            pattern: Pattern::SharedRead {
                shared_fraction: 1.0,
                shared_bytes: 4096,
                shared_read_fraction: 1.0,
            },
            ..spec(Pattern::Streaming)
        };
        let mut p = PatternProgram::new(&s, CtaId::new(0));
        for op in collect_ops(&mut p, 0) {
            if let WarpOp::Mem { kind, addr } = op {
                assert_eq!(kind, MemKind::Read);
                assert!(addr.raw() < 4096);
            }
        }
    }

    #[test]
    fn tiled_reuses_lines() {
        let s = KernelSpec {
            compute_per_mem: 0,
            ..spec(Pattern::Tiled { reuse: 4 })
        };
        let mut p = PatternProgram::new(&s, CtaId::new(0));
        let lines: Vec<u64> = collect_ops(&mut p, 0)
            .iter()
            .filter_map(|op| match op {
                WarpOp::Mem { addr, .. } => Some(addr.raw() / LINE_SIZE),
                _ => None,
            })
            .collect();
        let unique: std::collections::HashSet<_> = lines.iter().collect();
        assert_eq!(unique.len(), 4); // 16 ops / reuse 4
    }

    #[test]
    fn shifted_full_fraction_lands_in_the_next_chunk() {
        let s = KernelSpec {
            compute_per_mem: 0,
            ..spec(Pattern::Shifted {
                shift_chunks: 1,
                shifted_fraction: 1.0,
            })
        };
        let region_lines = s.region_bytes / LINE_SIZE;
        let chunk_lines = region_lines / s.ctas as u64;
        for cta in 0..s.ctas {
            let mut p = PatternProgram::new(&s, CtaId::new(cta));
            for op in collect_ops(&mut p, 0) {
                if let WarpOp::Mem { addr, .. } = op {
                    let chunk = (addr.raw() / LINE_SIZE) / chunk_lines;
                    assert_eq!(chunk, (cta as u64 + 1) % s.ctas as u64);
                }
            }
        }
    }

    #[test]
    fn shifted_all_to_all_avoids_the_local_chunk() {
        let s = KernelSpec {
            compute_per_mem: 0,
            ..spec(Pattern::Shifted {
                shift_chunks: 0,
                shifted_fraction: 1.0,
            })
        };
        let region_lines = s.region_bytes / LINE_SIZE;
        let chunk_lines = region_lines / s.ctas as u64;
        let mut p = PatternProgram::new(&s, CtaId::new(2));
        for op in collect_ops(&mut p, 0) {
            if let WarpOp::Mem { addr, .. } = op {
                let chunk = (addr.raw() / LINE_SIZE) / chunk_lines;
                assert_ne!(chunk, 2, "all-to-all access landed locally");
            }
        }
    }

    #[test]
    fn kernel_trait_roundtrip() {
        let k = PatternKernel::new(spec(Pattern::Streaming));
        assert_eq!(k.num_ctas(), 8);
        assert_eq!(k.warps_per_cta(), 2);
        assert_eq!(k.name(), "k");
        let mut cta = k.cta(CtaId::new(0));
        assert_eq!(cta.num_warps(), 2);
        assert!(cta.next_op(0).is_some());
    }

    #[test]
    #[should_panic(expected = "CTA outside grid")]
    fn out_of_grid_cta_panics() {
        let k = PatternKernel::new(spec(Pattern::Streaming));
        let _ = k.cta(CtaId::new(99));
    }

    #[test]
    fn mem_ops_count_matches_spec() {
        let s = spec(Pattern::Streaming);
        assert_eq!(s.total_mem_ops(), 8 * 2 * 16);
    }
}
