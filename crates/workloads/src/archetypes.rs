//! Kernel-sequence builders for the workload communication archetypes.
//!
//! Each paper benchmark in the catalog is an instance of one of these
//! archetypes with tuned parameters (shared fractions, read/write mixes,
//! phase structures). The archetypes were chosen to span the behaviours
//! the paper's mechanisms react to; see the crate docs.

use crate::patterns::{KernelSpec, Pattern};
use crate::scale::Scale;

/// Common inputs to every archetype builder.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Params {
    /// CTAs per (full-sized) kernel.
    pub ctas: u32,
    /// Bytes of the workload's region.
    pub footprint: u64,
    /// Base RNG seed (unique per workload).
    pub seed: u64,
    /// Scale knobs.
    pub scale: Scale,
}

impl Params {
    /// Like [`Params::base`] but each kernel works a different slice of the
    /// footprint (successive layers/sweeps read fresh buffers), so no
    /// artificial inter-kernel cache fit appears.
    fn rotated(&self, kernels: u32, name: &str, kernel_idx: u64, pattern: Pattern) -> KernelSpec {
        let slices = kernels.max(1) as u64;
        let slice_bytes = (self.footprint / slices).max(numa_gpu_types::LINE_SIZE);
        KernelSpec {
            region_offset: (kernel_idx % slices) * slice_bytes,
            region_bytes: slice_bytes,
            ..self.base(name, kernel_idx, pattern)
        }
    }

    fn base(&self, name: &str, kernel_idx: u64, pattern: Pattern) -> KernelSpec {
        KernelSpec {
            name: format!("{name}#{kernel_idx}"),
            ctas: self.ctas,
            warps_per_cta: 4,
            ops_per_warp: self.scale.ops(64),
            compute_per_mem: 4,
            read_fraction: 0.75,
            pattern,
            region_offset: 0,
            region_bytes: self.footprint,
            seed: self.seed.wrapping_add(kernel_idx.wrapping_mul(0x5bd1e995)),
        }
    }
}

/// Compute-dominated kernels: long arithmetic bursts between rare, cache
/// friendly accesses (Bitcoin-Crypto class). Insensitive to NUMA.
pub(crate) fn compute_bound(p: Params, kernels: u32) -> Vec<KernelSpec> {
    (0..kernels as u64)
        .map(|i| KernelSpec {
            ops_per_warp: p.scale.ops(24),
            compute_per_mem: 160,
            read_fraction: 0.9,
            ..p.base("compute", i, Pattern::Tiled { reuse: 4 })
        })
        .collect()
}

/// Pure streaming with CTA-private chunks (Stream-Triad class): scales with
/// software locality alone.
pub(crate) fn streaming(p: Params, kernels: u32, read_fraction: f64) -> Vec<KernelSpec> {
    (0..kernels as u64)
        .map(|i| KernelSpec {
            read_fraction,
            ..p.rotated(kernels, "stream", i, Pattern::Streaming)
        })
        .collect()
}

/// Dense tiled compute with heavy reuse (GEMM / cuDNN layer class).
pub(crate) fn tiled(p: Params, kernels: u32, reuse: u32, compute: u32) -> Vec<KernelSpec> {
    (0..kernels as u64)
        .map(|i| KernelSpec {
            ops_per_warp: p.scale.ops(64),
            compute_per_mem: compute,
            read_fraction: 0.8,
            ..p.rotated(kernels, "tile", i, Pattern::Tiled { reuse })
        })
        .collect()
}

/// Iterative stencil with halo exchange to neighbour chunks (Hotspot,
/// Pathfinder, SNAP, MiniAMR class).
pub(crate) fn stencil(p: Params, iterations: u32, halo_fraction: f64) -> Vec<KernelSpec> {
    (0..iterations as u64)
        .map(|i| KernelSpec {
            read_fraction: 0.7,
            ..p.base("stencil", i, Pattern::Stencil { halo_fraction })
        })
        .collect()
}

/// Irregular workload reading a shared structure from every socket
/// (graphs, lookup tables, neighbour lists — Euler3D, RSBench, CoMD,
/// Lonestar class). The NUMA-aware cache's prime target.
pub(crate) fn irregular_shared(
    p: Params,
    iterations: u32,
    shared_fraction: f64,
    shared_bytes: u64,
    read_fraction: f64,
) -> Vec<KernelSpec> {
    irregular_shared_rw(
        p,
        iterations,
        shared_fraction,
        shared_bytes,
        read_fraction,
        1.0,
    )
}

/// [`irregular_shared`] with in-place updates of the shared structure:
/// `shared_read_fraction < 1` sends write traffic at the shared region too
/// (unstructured meshes — saturates both link directions).
pub(crate) fn irregular_shared_rw(
    p: Params,
    iterations: u32,
    shared_fraction: f64,
    shared_bytes: u64,
    read_fraction: f64,
    shared_read_fraction: f64,
) -> Vec<KernelSpec> {
    (0..iterations as u64)
        .map(|i| KernelSpec {
            read_fraction,
            warps_per_cta: 8,
            ops_per_warp: p.scale.ops(32),
            ..p.base(
                "irregular",
                i,
                Pattern::SharedRead {
                    shared_fraction,
                    shared_bytes,
                    shared_read_fraction,
                },
            )
        })
        .collect()
}

/// Uniformly random traffic over the whole footprint with a balanced
/// read/write mix: saturates both link directions so only more raw
/// bandwidth helps. Kept for constructing fully cache-hostile baselines
/// (the shipped catalog favours [`hot_cold`], which adds the reuse the
/// paper's AMG/Lulesh-class workloads demonstrably have).
#[allow(dead_code)]
pub(crate) fn random_mixed(p: Params, kernels: u32, read_fraction: f64) -> Vec<KernelSpec> {
    (0..kernels as u64)
        .map(|i| KernelSpec {
            read_fraction,
            warps_per_cta: 8,
            ops_per_warp: p.scale.ops(32),
            ..p.base("random", i, Pattern::RandomUniform)
        })
        .collect()
}

/// Random with a hot working set (frontier / worklist workloads — BFS,
/// SSSP, MCB class).
pub(crate) fn hot_cold(
    p: Params,
    kernels: u32,
    hot_fraction: f64,
    hot_bytes: u64,
    read_fraction: f64,
) -> Vec<KernelSpec> {
    (0..kernels as u64)
        .map(|i| KernelSpec {
            read_fraction,
            warps_per_cta: 8,
            ops_per_warp: p.scale.ops(32),
            ..p.base(
                "hotcold",
                i,
                Pattern::HotCold {
                    hot_fraction,
                    hot_bytes,
                },
            )
        })
        .collect()
}

/// Alternating produce/reduce phases (HPGMG, Nekbone class): a streaming
/// kernel touches the whole region (placing the output pages on socket 0's
/// CTAs under first-touch), then a write-heavy reduction scatters into that
/// shared output range — the asymmetric-link scenario of Figure 5.
pub(crate) fn reduction_phased(p: Params, iterations: u32, output_bytes: u64) -> Vec<KernelSpec> {
    let mut kernels = Vec::new();
    for i in 0..iterations as u64 {
        kernels.push(KernelSpec {
            read_fraction: 0.85,
            ..p.base("produce", 2 * i, Pattern::Streaming)
        });
        kernels.push(KernelSpec {
            read_fraction: 0.3,
            ops_per_warp: p.scale.ops(48),
            ..p.base("reduce", 2 * i + 1, Pattern::Reduction { output_bytes })
        });
    }
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params {
            ctas: 128,
            footprint: 8 << 20,
            seed: 1,
            scale: Scale::quick(),
        }
    }

    #[test]
    fn phased_builders_emit_expected_counts() {
        assert_eq!(compute_bound(params(), 2).len(), 2);
        assert_eq!(streaming(params(), 3, 0.7).len(), 3);
        assert_eq!(stencil(params(), 4, 0.1).len(), 4);
        assert_eq!(reduction_phased(params(), 3, 1 << 20).len(), 6);
    }

    #[test]
    fn seeds_differ_across_kernels() {
        let ks = streaming(params(), 2, 0.7);
        assert_ne!(ks[0].seed, ks[1].seed);
    }

    #[test]
    fn reduction_phases_alternate_rw_mix() {
        let ks = reduction_phased(params(), 1, 1 << 20);
        assert!(ks[0].read_fraction > 0.8);
        assert!(ks[1].read_fraction < 0.5);
    }

    #[test]
    fn all_specs_valid_for_pattern_kernel() {
        use crate::patterns::PatternKernel;
        let mut all = Vec::new();
        all.extend(compute_bound(params(), 1));
        all.extend(streaming(params(), 1, 0.67));
        all.extend(tiled(params(), 1, 8, 12));
        all.extend(stencil(params(), 1, 0.1));
        all.extend(irregular_shared(params(), 1, 0.8, 1 << 20, 0.9));
        all.extend(random_mixed(params(), 1, 0.6));
        all.extend(hot_cold(params(), 1, 0.5, 1 << 20, 0.7));
        all.extend(reduction_phased(params(), 1, 1 << 20));
        for spec in all {
            let _ = PatternKernel::new(spec); // must not panic
        }
    }
}
