//! The 41 evaluation workloads (paper Table 2), with normalized names
//! (the paper's typos `Rodnia-Pathfinder` / `cudann` are corrected).

use crate::archetypes::{self as arch, Params};
use crate::patterns::{KernelSpec, PatternKernel};
use crate::scale::Scale;
use numa_gpu_runtime::{Kernel, Suite, Workload, WorkloadMeta};
use std::sync::Arc;

/// One row of Table 2 plus its archetype mapping.
struct Entry {
    name: &'static str,
    suite: Suite,
    paper_ctas: u64,
    paper_mb: u64,
    /// Grey-box workloads reach ≥99% of theoretical scaling with
    /// software-only locality (excluded from the microarchitecture study
    /// set but kept in final means).
    grey: bool,
}

/// All 41 workload names, in Table 2 order.
pub const WORKLOAD_NAMES: [&str; 41] = [
    "ML-GoogLeNet-cudnn-Lev2",
    "ML-AlexNet-cudnn-Lev2",
    "ML-OverFeat-cudnn-Lev3",
    "ML-AlexNet-cudnn-Lev4",
    "ML-AlexNet-ConvNet2",
    "Rodinia-Backprop",
    "Rodinia-Euler3D",
    "Rodinia-BFS",
    "Rodinia-Gaussian",
    "Rodinia-Hotspot",
    "Rodinia-Kmeans",
    "Rodinia-Pathfinder",
    "Rodinia-Srad",
    "HPC-SNAP",
    "HPC-Nekbone-Large",
    "HPC-MiniAMR",
    "HPC-MiniContact-Mesh1",
    "HPC-MiniContact-Mesh2",
    "HPC-Lulesh-Unstruct-Mesh1",
    "HPC-Lulesh-Unstruct-Mesh2",
    "HPC-AMG",
    "HPC-RSBench",
    "HPC-MCB",
    "HPC-NAMD2.9",
    "HPC-RabbitCT",
    "HPC-Lulesh",
    "HPC-CoMD",
    "HPC-CoMD-Wa",
    "HPC-CoMD-Ta",
    "HPC-HPGMG-UVM",
    "HPC-HPGMG",
    "Lonestar-SP",
    "Lonestar-MST-Graph",
    "Lonestar-MST-Mesh",
    "Lonestar-SSSP-Wln",
    "Lonestar-DMR",
    "Lonestar-SSSP-Wlc",
    "Lonestar-SSSP",
    "Other-Stream-Triad",
    "Other-Optix-Raytracing",
    "Other-Bitcoin-Crypto",
];

const TABLE2: [Entry; 41] = [
    Entry {
        name: "ML-GoogLeNet-cudnn-Lev2",
        suite: Suite::Ml,
        paper_ctas: 6272,
        paper_mb: 1205,
        grey: false,
    },
    Entry {
        name: "ML-AlexNet-cudnn-Lev2",
        suite: Suite::Ml,
        paper_ctas: 1250,
        paper_mb: 832,
        grey: false,
    },
    Entry {
        name: "ML-OverFeat-cudnn-Lev3",
        suite: Suite::Ml,
        paper_ctas: 1800,
        paper_mb: 388,
        grey: true,
    },
    Entry {
        name: "ML-AlexNet-cudnn-Lev4",
        suite: Suite::Ml,
        paper_ctas: 1014,
        paper_mb: 32,
        grey: false,
    },
    Entry {
        name: "ML-AlexNet-ConvNet2",
        suite: Suite::Ml,
        paper_ctas: 6075,
        paper_mb: 97,
        grey: true,
    },
    Entry {
        name: "Rodinia-Backprop",
        suite: Suite::Rodinia,
        paper_ctas: 4096,
        paper_mb: 160,
        grey: true,
    },
    Entry {
        name: "Rodinia-Euler3D",
        suite: Suite::Rodinia,
        paper_ctas: 1008,
        paper_mb: 25,
        grey: false,
    },
    Entry {
        name: "Rodinia-BFS",
        suite: Suite::Rodinia,
        paper_ctas: 1954,
        paper_mb: 38,
        grey: false,
    },
    Entry {
        name: "Rodinia-Gaussian",
        suite: Suite::Rodinia,
        paper_ctas: 2599,
        paper_mb: 78,
        grey: false,
    },
    Entry {
        name: "Rodinia-Hotspot",
        suite: Suite::Rodinia,
        paper_ctas: 7396,
        paper_mb: 64,
        grey: false,
    },
    Entry {
        name: "Rodinia-Kmeans",
        suite: Suite::Rodinia,
        paper_ctas: 3249,
        paper_mb: 221,
        grey: true,
    },
    Entry {
        name: "Rodinia-Pathfinder",
        suite: Suite::Rodinia,
        paper_ctas: 4630,
        paper_mb: 1570,
        grey: false,
    },
    Entry {
        name: "Rodinia-Srad",
        suite: Suite::Rodinia,
        paper_ctas: 16384,
        paper_mb: 98,
        grey: true,
    },
    Entry {
        name: "HPC-SNAP",
        suite: Suite::Hpc,
        paper_ctas: 200,
        paper_mb: 744,
        grey: false,
    },
    Entry {
        name: "HPC-Nekbone-Large",
        suite: Suite::Hpc,
        paper_ctas: 5583,
        paper_mb: 294,
        grey: false,
    },
    Entry {
        name: "HPC-MiniAMR",
        suite: Suite::Hpc,
        paper_ctas: 76033,
        paper_mb: 2752,
        grey: false,
    },
    Entry {
        name: "HPC-MiniContact-Mesh1",
        suite: Suite::Hpc,
        paper_ctas: 250,
        paper_mb: 21,
        grey: false,
    },
    Entry {
        name: "HPC-MiniContact-Mesh2",
        suite: Suite::Hpc,
        paper_ctas: 15423,
        paper_mb: 257,
        grey: false,
    },
    Entry {
        name: "HPC-Lulesh-Unstruct-Mesh1",
        suite: Suite::Hpc,
        paper_ctas: 435,
        paper_mb: 19,
        grey: false,
    },
    Entry {
        name: "HPC-Lulesh-Unstruct-Mesh2",
        suite: Suite::Hpc,
        paper_ctas: 4940,
        paper_mb: 208,
        grey: false,
    },
    Entry {
        name: "HPC-AMG",
        suite: Suite::Hpc,
        paper_ctas: 241_549,
        paper_mb: 3744,
        grey: false,
    },
    Entry {
        name: "HPC-RSBench",
        suite: Suite::Hpc,
        paper_ctas: 7813,
        paper_mb: 19,
        grey: false,
    },
    Entry {
        name: "HPC-MCB",
        suite: Suite::Hpc,
        paper_ctas: 5001,
        paper_mb: 162,
        grey: false,
    },
    Entry {
        name: "HPC-NAMD2.9",
        suite: Suite::Hpc,
        paper_ctas: 3888,
        paper_mb: 88,
        grey: false,
    },
    Entry {
        name: "HPC-RabbitCT",
        suite: Suite::Hpc,
        paper_ctas: 131_072,
        paper_mb: 524,
        grey: true,
    },
    Entry {
        name: "HPC-Lulesh",
        suite: Suite::Hpc,
        paper_ctas: 12_202,
        paper_mb: 578,
        grey: false,
    },
    Entry {
        name: "HPC-CoMD",
        suite: Suite::Hpc,
        paper_ctas: 3588,
        paper_mb: 319,
        grey: false,
    },
    Entry {
        name: "HPC-CoMD-Wa",
        suite: Suite::Hpc,
        paper_ctas: 13_691,
        paper_mb: 393,
        grey: false,
    },
    Entry {
        name: "HPC-CoMD-Ta",
        suite: Suite::Hpc,
        paper_ctas: 5724,
        paper_mb: 394,
        grey: false,
    },
    Entry {
        name: "HPC-HPGMG-UVM",
        suite: Suite::Hpc,
        paper_ctas: 10_436,
        paper_mb: 1975,
        grey: false,
    },
    Entry {
        name: "HPC-HPGMG",
        suite: Suite::Hpc,
        paper_ctas: 10_506,
        paper_mb: 1571,
        grey: false,
    },
    Entry {
        name: "Lonestar-SP",
        suite: Suite::Lonestar,
        paper_ctas: 75,
        paper_mb: 8,
        grey: false,
    },
    Entry {
        name: "Lonestar-MST-Graph",
        suite: Suite::Lonestar,
        paper_ctas: 770,
        paper_mb: 86,
        grey: false,
    },
    Entry {
        name: "Lonestar-MST-Mesh",
        suite: Suite::Lonestar,
        paper_ctas: 895,
        paper_mb: 75,
        grey: false,
    },
    Entry {
        name: "Lonestar-SSSP-Wln",
        suite: Suite::Lonestar,
        paper_ctas: 60,
        paper_mb: 21,
        grey: false,
    },
    Entry {
        name: "Lonestar-DMR",
        suite: Suite::Lonestar,
        paper_ctas: 82,
        paper_mb: 248,
        grey: true,
    },
    Entry {
        name: "Lonestar-SSSP-Wlc",
        suite: Suite::Lonestar,
        paper_ctas: 163,
        paper_mb: 21,
        grey: false,
    },
    Entry {
        name: "Lonestar-SSSP",
        suite: Suite::Lonestar,
        paper_ctas: 1046,
        paper_mb: 38,
        grey: false,
    },
    Entry {
        name: "Other-Stream-Triad",
        suite: Suite::Other,
        paper_ctas: 699_051,
        paper_mb: 3146,
        grey: true,
    },
    Entry {
        name: "Other-Optix-Raytracing",
        suite: Suite::Other,
        paper_ctas: 3072,
        paper_mb: 87,
        grey: false,
    },
    Entry {
        name: "Other-Bitcoin-Crypto",
        suite: Suite::Other,
        paper_ctas: 60,
        paper_mb: 5898,
        grey: true,
    },
];

const MB: u64 = 1024 * 1024;

/// Builds the kernel sequence for one named workload.
fn build_kernels(name: &str, p: Params) -> Vec<KernelSpec> {
    let fp = p.footprint;
    match name {
        // ML: dense layers with tile reuse; AlexNet-Lev2 has the
        // channel-reduction phases where dynamic links shine.
        "ML-GoogLeNet-cudnn-Lev2" => arch::tiled(p, 4, 6, 12),
        "ML-AlexNet-cudnn-Lev2" => {
            let mut ks = arch::irregular_shared(p, 2, 0.4, (fp / 4).min(3 * MB), 0.85);
            ks.extend(arch::reduction_phased(p, 2, fp / 16));
            ks
        }
        "ML-OverFeat-cudnn-Lev3" => arch::streaming(p, 2, 0.8),
        "ML-AlexNet-cudnn-Lev4" => arch::tiled(p, 3, 8, 10),
        "ML-AlexNet-ConvNet2" => arch::streaming(p, 2, 0.75),

        // Rodinia.
        "Rodinia-Backprop" => arch::streaming(p, 2, 0.7),
        "Rodinia-Euler3D" => {
            let mut ks = arch::irregular_shared_rw(p, 2, 0.8, (fp / 8).min(5 * MB / 2), 0.6, 0.65);
            for k in &mut ks {
                k.ops_per_warp *= 3;
            }
            ks
        }
        "Rodinia-BFS" => arch::hot_cold(p, 3, 0.55, MB, 0.75),
        "Rodinia-Gaussian" => arch::irregular_shared(p, 3, 0.35, (fp / 8).min(MB), 0.7),
        "Rodinia-Hotspot" => arch::stencil(p, 3, 0.08),
        "Rodinia-Kmeans" => arch::streaming(p, 2, 0.85),
        "Rodinia-Pathfinder" => arch::stencil(p, 3, 0.04),
        "Rodinia-Srad" => arch::streaming(p, 3, 0.7),

        // HPC.
        "HPC-SNAP" => arch::stencil(p, 3, 0.12),
        "HPC-Nekbone-Large" => {
            let mut ks = arch::tiled(p, 2, 4, 8);
            ks.extend(arch::reduction_phased(p, 2, fp / 32));
            ks
        }
        "HPC-MiniAMR" => arch::stencil(p, 2, 0.05),
        "HPC-MiniContact-Mesh1" => arch::irregular_shared(p, 3, 0.5, fp / 2, 0.75),
        "HPC-MiniContact-Mesh2" => {
            let mut ks = arch::irregular_shared(p, 3, 0.45, 4 * MB, 0.75);
            for k in &mut ks {
                k.ops_per_warp = p.scale.ops(48);
            }
            ks
        }
        "HPC-Lulesh-Unstruct-Mesh1" => arch::irregular_shared_rw(p, 4, 0.65, 2 * MB, 0.6, 0.6),
        "HPC-Lulesh-Unstruct-Mesh2" => arch::irregular_shared_rw(p, 4, 0.6, 2 * MB, 0.6, 0.6),
        "HPC-AMG" => arch::hot_cold(p, 3, 0.55, 7 * MB / 2, 0.6),
        "HPC-RSBench" => {
            let mut ks = arch::irregular_shared(p, 4, 0.9, 4 * MB, 0.95);
            for k in &mut ks {
                k.compute_per_mem = 8;
            }
            ks
        }
        "HPC-MCB" => {
            let mut ks = arch::hot_cold(p, 3, 0.6, 7 * MB / 2, 0.7);
            for k in &mut ks {
                k.ops_per_warp = p.scale.ops(48);
            }
            ks
        }
        "HPC-NAMD2.9" => arch::irregular_shared(p, 3, 0.35, MB, 0.8),
        "HPC-RabbitCT" => arch::tiled(p, 2, 6, 16),
        "HPC-Lulesh" => {
            let mut ks = arch::hot_cold(p, 2, 0.45, 2 * MB, 0.6);
            ks.extend(arch::reduction_phased(p, 1, fp / 32));
            ks
        }
        "HPC-CoMD" => arch::irregular_shared(p, 3, 0.5, 2 * MB, 0.8),
        "HPC-CoMD-Wa" => {
            let mut ks = arch::irregular_shared(p, 3, 0.45, 4 * MB, 0.8);
            for k in &mut ks {
                k.ops_per_warp = p.scale.ops(48);
            }
            ks
        }
        "HPC-CoMD-Ta" => {
            let mut ks = arch::irregular_shared(p, 4, 0.7, 4 * MB, 0.9);
            for k in &mut ks {
                k.ops_per_warp = p.scale.ops(48);
            }
            ks
        }
        "HPC-HPGMG-UVM" => arch::reduction_phased(p, 3, fp / 64),
        "HPC-HPGMG" => arch::reduction_phased(p, 3, fp / 32),

        // Lonestar.
        "Lonestar-SP" => arch::irregular_shared(p, 3, 0.7, fp / 2, 0.85),
        "Lonestar-MST-Graph" => arch::irregular_shared(p, 3, 0.55, MB, 0.75),
        "Lonestar-MST-Mesh" => arch::irregular_shared(p, 4, 0.6, MB, 0.75),
        "Lonestar-SSSP-Wln" => arch::hot_cold(p, 3, 0.5, fp / 8, 0.7),
        "Lonestar-DMR" => arch::streaming(p, 2, 0.7),
        "Lonestar-SSSP-Wlc" => arch::hot_cold(p, 3, 0.5, fp / 8, 0.7),
        "Lonestar-SSSP" => arch::hot_cold(p, 3, 0.55, MB, 0.72),

        // Other.
        "Other-Stream-Triad" => arch::streaming(p, 1, 0.67),
        "Other-Optix-Raytracing" => {
            let mut ks = arch::irregular_shared(p, 3, 0.8, MB, 1.0);
            for k in &mut ks {
                k.compute_per_mem = 10;
            }
            ks
        }
        "Other-Bitcoin-Crypto" => arch::compute_bound(p, 1),
        // simlint: allow(S004, reason = "private fn fed only from the static catalog table; an unknown name is a table/builder mismatch")
        other => panic!("unknown workload name: {other}"),
    }
}

fn build(entry: &Entry, index: u64, scale: &Scale) -> Workload {
    let params = Params {
        ctas: scale.ctas(entry.paper_ctas),
        footprint: scale.footprint_bytes(entry.paper_mb),
        seed: 0xC0FFEE ^ (index * 0x1234_5678_9ABC),
        scale: *scale,
    };
    let kernels: Vec<Arc<dyn Kernel>> = build_kernels(entry.name, params)
        .into_iter()
        .map(|spec| Arc::new(PatternKernel::new(spec)) as Arc<dyn Kernel>)
        .collect();
    Workload {
        meta: WorkloadMeta {
            name: entry.name.to_string(),
            suite: entry.suite,
            paper_avg_ctas: entry.paper_ctas,
            paper_footprint_mb: entry.paper_mb,
            study_set: !entry.grey,
        },
        kernels,
        footprint_bytes: params.footprint,
    }
}

/// Builds all 41 workloads at the given scale, in Table 2 order.
///
/// # Examples
///
/// ```
/// use numa_gpu_workloads::{catalog, Scale};
/// let all = catalog(&Scale::quick());
/// assert_eq!(all.len(), 41);
/// ```
pub fn catalog(scale: &Scale) -> Vec<Workload> {
    TABLE2
        .iter()
        .enumerate()
        .map(|(i, e)| build(e, i as u64, scale))
        .collect()
}

/// The 32-workload microarchitecture study set (Figures 6, 8, 9, 10): all
/// workloads that do *not* reach ≥99% of theoretical scaling with software
/// locality alone.
pub fn study_set(scale: &Scale) -> Vec<Workload> {
    catalog(scale)
        .into_iter()
        .filter(|w| w.meta.study_set)
        .collect()
}

/// Builds one workload by its Table 2 name, or `None` for unknown names.
pub fn by_name(name: &str, scale: &Scale) -> Option<Workload> {
    TABLE2
        .iter()
        .enumerate()
        .find(|(_, e)| e.name == name)
        .map(|(i, e)| build(e, i as u64, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_41_build() {
        let all = catalog(&Scale::quick());
        assert_eq!(all.len(), 41);
        for w in &all {
            assert!(!w.kernels.is_empty(), "{} has no kernels", w.meta.name);
            assert!(w.total_ctas() > 0);
            assert!(w.footprint_bytes >= 2 * MB);
        }
    }

    #[test]
    fn names_match_constant_order() {
        let all = catalog(&Scale::quick());
        for (w, name) in all.iter().zip(WORKLOAD_NAMES) {
            assert_eq!(w.meta.name, name);
        }
    }

    #[test]
    fn study_set_is_32() {
        assert_eq!(study_set(&Scale::quick()).len(), 32);
    }

    #[test]
    fn nine_grey_workloads() {
        let grey = catalog(&Scale::quick())
            .into_iter()
            .filter(|w| !w.meta.study_set)
            .count();
        assert_eq!(grey, 9);
    }

    #[test]
    fn by_name_finds_and_rejects() {
        assert!(by_name("Rodinia-Euler3D", &Scale::quick()).is_some());
        assert!(by_name("Not-A-Workload", &Scale::quick()).is_none());
    }

    #[test]
    fn table2_values_preserved() {
        let w = by_name("HPC-AMG", &Scale::quick()).unwrap();
        assert_eq!(w.meta.paper_avg_ctas, 241_549);
        assert_eq!(w.meta.paper_footprint_mb, 3744);
    }

    #[test]
    fn fig2_criterion_at_8x_is_80_percent() {
        // 33 of 41 workloads fill an 8x (512-SM) GPU — the paper's ~80%.
        let all = catalog(&Scale::quick());
        let filling = all.iter().filter(|w| w.fills_gpu(512)).count();
        assert_eq!(filling, 33);
    }

    #[test]
    fn workload_builds_are_deterministic() {
        let a = by_name("Rodinia-Euler3D", &Scale::quick()).unwrap();
        let b = by_name("Rodinia-Euler3D", &Scale::quick()).unwrap();
        // Same kernel count and the same first-CTA trace.
        assert_eq!(a.kernels.len(), b.kernels.len());
        let mut pa = a.kernels[0].cta(numa_gpu_types::CtaId::new(0));
        let mut pb = b.kernels[0].cta(numa_gpu_types::CtaId::new(0));
        for _ in 0..64 {
            assert_eq!(pa.next_op(0), pb.next_op(0));
        }
    }

    #[test]
    fn kernels_respect_warp_limits() {
        for w in catalog(&Scale::quick()) {
            for k in &w.kernels {
                assert!(k.warps_per_cta() >= 1 && k.warps_per_cta() <= 64);
            }
        }
    }
}
