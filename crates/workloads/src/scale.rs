//! Uniform down-scaling of workloads for tractable simulation.

/// Scale factors applied to every catalog workload.
///
/// The paper's traces run minutes on a production simulator; these knobs
/// shrink grids, footprints, and per-warp trace lengths proportionally so a
/// full 41-benchmark sweep finishes in minutes on a laptop while preserving
/// each workload's communication structure.
///
/// # Examples
///
/// ```
/// use numa_gpu_workloads::Scale;
///
/// let s = Scale::full();
/// assert!(s.max_ctas >= Scale::quick().max_ctas);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Divide paper CTA counts by this (then clamp).
    pub cta_divisor: u32,
    /// Minimum simulated CTAs per kernel.
    pub min_ctas: u32,
    /// Maximum simulated CTAs per kernel.
    pub max_ctas: u32,
    /// Divide paper footprints (MB) by this to get simulated MB (then
    /// clamp to at least 2 MB).
    pub footprint_divisor: u64,
    /// Multiplier (percent) on per-warp trace length; 100 = archetype
    /// default.
    pub ops_percent: u32,
}

impl Scale {
    /// The scale used for the committed experiment results: big enough that
    /// caches, links, and DRAM all operate in their paper-like regimes.
    pub const fn full() -> Self {
        Scale {
            cta_divisor: 4,
            min_ctas: 48,
            max_ctas: 3072,
            footprint_divisor: 24,
            ops_percent: 100,
        }
    }

    /// A much smaller scale for unit tests and Criterion benches.
    pub const fn quick() -> Self {
        Scale {
            cta_divisor: 64,
            min_ctas: 16,
            max_ctas: 128,
            footprint_divisor: 96,
            ops_percent: 25,
        }
    }

    /// Scaled CTA count from a paper CTA count.
    pub fn ctas(&self, paper_ctas: u64) -> u32 {
        let scaled = (paper_ctas / self.cta_divisor as u64).max(1) as u32;
        scaled.clamp(self.min_ctas, self.max_ctas)
    }

    /// Scaled footprint in bytes from a paper footprint in MB.
    ///
    /// Small footprints are preserved rather than scaled: shrinking a hot
    /// shared structure below a few hundred 64 KiB pages would concentrate
    /// it on one socket under first-touch and manufacture a hotspot the
    /// real benchmark does not have.
    pub fn footprint_bytes(&self, paper_mb: u64) -> u64 {
        let scaled = paper_mb / self.footprint_divisor;
        let floor = paper_mb.clamp(2, 48);
        scaled.max(floor).min(256) * 1024 * 1024
    }

    /// Scaled per-warp op count from an archetype default.
    pub fn ops(&self, default_ops: u32) -> u32 {
        (default_ops * self.ops_percent / 100).max(4)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctas_clamp_both_ends() {
        let s = Scale::full();
        assert_eq!(s.ctas(1), 48);
        assert_eq!(s.ctas(241_549), 3072);
        assert_eq!(s.ctas(4096), 1024);
    }

    #[test]
    fn footprint_preserves_small_and_caps_large() {
        let s = Scale::full();
        assert_eq!(s.footprint_bytes(8), 8 * 1024 * 1024); // preserved
        assert_eq!(s.footprint_bytes(19), 19 * 1024 * 1024); // preserved
        assert_eq!(s.footprint_bytes(200), 48 * 1024 * 1024); // floored at 48
        assert_eq!(s.footprint_bytes(3744), 156 * 1024 * 1024); // scaled
        assert_eq!(s.footprint_bytes(100_000), 256 * 1024 * 1024); // capped
    }

    #[test]
    fn ops_scale_has_floor() {
        let s = Scale::quick();
        assert_eq!(s.ops(64), 16);
        assert_eq!(s.ops(4), 4);
    }

    #[test]
    fn default_is_full() {
        assert_eq!(Scale::default(), Scale::full());
    }
}
