//! The paper's 41 evaluation workloads as synthetic trace generators.
//!
//! The original evaluation used proprietary traces of CORAL, Rodinia,
//! Lonestar, ML, and in-house CUDA benchmarks. Per the substitution policy
//! in `DESIGN.md`, each is reproduced here as a deterministic synthetic
//! generator whose *communication structure* matches the benchmark's class:
//!
//! * streaming / tiled kernels with CTA-private working sets (scale with
//!   software locality alone — the grey box of Figure 3),
//! * stencils with halo exchange,
//! * irregular workloads reading shared structures resident across NUMA
//!   zones (where NUMA-aware caching wins),
//! * phased producer/reduction workloads with asymmetric link demand
//!   (where dynamic lane allocation wins),
//! * compute-bound kernels (insensitive to everything).
//!
//! Table 2 metadata (time-weighted CTA count, footprint) is carried
//! verbatim in [`WorkloadMeta`](numa_gpu_runtime::WorkloadMeta); simulated
//! grids and footprints are scaled down uniformly via [`Scale`].
//!
//! # Examples
//!
//! ```
//! use numa_gpu_workloads::{catalog, Scale};
//!
//! let all = catalog(&Scale::quick());
//! assert_eq!(all.len(), 41);
//! assert!(all.iter().any(|w| w.meta.name == "Rodinia-Euler3D"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod archetypes;
mod catalog;
mod collectives;
mod patterns;
mod scale;

pub use catalog::{by_name, catalog, study_set, WORKLOAD_NAMES};
pub use collectives::{collective_by_name, collectives, COLLECTIVE_NAMES};
pub use patterns::{KernelSpec, Pattern, PatternKernel, PatternProgram};
pub use scale::Scale;
