//! Property tests for the synthetic trace generators.

use numa_gpu_runtime::Kernel;
use numa_gpu_testkit::gen::{bools, floats, ints, just, one_of, pairs, triples, Gen};
use numa_gpu_testkit::{prop_assert, prop_assert_eq, prop_check, Config};
use numa_gpu_types::{CtaId, CtaProgram, WarpOp, LINE_SIZE};
use numa_gpu_workloads::{catalog, KernelSpec, Pattern, PatternKernel, PatternProgram, Scale};

fn arb_pattern() -> Gen<Pattern> {
    one_of(vec![
        just(Pattern::Streaming),
        ints(1u32..16).map(|reuse| Pattern::Tiled { reuse }),
        just(Pattern::RandomUniform),
        pairs(floats(0.0..1.0), ints(1u64..1_000_000)).map(|(hot_fraction, hot_bytes)| {
            Pattern::HotCold {
                hot_fraction,
                hot_bytes,
            }
        }),
        floats(0.0..1.0).map(|halo_fraction| Pattern::Stencil { halo_fraction }),
        ints(1u64..1_000_000).map(|output_bytes| Pattern::Reduction { output_bytes }),
        triples(floats(0.0..1.0), ints(1u64..1_000_000), floats(0.0..1.0)).map(
            |(shared_fraction, shared_bytes, shared_read_fraction)| Pattern::SharedRead {
                shared_fraction,
                shared_bytes,
                shared_read_fraction,
            },
        ),
    ])
}

/// Whole-spec generator: fields are drawn directly from the case RNG
/// (read fractions of exactly 1.0 are exercised separately by
/// `read_fraction_extremes`).
fn arb_spec() -> Gen<KernelSpec> {
    let pattern = arb_pattern();
    Gen::new(
        move |rng| KernelSpec {
            name: "prop".into(),
            ctas: rng.gen_range(1u32..64),
            warps_per_cta: rng.gen_range(1u32..8),
            ops_per_warp: rng.gen_range(1u32..64),
            compute_per_mem: rng.gen_range(0u32..16),
            read_fraction: rng.gen_range(0.0..1.0),
            pattern: pattern.sample(rng),
            region_offset: rng.gen_range(0u64..1024) * 1024,
            region_bytes: rng.gen_range(1u64..4096) * 1024,
            seed: rng.next_u64(),
        },
        |_| Vec::new(),
    )
}

prop_check! {
    #![config = Config::new().cases(64)]

    /// Every generated program terminates with exactly `ops_per_warp`
    /// memory ops per warp, alternating with compute ops when configured,
    /// and every address stays inside the kernel's region.
    fn programs_are_well_formed(spec in arb_spec()) {
        let kernel = PatternKernel::new(spec.clone());
        for cta in [0, spec.ctas - 1] {
            let mut p = kernel.cta(CtaId::new(cta));
            for w in 0..spec.warps_per_cta {
                let mut mem_ops = 0u32;
                let mut total = 0u32;
                while let Some(op) = p.next_op(w) {
                    total += 1;
                    prop_assert!(total < 4 * spec.ops_per_warp + 4, "must terminate");
                    match op {
                        WarpOp::Mem { addr, .. } => {
                            mem_ops += 1;
                            prop_assert!(addr.raw() >= spec.region_offset);
                            prop_assert!(
                                addr.raw() < spec.region_offset + spec.region_bytes.max(LINE_SIZE),
                                "{} outside region [{}, {})",
                                addr.raw(),
                                spec.region_offset,
                                spec.region_offset + spec.region_bytes
                            );
                            prop_assert_eq!(addr.raw() % LINE_SIZE, 0, "line aligned");
                        }
                        WarpOp::Compute { cycles } => {
                            prop_assert_eq!(cycles, spec.compute_per_mem);
                        }
                    }
                }
                prop_assert_eq!(mem_ops, spec.ops_per_warp);
                // Exhausted warps stay exhausted.
                prop_assert!(p.next_op(w).is_none());
            }
        }
    }

    /// Regenerating the same CTA yields the identical op stream.
    fn programs_are_deterministic(spec in arb_spec()) {
        let mut a = PatternProgram::new(&spec, CtaId::new(0));
        let mut b = PatternProgram::new(&spec, CtaId::new(0));
        for w in 0..spec.warps_per_cta {
            loop {
                let (x, y) = (a.next_op(w), b.next_op(w));
                prop_assert_eq!(x, y);
                if x.is_none() {
                    break;
                }
            }
        }
    }

    /// Extreme read fractions produce only that kind of private access.
    fn read_fraction_extremes(seed in ints(0u64..u64::MAX), all_reads in bools()) {
        let spec = KernelSpec {
            name: "rw".into(),
            ctas: 4,
            warps_per_cta: 2,
            ops_per_warp: 32,
            compute_per_mem: 0,
            read_fraction: if all_reads { 1.0 } else { 0.0 },
            pattern: Pattern::Streaming,
            region_offset: 0,
            region_bytes: 1 << 20,
            seed,
        };
        let mut p = PatternProgram::new(&spec, CtaId::new(1));
        while let Some(op) = p.next_op(0) {
            if let WarpOp::Mem { kind, .. } = op {
                let is_read = kind == numa_gpu_types::MemKind::Read;
                prop_assert_eq!(is_read, all_reads);
            }
        }
    }
}

#[test]
fn full_catalog_programs_run_to_completion_at_quick_scale() {
    for wl in catalog(&Scale::quick()) {
        for kernel in &wl.kernels {
            // Sample the first CTA of each kernel.
            let mut p = kernel.cta(CtaId::new(0));
            for w in 0..p.num_warps() {
                let mut guard = 0;
                while p.next_op(w).is_some() {
                    guard += 1;
                    assert!(guard < 1_000_000, "{}: runaway trace", wl.meta.name);
                }
            }
        }
    }
}
