//! Microbenchmarks of the simulator substrates themselves (cache array,
//! MSHRs, event queue, bandwidth resource, page table, balancer) — the
//! structures whose per-event cost bounds overall simulation speed.

use numa_gpu_cache::{LineClass, MshrFile, PartitionController, SetAssocCache, WayPartition};
use numa_gpu_engine::{EventQueue, ServiceQueue};
use numa_gpu_interconnect::LinkBalancer;
use numa_gpu_mem::PageTable;
use numa_gpu_testkit::bench::{Bench, Group};
use numa_gpu_testkit::{bench_group, bench_main};
use numa_gpu_types::{Addr, CacheConfig, LineAddr, PagePlacement, SocketId, WritePolicy};
use std::time::Duration;

fn group<'a>(c: &'a mut Bench, name: &str) -> Group<'a> {
    let mut g = c.benchmark_group(name);
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g
}

fn bench_cache(c: &mut Bench) {
    let cfg = CacheConfig {
        size_bytes: 4 * 1024 * 1024,
        ways: 16,
        hit_latency_cycles: 34,
        write_policy: WritePolicy::WriteBack,
    };
    let mut g = group(c, "substrate_cache");
    g.bench_function("l2_probe_fill_mix_10k", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(&cfg, Some(WayPartition::balanced(16)));
            for i in 0..10_000u64 {
                let line = LineAddr::from_index(i * 37 % 65_536);
                if !cache.probe_read(line) {
                    cache.record_miss(LineClass::Local);
                    cache.fill(line, LineClass::Local, i % 3 == 0);
                }
            }
            cache.resident_lines()
        })
    });
    g.bench_function("l2_flush_full", |b| {
        let mut cache = SetAssocCache::new(&cfg, None);
        for i in 0..32_768u64 {
            cache.fill(LineAddr::from_index(i), LineClass::Remote, i % 2 == 0);
        }
        b.iter(|| cache.clone().invalidate_all())
    });
    g.finish();
}

fn bench_mshr(c: &mut Bench) {
    let mut g = group(c, "substrate_mshr");
    g.bench_function("mshr_allocate_complete_4k", |b| {
        b.iter(|| {
            let mut m: MshrFile<u32> = MshrFile::new(64);
            for i in 0..4_096u64 {
                let line = LineAddr::from_index(i % 64);
                let _ = m.allocate(line, i as u32);
                if i % 8 == 7 {
                    let _ = m.complete(line);
                }
            }
            m.in_use()
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Bench) {
    let mut g = group(c, "substrate_events");
    g.bench_function("event_queue_push_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u64 {
                q.push(i * 7919 % 1_000_000, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    g.finish();
}

fn bench_service_queue(c: &mut Bench) {
    let mut g = group(c, "substrate_bandwidth");
    g.bench_function("service_queue_1m_requests", |b| {
        b.iter(|| {
            let mut q = ServiceQueue::new(768);
            let mut done = 0;
            for i in 0..1_000_000u64 {
                done = q.service(i * 100, 128);
            }
            done
        })
    });
    g.finish();
}

fn bench_page_table(c: &mut Bench) {
    let mut g = group(c, "substrate_pages");
    g.bench_function("first_touch_1m_lookups", |b| {
        b.iter(|| {
            let mut pt = PageTable::new(PagePlacement::FirstTouch, 4);
            let mut acc = 0usize;
            for i in 0..1_000_000u64 {
                let line = Addr::new(i * 128 % (256 << 20)).line();
                acc += pt.home_of_line(line, SocketId::new((i % 4) as u8)).index();
            }
            acc
        })
    });
    g.finish();
}

fn bench_controllers(c: &mut Bench) {
    let mut g = group(c, "substrate_controllers");
    g.bench_function("partition_controller_100k_steps", |b| {
        b.iter(|| {
            let mut ctl = PartitionController::new(16);
            for i in 0..100_000u64 {
                ctl.step(i % 3 == 0, i % 5 == 0);
            }
            ctl.partition().local_ways()
        })
    });
    g.bench_function("link_balancer_1m_decisions", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000_000u64 {
                let a = LinkBalancer::decide(
                    i % 2 == 0,
                    i % 3 == 0,
                    (i % 15) as u8 + 1,
                    16 - ((i % 15) as u8 + 1),
                );
                acc += a as u64;
            }
            acc
        })
    });
    g.finish();
}

bench_group!(
    micro,
    bench_cache,
    bench_mshr,
    bench_event_queue,
    bench_service_queue,
    bench_page_table,
    bench_controllers
);
bench_main!(micro);
