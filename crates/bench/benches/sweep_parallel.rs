//! Wall-clock benchmark of the job-plane fan-out: a Figure-3-style
//! quick-scale sweep executed on 1 vs N worker threads.
//!
//! Run `TESTKIT_BENCH_JSON=results/BENCH_sweep_parallel.json cargo bench
//! -p numa-gpu-bench --bench sweep_parallel` to record numbers. On a
//! single-core machine the thread counts tie (the pool adds no measurable
//! overhead); the speedup shows up on multi-core runners.

use numa_gpu_bench::{Runner, SimPlan};
use numa_gpu_testkit::bench::Bench;
use numa_gpu_testkit::{bench_group, bench_main};
use numa_gpu_workloads::{by_name, Scale};
use std::time::Duration;

/// A representative slice of the Figure-3 sweep: 4 study-set workloads ×
/// the 4 runtime-policy configs = 16 independent simulations.
const SWEEP_SET: [&str; 4] = [
    "Other-Bitcoin-Crypto",
    "Rodinia-BFS",
    "HPC-CoMD-Ta",
    "Rodinia-Hotspot",
];

fn sweep(jobs: usize) -> u64 {
    let mut runner = Runner::new(Scale::quick()).jobs(jobs);
    let wls: Vec<_> = SWEEP_SET
        .iter()
        .map(|n| by_name(n, runner.scale()).expect("catalog workload"))
        .collect();
    runner.execute(SimPlan::cross(&experiments_variants(), &wls));
    runner.runs()
}

fn experiments_variants() -> Vec<(String, numa_gpu_types::SystemConfig)> {
    numa_gpu_bench::experiments::fig3_variants()
}

fn bench_sweep(c: &mut Bench) {
    let mut g = c.benchmark_group("sweep_parallel");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("fig3_subset_jobs_1", |b| b.iter(|| sweep(1)));
    g.bench_function("fig3_subset_jobs_4", |b| b.iter(|| sweep(4)));
    let n = numa_gpu_exec::ThreadPool::available().workers();
    g.bench_function(format!("fig3_subset_jobs_avail_{n}"), |b| {
        b.iter(|| sweep(n))
    });
    g.finish();
}

bench_group!(sweep_parallel, bench_sweep);
bench_main!(sweep_parallel);
