//! Wall-clock benchmark of the serial hot path: one 8-socket study-config
//! simulation at `sim_threads = 1`, plus an event-queue microbenchmark
//! with a simulation-shaped tick distribution.
//!
//! This is the tracked core-loop speed number (`results/BENCH_core_loop.json`
//! holds the committed trajectory). The full-system bench is the headline:
//! everything the per-event speed pass touches — event queue, allocation
//! recycling, SoA warp state — shows up in it. The queue microbenchmark
//! isolates the calendar-queue replacement.
//!
//! Run `TESTKIT_BENCH_JSON=/tmp/core_loop.json cargo bench -p
//! numa-gpu-bench --bench core_loop` to record numbers; see EXPERIMENTS.md
//! ("Profiling a run") for how records get folded into the committed file.

use numa_gpu_core::run_workload;
use numa_gpu_engine::EventQueue;
use numa_gpu_testkit::bench::Bench;
use numa_gpu_testkit::{bench_group, bench_main};
use numa_gpu_types::{SystemConfig, TICKS_PER_CYCLE};
use numa_gpu_workloads::{by_name, Scale};
use std::time::Duration;

fn one_run(workload: &str) -> u64 {
    let wl = by_name(workload, &Scale::quick()).expect("catalog workload");
    let mut cfg = SystemConfig::numa_aware_sockets(8);
    cfg.sim_threads = 1;
    run_workload(cfg, &wl)
        .expect("study config runs")
        .total_cycles
}

/// Push/pop 64k events with the distribution the simulator produces: most
/// events land within a few cycles of "now" (NoC/issue wakeups), a minority
/// at DRAM-latency distance, and a trickle far in the future (samplers).
fn queue_mixed_64k() -> u64 {
    let mut q = EventQueue::new();
    let mut now: u64 = 0;
    let mut acc: u64 = 0;
    let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in 0..4_096u64 {
        q.push(now + (i % 7) * TICKS_PER_CYCLE, i);
    }
    for _ in 0..65_536u64 {
        let Some((t, v)) = q.pop() else { break };
        now = t;
        acc = acc.wrapping_add(v);
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = rng >> 33;
        let delta = match r % 100 {
            0..=59 => (r / 100) % (4 * TICKS_PER_CYCLE), // same/near cycle
            60..=94 => 100 * TICKS_PER_CYCLE + r % TICKS_PER_CYCLE, // DRAM-ish
            _ => 5_000 * TICKS_PER_CYCLE,                // sampler-ish
        };
        q.push(now + delta, acc);
        if r.is_multiple_of(3) {
            q.push(now + (r % TICKS_PER_CYCLE), acc ^ r);
        } else if let Some((_, v2)) = q.pop() {
            acc = acc.wrapping_add(v2);
        }
    }
    acc
}

fn bench_core_loop(c: &mut Bench) {
    let mut g = c.benchmark_group("core_loop");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("euler3d_8s_serial", |b| {
        b.iter(|| one_run("Rodinia-Euler3D"))
    });
    g.bench_function("backprop_8s_serial", |b| {
        b.iter(|| one_run("Rodinia-Backprop"))
    });
    g.bench_function("event_queue_mixed_64k", |b| b.iter(queue_mixed_64k));
    g.finish();
}

bench_group!(core_loop, bench_core_loop);
bench_main!(core_loop);
