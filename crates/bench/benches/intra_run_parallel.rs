//! Wall-clock benchmark of the partitioned event loop: one 8-socket
//! study-config simulation at `sim_threads` = 1, 2, and the available
//! worker count.
//!
//! Run `TESTKIT_BENCH_JSON=results/BENCH_intra_run_parallel.json cargo
//! bench -p numa-gpu-bench --bench intra_run_parallel` to record numbers.
//! Windows are bounded by the cross-socket lookahead (~64 cycles), so on
//! a single-core machine the scoped-spawn barriers only add overhead; the
//! speedup needs real cores, up to one per socket.

use numa_gpu_core::run_workload;
use numa_gpu_testkit::bench::Bench;
use numa_gpu_testkit::{bench_group, bench_main};
use numa_gpu_types::SystemConfig;
use numa_gpu_workloads::{by_name, Scale};
use std::time::Duration;

fn one_run(sim_threads: u16) -> u64 {
    let wl = by_name("Rodinia-Euler3D", &Scale::quick()).expect("catalog workload");
    let mut cfg = SystemConfig::numa_aware_sockets(8);
    cfg.sim_threads = sim_threads;
    run_workload(cfg, &wl)
        .expect("study config runs")
        .total_cycles
}

fn bench_intra_run(c: &mut Bench) {
    let mut g = c.benchmark_group("intra_run_parallel");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("euler3d_8s_sim_threads_1", |b| b.iter(|| one_run(1)));
    g.bench_function("euler3d_8s_sim_threads_2", |b| b.iter(|| one_run(2)));
    let n = numa_gpu_exec::ThreadPool::available().workers().min(8) as u16;
    g.bench_function(format!("euler3d_8s_sim_threads_avail_{n}"), |b| {
        b.iter(|| one_run(n))
    });
    g.finish();
}

bench_group!(intra_run_parallel, bench_intra_run);
bench_main!(intra_run_parallel);
