//! Paper-artifact benches: one target per paper table/figure.
//!
//! Each target times the exact simulator code path that its artifact
//! exercises, on a *single representative workload* at the reduced CI
//! scale (the full 41-benchmark sweeps live in the `figures` binary). This
//! keeps `cargo bench` laptop-sized while still regression-testing every
//! experiment configuration.

use numa_gpu_bench::{configs, experiments, Runner};
use numa_gpu_core::run_workload;
use numa_gpu_runtime::Workload;
use numa_gpu_testkit::bench::{Bench, Group};
use numa_gpu_testkit::{bench_group, bench_main};
use numa_gpu_types::{CacheMode, WritePolicy};
use numa_gpu_workloads::{by_name, Scale};
use std::time::Duration;

fn wl(name: &str) -> Workload {
    by_name(name, &Scale::quick()).expect("catalog workload")
}

fn group<'a>(c: &'a mut Bench, name: &str) -> Group<'a> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g
}

/// Table 1: configuration construction + validation (pure CPU).
fn bench_table1(c: &mut Bench) {
    let mut g = group(c, "table1");
    g.bench_function("table1_config", |b| b.iter(experiments::table1));
    g.finish();
}

/// Table 2: building the whole 41-workload catalog.
fn bench_table2(c: &mut Bench) {
    let mut g = group(c, "table2");
    g.bench_function("table2_catalog", |b| {
        b.iter(|| experiments::table2(&Runner::new(Scale::quick())))
    });
    g.finish();
}

/// Figure 2: occupancy sweep over the catalog metadata.
fn bench_fig2(c: &mut Bench) {
    let mut g = group(c, "fig2");
    g.bench_function("fig2_occupancy", |b| {
        b.iter(|| experiments::fig2(&Runner::new(Scale::quick())))
    });
    g.finish();
}

/// Figure 3: traditional vs locality runtime on one streaming workload.
fn bench_fig3(c: &mut Bench) {
    let w = wl("Other-Stream-Triad");
    let mut g = group(c, "fig3");
    g.bench_function("fig3_locality", |b| {
        b.iter(|| {
            let t = run_workload(configs::traditional(4), &w).unwrap();
            let l = run_workload(configs::locality(4), &w).unwrap();
            l.speedup_over(&t)
        })
    });
    g.finish();
}

/// Figure 5: timeline-recording run of the HPGMG proxy.
fn bench_fig5(c: &mut Bench) {
    let w = wl("HPC-HPGMG-UVM");
    let mut g = group(c, "fig5");
    g.bench_function("fig5_linktrace", |b| {
        b.iter(|| numa_gpu_core::run_workload_with_timeline(configs::locality(4), &w).unwrap())
    });
    g.finish();
}

/// Figure 6: dynamic link adaptivity on the reduction-phased workload.
fn bench_fig6(c: &mut Bench) {
    let w = wl("HPC-HPGMG-UVM");
    let mut g = group(c, "fig6");
    g.bench_function("fig6_dynlink", |b| {
        b.iter(|| run_workload(configs::dynamic_link(4, 5_000), &w).unwrap())
    });
    g.finish();
}

/// §4.1 sensitivity: 500-cycle lane turns.
fn bench_fig6_sens(c: &mut Bench) {
    let w = wl("HPC-HPGMG-UVM");
    let mut cfg = configs::dynamic_link(4, 5_000);
    cfg.link.switch_time_cycles = 500;
    let mut g = group(c, "fig6_sens");
    g.bench_function("fig6_switch_sensitivity", |b| {
        b.iter(|| run_workload(cfg.clone(), &w).unwrap())
    });
    g.finish();
}

/// Figure 8: the four cache organizations on the lookup-table workload.
fn bench_fig8(c: &mut Bench) {
    let w = wl("HPC-RSBench");
    let mut g = group(c, "fig8");
    for (label, mode) in [
        ("memside", CacheMode::MemSideLocalOnly),
        ("static", CacheMode::StaticRemoteCache),
        ("shared", CacheMode::SharedCoherent),
        ("numa_aware", CacheMode::NumaAwareDynamic),
    ] {
        g.bench_function(format!("fig8_cachemode_{label}"), |b| {
            b.iter(|| run_workload(configs::cache(4, mode), &w).unwrap())
        });
    }
    g.finish();
}

/// Figure 9: invalidation-free L2 upper bound.
fn bench_fig9(c: &mut Bench) {
    let w = wl("Rodinia-Euler3D");
    let mut ideal = configs::cache(4, CacheMode::NumaAwareDynamic);
    ideal.ideal_no_l2_invalidate = true;
    let mut g = group(c, "fig9");
    g.bench_function("fig9_coherence", |b| {
        b.iter(|| run_workload(ideal.clone(), &w).unwrap())
    });
    g.finish();
}

/// §5.2 sensitivity: write-through L2.
fn bench_fig9_wb(c: &mut Bench) {
    let w = wl("Rodinia-Euler3D");
    let mut wt = configs::cache(4, CacheMode::NumaAwareDynamic);
    wt.l2.write_policy = WritePolicy::WriteThrough;
    let mut g = group(c, "fig9_wb");
    g.bench_function("fig9_writeback", |b| {
        b.iter(|| run_workload(wt.clone(), &w).unwrap())
    });
    g.finish();
}

/// Figure 10: the combined design.
fn bench_fig10(c: &mut Bench) {
    let w = wl("HPC-CoMD");
    let mut g = group(c, "fig10");
    g.bench_function("fig10_combined", |b| {
        b.iter(|| run_workload(configs::numa_aware(4), &w).unwrap())
    });
    g.finish();
}

/// Figure 11: 8-socket scalability plus the 8× hypothetical ceiling.
fn bench_fig11(c: &mut Bench) {
    let w = wl("HPC-MiniAMR");
    let mut g = group(c, "fig11");
    g.bench_function("fig11_scalability_8s", |b| {
        b.iter(|| run_workload(configs::numa_aware(8), &w).unwrap())
    });
    g.bench_function("fig11_hypothetical_8x", |b| {
        b.iter(|| run_workload(configs::hypothetical(8), &w).unwrap())
    });
    g.finish();
}

/// §6 power model arithmetic.
fn bench_power(c: &mut Bench) {
    let mut g = group(c, "power");
    g.bench_function("power_model", |b| {
        b.iter(|| numa_gpu_core::power::average_link_power_w(123_456_789, 1_000_000))
    });
    g.finish();
}

/// Ablation: NUMA-aware with L1 partitioning disabled.
fn bench_ablations(c: &mut Bench) {
    let w = wl("HPC-CoMD-Ta");
    let mut cfg = configs::numa_aware(4);
    cfg.partition_l1 = false;
    let mut g = group(c, "ablations");
    g.bench_function("ablation_no_l1_partition", |b| {
        b.iter(|| run_workload(cfg.clone(), &w).unwrap())
    });
    g.finish();
}

bench_group!(
    artifacts,
    bench_table1,
    bench_table2,
    bench_fig2,
    bench_fig3,
    bench_fig5,
    bench_fig6,
    bench_fig6_sens,
    bench_fig8,
    bench_fig9,
    bench_fig9_wb,
    bench_fig10,
    bench_fig11,
    bench_power,
    bench_ablations
);
bench_main!(artifacts);
