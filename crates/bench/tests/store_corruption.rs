//! Corruption-injection tests for the on-disk content-addressed store:
//! truncated, bit-flipped, version-skewed, and torn (temp-file-left-behind)
//! entries must never surface to a caller — they are quarantined to
//! `corrupt/` and transparently recomputed, the recomputed reports are
//! byte-identical to the originals, and the store converges back to a
//! clean state. The deterministic [`StoreEvent`] log asserts the exact
//! recovery path taken.

use numa_gpu_bench::store::CorruptKind;
use numa_gpu_bench::{configs, Runner, SimPlan, StoreEvent};
use numa_gpu_workloads::{by_name, Scale};
use std::path::{Path, PathBuf};

const WORKLOAD: &str = "Other-Bitcoin-Crypto";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "numa-gpu-store-corruption-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the canonical two-job sweep against `dir` and returns the fixed-
/// order serialization of both reports plus the runner (for stats).
fn sweep(dir: &Path) -> (Vec<String>, Runner) {
    let mut runner = Runner::new(Scale::quick())
        .cache_dir(dir)
        .expect("store opens");
    let wl = by_name(WORKLOAD, runner.scale()).expect("catalog workload");
    let mut plan = SimPlan::new();
    plan.job("single", configs::single(), &wl);
    plan.job("loc2", configs::locality(2), &wl);
    runner.execute(plan);
    let out = vec![
        runner
            .report("single", configs::single(), &wl)
            .to_json()
            .to_string(),
        runner
            .report("loc2", configs::locality(2), &wl)
            .to_json()
            .to_string(),
    ];
    (out, runner)
}

fn entry_paths(dir: &Path) -> Vec<PathBuf> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir.join("store/v1"))
        .expect("store dir exists")
        .map(|e| e.expect("readable").path())
        .collect();
    entries.sort();
    entries
}

fn corrupt_count(dir: &Path) -> usize {
    std::fs::read_dir(dir.join("corrupt")).map_or(0, |d| d.count())
}

#[test]
fn truncated_entry_is_quarantined_and_recomputed_byte_identically() {
    let dir = tmpdir("truncate");
    let (cold, cold_runner) = sweep(&dir);
    assert_eq!(cold_runner.warm_hits(), 0);
    let entries = entry_paths(&dir);
    assert_eq!(entries.len(), 2, "two entries committed");

    // Truncate one entry mid-payload (a crash during a non-atomic write
    // could never produce this — the rename is atomic — but a failing
    // disk can).
    let raw = std::fs::read_to_string(&entries[0]).unwrap();
    std::fs::write(&entries[0], &raw[..raw.len() / 2]).unwrap();

    let (healed, healed_runner) = sweep(&dir);
    assert_eq!(cold, healed, "recomputed reports must be byte-identical");
    // One survivor served warm; the truncated entry recomputed.
    assert_eq!(healed_runner.warm_hits(), 1);
    assert_eq!(healed_runner.runs(), 1);
    let events = healed_runner.store_events().expect("store attached");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, StoreEvent::Quarantined(_, CorruptKind::ChecksumMismatch))),
        "expected a checksum quarantine, got {events:?}"
    );
    assert!(events.iter().any(|e| matches!(e, StoreEvent::Write(_))));
    assert_eq!(
        corrupt_count(&dir),
        1,
        "corrupt entry preserved for post-mortem"
    );

    // Third pass: fully warm, store converged to clean state.
    let (warm, warm_runner) = sweep(&dir);
    assert_eq!(cold, warm);
    assert_eq!(warm_runner.warm_hits(), 2);
    assert_eq!(warm_runner.runs(), 0);
    assert_eq!(warm_runner.store_stats().unwrap().quarantined, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_entry_is_quarantined_and_recomputed_byte_identically() {
    let dir = tmpdir("bitflip");
    let (cold, _) = sweep(&dir);
    let entries = entry_paths(&dir);

    // Flip one bit deep in the payload of each entry.
    for path in &entries {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() * 3 / 4;
        bytes[mid] ^= 0x04;
        std::fs::write(path, &bytes).unwrap();
    }

    let (healed, healed_runner) = sweep(&dir);
    assert_eq!(cold, healed);
    assert_eq!(healed_runner.warm_hits(), 0, "both entries were corrupt");
    assert_eq!(healed_runner.runs(), 2);
    let stats = healed_runner.store_stats().unwrap();
    assert_eq!(stats.quarantined, 2);
    assert_eq!(stats.writes, 2, "both entries rewritten");
    assert_eq!(corrupt_count(&dir), 2);

    let (warm, warm_runner) = sweep(&dir);
    assert_eq!(cold, warm);
    assert_eq!(warm_runner.warm_hits(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_temp_file_is_swept_and_never_visible() {
    let dir = tmpdir("torn");
    let (cold, _) = sweep(&dir);

    // Simulate a crash mid-write: a half-written temp file left behind.
    // The committed entries are untouched (rename is atomic), so the only
    // residue a real crash can leave is here.
    std::fs::write(dir.join("tmp").join("deadbeef.1234.1"), b"{\"format\":1,").unwrap();

    let (warm, warm_runner) = sweep(&dir);
    assert_eq!(cold, warm);
    assert_eq!(
        warm_runner.warm_hits(),
        2,
        "torn temp never shadows entries"
    );
    let events = warm_runner.store_events().expect("store attached");
    assert_eq!(
        events.first(),
        Some(&StoreEvent::TempSwept(1)),
        "sweep is the first event at open"
    );
    assert!(
        std::fs::read_dir(dir.join("tmp")).unwrap().next().is_none(),
        "tmp/ is empty after open"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_skewed_entry_is_quarantined_not_misread() {
    let dir = tmpdir("version");
    let (cold, _) = sweep(&dir);
    let entries = entry_paths(&dir);

    // Rewrite one header to claim a future format version, keeping the
    // payload intact: a store written by a newer build must be
    // recomputed, never decoded on faith.
    let raw = std::fs::read_to_string(&entries[1]).unwrap();
    let (_, payload) = raw.split_once('\n').unwrap();
    let skewed = format!("{{\"format\":999,\"checksum\":\"0000000000000000\"}}\n{payload}");
    std::fs::write(&entries[1], skewed).unwrap();

    let (healed, healed_runner) = sweep(&dir);
    assert_eq!(cold, healed);
    let events = healed_runner.store_events().expect("store attached");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, StoreEvent::Quarantined(_, CorruptKind::VersionMismatch))),
        "expected a version-mismatch quarantine, got {events:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn event_log_is_deterministic_for_a_deterministic_access_sequence() {
    let dir_a = tmpdir("det-a");
    let dir_b = tmpdir("det-b");
    let (_, a) = sweep(&dir_a);
    let (_, b) = sweep(&dir_b);
    assert_eq!(
        a.store_events().unwrap(),
        b.store_events().unwrap(),
        "same access sequence, same event log"
    );
    let (_, a2) = sweep(&dir_a);
    let (_, b2) = sweep(&dir_b);
    assert_eq!(a2.store_events().unwrap(), b2.store_events().unwrap());
    assert!(a2
        .store_events()
        .unwrap()
        .iter()
        .all(|e| matches!(e, StoreEvent::Hit(_))));
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
