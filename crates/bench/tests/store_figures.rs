//! Cached-vs-cold equivalence for a real paper artifact: Figure 5 rendered
//! from a cold on-disk store must be byte-identical to the same figure
//! rendered by a *fresh process* (here: a fresh [`Runner`]) that serves
//! every simulation warm from that store. This is the contract that makes
//! `figures --cache-dir` safe to use for artifact regeneration.

use numa_gpu_bench::{experiments, Runner};
use numa_gpu_workloads::Scale;

#[test]
fn fig5_from_warm_store_is_byte_identical_to_cold() {
    let dir = std::env::temp_dir().join(format!("numa-gpu-store-figures-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cold_runner = Runner::new(Scale::quick())
        .cache_dir(&dir)
        .expect("store opens");
    let cold = experiments::fig5(&mut cold_runner);
    assert_eq!(cold_runner.warm_hits(), 0);
    assert!(cold_runner.store_stats().unwrap().writes > 0);

    // A brand-new runner on the same cache dir models a fresh process:
    // no in-memory memo, only the disk store.
    let mut warm_runner = Runner::new(Scale::quick())
        .cache_dir(&dir)
        .expect("store reopens");
    let warm = experiments::fig5(&mut warm_runner);

    assert_eq!(cold, warm, "fig5 must render byte-identically from disk");
    assert!(
        warm_runner.warm_hits() > 0,
        "second run must be served warm"
    );
    assert_eq!(warm_runner.runs(), 0, "no simulation re-executed");

    let _ = std::fs::remove_dir_all(&dir);
}
