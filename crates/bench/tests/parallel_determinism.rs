//! The job-plane determinism contract: every observable artifact —
//! individual reports, assembled tables, CSV timelines — is byte-identical
//! whether a sweep runs on one worker or many.
//!
//! The fast tests sweep a small config × workload product; the `#[ignore]`d
//! ones regenerate full quick-scale figures at both worker counts (run with
//! `cargo test -p numa-gpu-bench --test parallel_determinism -- --ignored`).

use numa_gpu_bench::{configs, experiments, Runner, SimPlan};
use numa_gpu_workloads::{by_name, Scale};

const SMALL_SET: [&str; 3] = ["Other-Bitcoin-Crypto", "Rodinia-BFS", "HPC-CoMD-Ta"];

fn small_sweep(jobs: usize) -> Vec<String> {
    let mut runner = Runner::new(Scale::quick()).jobs(jobs);
    let wls: Vec<_> = SMALL_SET
        .iter()
        .map(|n| by_name(n, runner.scale()).expect("catalog workload"))
        .collect();
    let variants = vec![
        ("single".to_string(), configs::single()),
        ("loc4".to_string(), configs::locality(4)),
    ];
    runner.execute(SimPlan::cross(&variants, &wls));
    // Serialize every report in a fixed order: any nondeterminism in the
    // parallel path (result misordering, cross-job state leaks) shows up as
    // a byte difference.
    let mut out = Vec::new();
    for wl in &wls {
        for (label, cfg) in &variants {
            out.push(runner.report(label, cfg.clone(), wl).to_json().to_string());
        }
    }
    out
}

#[test]
fn small_sweep_reports_are_byte_identical_across_worker_counts() {
    let serial = small_sweep(1);
    let four = small_sweep(4);
    assert_eq!(serial, four, "--jobs 4 must reproduce --jobs 1 exactly");
}

#[test]
fn worker_count_does_not_leak_into_run_accounting() {
    let wl = by_name("Rodinia-BFS", &Scale::quick()).unwrap();
    let mut plan = SimPlan::new();
    plan.job("single", configs::single(), &wl);
    plan.job("loc4", configs::locality(4), &wl);
    let mut r = Runner::new(Scale::quick()).jobs(4);
    r.execute(plan.clone());
    assert_eq!(r.runs(), 2);
    // Re-executing the identical plan is a no-op at any worker count.
    r.execute(plan);
    assert_eq!(r.runs(), 2);
}

#[test]
#[ignore = "slow: full quick-scale Figure 3 at two worker counts"]
fn fig3_table_is_byte_identical_across_worker_counts() {
    let mut serial = Runner::new(Scale::quick()).jobs(1);
    let mut four = Runner::new(Scale::quick()).jobs(4);
    assert_eq!(
        experiments::fig3(&mut serial).to_string(),
        experiments::fig3(&mut four).to_string()
    );
}

#[test]
#[ignore = "slow: full quick-scale Figure 5 timeline at two worker counts"]
fn fig5_csv_is_byte_identical_across_worker_counts() {
    let mut serial = Runner::new(Scale::quick()).jobs(1);
    let mut four = Runner::new(Scale::quick()).jobs(4);
    assert_eq!(experiments::fig5(&mut serial), experiments::fig5(&mut four));
}
