//! Lossless [`SimReport`] codec for the on-disk result store.
//!
//! [`SimReport::to_json`] is a *reporting* encoding: it drops the kernel
//! start cycles, the link timelines, and encodes floats in human form. The
//! store needs the opposite trade-off — every field a figure can read must
//! round-trip **bit-exactly**, because a warm cache hit has to reproduce
//! the cold run byte for byte. This codec therefore:
//!
//! * encodes every report field a cached run can serve (floats as raw IEEE
//!   bits via [`f64::to_bits`], so no decimal-formatting round-trip risk);
//! * refuses reports that carry observability payloads the codec does not
//!   model ([`CodecError::Ineligible`]): a metrics snapshot or trace
//!   events mean the run was an observability run, and those never go
//!   through the store;
//! * decodes defensively — any malformed document yields a
//!   [`CodecError`], never a panic, so a corrupt store entry degrades to
//!   a cache miss.
//!
//! The optional self-profile *is* encoded: it is plain counter data and
//! `figures --profile --cache-dir` must aggregate over warm hits too.

use numa_gpu_core::{ProfileReport, SimReport, SocketReport};
use numa_gpu_faults::{AppliedFault, LinkResilience, ResilienceReport};
use numa_gpu_interconnect::LinkSample;
use numa_gpu_testkit::json::Json;

/// Version of the payload encoding. Bump whenever the report shape or the
/// simulator's observable behaviour changes incompatibly; old entries then
/// read as version mismatches and are recomputed instead of mis-decoded.
pub const REPORT_FORMAT_VERSION: u64 = 1;

/// Why a report could not be encoded or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The report carries payloads the store deliberately does not model
    /// (metrics snapshot or trace events from an observability run).
    Ineligible(&'static str),
    /// The document is structurally not a report of this format version.
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Ineligible(what) => {
                write!(f, "report not eligible for the store: carries {what}")
            }
            CodecError::Malformed(msg) => write!(f, "malformed store payload: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn bits(v: f64) -> Json {
    Json::UInt(v.to_bits())
}

fn u64s(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::UInt(v)).collect())
}

/// Encodes a report for storage.
///
/// # Errors
///
/// [`CodecError::Ineligible`] when the report carries a metrics snapshot
/// or trace events — observability runs bypass the store by design.
pub fn encode_report(r: &SimReport) -> Result<Json, CodecError> {
    if r.metrics.is_some() {
        return Err(CodecError::Ineligible("a metrics snapshot"));
    }
    if !r.trace_events.is_empty() {
        return Err(CodecError::Ineligible("trace events"));
    }
    let sockets = Json::Arr(r.sockets.iter().map(encode_socket).collect());
    let timelines = Json::Arr(
        r.link_timelines
            .iter()
            .map(|tl| Json::Arr(tl.iter().map(encode_sample).collect()))
            .collect(),
    );
    Ok(Json::obj([
        ("version", Json::UInt(REPORT_FORMAT_VERSION)),
        ("workload", Json::Str(r.workload.clone())),
        ("total_cycles", Json::UInt(r.total_cycles)),
        ("kernel_cycles", u64s(&r.kernel_cycles)),
        ("kernel_start_cycles", u64s(&r.kernel_start_cycles)),
        ("sockets", sockets),
        ("link_timelines", timelines),
        ("l1", encode_cache_stats(&r.l1)),
        ("remote_read_fraction_bits", bits(r.remote_read_fraction)),
        ("interconnect_bytes", Json::UInt(r.interconnect_bytes)),
        ("link_power_w_bits", bits(r.link_power_w)),
        (
            "resilience",
            match &r.resilience {
                Some(res) => encode_resilience(res),
                None => Json::Null,
            },
        ),
        (
            "profile",
            match &r.profile {
                Some(p) => encode_profile(p),
                None => Json::Null,
            },
        ),
    ]))
}

fn encode_socket(s: &SocketReport) -> Json {
    Json::obj([
        ("egress_bytes", Json::UInt(s.egress_bytes)),
        ("ingress_bytes", Json::UInt(s.ingress_bytes)),
        ("dram_bytes", Json::UInt(s.dram_bytes)),
        ("l2", encode_cache_stats(&s.l2)),
        ("lane_turns", Json::UInt(s.lane_turns)),
        ("equalizations", Json::UInt(s.equalizations)),
        (
            "l2_partition",
            match s.l2_partition {
                Some((local, remote)) => {
                    Json::Arr(vec![Json::UInt(local as u64), Json::UInt(remote as u64)])
                }
                None => Json::Null,
            },
        ),
    ])
}

fn encode_cache_stats(s: &numa_gpu_cache::CacheStats) -> Json {
    Json::obj([
        ("local_hits", Json::UInt(s.local_hits.get())),
        ("local_misses", Json::UInt(s.local_misses.get())),
        ("remote_hits", Json::UInt(s.remote_hits.get())),
        ("remote_misses", Json::UInt(s.remote_misses.get())),
        ("fills", Json::UInt(s.fills.get())),
        ("evictions", Json::UInt(s.evictions.get())),
        ("dirty_evictions", Json::UInt(s.dirty_evictions.get())),
    ])
}

fn encode_sample(s: &LinkSample) -> Json {
    Json::obj([
        ("cycle", Json::UInt(s.cycle)),
        ("egress_util_bits", bits(s.egress_util)),
        ("ingress_util_bits", bits(s.ingress_util)),
        ("egress_lanes", Json::UInt(s.egress_lanes as u64)),
        ("ingress_lanes", Json::UInt(s.ingress_lanes as u64)),
    ])
}

fn encode_resilience(r: &ResilienceReport) -> Json {
    Json::obj([
        (
            "applied",
            Json::Arr(
                r.applied
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("cycle", Json::UInt(f.cycle)),
                            ("description", Json::Str(f.description.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "links",
            Json::Arr(
                r.links
                    .iter()
                    .map(|l| {
                        Json::obj([
                            ("edge", Json::UInt(l.edge as u64)),
                            ("nominal_lane_cycles", Json::UInt(l.nominal_lane_cycles)),
                            ("available_lane_cycles", Json::UInt(l.available_lane_cycles)),
                            (
                                "recovery_cycles",
                                match l.recovery_cycles {
                                    Some(c) => Json::UInt(c),
                                    None => Json::Null,
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("disabled_sms", Json::UInt(r.disabled_sms as u64)),
        ("requeued_ctas", Json::UInt(r.requeued_ctas as u64)),
    ])
}

fn encode_profile(p: &ProfileReport) -> Json {
    Json::obj([(
        "scopes",
        Json::Arr(
            p.scopes
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("name".to_string(), Json::Str(s.name.clone())),
                        (
                            "counters".to_string(),
                            Json::Obj(
                                s.counters
                                    .iter()
                                    .map(|(n, v)| (n.clone(), Json::UInt(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

fn malformed(msg: impl Into<String>) -> CodecError {
    CodecError::Malformed(msg.into())
}

fn field<'a>(doc: &'a Json, name: &str) -> Result<&'a Json, CodecError> {
    doc.get(name)
        .ok_or_else(|| malformed(format!("missing field `{name}`")))
}

fn get_u64(doc: &Json, name: &str) -> Result<u64, CodecError> {
    field(doc, name)?
        .as_u64()
        .ok_or_else(|| malformed(format!("field `{name}` is not a u64")))
}

fn get_f64_bits(doc: &Json, name: &str) -> Result<f64, CodecError> {
    Ok(f64::from_bits(get_u64(doc, name)?))
}

fn get_str(doc: &Json, name: &str) -> Result<String, CodecError> {
    Ok(field(doc, name)?
        .as_str()
        .ok_or_else(|| malformed(format!("field `{name}` is not a string")))?
        .to_string())
}

fn get_arr<'a>(doc: &'a Json, name: &str) -> Result<&'a [Json], CodecError> {
    field(doc, name)?
        .as_array()
        .ok_or_else(|| malformed(format!("field `{name}` is not an array")))
}

fn get_u64s(doc: &Json, name: &str) -> Result<Vec<u64>, CodecError> {
    get_arr(doc, name)?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| malformed(format!("`{name}` element is not a u64")))
        })
        .collect()
}

/// Decodes a stored report.
///
/// # Errors
///
/// [`CodecError::Malformed`] on any structural mismatch, including a
/// format-version difference (old entries must recompute, not mis-decode).
pub fn decode_report(doc: &Json) -> Result<SimReport, CodecError> {
    let version = get_u64(doc, "version")?;
    if version != REPORT_FORMAT_VERSION {
        return Err(malformed(format!(
            "payload version {version}, expected {REPORT_FORMAT_VERSION}"
        )));
    }
    let sockets = get_arr(doc, "sockets")?
        .iter()
        .map(decode_socket)
        .collect::<Result<Vec<_>, _>>()?;
    let link_timelines = get_arr(doc, "link_timelines")?
        .iter()
        .map(|tl| {
            tl.as_array()
                .ok_or_else(|| malformed("timeline is not an array"))?
                .iter()
                .map(decode_sample)
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    let resilience = match field(doc, "resilience")? {
        Json::Null => None,
        r => Some(decode_resilience(r)?),
    };
    let profile = match field(doc, "profile")? {
        Json::Null => None,
        p => Some(decode_profile(p)?),
    };
    Ok(SimReport {
        workload: get_str(doc, "workload")?,
        total_cycles: get_u64(doc, "total_cycles")?,
        kernel_cycles: get_u64s(doc, "kernel_cycles")?,
        kernel_start_cycles: get_u64s(doc, "kernel_start_cycles")?,
        sockets,
        link_timelines,
        l1: decode_cache_stats(field(doc, "l1")?)?,
        remote_read_fraction: get_f64_bits(doc, "remote_read_fraction_bits")?,
        interconnect_bytes: get_u64(doc, "interconnect_bytes")?,
        link_power_w: get_f64_bits(doc, "link_power_w_bits")?,
        metrics: None,
        trace_events: Vec::new(),
        resilience,
        profile,
    })
}

fn decode_socket(doc: &Json) -> Result<SocketReport, CodecError> {
    let l2_partition = match field(doc, "l2_partition")? {
        Json::Null => None,
        Json::Arr(pair) if pair.len() == 2 => {
            let part = |v: &Json| -> Result<u16, CodecError> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| malformed("l2_partition element is not a u64"))?;
                u16::try_from(raw).map_err(|_| malformed("l2_partition element exceeds u16"))
            };
            Some((part(&pair[0])?, part(&pair[1])?))
        }
        _ => return Err(malformed("l2_partition is not null or a pair")),
    };
    Ok(SocketReport {
        egress_bytes: get_u64(doc, "egress_bytes")?,
        ingress_bytes: get_u64(doc, "ingress_bytes")?,
        dram_bytes: get_u64(doc, "dram_bytes")?,
        l2: decode_cache_stats(field(doc, "l2")?)?,
        lane_turns: get_u64(doc, "lane_turns")?,
        equalizations: get_u64(doc, "equalizations")?,
        l2_partition,
    })
}

fn decode_cache_stats(doc: &Json) -> Result<numa_gpu_cache::CacheStats, CodecError> {
    let mut s = numa_gpu_cache::CacheStats::default();
    s.local_hits.add(get_u64(doc, "local_hits")?);
    s.local_misses.add(get_u64(doc, "local_misses")?);
    s.remote_hits.add(get_u64(doc, "remote_hits")?);
    s.remote_misses.add(get_u64(doc, "remote_misses")?);
    s.fills.add(get_u64(doc, "fills")?);
    s.evictions.add(get_u64(doc, "evictions")?);
    s.dirty_evictions.add(get_u64(doc, "dirty_evictions")?);
    Ok(s)
}

fn decode_sample(doc: &Json) -> Result<LinkSample, CodecError> {
    let lanes = |name: &str| -> Result<u8, CodecError> {
        u8::try_from(get_u64(doc, name)?).map_err(|_| malformed(format!("`{name}` exceeds u8")))
    };
    Ok(LinkSample {
        cycle: get_u64(doc, "cycle")?,
        egress_util: get_f64_bits(doc, "egress_util_bits")?,
        ingress_util: get_f64_bits(doc, "ingress_util_bits")?,
        egress_lanes: lanes("egress_lanes")?,
        ingress_lanes: lanes("ingress_lanes")?,
    })
}

fn decode_resilience(doc: &Json) -> Result<ResilienceReport, CodecError> {
    let applied = get_arr(doc, "applied")?
        .iter()
        .map(|f| {
            Ok(AppliedFault {
                cycle: get_u64(f, "cycle")?,
                description: get_str(f, "description")?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let links = get_arr(doc, "links")?
        .iter()
        .map(|l| {
            Ok(LinkResilience {
                edge: u8::try_from(get_u64(l, "edge")?)
                    .map_err(|_| malformed("`edge` exceeds u8"))?,
                nominal_lane_cycles: get_u64(l, "nominal_lane_cycles")?,
                available_lane_cycles: get_u64(l, "available_lane_cycles")?,
                recovery_cycles: match field(l, "recovery_cycles")? {
                    Json::Null => None,
                    v => Some(
                        v.as_u64()
                            .ok_or_else(|| malformed("`recovery_cycles` is not a u64"))?,
                    ),
                },
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(ResilienceReport {
        applied,
        links,
        disabled_sms: u32::try_from(get_u64(doc, "disabled_sms")?)
            .map_err(|_| malformed("`disabled_sms` exceeds u32"))?,
        requeued_ctas: u32::try_from(get_u64(doc, "requeued_ctas")?)
            .map_err(|_| malformed("`requeued_ctas` exceeds u32"))?,
    })
}

fn decode_profile(doc: &Json) -> Result<ProfileReport, CodecError> {
    let mut p = ProfileReport::new();
    for scope in get_arr(doc, "scopes")? {
        let name = get_str(scope, "name")?;
        let out = p.scope(&name);
        match field(scope, "counters")? {
            Json::Obj(fields) => {
                for (counter, value) in fields {
                    out.count(
                        counter,
                        value
                            .as_u64()
                            .ok_or_else(|| malformed("profile counter is not a u64"))?,
                    );
                }
            }
            _ => return Err(malformed("`counters` is not an object")),
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use numa_gpu_core::NumaGpuSystem;
    use numa_gpu_workloads::{by_name, Scale};

    fn run(timeline: bool, faults: Option<&str>, profile: bool) -> SimReport {
        let wl = by_name("Other-Bitcoin-Crypto", &Scale::quick()).unwrap();
        let mut cfg = configs::locality(2);
        cfg.obs.profile = profile;
        let mut sys = NumaGpuSystem::new(cfg).unwrap();
        if timeline {
            sys.enable_link_timeline();
        }
        if let Some(spec) = faults {
            sys.set_fault_plan(numa_gpu_faults::FaultPlan::parse(spec).unwrap())
                .unwrap();
        }
        sys.run(&wl).unwrap()
    }

    #[test]
    fn clean_report_roundtrips_exactly() {
        let r = run(false, None, false);
        let doc = encode_report(&r).unwrap();
        assert_eq!(decode_report(&doc).unwrap(), r);
        // The encoding itself is byte-stable.
        assert_eq!(doc.to_string(), encode_report(&r).unwrap().to_string());
    }

    #[test]
    fn timeline_faulted_profiled_report_roundtrips_exactly() {
        let r = run(true, Some("lanes:s1@200=8"), true);
        assert!(r.resilience.is_some());
        assert!(r.profile.is_some());
        let doc = encode_report(&r).unwrap();
        let back = decode_report(&doc).unwrap();
        assert_eq!(back, r, "every field must round-trip bit-exactly");
        // Round-trip again through the serialized text, the path a disk
        // entry actually takes.
        let text = doc.to_string();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(decode_report(&reparsed).unwrap(), r);
    }

    #[test]
    fn observability_reports_are_ineligible() {
        let mut r = run(false, None, false);
        r.metrics = Some(Default::default());
        assert!(matches!(
            encode_report(&r),
            Err(CodecError::Ineligible("a metrics snapshot"))
        ));
    }

    #[test]
    fn version_mismatch_is_malformed() {
        let r = run(false, None, false);
        let doc = encode_report(&r).unwrap();
        let mut text = doc.to_string();
        text = text.replace("\"version\":1", "\"version\":999");
        let err = decode_report(&Json::parse(&text).unwrap()).unwrap_err();
        assert!(matches!(err, CodecError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("999"));
    }

    #[test]
    fn float_bits_roundtrip_is_exact_for_awkward_values() {
        // 0.1 has no finite binary expansion; to_bits round-trips anyway.
        for v in [0.1_f64, 1.0 / 3.0, f64::MIN_POSITIVE, 0.0, 1.0] {
            let mut r = run(false, None, false);
            r.remote_read_fraction = v;
            let back = decode_report(&encode_report(&r).unwrap()).unwrap();
            assert_eq!(back.remote_read_fraction.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_documents_are_malformed_not_panics() {
        let r = run(false, None, false);
        let text = encode_report(&r).unwrap().to_string();
        for cut in [1, text.len() / 2, text.len() - 1] {
            let prefix = &text[..cut];
            // Unparseable prefixes are fine — also a clean failure.
            if let Ok(doc) = Json::parse(prefix) {
                assert!(decode_report(&doc).is_err(), "cut at {cut} decoded");
            }
        }
    }
}
