//! Minimal aligned-text tables for figure output.

use std::fmt;

/// One row: a label plus numeric columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (workload name, mean, …).
    pub label: String,
    /// Column values, one per header.
    pub values: Vec<f64>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Row {
            label: label.into(),
            values,
        }
    }
}

/// A titled table of labelled numeric rows, displayed as aligned text.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (e.g. `"Figure 8"`).
    pub title: String,
    /// Column headers (not counting the label column).
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the header count.
    pub fn push(&mut self, row: Row) {
        assert_eq!(
            row.values.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Column values of column `i` across all rows.
    pub fn column(&self, i: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r.values[i]).collect()
    }

    /// Appends arithmetic-mean and geometric-mean summary rows over the
    /// current data rows.
    pub fn push_means(&mut self) {
        let n = self.headers.len();
        let (am, gm): (Vec<f64>, Vec<f64>) = (0..n)
            .map(|i| {
                let col = self.column(i);
                (crate::amean(&col), crate::geomean(&col))
            })
            .unzip();
        self.rows.push(Row::new("Arithmetic-Mean", am));
        self.rows.push(Row::new("Geometric-Mean", gm));
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        write!(f, "{:label_w$}", "")?;
        for h in &self.headers {
            write!(f, " {h:>12}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:label_w$}", row.label)?;
            for v in &row.values {
                if v.abs() >= 1000.0 {
                    write!(f, " {v:>12.0}")?;
                } else {
                    write!(f, " {v:>12.3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(Row::new("x", vec![1.0, 2.0]));
        let s = t.to_string();
        assert!(s.contains("=== Demo ==="));
        assert!(s.contains("1.000"));
    }

    #[test]
    fn means_appended() {
        let mut t = Table::new("Demo", &["v"]);
        t.push(Row::new("x", vec![2.0]));
        t.push(Row::new("y", vec![8.0]));
        t.push_means();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[2].values[0], 5.0); // arithmetic
        assert!((t.rows[3].values[0] - 4.0).abs() < 1e-12); // geometric
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("Demo", &["a"]);
        t.push(Row::new("x", vec![1.0, 2.0]));
    }
}
