//! The declarative sim-job plane: experiments *declare* the simulations
//! they need as a [`SimPlan`], and the plan *executes* them — possibly in
//! parallel — before any table is assembled.
//!
//! Splitting declaration from execution buys three things:
//!
//! 1. **Dedup by structured key.** Jobs are identified by [`JobKey`]
//!    (configuration label, workload name, timeline flag, fault scenario),
//!    so figures sharing baselines enqueue them once and
//!    string-concatenation key collisions (`"x+timeline"` vs a config
//!    literally labelled `x+timeline`, or a faulted run aliasing its clean
//!    baseline) are impossible.
//! 2. **Determinism under parallelism.** Each job is an independent pure
//!    simulation; results are memoized in submission order regardless of
//!    completion order, and the serial table-assembly phase reads only the
//!    memo. Output is byte-identical at every `--jobs` count.
//! 3. **Throughput.** Plans fan out over [`ThreadPool`]; a sweep of
//!    hundreds of
//!    independent `(config, workload)` runs scales with cores.

use numa_gpu_core::{NumaGpuSystem, SimReport};
use numa_gpu_exec::{Job, Reporter, ThreadPool};
use numa_gpu_faults::FaultPlan;
use numa_gpu_runtime::Workload;
use numa_gpu_types::{SimError, SystemConfig, TopologyKind};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Structured identity of one simulation: which configuration, which
/// workload, whether link-timeline recording is on, and which fault
/// scenario (if any) is injected.
///
/// Replaces the old `(String, String)` cache key whose `"{label}+timeline"`
/// convention collided with configurations literally labelled that way.
/// The fault scenario is part of the key for the same reason: a faulted run
/// must never share a memo slot with the clean baseline of the same label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobKey {
    /// Configuration label (e.g. `"loc4"`); must uniquely identify the
    /// [`SystemConfig`] within a sweep.
    pub label: String,
    /// Workload name (from [`Workload`] metadata).
    pub workload: String,
    /// Whether the run records per-sample link timelines (Figure 5).
    pub timeline: bool,
    /// Canonical fault-scenario label (the [`FaultPlan`] grammar string);
    /// empty for a clean run.
    pub scenario: String,
}

impl JobKey {
    /// Creates a key for a clean (fault-free) run.
    pub fn new(label: impl Into<String>, workload: impl Into<String>, timeline: bool) -> Self {
        JobKey {
            label: label.into(),
            workload: workload.into(),
            timeline,
            scenario: String::new(),
        }
    }

    /// Attaches a fault-scenario label, keying this run separately from
    /// the clean run of the same label and workload.
    pub fn with_scenario(mut self, scenario: impl Into<String>) -> Self {
        self.scenario = scenario.into();
        self
    }

    /// Canonical byte encoding for cross-process identity: a sorted-field
    /// JSON document. Every string field goes through the JSON writer's
    /// escaping, so no label/scenario/workload can forge another key by
    /// concatenation, and the byte form is pinned by a regression test in
    /// [`crate::store`] — the on-disk store hashes exactly these bytes.
    pub fn canonical_json(&self) -> String {
        use numa_gpu_testkit::json::Json;
        Json::obj([
            ("label", Json::Str(self.label.clone())),
            ("scenario", Json::Str(self.scenario.clone())),
            ("timeline", Json::Bool(self.timeline)),
            ("workload", Json::Str(self.workload.clone())),
        ])
        .to_string()
    }

    /// Human-readable form used in progress lines and panic labels.
    pub fn display(&self) -> String {
        let tl = if self.timeline { " (timeline)" } else { "" };
        let sc = if self.scenario.is_empty() {
            String::new()
        } else {
            format!(" (faults: {})", self.scenario)
        };
        format!("[{}]{}{} {}", self.label, tl, sc, self.workload)
    }
}

/// One planned simulation: its identity plus everything needed to run it.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Structured identity (also the memoization key).
    pub key: JobKey,
    /// System configuration to simulate under.
    pub cfg: SystemConfig,
    /// Workload to run (cheap to clone: kernels are shared `Arc`s).
    pub workload: Workload,
    /// Fault plan to install before the run (`None` for a clean run).
    pub faults: Option<FaultPlan>,
    /// Whether this job's fabric topology is part of its identity (the
    /// topology-sweep experiments pin one topology per label).
    /// [`SimPlan::override_topology`] skips pinned jobs, so a global
    /// `--topology` override cannot silently rewrite a sweep into four
    /// copies of the same fabric.
    pub topology_pinned: bool,
}

impl SimJob {
    /// Runs the simulation this job describes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation, the fault plan does
    /// not fit the configured machine, or the simulation errors out
    /// (experiment configurations and plans are all statically valid).
    pub fn run(&self) -> SimReport {
        self.try_run()
            .unwrap_or_else(|e| panic!("experiment simulation {} failed: {e}", self.key.display()))
    }

    /// Fallible form of [`SimJob::run`] for supervising layers (the
    /// serving daemon classifies each [`SimError`] via
    /// [`SimError::retry_class`](numa_gpu_types::SimError::retry_class)
    /// instead of unwinding).
    pub fn try_run(&self) -> Result<SimReport, SimError> {
        let mut sys = NumaGpuSystem::new(self.cfg.clone())?;
        if self.key.timeline {
            sys.enable_link_timeline();
        }
        if let Some(plan) = &self.faults {
            sys.set_fault_plan(plan.clone())?;
        }
        sys.run(&self.workload)
    }
}

/// An ordered, deduplicated batch of simulations to execute.
///
/// Build one per experiment (or share across experiments), then hand it to
/// [`Runner::execute`](crate::Runner::execute) — or run it standalone with
/// [`SimPlan::execute`].
#[derive(Debug, Clone, Default)]
pub struct SimPlan {
    jobs: Vec<SimJob>,
    seen: BTreeSet<JobKey>,
}

impl SimPlan {
    /// An empty plan.
    pub fn new() -> Self {
        SimPlan::default()
    }

    /// A plan running every `(label, config)` variant against every
    /// workload — the shape of most paper figures.
    pub fn cross(variants: &[(String, SystemConfig)], workloads: &[Workload]) -> Self {
        let mut plan = SimPlan::new();
        for wl in workloads {
            for (label, cfg) in variants {
                plan.job(label, cfg.clone(), wl);
            }
        }
        plan
    }

    /// Adds a simulation of `workload` under `cfg`. Duplicate keys (same
    /// label, workload, timeline flag, and fault scenario) are dropped
    /// silently — that is the cross-figure dedup.
    pub fn job(&mut self, label: &str, cfg: SystemConfig, workload: &Workload) -> &mut Self {
        self.push(
            JobKey::new(label, workload.meta.name.clone(), false),
            cfg,
            workload,
            None,
        )
    }

    /// Adds a timeline-recording simulation (Figure 5). Cached under a
    /// distinct key from the plain run of the same label and workload.
    pub fn timeline_job(
        &mut self,
        label: &str,
        cfg: SystemConfig,
        workload: &Workload,
    ) -> &mut Self {
        self.push(
            JobKey::new(label, workload.meta.name.clone(), true),
            cfg,
            workload,
            None,
        )
    }

    /// Adds a fault-injected simulation. The plan's canonical grammar
    /// string becomes the key's scenario label, so the same label and
    /// workload under a different (or no) fault plan stays a distinct job.
    pub fn fault_job(
        &mut self,
        label: &str,
        cfg: SystemConfig,
        workload: &Workload,
        faults: &FaultPlan,
    ) -> &mut Self {
        self.push(
            JobKey::new(label, workload.meta.name.clone(), false).with_scenario(faults.to_string()),
            cfg,
            workload,
            Some(faults.clone()),
        )
    }

    /// Adds a simulation whose fabric topology is part of its identity:
    /// the job's label encodes the topology (e.g. `"aware8-ring"`) and
    /// [`SimPlan::override_topology`] leaves it alone. Use for
    /// topology-sweep experiments; plain [`SimPlan::job`]s stay subject to
    /// the global `--topology` override.
    pub fn topology_job(
        &mut self,
        label: &str,
        cfg: SystemConfig,
        workload: &Workload,
    ) -> &mut Self {
        let before = self.jobs.len();
        self.push(
            JobKey::new(label, workload.meta.name.clone(), false),
            cfg,
            workload,
            None,
        );
        // Only pin the job this call actually added — a deduplicated key
        // must not pin whatever job happens to be last.
        if self.jobs.len() > before {
            if let Some(job) = self.jobs.last_mut() {
                job.topology_pinned = true;
            }
        }
        self
    }

    fn push(
        &mut self,
        key: JobKey,
        cfg: SystemConfig,
        workload: &Workload,
        faults: Option<FaultPlan>,
    ) -> &mut Self {
        if self.seen.insert(key.clone()) {
            self.jobs.push(SimJob {
                key,
                cfg,
                workload: workload.clone(),
                faults,
                topology_pinned: false,
            });
        }
        self
    }

    /// Overrides `sim_threads` on every planned configuration — the
    /// intra-run parallelism knob. Reports are byte-identical at every
    /// setting (the partitioned event loop guarantees it), which is why
    /// this is *not* part of the job key: a memoized report answers for
    /// every thread count.
    pub fn override_sim_threads(&mut self, threads: u16) {
        for job in &mut self.jobs {
            job.cfg.sim_threads = threads;
        }
    }

    /// Overrides the fabric topology on every planned configuration whose
    /// topology is *not* pinned (see [`SimPlan::topology_job`]). Unlike
    /// `sim_threads` this changes simulation results, so the override must
    /// be uniform for a whole process run (the `figures --topology` flag):
    /// within one run every non-pinned job uses the same fabric, so the
    /// memo stays consistent even though the topology is not part of the
    /// job key.
    pub fn override_topology(&mut self, kind: TopologyKind) {
        for job in &mut self.jobs {
            if !job.topology_pinned {
                job.cfg.topology = kind;
            }
        }
    }

    /// Enables the self-profiler on every planned configuration. Like
    /// [`SimPlan::override_sim_threads`] this is *not* part of the job
    /// key: the profile is assembled at report time from counters the
    /// simulation maintains unconditionally, so every other report field
    /// is byte-identical with it on or off and a memoized report still
    /// answers every table lookup.
    pub fn override_profile(&mut self, on: bool) {
        for job in &mut self.jobs {
            job.cfg.obs.profile = on;
        }
    }

    /// Drops every job whose key fails `keep` (used to skip already-cached
    /// work).
    pub fn retain(&mut self, mut keep: impl FnMut(&JobKey) -> bool) {
        self.jobs.retain(|j| keep(&j.key));
        self.seen.retain(|k| self.jobs.iter().any(|j| &j.key == k));
    }

    /// Number of planned jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The planned jobs, in submission order.
    pub fn jobs(&self) -> &[SimJob] {
        &self.jobs
    }

    /// Executes every job on a pool of `threads` workers and returns
    /// `(key, report)` pairs in submission order.
    ///
    /// Worker progress (one line per simulation) goes through `reporter`,
    /// so lines from concurrent jobs cannot shear.
    ///
    /// # Panics
    ///
    /// Panics (with the job's key in the message) if any simulation
    /// panics; see [`ThreadPool::run`].
    pub fn execute(
        self,
        threads: usize,
        reporter: &Arc<Reporter>,
    ) -> Vec<(JobKey, Arc<SimReport>)> {
        let pool = ThreadPool::new(threads);
        let keys: Vec<JobKey> = self.jobs.iter().map(|j| j.key.clone()).collect();
        let pool_jobs: Vec<Job<Arc<SimReport>>> = self
            .jobs
            .into_iter()
            .map(|job| {
                let reporter = reporter.clone();
                let label = job.key.display();
                Job::new(label.clone(), move || {
                    reporter.line(&format!("  sim {label}"));
                    Arc::new(job.run())
                })
            })
            .collect();
        keys.into_iter().zip(pool.run(pool_jobs)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use numa_gpu_workloads::{by_name, Scale};

    fn wl() -> Workload {
        by_name("Other-Bitcoin-Crypto", &Scale::quick()).unwrap()
    }

    #[test]
    fn duplicate_jobs_collapse() {
        let w = wl();
        let mut plan = SimPlan::new();
        plan.job("single", configs::single(), &w);
        plan.job("single", configs::single(), &w);
        plan.timeline_job("single", configs::single(), &w);
        assert_eq!(plan.len(), 2, "plain run deduped; timeline is distinct");
    }

    #[test]
    fn timeline_flag_separates_keys() {
        let a = JobKey::new("x", "w", false);
        let b = JobKey::new("x", "w", true);
        assert_ne!(a, b);
        assert!(b.display().contains("timeline"));
    }

    #[test]
    fn fault_scenario_separates_keys() {
        let clean = JobKey::new("x", "w", false);
        let faulted = JobKey::new("x", "w", false).with_scenario("lanes:s1@5000=8");
        assert_ne!(clean, faulted);
        assert!(faulted.display().contains("faults: lanes:s1@5000=8"));
        assert!(!clean.display().contains("faults"));
    }

    #[test]
    fn fault_job_is_distinct_from_clean_job() {
        let w = wl();
        let plan_spec = FaultPlan::parse("dram:s0@2000+300").unwrap();
        let mut plan = SimPlan::new();
        plan.job("loc4", configs::locality(4), &w);
        plan.fault_job("loc4", configs::locality(4), &w, &plan_spec);
        plan.fault_job("loc4", configs::locality(4), &w, &plan_spec);
        assert_eq!(
            plan.len(),
            2,
            "clean and faulted are distinct; dup faulted collapses"
        );
        assert_eq!(plan.jobs()[1].key.scenario, "dram:s0@2000+300");
        assert!(plan.jobs()[1].faults.is_some());
    }

    #[test]
    fn cross_covers_the_product() {
        let w = wl();
        let variants = vec![
            ("single".to_string(), configs::single()),
            ("loc4".to_string(), configs::locality(4)),
        ];
        let plan = SimPlan::cross(&variants, std::slice::from_ref(&w));
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.jobs()[0].key.label, "single");
        assert_eq!(plan.jobs()[1].key.label, "loc4");
    }

    #[test]
    fn retain_filters_jobs() {
        let w = wl();
        let mut plan = SimPlan::new();
        plan.job("a", configs::single(), &w);
        plan.job("b", configs::locality(4), &w);
        plan.retain(|k| k.label == "b");
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.jobs()[0].key.label, "b");
        assert!(!plan.is_empty());
    }
}
