//! On-disk content-addressed result store behind the [`Runner`](crate::Runner) memo.
//!
//! Repeated sweeps across processes and CI runs pay for each simulation
//! once: results are written under a canonical hash of everything that
//! determines them and read back byte-identically on the next run.
//!
//! ## Keying
//!
//! A [`StoreKey`] is derived from the *key material*: a sorted-field JSON
//! document combining
//!
//! * [`JobKey::canonical_json`] — the structured job identity (label,
//!   scenario, timeline flag, workload), JSON-escaped so no label can
//!   collide with another by string concatenation;
//! * a fingerprint of the **canonicalized** [`SystemConfig`] — the full
//!   configuration with the report-invariant knobs (`sim_threads`, `obs`,
//!   `watchdog`) reset to fixed values, because reports are byte-identical
//!   across those settings by contract;
//! * the workload [`Scale`] — quick and full runs of the same workload
//!   name are different simulations.
//!
//! The cache *directory* is deliberately not part of the key: where the
//! store lives must never change what it stores.
//!
//! ## Crash safety and self-healing
//!
//! Entries are written to a `tmp/` sibling and atomically renamed into
//! place after an `fsync`, so a `kill -9` mid-write can only ever leave a
//! torn *temp* file — never a torn entry. Each entry carries a format
//! version and an FNV-1a checksum of its payload; a truncated, bit-flipped
//! or otherwise corrupt entry is detected on read, moved into `corrupt/`
//! (quarantined for post-mortem, never silently deleted), and the result
//! is recomputed and rewritten. Every store decision is appended to a
//! deterministic [`StoreEvent`] log so tests can assert the exact recovery
//! path taken.

use crate::codec::{decode_report, encode_report, CodecError, REPORT_FORMAT_VERSION};
use crate::plan::JobKey;
use numa_gpu_core::SimReport;
use numa_gpu_testkit::json::Json;
use numa_gpu_types::SystemConfig;
use numa_gpu_workloads::Scale;
use std::io::Write;
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit hash (the same construction simlint uses for its file
/// cache): deterministic, dependency-free, and stable across processes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A second, independent 64-bit FNV-1a stream (different offset basis), so
/// entry names carry 128 bits of key identity. A name collision would need
/// both streams to collide at once; the stored key material is still
/// verified on read as the last line of defense.
fn fnv1a64_twisted(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content address of one simulation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreKey {
    /// Canonical key material (sorted-field JSON); embedded in the entry
    /// and re-verified on read.
    pub material: String,
    /// 32-hex-char entry name (two independent FNV-1a streams over the
    /// material).
    pub hash: String,
}

impl StoreKey {
    /// Derives the store key for a job: its [`JobKey`] identity plus the
    /// canonicalized configuration fingerprint and workload scale.
    pub fn new(key: &JobKey, cfg: &SystemConfig, scale: &Scale) -> StoreKey {
        let mut canonical = cfg.clone();
        // Report-invariant knobs are pinned so a warm cache answers every
        // equivalent request: reports are byte-identical at any
        // `sim_threads` setting, observability toggles only *add* fields
        // (and observability runs bypass the store), and the watchdog can
        // only abort a run — it cannot change a successful report.
        canonical.sim_threads = 1;
        canonical.obs = Default::default();
        canonical.watchdog = Default::default();
        let config_fp = fnv1a64(format!("{canonical:?}").as_bytes());
        let scale_fp = format!(
            "cta/{}:{}..{} fp/{} ops/{}",
            scale.cta_divisor,
            scale.min_ctas,
            scale.max_ctas,
            scale.footprint_divisor,
            scale.ops_percent
        );
        // Sorted field names, encoded through the JSON writer so every
        // label/workload string is escaped — canonical by construction.
        let material = Json::obj([
            ("config", Json::Str(format!("{config_fp:016x}"))),
            (
                "job",
                Json::parse(&key.canonical_json()).expect("canonical_json is valid JSON"),
            ),
            ("scale", Json::Str(scale_fp)),
        ])
        .to_string();
        let hash = format!(
            "{:016x}{:016x}",
            fnv1a64(material.as_bytes()),
            fnv1a64_twisted(material.as_bytes())
        );
        StoreKey { material, hash }
    }
}

/// Why an entry was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// The file had no parseable header line.
    BadHeader,
    /// The header named a format version this build does not read.
    VersionMismatch,
    /// The payload checksum did not match the header (bit flip or
    /// truncation).
    ChecksumMismatch,
    /// The payload parsed but did not decode as a report.
    BadPayload,
    /// The payload decoded but its embedded key material was not the
    /// requested one (a 128-bit hash collision, or a hand-renamed file).
    KeyMismatch,
}

impl std::fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CorruptKind::BadHeader => "bad-header",
            CorruptKind::VersionMismatch => "version-mismatch",
            CorruptKind::ChecksumMismatch => "checksum-mismatch",
            CorruptKind::BadPayload => "bad-payload",
            CorruptKind::KeyMismatch => "key-mismatch",
        };
        write!(f, "{name}")
    }
}

/// One store decision, in the order it was taken. The log is deterministic
/// for a deterministic access sequence, which is what lets tests assert
/// the exact recovery path (quarantine → recompute → rewrite).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreEvent {
    /// A read was served from disk.
    Hit(String),
    /// No entry existed for the key.
    Miss(String),
    /// An entry was written (fresh result, or a recompute after
    /// quarantine).
    Write(String),
    /// A corrupt entry was moved into `corrupt/` and will be recomputed.
    Quarantined(String, CorruptKind),
    /// Stale temp files (from a crashed writer) were removed at open.
    TempSwept(u64),
}

/// Counters summarizing a store's lifetime (also exposed over the daemon's
/// `STATS` reply).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Reads served from disk.
    pub hits: u64,
    /// Reads that found no entry.
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
    /// Corrupt entries quarantined.
    pub quarantined: u64,
    /// Stale temp files swept at open.
    pub temp_swept: u64,
}

impl StoreStats {
    /// Byte-stable JSON form (insertion-ordered).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("hits", Json::UInt(self.hits)),
            ("misses", Json::UInt(self.misses)),
            ("writes", Json::UInt(self.writes)),
            ("quarantined", Json::UInt(self.quarantined)),
            ("temp_swept", Json::UInt(self.temp_swept)),
        ])
    }
}

/// The on-disk content-addressed result store.
///
/// Layout under the root directory:
///
/// ```text
/// <root>/store/v1/<32-hex>.entry   committed entries
/// <root>/tmp/<name>.<seq>          in-flight writes (atomically renamed)
/// <root>/corrupt/<name>.<seq>      quarantined entries
/// ```
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    stats: StoreStats,
    events: Vec<StoreEvent>,
    seq: u64,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root` and sweeps any
    /// temp files left behind by a crashed writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating the directory tree.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        let root = root.into();
        std::fs::create_dir_all(root.join("store/v1"))?;
        std::fs::create_dir_all(root.join("tmp"))?;
        std::fs::create_dir_all(root.join("corrupt"))?;
        let mut store = DiskStore {
            root,
            stats: StoreStats::default(),
            events: Vec::new(),
            seq: 0,
        };
        let swept = store.sweep_temp()?;
        if swept > 0 {
            store.stats.temp_swept = swept;
            store.events.push(StoreEvent::TempSwept(swept));
        }
        Ok(store)
    }

    /// Removes everything under `tmp/` — a temp file only exists while a
    /// writer is mid-flight, so anything found at open is a crash residue.
    fn sweep_temp(&self) -> std::io::Result<u64> {
        let mut swept = 0;
        for entry in std::fs::read_dir(self.root.join("tmp"))? {
            let entry = entry?;
            if std::fs::remove_file(entry.path()).is_ok() {
                swept += 1;
            }
        }
        Ok(swept)
    }

    fn entry_path(&self, key: &StoreKey) -> PathBuf {
        self.root
            .join("store/v1")
            .join(format!("{}.entry", key.hash))
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The ordered decision log (hits, misses, writes, quarantines).
    pub fn events(&self) -> &[StoreEvent] {
        &self.events
    }

    /// Loads the result stored under `key`, or `None` on a miss.
    ///
    /// A corrupt entry (torn, truncated, bit-flipped, wrong version, or
    /// carrying foreign key material) is quarantined into `corrupt/` and
    /// reported as a miss — the caller recomputes and the next
    /// [`DiskStore::save`] heals the entry.
    pub fn load(&mut self, key: &StoreKey) -> Option<SimReport> {
        let path = self.entry_path(key);
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(_) => {
                self.stats.misses += 1;
                self.events.push(StoreEvent::Miss(key.hash.clone()));
                return None;
            }
        };
        match Self::parse_entry(&raw, key) {
            Ok(report) => {
                self.stats.hits += 1;
                self.events.push(StoreEvent::Hit(key.hash.clone()));
                Some(report)
            }
            Err(kind) => {
                self.quarantine(&path, key, kind);
                self.stats.misses += 1;
                self.events.push(StoreEvent::Miss(key.hash.clone()));
                None
            }
        }
    }

    /// Parses one entry file: a header line
    /// `{"format":V,"checksum":"<16hex>"}` followed by the payload
    /// document `{"key":<material>,"report":{...}}` on the second line.
    fn parse_entry(raw: &str, key: &StoreKey) -> Result<SimReport, CorruptKind> {
        let (header_line, payload) = raw.split_once('\n').ok_or(CorruptKind::BadHeader)?;
        let header = Json::parse(header_line).map_err(|_| CorruptKind::BadHeader)?;
        let version = header
            .get("format")
            .and_then(Json::as_u64)
            .ok_or(CorruptKind::BadHeader)?;
        if version != REPORT_FORMAT_VERSION {
            return Err(CorruptKind::VersionMismatch);
        }
        let checksum = header
            .get("checksum")
            .and_then(Json::as_str)
            .ok_or(CorruptKind::BadHeader)?;
        if checksum != format!("{:016x}", fnv1a64(payload.as_bytes())) {
            return Err(CorruptKind::ChecksumMismatch);
        }
        let doc = Json::parse(payload).map_err(|_| CorruptKind::BadPayload)?;
        let material = doc.get("key").ok_or(CorruptKind::BadPayload)?.to_string();
        if material != key.material {
            return Err(CorruptKind::KeyMismatch);
        }
        let report = doc.get("report").ok_or(CorruptKind::BadPayload)?;
        decode_report(report).map_err(|_| CorruptKind::BadPayload)
    }

    /// Moves a corrupt entry aside (never deletes it) under a unique name
    /// in `corrupt/`.
    fn quarantine(&mut self, path: &Path, key: &StoreKey, kind: CorruptKind) {
        self.seq += 1;
        let dest = self
            .root
            .join("corrupt")
            .join(format!("{}.{}.{}", key.hash, kind, self.seq));
        // A rename failure (e.g. the file vanished) still counts as a
        // quarantine decision: the entry is gone either way and the caller
        // recomputes.
        let _ = std::fs::rename(path, &dest);
        self.stats.quarantined += 1;
        self.events
            .push(StoreEvent::Quarantined(key.hash.clone(), kind));
    }

    /// Persists `report` under `key` via temp-file + atomic rename.
    ///
    /// Reports carrying observability payloads the codec does not model
    /// (metrics snapshots, trace events) are skipped silently — they are
    /// never served from the store either, so skipping keeps the store
    /// coherent.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an entry is either fully committed or not
    /// visible at all.
    pub fn save(&mut self, key: &StoreKey, report: &SimReport) -> std::io::Result<()> {
        let encoded = match encode_report(report) {
            Ok(doc) => doc,
            Err(CodecError::Ineligible(_)) => return Ok(()),
            Err(CodecError::Malformed(msg)) => {
                return Err(std::io::Error::other(msg));
            }
        };
        let payload = Json::obj([
            (
                "key",
                Json::parse(&key.material).expect("key material is valid JSON"),
            ),
            ("report", encoded),
        ])
        .to_string();
        let header = Json::obj([
            ("format", Json::UInt(REPORT_FORMAT_VERSION)),
            (
                "checksum",
                Json::Str(format!("{:016x}", fnv1a64(payload.as_bytes()))),
            ),
        ])
        .to_string();
        self.seq += 1;
        let tmp =
            self.root
                .join("tmp")
                .join(format!("{}.{}.{}", key.hash, std::process::id(), self.seq));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(header.as_bytes())?;
            f.write_all(b"\n")?;
            f.write_all(payload.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.entry_path(key))?;
        self.stats.writes += 1;
        self.events.push(StoreEvent::Write(key.hash.clone()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    /// Satellite regression: the exact canonical encoding and hash of a
    /// known key are pinned. If either changes, every deployed store goes
    /// cold silently — bump [`REPORT_FORMAT_VERSION`] instead and let
    /// entries recompute through the quarantine path.
    #[test]
    fn canonical_job_key_encoding_and_hash_are_pinned() {
        let key = JobKey::new("loc4", "Rodinia-Euler3D", true).with_scenario("lanes:s1@5000=8");
        let canonical = key.canonical_json();
        assert_eq!(
            canonical,
            r#"{"label":"loc4","scenario":"lanes:s1@5000=8","timeline":true,"workload":"Rodinia-Euler3D"}"#
        );
        assert_eq!(
            format!("{:016x}", fnv1a64(canonical.as_bytes())),
            "09c3bce8a09fe9ed"
        );
    }

    /// Satellite regression, in the spirit of the PR 3 `"x+timeline"` fix:
    /// keys that collide under naive string concatenation stay distinct
    /// under the canonical encoding, including labels containing JSON
    /// metacharacters.
    #[test]
    fn canonical_encoding_cannot_collide_by_concatenation() {
        let timeline = JobKey::new("x", "w", true);
        let literal = JobKey::new("x+timeline", "w", false);
        assert_ne!(timeline.canonical_json(), literal.canonical_json());

        // A label that *contains* the canonical punctuation is escaped,
        // not spliced: `a","workload":"b` cannot forge field boundaries.
        let forged = JobKey::new("a\",\"workload\":\"b", "w", false);
        let honest = JobKey::new("a", "b", false);
        assert_ne!(forged.canonical_json(), honest.canonical_json());
        let cfg = configs::locality(2);
        let scale = Scale::quick();
        assert_ne!(
            StoreKey::new(&forged, &cfg, &scale).hash,
            StoreKey::new(&honest, &cfg, &scale).hash
        );
    }

    #[test]
    fn store_key_separates_scale_config_and_job() {
        let key = JobKey::new("loc4", "w", false);
        let base = StoreKey::new(&key, &configs::locality(4), &Scale::quick());
        let full = StoreKey::new(&key, &configs::locality(4), &Scale::full());
        let other_cfg = StoreKey::new(&key, &configs::traditional(4), &Scale::quick());
        let other_job = StoreKey::new(
            &JobKey::new("loc4", "w", true),
            &configs::locality(4),
            &Scale::quick(),
        );
        assert_ne!(base.hash, full.hash, "scale must be part of the key");
        assert_ne!(base.hash, other_cfg.hash, "config must be part of the key");
        assert_ne!(
            base.hash, other_job.hash,
            "job identity must be part of the key"
        );
    }

    #[test]
    fn report_invariant_knobs_share_one_entry() {
        let key = JobKey::new("loc4", "w", false);
        let mut a = configs::locality(4);
        let mut b = configs::locality(4);
        a.sim_threads = 1;
        b.sim_threads = 8;
        b.obs.profile = true;
        b.watchdog.max_cycles = 123_456;
        assert_eq!(
            StoreKey::new(&key, &a, &Scale::quick()).hash,
            StoreKey::new(&key, &b, &Scale::quick()).hash,
            "sim_threads/obs/watchdog are canonicalized out of the key"
        );
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64_twisted(b"ab"));
    }
}
