//! Supplementary ablations (page migration, scoreboard depth) on a
//! representative 8-workload subset of the study set.

use numa_gpu_bench::{configs, geomean};
use numa_gpu_core::run_workload;
use numa_gpu_types::PagePlacement;
use numa_gpu_workloads::{by_name, Scale};

const SUBSET: [&str; 8] = [
    "Rodinia-Euler3D",
    "HPC-RSBench",
    "HPC-CoMD-Ta",
    "HPC-HPGMG-UVM",
    "Rodinia-BFS",
    "Rodinia-Hotspot",
    "ML-GoogLeNet-cudnn-Lev2",
    "Lonestar-MST-Mesh",
];

fn main() {
    let scale = Scale::full();
    let mut variants: Vec<(&str, Vec<f64>)> = vec![
        ("aware4 (subset)", Vec::new()),
        ("aware-page-migration (subset)", Vec::new()),
        ("aware-mlp-1 (subset)", Vec::new()),
        ("aware-mlp-8 (subset)", Vec::new()),
    ];
    for name in SUBSET {
        eprintln!("  {name}");
        let wl = by_name(name, &scale).expect("catalog workload");
        let base = run_workload(configs::locality(4), &wl).unwrap();
        let aware = run_workload(configs::numa_aware(4), &wl).unwrap();
        let mut mig = configs::numa_aware(4);
        mig.placement = PagePlacement::FirstTouchMigrate {
            migrate_threshold: 64,
        };
        let mig_r = run_workload(mig, &wl).unwrap();
        let mut m1 = configs::numa_aware(4);
        m1.sm.max_pending_loads = 1;
        let m1_r = run_workload(m1, &wl).unwrap();
        let mut m8 = configs::numa_aware(4);
        m8.sm.max_pending_loads = 8;
        let m8_r = run_workload(m8, &wl).unwrap();
        variants[0].1.push(aware.speedup_over(&base));
        variants[1].1.push(mig_r.speedup_over(&base));
        variants[2].1.push(m1_r.speedup_over(&base));
        variants[3].1.push(m8_r.speedup_over(&base));
    }
    for (label, xs) in &variants {
        println!("{label:32} {:.3}", geomean(xs));
    }
}
