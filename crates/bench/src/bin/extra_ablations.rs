//! Supplementary ablations (page migration, scoreboard depth) on a
//! representative 8-workload subset of the study set.
//!
//! ```text
//! extra_ablations [--quick] [--jobs N]
//! ```
//!
//! Like `figures`, the sweep is declared as a [`SimPlan`] and executed on
//! the worker pool; `--jobs 1` (the default is available parallelism)
//! reproduces the old serial behavior with byte-identical output.

use numa_gpu_bench::{configs, geomean, Runner, SimPlan};
use numa_gpu_exec::ThreadPool;
use numa_gpu_types::{PagePlacement, SystemConfig};
use numa_gpu_workloads::{by_name, Scale};

const SUBSET: [&str; 8] = [
    "Rodinia-Euler3D",
    "HPC-RSBench",
    "HPC-CoMD-Ta",
    "HPC-HPGMG-UVM",
    "Rodinia-BFS",
    "Rodinia-Hotspot",
    "ML-GoogLeNet-cudnn-Lev2",
    "Lonestar-MST-Mesh",
];

fn variants() -> Vec<(String, SystemConfig)> {
    let mut mig = configs::numa_aware(4);
    mig.placement = PagePlacement::FirstTouchMigrate {
        migrate_threshold: 64,
    };
    let mut m1 = configs::numa_aware(4);
    m1.sm.max_pending_loads = 1;
    let mut m8 = configs::numa_aware(4);
    m8.sm.max_pending_loads = 8;
    vec![
        ("aware4".to_string(), configs::numa_aware(4)),
        ("aware-page-migration".to_string(), mig),
        ("aware-mlp-1".to_string(), m1),
        ("aware-mlp-8".to_string(), m8),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--jobs expects a positive integer, got `{v}`");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| ThreadPool::available().workers());

    let scale = if quick { Scale::quick() } else { Scale::full() };
    let mut runner = Runner::new(scale).verbose().jobs(jobs);

    let wls: Vec<_> = SUBSET
        .iter()
        .map(|name| by_name(name, runner.scale()).expect("catalog workload"))
        .collect();
    let variants = variants();
    let mut all = vec![("loc4".to_string(), configs::locality(4))];
    all.extend(variants.iter().cloned());
    runner.execute(SimPlan::cross(&all, &wls));

    for (label, cfg) in &variants {
        let mut speedups = Vec::new();
        for wl in &wls {
            let base = runner.report("loc4", configs::locality(4), wl);
            let r = runner.report(label, cfg.clone(), wl);
            speedups.push(r.speedup_over(&base));
        }
        println!(
            "{:32} {:.3}",
            format!("{label} (subset)"),
            geomean(&speedups)
        );
    }
}
