//! Regenerates every table and figure of the paper.
//!
//! ```text
//! figures [--quick] [--jobs N] [--sim-threads N] [--profile] [--out DIR]
//!         [--cache-dir DIR] [--topology star|ring|mesh|fattree] [artifact...]
//!
//! artifacts: table1 table2 fig2 fig3 fig5 fig6 fig6-sens fig8 fig9
//!            fig9-wb fig10 fig11 power ablations resilience
//!            scaling collective
//!            (default: all)
//! ```
//!
//! `--quick` uses the reduced workload scale (CI-sized); default is the
//! full committed scale. `--jobs N` runs up to `N` simulations in parallel
//! (default: available parallelism; `1` reproduces the serial behavior
//! exactly — output is byte-identical either way). `--sim-threads N`
//! parallelizes *inside* each simulation via the partitioned event loop
//! (0 = auto; output is byte-identical at every setting, default 1). With
//! `--out DIR` each artifact is also written to `DIR/<name>.txt`.
//! `--profile` prints a work-attribution table summed over every
//! simulation at the end; it never changes the artifacts themselves (the
//! profile is assembled at report time from counters the simulator
//! maintains unconditionally). `--topology` reruns the paper figures on a
//! different fabric (default star, the paper's switch); the `scaling` and
//! `collective` artifacts pin their own per-curve topologies and ignore
//! the flag. `--cache-dir DIR` backs the in-memory memo with the on-disk
//! content-addressed store: a second run of the same figures serves every
//! simulation warm from disk and prints byte-identical artifacts (warm-hit
//! counts go to stderr at the end).

use numa_gpu_bench::{experiments, Runner};
use numa_gpu_exec::ThreadPool;
use numa_gpu_workloads::Scale;
use std::io::Write;
use std::time::Instant;

const ALL: [&str; 17] = [
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig6-sens",
    "fig8",
    "fig9",
    "fig9-wb",
    "fig10",
    "fig11",
    "power",
    "ablations",
    "resilience",
    "scaling",
    "collective",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let profile = args.iter().any(|a| a == "--profile");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_dir = flag_value("--out");
    let jobs_arg = flag_value("--jobs");
    let jobs: usize = match &jobs_arg {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--jobs expects a positive integer, got `{v}`");
            std::process::exit(2);
        }),
        None => ThreadPool::available().workers(),
    };
    let sim_threads_arg = flag_value("--sim-threads");
    let sim_threads: Option<u16> = sim_threads_arg.as_ref().map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--sim-threads expects an integer (0 = auto), got `{v}`");
            std::process::exit(2);
        })
    });
    let cache_dir = flag_value("--cache-dir");
    let topology_arg = flag_value("--topology");
    let topology = topology_arg.as_ref().map(|v| {
        numa_gpu_types::TopologyKind::from_flag(v).unwrap_or_else(|| {
            eprintln!("--topology expects star|ring|mesh|fattree, got `{v}`");
            std::process::exit(2);
        })
    });
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != out_dir.as_deref())
        .filter(|a| Some(a.as_str()) != jobs_arg.as_deref())
        .filter(|a| Some(a.as_str()) != sim_threads_arg.as_deref())
        .filter(|a| Some(a.as_str()) != cache_dir.as_deref())
        .filter(|a| Some(a.as_str()) != topology_arg.as_deref())
        .cloned()
        .collect();
    let selected: Vec<&str> = if selected.is_empty() {
        ALL.to_vec()
    } else {
        selected.iter().map(String::as_str).collect()
    };
    for name in &selected {
        if !ALL.contains(name) {
            eprintln!("unknown artifact `{name}`; known: {ALL:?}");
            std::process::exit(2);
        }
    }

    let scale = if quick { Scale::quick() } else { Scale::full() };
    let mut runner = Runner::new(scale).verbose().jobs(jobs);
    if let Some(threads) = sim_threads {
        runner = runner.sim_threads(threads);
    }
    if let Some(kind) = topology {
        runner = runner.topology(kind);
    }
    if profile {
        runner = runner.profile();
    }
    if let Some(dir) = &cache_dir {
        runner = runner.cache_dir(dir).unwrap_or_else(|e| {
            eprintln!("--cache-dir {dir}: {e}");
            std::process::exit(2);
        });
    }
    eprintln!("using {} worker thread(s)", runner.job_count());
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output dir");
    }

    for name in &selected {
        let t0 = Instant::now();
        eprintln!(">>> {name}");
        let text = match *name {
            "table1" => experiments::table1(),
            "table2" => experiments::table2(&runner).to_string(),
            "fig2" => experiments::fig2(&runner).to_string(),
            "fig3" => experiments::fig3(&mut runner).to_string(),
            "fig5" => experiments::fig5(&mut runner),
            "fig6" => experiments::fig6(&mut runner).to_string(),
            "fig6-sens" => experiments::fig6_switch_sensitivity(&mut runner).to_string(),
            "fig8" => experiments::fig8(&mut runner).to_string(),
            "fig9" => experiments::fig9(&mut runner).to_string(),
            "fig9-wb" => experiments::fig9_writeback(&mut runner).to_string(),
            "fig10" => experiments::fig10(&mut runner).to_string(),
            "fig11" => experiments::fig11(&mut runner).to_string(),
            "power" => experiments::power(&mut runner).to_string(),
            "ablations" => experiments::ablations(&mut runner).to_string(),
            "resilience" => experiments::resilience(&mut runner).to_string(),
            "scaling" => experiments::topology_scaling(&mut runner).to_string(),
            "collective" => experiments::collective_balance(&mut runner).to_string(),
            _ => unreachable!("validated above"),
        };
        println!("{text}");
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{name}.txt");
            let mut f = std::fs::File::create(&path).expect("create artifact file");
            f.write_all(text.as_bytes()).expect("write artifact");
        }
        eprintln!(
            "<<< {name} done in {:.1?} ({} sims so far)",
            t0.elapsed(),
            runner.runs()
        );
    }

    if profile {
        println!(
            "cumulative over {} simulation(s):\n{}",
            runner.runs(),
            runner.aggregate_profile().render_table()
        );
    }
    if let Some(stats) = runner.store_stats() {
        eprintln!(
            "store: {} warm hit(s), {} miss(es), {} write(s), {} quarantined",
            stats.hits, stats.misses, stats.writes, stats.quarantined
        );
    }
}
