//! Named system configurations used across the experiments.

use numa_gpu_types::{
    CacheMode, CtaSchedulingPolicy, LinkMode, PagePlacement, SystemConfig, TopologyKind,
};

/// The single-GPU baseline every speedup is measured against.
pub fn single() -> SystemConfig {
    SystemConfig::pascal_single()
}

/// Traditional single-GPU policies naively extended to `n` sockets:
/// fine-grained memory interleaving + modulo CTA scheduling (Fig 3 green).
pub fn traditional(n: u8) -> SystemConfig {
    let mut cfg = SystemConfig::numa_sockets(n);
    cfg.placement = PagePlacement::FineInterleave;
    cfg.cta_policy = CtaSchedulingPolicy::Interleave;
    cfg
}

/// Round-robin page interleaving (the Linux `interleave` analogue §3
/// discusses), with locality-preserving CTA scheduling.
pub fn page_interleaved(n: u8) -> SystemConfig {
    let mut cfg = SystemConfig::numa_sockets(n);
    cfg.placement = PagePlacement::PageInterleave;
    cfg
}

/// The locality-optimized software runtime (first-touch + contiguous block),
/// baseline microarchitecture (mem-side L2, static links) — the paper's
/// SW-only 4-socket baseline (Fig 3 blue).
pub fn locality(n: u8) -> SystemConfig {
    SystemConfig::numa_sockets(n)
}

/// Locality runtime + dynamic asymmetric link allocation at the given
/// sample time (Fig 6 green).
pub fn dynamic_link(n: u8, sample_time_cycles: u32) -> SystemConfig {
    let mut cfg = SystemConfig::numa_sockets(n);
    cfg.link.mode = LinkMode::DynamicAsymmetric;
    cfg.link.sample_time_cycles = sample_time_cycles;
    cfg
}

/// Locality runtime + hypothetically doubled link bandwidth (Fig 6 red).
pub fn double_bandwidth(n: u8) -> SystemConfig {
    let mut cfg = SystemConfig::numa_sockets(n);
    cfg.link.mode = LinkMode::DoubleBandwidth;
    cfg
}

/// Locality runtime with one of the four Fig 7 cache organizations.
pub fn cache(n: u8, mode: CacheMode) -> SystemConfig {
    let mut cfg = SystemConfig::numa_sockets(n);
    cfg.cache_mode = mode;
    cfg
}

/// The full NUMA-aware proposal: dynamic links + NUMA-aware caches
/// (Figs 10 and 11).
pub fn numa_aware(n: u8) -> SystemConfig {
    SystemConfig::numa_aware_sockets(n)
}

/// The unbuildable `f×`-scaled single GPU (the red theoretical dashes).
pub fn hypothetical(f: u8) -> SystemConfig {
    SystemConfig::hypothetical_scaled(f)
}

/// The full NUMA-aware proposal on an explicit fabric topology — the
/// topology-scaling study's per-curve configuration.
pub fn numa_aware_topo(n: u8, kind: TopologyKind) -> SystemConfig {
    let mut cfg = SystemConfig::numa_aware_sockets(n);
    cfg.topology = kind;
    cfg
}

/// Dynamic asymmetric links on an explicit fabric topology — the
/// collective-balance study's configuration (lane balancer active on the
/// access links, interior fabric links rebalancing at the same cadence).
pub fn dynamic_link_topo(n: u8, sample_time_cycles: u32, kind: TopologyKind) -> SystemConfig {
    let mut cfg = dynamic_link(n, sample_time_cycles);
    cfg.topology = kind;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_validate() {
        for cfg in [
            single(),
            traditional(4),
            page_interleaved(4),
            locality(4),
            dynamic_link(4, 5000),
            double_bandwidth(4),
            cache(4, CacheMode::StaticRemoteCache),
            cache(4, CacheMode::SharedCoherent),
            cache(4, CacheMode::NumaAwareDynamic),
            numa_aware(8),
            hypothetical(8),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn traditional_destroys_locality_knobs() {
        let t = traditional(4);
        assert_eq!(t.placement, PagePlacement::FineInterleave);
        assert_eq!(t.cta_policy, CtaSchedulingPolicy::Interleave);
    }
}
