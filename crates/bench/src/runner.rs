//! A caching simulation runner shared by all experiments.
//!
//! Since the job-plane refactor the runner is the *memo* side of a
//! two-phase model: experiments declare their simulations as a
//! [`SimPlan`], [`Runner::execute`] fans the plan out over a worker pool
//! ([`numa_gpu_exec::ThreadPool`]) and memoizes each report, and the
//! table-assembly code then reads reports back through the same API as
//! before. [`Runner::report`] / [`Runner::report_with_timeline`] remain as
//! compatibility shims that simulate inline on a cache miss, so call sites
//! migrate incrementally and `--jobs 1` reproduces the old serial behavior
//! exactly.

use crate::plan::{JobKey, SimJob, SimPlan};
use crate::store::{DiskStore, StoreEvent, StoreKey, StoreStats};
use numa_gpu_core::{ProfileReport, SimReport};
use numa_gpu_exec::Reporter;
use numa_gpu_runtime::Workload;
use numa_gpu_types::{SystemConfig, TopologyKind};
use numa_gpu_workloads::Scale;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Runs simulations and memoizes their reports by [`JobKey`]
/// (configuration label, workload name, timeline flag), so experiments
/// sharing baselines (every figure reuses the single-GPU and locality
/// runs) pay for them once.
pub struct Runner {
    scale: Scale,
    cache: BTreeMap<JobKey, Arc<SimReport>>,
    store: Option<DiskStore>,
    runs: u64,
    jobs: usize,
    sim_threads: Option<u16>,
    topology: Option<TopologyKind>,
    profile: bool,
    reporter: Arc<Reporter>,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("cached", &self.cache.len())
            .field("runs", &self.runs)
            .field("jobs", &self.jobs)
            .finish_non_exhaustive()
    }
}

impl Runner {
    /// Creates a runner at the given workload scale. Plans execute on a
    /// single worker (the exact pre-pool behavior) until
    /// [`Runner::jobs`] raises the count.
    pub fn new(scale: Scale) -> Self {
        Runner {
            scale,
            cache: BTreeMap::new(),
            store: None,
            runs: 0,
            jobs: 1,
            sim_threads: None,
            topology: None,
            profile: false,
            reporter: Arc::new(Reporter::stderr(false)),
        }
    }

    /// Backs the in-memory memo with the on-disk content-addressed store
    /// rooted at `dir` (created if absent): cache misses first try the
    /// store, fresh results are written through to it, and corrupt entries
    /// self-heal (see [`DiskStore`]). The directory is deliberately not
    /// part of any cache key — where results live cannot change what they
    /// are.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating the store's directory tree.
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.store = Some(DiskStore::open(dir)?);
        Ok(self)
    }

    /// Logs each fresh simulation to stderr (progress feedback for the long
    /// full-scale sweeps). Lines are routed through a mutexed line-buffered
    /// reporter so concurrent workers cannot shear them.
    pub fn verbose(mut self) -> Self {
        self.reporter = Arc::new(Reporter::stderr(true));
        self
    }

    /// Sets the worker-thread count used by [`Runner::execute`] (clamped
    /// to at least 1). `1` executes plans serially on the calling thread.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Overrides `SystemConfig::sim_threads` on every simulation this
    /// runner executes (0 = auto-size to the machine). Reports are
    /// byte-identical at every setting, so memoized results stay valid —
    /// the override is not part of the cache key by design.
    pub fn sim_threads(mut self, threads: u16) -> Self {
        self.sim_threads = Some(threads);
        self
    }

    /// Overrides the fabric topology on every simulation this runner
    /// executes, *except* jobs that pin their own topology (the sweep
    /// experiments — see [`SimPlan::topology_job`]). Unlike `sim_threads`
    /// this changes results, so it must be set once for the whole process
    /// (the `figures --topology` flag) — every non-pinned job then runs on
    /// the same fabric and the memo stays internally consistent.
    pub fn topology(mut self, kind: TopologyKind) -> Self {
        self.topology = Some(kind);
        self
    }

    /// Enables the self-profiler on every simulation this runner executes.
    /// The profile is assembled at report time from counters the
    /// simulation maintains unconditionally, so every other report field
    /// is byte-identical with it on or off — which is why, like
    /// `sim_threads`, it is not part of the cache key. Read the
    /// accumulated attribution back with [`Runner::aggregate_profile`].
    pub fn profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// The scale this runner simulates at.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// Number of actual (non-cached) simulations executed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Worker threads used per plan execution.
    pub fn job_count(&self) -> usize {
        self.jobs
    }

    /// Reads served warm from the on-disk store (0 without a cache dir).
    pub fn warm_hits(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.stats().hits)
    }

    /// Lifetime counters of the backing store, if one is attached.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// The backing store's ordered decision log, if one is attached.
    pub fn store_events(&self) -> Option<&[StoreEvent]> {
        self.store.as_ref().map(|s| s.events())
    }

    /// Tries the on-disk store for `key` under `cfg`. A stored result
    /// without a profile cannot satisfy a profiling runner (the miss
    /// recomputes and the rewrite heals the entry); a stored profile is
    /// stripped for a non-profiling runner so warm and cold reports stay
    /// byte-identical.
    fn store_load(&mut self, key: &JobKey, cfg: &SystemConfig) -> Option<Arc<SimReport>> {
        let profile = self.profile;
        let scale = self.scale;
        let store = self.store.as_mut()?;
        let skey = StoreKey::new(key, cfg, &scale);
        let mut report = store.load(&skey)?;
        if profile && report.profile.is_none() {
            return None;
        }
        if !profile {
            report.profile = None;
        }
        Some(Arc::new(report))
    }

    /// Writes a fresh result through to the store (no-op without one).
    /// Write failures are reported, not fatal: the result is still
    /// memoized in memory and the sweep continues.
    fn store_save(&mut self, skey: &StoreKey, key: &JobKey, report: &SimReport) {
        let Some(store) = self.store.as_mut() else {
            return;
        };
        if let Err(err) = store.save(skey, report) {
            self.reporter.line(&format!(
                "  store: write failed for {}: {err}",
                key.display()
            ));
        }
    }

    /// Executes every not-yet-cached job of `plan` on the worker pool and
    /// memoizes the reports. Jobs already in the cache (e.g. baselines
    /// shared with an earlier figure) are skipped, so cross-figure dedup
    /// falls out of the structured keys.
    ///
    /// Results are memoized in submission order regardless of completion
    /// order, keeping every downstream observation byte-identical at any
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics (labelled with the failing job's key) if a simulation
    /// panics, e.g. on an invalid experiment configuration.
    pub fn execute(&mut self, mut plan: SimPlan) {
        plan.retain(|key| !self.cache.contains_key(key));
        if plan.is_empty() {
            return;
        }
        if let Some(threads) = self.sim_threads {
            plan.override_sim_threads(threads);
        }
        if let Some(kind) = self.topology {
            plan.override_topology(kind);
        }
        if self.profile {
            plan.override_profile(true);
        }
        if self.store.is_some() {
            // Disk read-through runs after the overrides so the store key
            // sees each job's *effective* config (topology changes
            // results; the canonicalized knobs are hashed out either way).
            let mut warm = Vec::new();
            for job in plan.jobs() {
                let (key, cfg) = (job.key.clone(), job.cfg.clone());
                if let Some(report) = self.store_load(&key, &cfg) {
                    warm.push((key, report));
                }
            }
            for (key, report) in warm {
                self.cache.insert(key, report);
            }
            plan.retain(|key| !self.cache.contains_key(key));
            if plan.is_empty() {
                return;
            }
        }
        let store_keys: BTreeMap<JobKey, StoreKey> = if self.store.is_some() {
            plan.jobs()
                .iter()
                .map(|j| (j.key.clone(), StoreKey::new(&j.key, &j.cfg, &self.scale)))
                .collect()
        } else {
            BTreeMap::new()
        };
        for (key, report) in plan.execute(self.jobs, &self.reporter) {
            self.runs += 1;
            if let Some(skey) = store_keys.get(&key) {
                let skey = skey.clone();
                self.store_save(&skey, &key, &report);
            }
            self.cache.insert(key, report);
        }
    }

    /// The memoized report for `key`, if that job has run.
    pub fn cached(&self, key: &JobKey) -> Option<Arc<SimReport>> {
        self.cache.get(key).cloned()
    }

    /// Sums the per-subsystem work attribution over every memoized report
    /// that carries one (i.e. every simulation run with
    /// [`Runner::profile`] enabled). Reports are folded in ascending key
    /// order, so the aggregate — and its rendered table — is byte-stable
    /// across run order and worker counts. Empty when profiling was off.
    pub fn aggregate_profile(&self) -> ProfileReport {
        let mut agg = ProfileReport::new();
        for report in self.cache.values() {
            let Some(p) = &report.profile else { continue };
            for scope in &p.scopes {
                let out = agg.scope(&scope.name);
                for (counter, value) in &scope.counters {
                    out.count(counter, *value);
                }
            }
        }
        agg
    }

    /// Every memoized job key in ascending key order. The order depends
    /// only on which jobs have run — never on execution or completion
    /// order — so diagnostics and summaries built from it are stable
    /// across runs and worker counts.
    pub fn cached_keys(&self) -> impl Iterator<Item = &JobKey> {
        self.cache.keys()
    }

    /// Returns the report for `workload` under `cfg`, simulating on first
    /// use. `label` must uniquely identify the configuration.
    ///
    /// Compatibility shim over the plan/execute model: prefer declaring a
    /// [`SimPlan`] and calling [`Runner::execute`] so sweeps can fan out;
    /// after that this is a pure cache hit.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation (experiment configs are
    /// all statically valid).
    pub fn report(
        &mut self,
        label: &str,
        cfg: SystemConfig,
        workload: &Workload,
    ) -> Arc<SimReport> {
        self.report_keyed(
            JobKey::new(label, workload.meta.name.clone(), false),
            cfg,
            workload,
        )
    }

    /// Like [`Self::report`] but records the per-sample link timelines
    /// (Figure 5). Timeline runs are cached under a distinct structured
    /// key — a config labelled `"x+timeline"` can no longer collide with
    /// `report_with_timeline("x", ...)`.
    pub fn report_with_timeline(
        &mut self,
        label: &str,
        cfg: SystemConfig,
        workload: &Workload,
    ) -> Arc<SimReport> {
        self.report_keyed(
            JobKey::new(label, workload.meta.name.clone(), true),
            cfg,
            workload,
        )
    }

    fn report_keyed(
        &mut self,
        key: JobKey,
        mut cfg: SystemConfig,
        workload: &Workload,
    ) -> Arc<SimReport> {
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        if let Some(threads) = self.sim_threads {
            cfg.sim_threads = threads;
        }
        if let Some(kind) = self.topology {
            // The shim cannot know about pinning, but the topology-sweep
            // experiments always pre-execute their plans, so their shim
            // reads are pure cache hits and never reach this override.
            cfg.topology = kind;
        }
        if self.profile {
            cfg.obs.profile = true;
        }
        if let Some(report) = self.store_load(&key, &cfg) {
            self.cache.insert(key, report.clone());
            return report;
        }
        self.reporter.line(&format!("  sim {}", key.display()));
        let skey = self
            .store
            .is_some()
            .then(|| StoreKey::new(&key, &cfg, &self.scale));
        let job = SimJob {
            key: key.clone(),
            cfg,
            workload: workload.clone(),
            faults: None,
            topology_pinned: false,
        };
        let report = Arc::new(job.run());
        self.runs += 1;
        if let Some(skey) = skey {
            self.store_save(&skey, &key, &report);
        }
        self.cache.insert(key, report.clone());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use numa_gpu_workloads::by_name;

    fn quick_workload() -> Workload {
        by_name("Other-Bitcoin-Crypto", &Scale::quick()).unwrap()
    }

    #[test]
    fn caches_by_label_and_workload() {
        let wl = quick_workload();
        let mut r = Runner::new(Scale::quick());
        let a = r.report("single", configs::single(), &wl);
        let b = r.report("single", configs::single(), &wl);
        assert_eq!(r.runs(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        let _c = r.report("loc4", configs::locality(4), &wl);
        assert_eq!(r.runs(), 2);
    }

    #[test]
    fn execute_memoizes_and_dedups_against_cache() {
        let wl = quick_workload();
        let mut r = Runner::new(Scale::quick()).jobs(2);
        let mut plan = SimPlan::new();
        plan.job("single", configs::single(), &wl);
        plan.job("loc4", configs::locality(4), &wl);
        r.execute(plan);
        assert_eq!(r.runs(), 2);

        // Shim reads are now pure cache hits...
        let a = r.report("single", configs::single(), &wl);
        assert_eq!(r.runs(), 2);
        assert!(Arc::ptr_eq(
            &a,
            &r.cached(&JobKey::new("single", wl.meta.name.clone(), false))
                .unwrap()
        ));

        // ...and re-executing an overlapping plan only runs the new job.
        let mut plan = SimPlan::new();
        plan.job("single", configs::single(), &wl);
        plan.job("trad4", configs::traditional(4), &wl);
        r.execute(plan);
        assert_eq!(r.runs(), 3);
    }

    /// Regression: with the old string keys, a configuration labelled
    /// `"x+timeline"` aliased `report_with_timeline("x", ...)` and the two
    /// distinct simulations shared one cache slot. Structured [`JobKey`]s
    /// keep them separate.
    #[test]
    fn timeline_key_cannot_collide_with_label_concatenation() {
        let wl = quick_workload();
        let mut r = Runner::new(Scale::quick());
        let timeline = r.report_with_timeline("x", configs::locality(4), &wl);
        let plain = r.report("x+timeline", configs::locality(4), &wl);
        assert_eq!(r.runs(), 2, "the two keys must be distinct simulations");
        assert!(!Arc::ptr_eq(&timeline, &plain));
        // The keys stay distinct in the cache too.
        assert!(r
            .cached(&JobKey::new("x", wl.meta.name.clone(), true))
            .is_some());
        assert!(r
            .cached(&JobKey::new("x+timeline", wl.meta.name.clone(), false))
            .is_some());
        // Only the timeline run may record link samples (a quick-scale run
        // can end before the first sample tick, so `plain` being empty is
        // the invariant we can always assert).
        assert!(plain.link_timelines.iter().all(|t| t.is_empty()));
    }

    /// Regression, mirroring `timeline_key_cannot_collide_with_label_concatenation`:
    /// a fault-injected run must never share a memo slot with the clean
    /// baseline of the same label and workload — the scenario string is
    /// part of the structured key, so the memo cannot hand a faulted
    /// report to a figure asking for the clean one (or vice versa).
    #[test]
    fn fault_scenario_cannot_collide_with_clean_baseline() {
        use numa_gpu_faults::FaultPlan;

        let wl = quick_workload();
        let faults = FaultPlan::parse("lanes:s1@200=8").unwrap();
        let mut r = Runner::new(Scale::quick());
        let mut plan = SimPlan::new();
        plan.job("loc4", configs::locality(4), &wl);
        plan.fault_job("loc4", configs::locality(4), &wl, &faults);
        r.execute(plan);
        assert_eq!(
            r.runs(),
            2,
            "clean and faulted must be distinct simulations"
        );
        let clean_key = JobKey::new("loc4", wl.meta.name.clone(), false);
        let fault_key = clean_key.clone().with_scenario(faults.to_string());
        let clean = r.cached(&clean_key).unwrap();
        let faulted = r.cached(&fault_key).unwrap();
        assert!(!Arc::ptr_eq(&clean, &faulted));
        // Only the faulted run carries resilience data; the clean baseline
        // must be untouched by the fault machinery.
        assert!(clean.resilience.is_none());
        assert!(faulted.resilience.is_some());
    }

    #[test]
    fn cached_keys_enumerate_in_key_order_regardless_of_run_order() {
        // Populate two runners with the same jobs in opposite orders; the
        // memo enumeration must come out identical. This is the
        // determinism property the BTreeMap backing guarantees (simlint
        // rule D001) — a hash map would enumerate in a process-varying
        // order and leak run order into anything built from it.
        let wl = quick_workload();
        let fill = |labels: &[(&str, u8)]| {
            let mut r = Runner::new(Scale::quick());
            for &(label, sockets) in labels {
                r.report(label, configs::locality(sockets), &wl);
            }
            r.cached_keys().cloned().collect::<Vec<_>>()
        };
        let a = fill(&[("loc4", 4), ("loc2", 2), ("loc1", 1)]);
        let b = fill(&[("loc1", 1), ("loc4", 4), ("loc2", 2)]);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(a, sorted, "cached_keys must enumerate in key order");
    }

    #[test]
    fn profile_runner_aggregates_without_changing_tables() {
        let wl = quick_workload();
        let mut plain = Runner::new(Scale::quick());
        let base = plain.report("loc4", configs::locality(4), &wl);
        assert!(base.profile.is_none(), "profiling defaults off");

        let mut profiled = Runner::new(Scale::quick()).profile();
        let mut plan = SimPlan::new();
        plan.job("loc4", configs::locality(4), &wl);
        plan.job("single", configs::single(), &wl);
        profiled.execute(plan);
        let shim = profiled.report("loc4", configs::locality(4), &wl);
        assert!(shim.profile.is_some(), "execute applied the override");

        // Every field the tables read is identical with profiling on.
        let mut stripped = (*shim).clone();
        stripped.profile = None;
        assert_eq!(*base, stripped, "profiling must not perturb the report");

        // The aggregate folds both runs and renders deterministically.
        let agg = profiled.aggregate_profile();
        let solo = shim.profile.as_ref().unwrap();
        let popped = |p: &ProfileReport| p.get("engine", "events_popped").unwrap();
        assert!(popped(&agg) > popped(solo), "second run must contribute");
        assert_eq!(
            agg.render_table(),
            profiled.aggregate_profile().render_table()
        );
    }

    #[test]
    fn parallel_execute_matches_serial_reports() {
        let wl = quick_workload();
        let mut serial = Runner::new(Scale::quick());
        let s = serial.report("loc4", configs::locality(4), &wl);

        let mut parallel = Runner::new(Scale::quick()).jobs(4);
        let mut plan = SimPlan::new();
        plan.job("single", configs::single(), &wl);
        plan.job("loc4", configs::locality(4), &wl);
        parallel.execute(plan);
        let p = parallel.report("loc4", configs::locality(4), &wl);
        assert_eq!(*s, *p, "reports must be identical at any worker count");
    }
}
