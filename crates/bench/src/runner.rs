//! A caching simulation runner shared by all experiments.

use numa_gpu_core::{run_workload, run_workload_with_timeline, SimReport};
use numa_gpu_runtime::Workload;
use numa_gpu_types::SystemConfig;
use numa_gpu_workloads::Scale;
use std::collections::HashMap;
use std::sync::Arc;

/// Runs simulations and memoizes their reports by
/// `(configuration label, workload name)`, so experiments sharing baselines
/// (every figure reuses the single-GPU and locality runs) pay for them once.
pub struct Runner {
    scale: Scale,
    cache: HashMap<(String, String), Arc<SimReport>>,
    runs: u64,
    verbose: bool,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("cached", &self.cache.len())
            .field("runs", &self.runs)
            .finish_non_exhaustive()
    }
}

impl Runner {
    /// Creates a runner at the given workload scale.
    pub fn new(scale: Scale) -> Self {
        Runner {
            scale,
            cache: HashMap::new(),
            runs: 0,
            verbose: false,
        }
    }

    /// Logs each fresh simulation to stderr (progress feedback for the long
    /// full-scale sweeps).
    pub fn verbose(mut self) -> Self {
        self.verbose = true;
        self
    }

    /// The scale this runner simulates at.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// Number of actual (non-cached) simulations executed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Returns the report for `workload` under `cfg`, simulating on first
    /// use. `label` must uniquely identify the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation (experiment configs are
    /// all statically valid).
    pub fn report(
        &mut self,
        label: &str,
        cfg: SystemConfig,
        workload: &Workload,
    ) -> Arc<SimReport> {
        let key = (label.to_string(), workload.meta.name.clone());
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        if self.verbose {
            eprintln!("  sim [{label}] {}", workload.meta.name);
        }
        let report = Arc::new(run_workload(cfg, workload).expect("experiment config is valid"));
        self.runs += 1;
        self.cache.insert(key, report.clone());
        report
    }

    /// Like [`Self::report`] but records the per-sample link timelines
    /// (Figure 5). Timeline runs are cached under a distinct key.
    pub fn report_with_timeline(
        &mut self,
        label: &str,
        cfg: SystemConfig,
        workload: &Workload,
    ) -> Arc<SimReport> {
        let key = (format!("{label}+timeline"), workload.meta.name.clone());
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        if self.verbose {
            eprintln!("  sim [{label}+timeline] {}", workload.meta.name);
        }
        let report = Arc::new(
            run_workload_with_timeline(cfg, workload).expect("experiment config is valid"),
        );
        self.runs += 1;
        self.cache.insert(key, report.clone());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use numa_gpu_workloads::by_name;

    #[test]
    fn caches_by_label_and_workload() {
        let scale = Scale::quick();
        let wl = by_name("Other-Bitcoin-Crypto", &scale).unwrap();
        let mut r = Runner::new(scale);
        let a = r.report("single", configs::single(), &wl);
        let b = r.report("single", configs::single(), &wl);
        assert_eq!(r.runs(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        let _c = r.report("loc4", configs::locality(4), &wl);
        assert_eq!(r.runs(), 2);
    }
}
