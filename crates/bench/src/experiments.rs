//! One entry point per paper artifact (tables, figures, sensitivity
//! studies). Each returns a [`Table`] (or a CSV string for the Figure 5
//! timeline) ready to print or diff against `EXPERIMENTS.md`.
//!
//! Every experiment is two-phase: it first *declares* the simulations it
//! needs as a [`SimPlan`] and hands them to [`Runner::execute`] (which
//! fans not-yet-cached jobs out over the worker pool), then *assembles*
//! its table serially from the memoized reports. The assembly phase is
//! pure cache reads, so tables are byte-identical at every `--jobs`
//! count.

use crate::{configs, geomean, JobKey, Row, Runner, SimPlan, Table};
use numa_gpu_faults::FaultPlan;
use numa_gpu_runtime::Workload;
use numa_gpu_types::{CacheMode, SystemConfig, TopologyKind, WritePolicy};
use numa_gpu_workloads::{catalog, collectives, study_set};

/// Sample times (cycles) swept in Figure 6.
pub const FIG6_SAMPLE_TIMES: [u32; 4] = [1_000, 5_000, 10_000, 50_000];

/// Socket counts swept in the topology-scaling study (beyond the paper's
/// 8-socket ceiling).
pub const SCALING_SOCKETS: [u8; 3] = [8, 16, 32];

/// The four fabric topologies compared in the scaling and collective
/// studies.
pub const SCALING_TOPOLOGIES: [TopologyKind; 4] = [
    TopologyKind::Star,
    TopologyKind::Ring,
    TopologyKind::Mesh2d,
    TopologyKind::FatTree,
];

/// Catalog workloads the topology studies sweep: one link-saturating HPC
/// stencil, one irregular shared-structure reader, and one compute-bound
/// control — the three link-sensitivity classes — kept small because each
/// runs under every `(topology, socket-count)` pair.
pub const SCALING_WORKLOAD_NAMES: [&str; 3] =
    ["HPC-HPGMG-UVM", "Rodinia-BFS", "Other-Bitcoin-Crypto"];

/// Lane switch times (cycles) swept in the §4.1 sensitivity study.
pub const SWITCH_TIMES: [u32; 3] = [10, 100, 500];

fn workloads(runner: &Runner) -> Vec<Workload> {
    catalog(runner.scale())
}

fn study(runner: &Runner) -> Vec<Workload> {
    study_set(runner.scale())
}

/// Labels a config for a [`SimPlan::cross`] variant list.
fn v(label: impl Into<String>, cfg: SystemConfig) -> (String, SystemConfig) {
    (label.into(), cfg)
}

/// Table 1: the simulation parameters actually in force (from
/// [`SystemConfig`] defaults).
pub fn table1() -> String {
    let c = SystemConfig::pascal_4_socket();
    let mut s = String::from("=== Table 1: Simulation parameters ===\n");
    let rows = [
        ("Num of GPU sockets", format!("{}", c.num_sockets)),
        ("Total number of SMs", format!("{} per GPU socket", c.sm.sms_per_socket)),
        ("GPU Frequency", "1GHz".to_string()),
        ("Max number of Warps", format!("{} per SM", c.sm.max_warps)),
        ("Warp Scheduler", "Greedy then Round Robin".to_string()),
        (
            "L1 Cache",
            format!(
                "Private, {}KB per SM, 128B lines, {}-way, Write-Through, GPU-side SW-based coherent",
                c.l1.size_bytes / 1024,
                c.l1.ways
            ),
        ),
        (
            "L2 Cache",
            format!(
                "Shared, Banked, {}MB per socket, 128B lines, {}-way, Write-Back, Mem-side non-coherent",
                c.l2.size_bytes / (1024 * 1024),
                c.l2.ways
            ),
        ),
        (
            "GPU-GPU Interconnect",
            format!(
                "{}GB/s per socket ({}GB/s each direction), {} lanes {}B wide each per direction, {}-cycle latency",
                2 * c.link.direction_bytes_per_cycle(),
                c.link.direction_bytes_per_cycle(),
                c.link.lanes_per_direction,
                c.link.lane_bytes_per_cycle,
                c.link.latency_cycles
            ),
        ),
        (
            "DRAM Bandwidth",
            format!("{}GB/s per GPU socket", c.dram.bytes_per_cycle),
        ),
        ("DRAM Latency", format!("{} ns", c.dram.latency_cycles)),
    ];
    for (k, v) in rows {
        s.push_str(&format!("{k:24} {v}\n"));
    }
    s
}

/// Table 2: per-workload time-weighted CTAs and footprint (paper values)
/// next to the simulated grid/footprint at this runner's scale.
pub fn table2(runner: &Runner) -> Table {
    let mut t = Table::new(
        "Table 2: workload inventory (paper vs simulated)",
        &[
            "paper-CTAs",
            "paper-MB",
            "sim-CTAs/kernel",
            "sim-MB",
            "kernels",
        ],
    );
    for w in workloads(runner) {
        let sim_ctas = w.kernels.first().map(|k| k.num_ctas()).unwrap_or(0);
        t.push(Row::new(
            w.meta.name.clone(),
            vec![
                w.meta.paper_avg_ctas as f64,
                w.meta.paper_footprint_mb as f64,
                sim_ctas as f64,
                (w.footprint_bytes / (1024 * 1024)) as f64,
                w.kernels.len() as f64,
            ],
        ));
    }
    t
}

/// Figure 2: percentage of the 41 workloads whose time-weighted average CTA
/// count fills GPUs 1–8× the size of today's (64-SM sockets).
pub fn fig2(runner: &Runner) -> Table {
    let all = workloads(runner);
    let mut t = Table::new(
        "Figure 2: % workloads able to fill larger GPUs",
        &["total-SMs", "pct-filling"],
    );
    for factor in 1..=8u32 {
        let sms = 64 * factor;
        let filling = all.iter().filter(|w| w.fills_gpu(sms)).count();
        t.push(Row::new(
            format!("{factor}x-GPU"),
            vec![sms as f64, 100.0 * filling as f64 / all.len() as f64],
        ));
    }
    t
}

/// Figure 3: 4-socket NUMA GPU under traditional vs locality-optimized
/// runtime policies, against the hypothetical 4× GPU. Sorted by the gap
/// between theoretical and locality speedup, as in the paper.
pub fn fig3(runner: &mut Runner) -> Table {
    let wls = workloads(runner);
    runner.execute(SimPlan::cross(&fig3_variants(), &wls));
    let mut rows = Vec::new();
    for wl in &wls {
        let single = runner.report("single", configs::single(), wl);
        let trad = runner.report("trad4", configs::traditional(4), wl);
        let loc = runner.report("loc4", configs::locality(4), wl);
        let hypo = runner.report("hypo4", configs::hypothetical(4), wl);
        rows.push(Row::new(
            wl.meta.name.clone(),
            vec![
                trad.speedup_over(&single),
                loc.speedup_over(&single),
                hypo.speedup_over(&single),
            ],
        ));
    }
    rows.sort_by(|a, b| {
        let gap = |r: &Row| r.values[2] - r.values[1];
        gap(b).partial_cmp(&gap(a)).unwrap()
    });
    let mut t = Table::new(
        "Figure 3: runtime policies on a 4-socket NUMA GPU (speedup vs 1 GPU)",
        &["traditional", "locality-opt", "hypothetical-4x"],
    );
    for r in rows {
        t.push(r);
    }
    t.push_means();
    t
}

/// The Figure-3 configuration sweep (also timed by the `sweep_parallel`
/// bench).
pub fn fig3_variants() -> Vec<(String, SystemConfig)> {
    vec![
        v("single", configs::single()),
        v("trad4", configs::traditional(4)),
        v("loc4", configs::locality(4)),
        v("hypo4", configs::hypothetical(4)),
    ]
}

/// Figure 5: per-GPU link utilization timeline for HPC-HPGMG-UVM on the
/// locality-optimized 4-socket baseline. Returns CSV
/// (`cycle,gpu,egress_util,ingress_util,egress_lanes`) plus kernel-launch
/// marker rows (`kernel_start` lines).
pub fn fig5(runner: &mut Runner) -> String {
    let wl =
        numa_gpu_workloads::by_name("HPC-HPGMG-UVM", runner.scale()).expect("HPGMG-UVM exists");
    let mut plan = SimPlan::new();
    plan.timeline_job("loc4", configs::locality(4), &wl);
    runner.execute(plan);
    let r = runner.report_with_timeline("loc4", configs::locality(4), &wl);
    let mut csv = String::from("cycle,gpu,egress_util,ingress_util,egress_lanes,ingress_lanes\n");
    for (g, timeline) in r.link_timelines.iter().enumerate() {
        for s in timeline {
            csv.push_str(&format!(
                "{},{},{:.4},{:.4},{},{}\n",
                s.cycle, g, s.egress_util, s.ingress_util, s.egress_lanes, s.ingress_lanes
            ));
        }
    }
    for k in &r.kernel_start_cycles {
        csv.push_str(&format!("kernel_start,{k}\n"));
    }
    csv
}

/// Figure 6: dynamic link adaptivity speedup over the locality baseline for
/// each sample time, with the doubled-bandwidth upper bound. Sorted by the
/// upper bound (the paper's left-to-right order).
pub fn fig6(runner: &mut Runner) -> Table {
    let wls = study(runner);
    let mut variants = vec![v("loc4", configs::locality(4))];
    for st in FIG6_SAMPLE_TIMES {
        variants.push(v(format!("dyn4-{st}"), configs::dynamic_link(4, st)));
    }
    variants.push(v("2xbw4", configs::double_bandwidth(4)));
    runner.execute(SimPlan::cross(&variants, &wls));

    let mut rows = Vec::new();
    for wl in &wls {
        let base = runner.report("loc4", configs::locality(4), wl);
        let mut values = Vec::new();
        for st in FIG6_SAMPLE_TIMES {
            let dyn_r = runner.report(&format!("dyn4-{st}"), configs::dynamic_link(4, st), wl);
            values.push(dyn_r.speedup_over(&base));
        }
        let dbl = runner.report("2xbw4", configs::double_bandwidth(4), wl);
        values.push(dbl.speedup_over(&base));
        rows.push(Row::new(wl.meta.name.clone(), values));
    }
    rows.sort_by(|a, b| b.values[4].partial_cmp(&a.values[4]).unwrap());
    let mut t = Table::new(
        "Figure 6: dynamic link adaptivity (speedup vs static symmetric links)",
        &["1K-cyc", "5K-cyc", "10K-cyc", "50K-cyc", "2x-BW"],
    );
    for r in rows {
        t.push(r);
    }
    t.push_means();
    t
}

/// §4.1 sensitivity: lane switch time 10/100/500 cycles at the 5K-cycle
/// sample time (geomean speedup over the static baseline).
pub fn fig6_switch_sensitivity(runner: &mut Runner) -> Table {
    let wls = study(runner);
    let mut variants = vec![v("loc4", configs::locality(4))];
    for sw in SWITCH_TIMES {
        let mut cfg = configs::dynamic_link(4, 5_000);
        cfg.link.switch_time_cycles = sw;
        variants.push(v(format!("dyn4-sw{sw}"), cfg));
    }
    runner.execute(SimPlan::cross(&variants, &wls));

    let mut t = Table::new(
        "S4.1 sensitivity: lane switch time (geomean speedup vs static links)",
        &["geomean-speedup"],
    );
    for sw in SWITCH_TIMES {
        let mut speedups = Vec::new();
        for wl in &wls {
            let base = runner.report("loc4", configs::locality(4), wl);
            let mut cfg = configs::dynamic_link(4, 5_000);
            cfg.link.switch_time_cycles = sw;
            let r = runner.report(&format!("dyn4-sw{sw}"), cfg, wl);
            speedups.push(r.speedup_over(&base));
        }
        t.push(Row::new(
            format!("switch-{sw}-cycles"),
            vec![geomean(&speedups)],
        ));
    }
    t
}

/// Figure 8: the four L2 organizations of Figure 7, as speedup over the
/// mem-side local-only baseline. Sorted by the NUMA-aware column.
pub fn fig8(runner: &mut Runner) -> Table {
    let wls = study(runner);
    let variants = vec![
        v("loc4", configs::locality(4)),
        v(
            "cache-static",
            configs::cache(4, CacheMode::StaticRemoteCache),
        ),
        v("cache-shared", configs::cache(4, CacheMode::SharedCoherent)),
        v("cache-numa", configs::cache(4, CacheMode::NumaAwareDynamic)),
    ];
    runner.execute(SimPlan::cross(&variants, &wls));

    let mut rows = Vec::new();
    for wl in &wls {
        let memside = runner.report("loc4", configs::locality(4), wl);
        let stat = runner.report(
            "cache-static",
            configs::cache(4, CacheMode::StaticRemoteCache),
            wl,
        );
        let shared = runner.report(
            "cache-shared",
            configs::cache(4, CacheMode::SharedCoherent),
            wl,
        );
        let na = runner.report(
            "cache-numa",
            configs::cache(4, CacheMode::NumaAwareDynamic),
            wl,
        );
        rows.push(Row::new(
            wl.meta.name.clone(),
            vec![
                1.0,
                stat.speedup_over(&memside),
                shared.speedup_over(&memside),
                na.speedup_over(&memside),
            ],
        ));
    }
    rows.sort_by(|a, b| b.values[3].partial_cmp(&a.values[3]).unwrap());
    let mut t = Table::new(
        "Figure 8: NUMA-aware cache partitioning (speedup vs mem-side L2)",
        &["mem-side", "static-50/50", "shared-coherent", "numa-aware"],
    );
    for r in rows {
        t.push(r);
    }
    t.push_means();
    t
}

/// Figure 9: overhead of extending SW coherence into the L2 — performance
/// of the hypothetical invalidation-free L2 relative to the real one
/// (`>1` = the flush costs performance).
pub fn fig9(runner: &mut Runner) -> Table {
    let wls = study(runner);
    let mut icfg = configs::cache(4, CacheMode::NumaAwareDynamic);
    icfg.ideal_no_l2_invalidate = true;
    let variants = vec![
        v("cache-numa", configs::cache(4, CacheMode::NumaAwareDynamic)),
        v("cache-numa-ideal", icfg.clone()),
    ];
    runner.execute(SimPlan::cross(&variants, &wls));

    let mut rows = Vec::new();
    for wl in &wls {
        let real = runner.report(
            "cache-numa",
            configs::cache(4, CacheMode::NumaAwareDynamic),
            wl,
        );
        let ideal = runner.report("cache-numa-ideal", icfg.clone(), wl);
        rows.push(Row::new(
            wl.meta.name.clone(),
            vec![
                ideal.speedup_over(&real),
                100.0 * (ideal.speedup_over(&real) - 1.0),
            ],
        ));
    }
    rows.sort_by(|a, b| b.values[1].partial_cmp(&a.values[1]).unwrap());
    let mut t = Table::new(
        "Figure 9: SW coherence invalidation overhead in the L2",
        &["ideal-vs-real", "overhead-pct"],
    );
    for r in rows {
        t.push(r);
    }
    t.push_means();
    t
}

/// §5.2 sensitivity: write-back vs write-through L2 under the NUMA-aware
/// design (geomean of WB speedup over WT).
pub fn fig9_writeback(runner: &mut Runner) -> Table {
    let wls = study(runner);
    let mut wtc = configs::cache(4, CacheMode::NumaAwareDynamic);
    wtc.l2.write_policy = WritePolicy::WriteThrough;
    let variants = vec![
        v("cache-numa", configs::cache(4, CacheMode::NumaAwareDynamic)),
        v("cache-numa-wt", wtc.clone()),
    ];
    runner.execute(SimPlan::cross(&variants, &wls));

    let mut speedups = Vec::new();
    for wl in &wls {
        let wb = runner.report(
            "cache-numa",
            configs::cache(4, CacheMode::NumaAwareDynamic),
            wl,
        );
        let wt = runner.report("cache-numa-wt", wtc.clone(), wl);
        speedups.push(wb.speedup_over(&wt));
    }
    let mut t = Table::new(
        "S5.2 sensitivity: write-back vs write-through L2 (NUMA-aware design)",
        &["geomean-WB-over-WT"],
    );
    t.push(Row::new("study-set", vec![geomean(&speedups)]));
    t
}

/// Figure 10: combined improvement — SW baseline, dynamic links only,
/// NUMA-aware caches only, both, and the 4× hypothetical, all vs one GPU.
pub fn fig10(runner: &mut Runner) -> Table {
    let wls = workloads(runner);
    let variants = vec![
        v("single", configs::single()),
        v("loc4", configs::locality(4)),
        v("dyn4-5000", configs::dynamic_link(4, 5_000)),
        v("cache-numa", configs::cache(4, CacheMode::NumaAwareDynamic)),
        v("aware4", configs::numa_aware(4)),
        v("hypo4", configs::hypothetical(4)),
    ];
    runner.execute(SimPlan::cross(&variants, &wls));

    let mut rows = Vec::new();
    for wl in &wls {
        let single = runner.report("single", configs::single(), wl);
        let loc = runner.report("loc4", configs::locality(4), wl);
        let dyn_r = runner.report("dyn4-5000", configs::dynamic_link(4, 5_000), wl);
        let cache = runner.report(
            "cache-numa",
            configs::cache(4, CacheMode::NumaAwareDynamic),
            wl,
        );
        let both = runner.report("aware4", configs::numa_aware(4), wl);
        let hypo = runner.report("hypo4", configs::hypothetical(4), wl);
        rows.push(Row::new(
            wl.meta.name.clone(),
            vec![
                loc.speedup_over(&single),
                dyn_r.speedup_over(&single),
                cache.speedup_over(&single),
                both.speedup_over(&single),
                hypo.speedup_over(&single),
            ],
        ));
    }
    rows.sort_by(|a, b| {
        let gap = |r: &Row| r.values[4] - r.values[3];
        gap(b).partial_cmp(&gap(a)).unwrap()
    });
    let mut t = Table::new(
        "Figure 10: combined NUMA-aware GPU (speedup vs 1 GPU)",
        &[
            "SW-baseline",
            "dyn-link",
            "numa-cache",
            "combined",
            "hypo-4x",
        ],
    );
    for r in rows {
        t.push(r);
    }
    t.push_means();
    t
}

/// Figure 11: 2/4/8-socket NUMA-aware scalability against the equally
/// scaled hypothetical single GPUs, over all 41 workloads.
pub fn fig11(runner: &mut Runner) -> Table {
    let wls = workloads(runner);
    let mut variants = vec![v("single", configs::single())];
    for n in [2u8, 4, 8] {
        variants.push(v(format!("aware{n}"), configs::numa_aware(n)));
    }
    for n in [2u8, 4, 8] {
        variants.push(v(format!("hypo{n}"), configs::hypothetical(n)));
    }
    runner.execute(SimPlan::cross(&variants, &wls));

    let mut rows = Vec::new();
    for wl in &wls {
        let single = runner.report("single", configs::single(), wl);
        let mut values = Vec::new();
        for n in [2u8, 4, 8] {
            let aware = runner.report(&format!("aware{n}"), configs::numa_aware(n), wl);
            values.push(aware.speedup_over(&single));
        }
        for n in [2u8, 4, 8] {
            let hypo = runner.report(&format!("hypo{n}"), configs::hypothetical(n), wl);
            values.push(hypo.speedup_over(&single));
        }
        rows.push(Row::new(wl.meta.name.clone(), values));
    }
    rows.sort_by(|a, b| a.values[2].partial_cmp(&b.values[2]).unwrap());
    let mut t = Table::new(
        "Figure 11: 1-8 socket scalability (speedup vs 1 GPU)",
        &[
            "aware-2s", "aware-4s", "aware-8s", "hypo-2x", "hypo-4x", "hypo-8x",
        ],
    );
    for r in rows {
        t.push(r);
    }
    t.push_means();
    // Efficiency vs theoretical scaling, from the geometric means.
    let gm = &t.rows[t.rows.len() - 1].values.clone();
    t.push(Row::new(
        "Efficiency-pct(aware/hypo)",
        vec![
            100.0 * gm[0] / gm[3],
            100.0 * gm[1] / gm[4],
            100.0 * gm[2] / gm[5],
            100.0,
            100.0,
            100.0,
        ],
    ));
    t
}

/// §6 power: average interconnect power (10 pJ/b) for the SW baseline vs
/// the NUMA-aware design, per workload plus means.
pub fn power(runner: &mut Runner) -> Table {
    let wls = workloads(runner);
    let variants = vec![
        v("loc4", configs::locality(4)),
        v("aware4", configs::numa_aware(4)),
    ];
    runner.execute(SimPlan::cross(&variants, &wls));

    let mut t = Table::new(
        "S6 power: average interconnect power (W, 10 pJ/b)",
        &["baseline-W", "numa-aware-W"],
    );
    for wl in &wls {
        let base = runner.report("loc4", configs::locality(4), wl);
        let aware = runner.report("aware4", configs::numa_aware(4), wl);
        t.push(Row::new(
            wl.meta.name.clone(),
            vec![base.link_power_w, aware.link_power_w],
        ));
    }
    t.push_means();
    t
}

/// Fault scenario injected by [`resilience`]: a mid-kernel 50% lane
/// degradation on socket 1's link, an ECC-stall window on socket 0's DRAM,
/// and two SMs of socket 0 disabled. The canonical grammar string doubles
/// as the job-key scenario label.
pub const RESILIENCE_FAULTS: &str = "lanes:s1@3000=8; dram:s0@6000+500; sm:0-1@9000";

/// Resilience study (beyond the paper): every study-set workload under the
/// NUMA-aware 4-socket design, clean vs the [`RESILIENCE_FAULTS`] scenario.
/// Reports slowdown-under-fault, achieved link-lane availability on the
/// degraded socket, the lane balancer's recovery latency, and how many
/// CTAs had to be requeued off disabled SMs.
pub fn resilience(runner: &mut Runner) -> Table {
    let wls = study(runner);
    let faults = FaultPlan::parse(RESILIENCE_FAULTS).expect("scenario literal parses");
    let cfg = configs::numa_aware(4);
    let mut plan = SimPlan::new();
    for wl in &wls {
        plan.job("aware4", cfg.clone(), wl);
        plan.fault_job("aware4", cfg.clone(), wl, &faults);
    }
    runner.execute(plan);

    let mut rows = Vec::new();
    for wl in &wls {
        let clean = runner.report("aware4", cfg.clone(), wl);
        let key =
            JobKey::new("aware4", wl.meta.name.clone(), false).with_scenario(faults.to_string());
        let faulted = runner.cached(&key).expect("faulted job executed above");
        let res = faulted
            .resilience
            .as_ref()
            .expect("fault-injected run reports resilience");
        let slowdown = if clean.total_cycles == 0 {
            0.0
        } else {
            faulted.total_cycles as f64 / clean.total_cycles as f64
        };
        rows.push(Row::new(
            wl.meta.name.clone(),
            vec![
                slowdown,
                100.0 * res.links[1].availability(),
                res.links[1]
                    .recovery_cycles
                    .map(|c| c as f64)
                    .unwrap_or(0.0),
                res.requeued_ctas as f64,
            ],
        ));
    }
    rows.sort_by(|a, b| b.values[0].partial_cmp(&a.values[0]).unwrap());
    let mut t = Table::new(
        "Resilience: NUMA-aware 4-socket under injected faults (vs clean run)",
        &[
            "slowdown",
            "link1-avail-pct",
            "recovery-cycles",
            "requeued-ctas",
        ],
    );
    for r in rows {
        t.push(r);
    }
    t.push_means();
    t
}

/// Design-choice ablations beyond the paper: L1 partitioning on/off,
/// partition sample time, and placement policy under the NUMA-aware design.
pub fn ablations(runner: &mut Runner) -> Table {
    let mut t = Table::new(
        "Ablations (geomean speedup vs SW baseline, study set)",
        &["geomean-speedup"],
    );
    let variants: Vec<(&str, SystemConfig)> = vec![
        ("aware4", configs::numa_aware(4)),
        ("aware-no-l1-partition", {
            let mut c = configs::numa_aware(4);
            c.partition_l1 = false;
            c
        }),
        ("aware-sample-1k", {
            let mut c = configs::numa_aware(4);
            c.cache_sample_time_cycles = 1_000;
            c
        }),
        ("aware-sample-20k", {
            let mut c = configs::numa_aware(4);
            c.cache_sample_time_cycles = 20_000;
            c
        }),
        ("aware-page-interleave", {
            let mut c = configs::numa_aware(4);
            c.placement = numa_gpu_types::PagePlacement::PageInterleave;
            c
        }),
        ("aware-cta-interleave", {
            let mut c = configs::numa_aware(4);
            c.cta_policy = numa_gpu_types::CtaSchedulingPolicy::Interleave;
            c
        }),
        ("aware-page-migration", {
            let mut c = configs::numa_aware(4);
            c.placement = numa_gpu_types::PagePlacement::FirstTouchMigrate {
                migrate_threshold: 64,
            };
            c
        }),
        ("aware-mlp-1", {
            let mut c = configs::numa_aware(4);
            c.sm.max_pending_loads = 1;
            c
        }),
        ("aware-mlp-8", {
            let mut c = configs::numa_aware(4);
            c.sm.max_pending_loads = 8;
            c
        }),
    ];
    let wls = study(runner);
    let mut all = vec![v("loc4", configs::locality(4))];
    all.extend(variants.iter().map(|(label, cfg)| v(*label, cfg.clone())));
    runner.execute(SimPlan::cross(&all, &wls));

    for (label, cfg) in variants {
        let mut speedups = Vec::new();
        for wl in &wls {
            let base = runner.report("loc4", configs::locality(4), wl);
            let r = runner.report(label, cfg.clone(), wl);
            speedups.push(r.speedup_over(&base));
        }
        t.push(Row::new(label, vec![geomean(&speedups)]));
    }
    t
}

/// The two collectives carried through the scaling sweep: the
/// neighbour-exchange ring (rewards fabrics with cheap adjacent hops) and
/// the uniform all-to-all (rewards bisection bandwidth).
const SCALING_COLLECTIVES: [&str; 2] = ["Coll-AllReduce-Ring", "Coll-AllToAll"];

/// Beyond the paper: >8-socket scaling curves per fabric topology.
///
/// Every `SCALING_WORKLOAD_NAMES` workload plus the
/// `SCALING_COLLECTIVES` runs under the full NUMA-aware design at
/// 8/16/32 sockets on each of the four fabrics, reported as speedup over
/// the single-GPU baseline. Collectives are shaped by the socket count, so
/// their baselines are keyed per machine shape (`single-16s` etc.).
///
/// All fabric runs are *pinned* topology jobs: a global `--topology`
/// override leaves this sweep intact.
pub fn topology_scaling(runner: &mut Runner) -> Table {
    let base_wls: Vec<Workload> = SCALING_WORKLOAD_NAMES
        .iter()
        .map(|n| numa_gpu_workloads::by_name(n, runner.scale()).expect("scaling workload exists"))
        .collect();
    let coll: Vec<(u8, Vec<Workload>)> = SCALING_SOCKETS
        .iter()
        .map(|&n| {
            let cw = collectives(n, runner.scale())
                .into_iter()
                .filter(|w| SCALING_COLLECTIVES.contains(&w.meta.name.as_str()))
                .collect();
            (n, cw)
        })
        .collect();

    let mut plan = SimPlan::new();
    for wl in &base_wls {
        plan.job("single", configs::single(), wl);
    }
    for (n, cw) in &coll {
        for wl in cw {
            plan.job(&format!("single-{n}s"), configs::single(), wl);
        }
    }
    for kind in SCALING_TOPOLOGIES {
        for n in SCALING_SOCKETS {
            let label = format!("aware{n}-{}", kind.flag_name());
            let cfg = configs::numa_aware_topo(n, kind);
            for wl in &base_wls {
                plan.topology_job(&label, cfg.clone(), wl);
            }
            for (m, cw) in &coll {
                if *m == n {
                    for wl in cw {
                        plan.topology_job(&label, cfg.clone(), wl);
                    }
                }
            }
        }
    }
    runner.execute(plan);

    let mut t = Table::new(
        "Topology scaling: NUMA-aware design, speedup vs 1 GPU",
        &["8-socket", "16-socket", "32-socket"],
    );
    for kind in SCALING_TOPOLOGIES {
        let flag = kind.flag_name();
        let mut per_socket: Vec<Vec<f64>> = vec![Vec::new(); SCALING_SOCKETS.len()];
        for wl in &base_wls {
            let single = runner.report("single", configs::single(), wl);
            let mut values = Vec::new();
            for (i, &n) in SCALING_SOCKETS.iter().enumerate() {
                let r = runner.report(
                    &format!("aware{n}-{flag}"),
                    configs::numa_aware_topo(n, kind),
                    wl,
                );
                let s = r.speedup_over(&single);
                per_socket[i].push(s);
                values.push(s);
            }
            t.push(Row::new(format!("{flag}:{}", wl.meta.name), values));
        }
        for name in SCALING_COLLECTIVES {
            let mut values = Vec::new();
            for (i, (n, cw)) in coll.iter().enumerate() {
                let wl = cw
                    .iter()
                    .find(|w| w.meta.name == name)
                    .expect("collective subset built above");
                let single = runner.report(&format!("single-{n}s"), configs::single(), wl);
                let r = runner.report(
                    &format!("aware{n}-{flag}"),
                    configs::numa_aware_topo(*n, kind),
                    wl,
                );
                let s = r.speedup_over(&single);
                per_socket[i].push(s);
                values.push(s);
            }
            t.push(Row::new(format!("{flag}:{name}"), values));
        }
        t.push(Row::new(
            format!("geomean-{flag}"),
            per_socket.iter().map(|v| geomean(v)).collect(),
        ));
    }
    t
}

/// Beyond the paper: lane-balancer behaviour under collective traffic.
///
/// Every collective (naive and NUMA-aware variants) runs at 8 sockets on
/// each fabric with dynamic asymmetric links at the 5K-cycle sample time.
/// Speedup is vs the same collective on the star fabric; lane turns count
/// reversals on the access links, and link-MiB covers the whole fabric
/// (access plus interior hops), exposing how much extra distance and
/// rebalancing each fabric incurs under exchange traffic.
pub fn collective_balance(runner: &mut Runner) -> Table {
    const N: u8 = 8;
    const SAMPLE: u32 = 5_000;
    let wls = collectives(N, runner.scale());
    let mut plan = SimPlan::new();
    for kind in SCALING_TOPOLOGIES {
        let label = format!("dyn8-{}", kind.flag_name());
        for wl in &wls {
            plan.topology_job(&label, configs::dynamic_link_topo(N, SAMPLE, kind), wl);
        }
    }
    runner.execute(plan);

    let mut t = Table::new(
        "Collective balance: dynamic links per fabric (8 sockets, 5K-cycle sample)",
        &["speedup-vs-star", "lane-turns", "link-MiB"],
    );
    for kind in SCALING_TOPOLOGIES {
        let flag = kind.flag_name();
        for wl in &wls {
            let star = runner.report(
                "dyn8-star",
                configs::dynamic_link_topo(N, SAMPLE, TopologyKind::Star),
                wl,
            );
            let r = runner.report(
                &format!("dyn8-{flag}"),
                configs::dynamic_link_topo(N, SAMPLE, kind),
                wl,
            );
            t.push(Row::new(
                format!("{flag}:{}", wl.meta.name),
                vec![
                    r.speedup_over(&star),
                    r.lane_turns() as f64,
                    (r.interconnect_bytes >> 20) as f64,
                ],
            ));
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_runner() -> Runner {
        Runner::new(numa_gpu_workloads::Scale::quick())
    }

    #[test]
    fn table1_mentions_key_parameters() {
        let s = table1();
        assert!(s.contains("768GB/s"));
        assert!(s.contains("128-cycle latency"));
        assert!(s.contains("4MB per socket"));
    }

    #[test]
    fn table2_has_41_rows() {
        let t = table2(&quick_runner());
        assert_eq!(t.rows.len(), 41);
    }

    #[test]
    fn fig2_is_monotone_decreasing() {
        let t = fig2(&quick_runner());
        assert_eq!(t.rows.len(), 8);
        let pct: Vec<f64> = t.rows.iter().map(|r| r.values[1]).collect();
        assert!(pct.windows(2).all(|w| w[0] >= w[1]));
        assert!((pct[0] - 95.12).abs() < 0.1); // 39/41 fill a 1x GPU
        assert!((pct[7] - 80.48).abs() < 0.1); // 33/41 fill an 8x GPU
    }

    // Full-harness smoke tests: run with `cargo test -- --ignored` (each
    // simulates dozens of quick-scale workloads; minutes in debug).
    #[test]
    #[ignore = "slow: simulates the full quick-scale catalog"]
    fn fig3_runs_at_quick_scale() {
        let mut r = quick_runner();
        let t = fig3(&mut r);
        assert_eq!(t.rows.len(), 41 + 2); // workloads + two mean rows
        assert!(t.rows.iter().all(|row| row.values.iter().all(|v| *v > 0.0)));
    }

    #[test]
    #[ignore = "slow: simulates the study set under five link configs"]
    fn fig6_runs_at_quick_scale() {
        let mut r = quick_runner();
        let t = fig6(&mut r);
        assert_eq!(t.rows.len(), 32 + 2);
    }

    #[test]
    #[ignore = "slow: simulates the study set under four cache modes"]
    fn fig8_runs_at_quick_scale() {
        let mut r = quick_runner();
        let t = fig8(&mut r);
        assert_eq!(t.rows.len(), 32 + 2);
        // The mem-side column is the baseline of 1.0 by construction.
        assert!(t.rows[..32].iter().all(|row| row.values[0] == 1.0));
    }

    #[test]
    #[ignore = "slow: full scalability sweep"]
    fn fig11_efficiency_row_present() {
        let mut r = quick_runner();
        let t = fig11(&mut r);
        let last = t.rows.last().unwrap();
        assert!(last.label.starts_with("Efficiency"));
        assert_eq!(last.values.len(), 6);
    }

    #[test]
    fn resilience_scenario_parses_and_round_trips() {
        let plan = FaultPlan::parse(RESILIENCE_FAULTS).unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.to_string(), RESILIENCE_FAULTS);
    }

    #[test]
    #[ignore = "slow: simulates the study set twice (clean and faulted)"]
    fn resilience_runs_at_quick_scale() {
        let mut r = quick_runner();
        let t = resilience(&mut r);
        assert_eq!(t.rows.len(), 32 + 2);
        // Faults overwhelmingly slow runs down; tiny speedups can only come
        // from second-order scheduling perturbation, so bound from below.
        assert!(t.rows[..32].iter().all(|row| row.values[0] > 0.9));
    }

    #[test]
    fn fig5_csv_has_header_and_markers() {
        let mut r = quick_runner();
        let csv = fig5(&mut r);
        assert!(csv.starts_with("cycle,gpu,"));
        assert!(csv.contains("kernel_start,"));
    }

    #[test]
    fn scaling_workloads_resolve_and_topologies_are_distinct() {
        for name in SCALING_WORKLOAD_NAMES {
            assert!(
                numa_gpu_workloads::by_name(name, &numa_gpu_workloads::Scale::quick()).is_some(),
                "{name} missing from the catalog"
            );
        }
        for name in SCALING_COLLECTIVES {
            assert!(numa_gpu_workloads::collective_by_name(
                name,
                8,
                &numa_gpu_workloads::Scale::quick()
            )
            .is_some());
        }
        let flags: std::collections::BTreeSet<&str> =
            SCALING_TOPOLOGIES.iter().map(|k| k.flag_name()).collect();
        assert_eq!(flags.len(), 4);
    }

    #[test]
    fn scaling_configs_validate_at_every_swept_shape() {
        for kind in SCALING_TOPOLOGIES {
            for n in SCALING_SOCKETS {
                configs::numa_aware_topo(n, kind).validate().unwrap();
                configs::dynamic_link_topo(n, 5_000, kind)
                    .validate()
                    .unwrap();
            }
        }
    }

    #[test]
    #[ignore = "slow: 4 fabrics x 3 socket counts x 5 workloads"]
    fn topology_scaling_runs_at_quick_scale() {
        let mut r = quick_runner();
        let t = topology_scaling(&mut r);
        // 4 topologies x (5 workload rows + 1 geomean row).
        assert_eq!(t.rows.len(), 4 * 6);
        // Every speedup is a real positive ratio (quick-scale runs are too
        // small for the >1x scaling claim itself; the committed artifact
        // documents the actual curves).
        let star_gm = t
            .rows
            .iter()
            .find(|r| r.label == "geomean-star")
            .expect("geomean row present");
        assert_eq!(star_gm.values.len(), 3);
        assert!(t
            .rows
            .iter()
            .all(|r| r.values.iter().all(|v| v.is_finite() && *v > 0.0)));
    }

    #[test]
    #[ignore = "slow: 4 fabrics x 6 collectives"]
    fn collective_balance_runs_at_quick_scale() {
        let mut r = quick_runner();
        let t = collective_balance(&mut r);
        assert_eq!(t.rows.len(), 4 * 6);
        // Star rows compare the fabric against itself.
        for row in t.rows.iter().filter(|r| r.label.starts_with("star:")) {
            assert!((row.values[0] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fig3_variants_cover_the_four_policies() {
        let labels: Vec<String> = fig3_variants().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, ["single", "trad4", "loc4", "hypo4"]);
    }
}
