//! Benchmark harness: regenerates every table and figure of *"Beyond the
//! Socket: NUMA-Aware GPUs"*.
//!
//! The [`experiments`] module has one entry point per paper artifact
//! (Table 1, Table 2, Figures 2–11, the §4/§5 sensitivity studies, and the
//! §6 power estimate). Each experiment first *declares* its simulations as
//! a [`SimPlan`] (deduplicated by structured [`JobKey`]), then a caching
//! [`Runner`] *executes* the plan — fanning independent jobs out over a
//! deterministic worker pool (`--jobs N`) — so shared baselines
//! (single-GPU, locality-optimized 4-socket, …) are simulated once and
//! output stays byte-identical at every thread count. The `figures` binary
//! prints them; the benches in `benches/` time reduced-scale versions of
//! the same code paths.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod configs;
pub mod experiments;
pub mod plan;
pub mod runner;
pub mod store;
pub mod table;

pub use plan::{JobKey, SimJob, SimPlan};
pub use runner::Runner;
pub use store::{DiskStore, StoreEvent, StoreKey, StoreStats};
pub use table::{Row, Table};

/// Geometric mean of positive values (zeroes are skipped).
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        0.0
    } else {
        // Explicit left fold: summation order is slice order, by
        // construction, not an optimizer choice (simlint rule D003).
        let total = logs.iter().fold(0.0_f64, |acc, v| acc + v);
        (total / logs.len() as f64).exp()
    }
}

/// Arithmetic mean (empty slice yields zero).
pub fn amean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        // Explicit left fold: summation order is slice order, by
        // construction, not an optimizer choice (simlint rule D003).
        let total = values.iter().fold(0.0_f64, |acc, v| acc + v);
        total / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_reciprocals_is_one() {
        let g = geomean(&[2.0, 0.5, 4.0, 0.25]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amean_basic() {
        assert_eq!(amean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(amean(&[]), 0.0);
    }

    #[test]
    fn geomean_skips_zeroes() {
        assert!((geomean(&[0.0, 4.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
