//! Property tests for the composable fabric topologies.

use numa_gpu_interconnect::{Switch, Topology};
use numa_gpu_testkit::gen::{ints, triples, vecs};
use numa_gpu_testkit::{prop_assert, prop_assert_eq, prop_check};
use numa_gpu_types::{LinkConfig, LinkMode, SocketId, TopologyKind};

fn cfg() -> LinkConfig {
    LinkConfig {
        lanes_per_direction: 8,
        lane_bytes_per_cycle: 8,
        latency_cycles: 128,
        switch_time_cycles: 100,
        sample_time_cycles: 5_000,
        mode: LinkMode::StaticSymmetric,
    }
}

const KINDS: [TopologyKind; 4] = [
    TopologyKind::Star,
    TopologyKind::Ring,
    TopologyKind::Mesh2d,
    TopologyKind::FatTree,
];

fn kind_for(sel: u8) -> TopologyKind {
    KINDS[(sel as usize) % KINDS.len()]
}

prop_check! {
    /// Route tables are a pure function of (kind, sockets): two
    /// independently built fabrics agree on every path, hop for hop.
    fn route_tables_are_deterministic(
        sel in ints(0u8..4),
        sockets in ints(1u8..32)
    ) {
        let kind = kind_for(sel);
        let a = Topology::new(kind, &cfg(), sockets).unwrap();
        let b = Topology::new(kind, &cfg(), sockets).unwrap();
        prop_assert_eq!(a.num_edges(), b.num_edges());
        prop_assert_eq!(a.edges(), b.edges());
        for from in 0..sockets {
            for to in 0..sockets {
                prop_assert_eq!(
                    a.path(SocketId::new(from), SocketId::new(to)),
                    b.path(SocketId::new(from), SocketId::new(to)),
                    "path {}->{} diverged", from, to
                );
            }
        }
    }

    /// Every provided shape is symmetric-cost: the hop count from a to b
    /// equals the hop count from b to a (routes may differ — the ring
    /// breaks distance ties clockwise from both ends — but never in
    /// length), and every route is loop-free on edges.
    fn symmetric_topologies_have_symmetric_cost(
        sel in ints(0u8..4),
        sockets in ints(2u8..32)
    ) {
        let kind = kind_for(sel);
        let t = Topology::new(kind, &cfg(), sockets).unwrap();
        for from in 0..sockets {
            for to in 0..sockets {
                let fwd = t.path(SocketId::new(from), SocketId::new(to));
                let rev = t.path(SocketId::new(to), SocketId::new(from));
                prop_assert_eq!(
                    fwd.len(), rev.len(),
                    "asymmetric cost {}->{} on {}", from, to, kind
                );
                let mut edges: Vec<u16> = fwd.iter().map(|h| h.edge).collect();
                edges.sort_unstable();
                edges.dedup();
                prop_assert_eq!(edges.len(), fwd.len(), "route revisits an edge");
            }
        }
    }

    /// Differential test: under any transfer schedule, the star topology
    /// reproduces the old `Switch` egress-clear and arrival ticks exactly,
    /// including cross-transfer queueing state.
    fn star_matches_switch_under_any_schedule(
        sockets in ints(2u8..16),
        sends in vecs(triples(ints(0u64..10_000), ints(0u16..4096), ints(1u32..100_000)), 1..100)
    ) {
        let c = cfg();
        let mut sw = Switch::new(&c, sockets).unwrap();
        let mut topo = Topology::new(TopologyKind::Star, &c, sockets).unwrap();
        let mut now = 0u64;
        for (dt, pair_sel, bytes) in sends {
            now += dt;
            let from = (pair_sel % sockets as u16) as u8;
            let to = ((pair_sel / sockets as u16) % sockets as u16) as u8;
            if from == to {
                continue;
            }
            let want = sw
                .transfer_timed(now, SocketId::new(from), SocketId::new(to), bytes)
                .unwrap();
            let got = topo
                .route(now, SocketId::new(from), SocketId::new(to), bytes)
                .unwrap();
            prop_assert_eq!(got, want, "diverged at t={} {}->{}", now, from, to);
        }
    }

    /// The executor's window size never exceeds the access hop: lookahead
    /// soundness holds on every shape and socket count.
    fn lookahead_never_exceeds_access_hop(
        sel in ints(0u8..4),
        sockets in ints(1u8..32)
    ) {
        let t = Topology::new(kind_for(sel), &cfg(), sockets).unwrap();
        prop_assert!(t.min_hop_latency() >= 1);
        prop_assert!(t.min_hop_latency() <= t.access_hop_latency());
    }
}
