//! Property tests for the reversible-lane link.

use numa_gpu_interconnect::{GpuLink, LinkDirection, Switch};
use numa_gpu_testkit::gen::{bools, ints, pairs, triples, vecs};
use numa_gpu_testkit::{prop_assert, prop_assert_eq, prop_assume, prop_check};
use numa_gpu_types::{cycles_to_ticks, LinkConfig, LinkMode, SocketId};

fn cfg(mode: LinkMode) -> LinkConfig {
    LinkConfig {
        lanes_per_direction: 8,
        lane_bytes_per_cycle: 8,
        latency_cycles: 128,
        switch_time_cycles: 100,
        sample_time_cycles: 5_000,
        mode,
    }
}

prop_check! {
    /// Under any traffic/rebalance schedule: the lane total is conserved,
    /// no direction drops below one lane, and per-direction completions
    /// stay FIFO.
    fn lanes_conserved_under_arbitrary_traffic(
        steps in vecs(triples(ints(0u64..5_000), bools(), ints(1u32..100_000)), 1..200)
    ) {
        let mut link = GpuLink::new(&cfg(LinkMode::DynamicAsymmetric));
        let mut now = 0;
        let mut last_eg = 0;
        let mut last_in = 0;
        for (i, (dt, egress, bytes)) in steps.iter().enumerate() {
            now += dt;
            let dir = if *egress { LinkDirection::Egress } else { LinkDirection::Ingress };
            let done = link.send(cycles_to_ticks(now), dir, *bytes);
            match dir {
                LinkDirection::Egress => {
                    prop_assert!(done >= last_eg, "egress FIFO violated");
                    last_eg = done;
                }
                LinkDirection::Ingress => {
                    prop_assert!(done >= last_in, "ingress FIFO violated");
                    last_in = done;
                }
            }
            if i % 7 == 0 {
                link.sample_and_rebalance(cycles_to_ticks(now + 5_000), 0.99);
                now += 5_000;
            }
            let eg = link.lanes(LinkDirection::Egress);
            let ing = link.lanes(LinkDirection::Ingress);
            prop_assert_eq!(eg + ing, 16, "lane total must be conserved");
            prop_assert!(eg >= 1 && ing >= 1, "no direction below one lane");
        }
    }

    /// Reset always restores the symmetric launch configuration, from any
    /// state.
    fn reset_restores_symmetry(turn_rounds in ints(0u64..20)) {
        let mut link = GpuLink::new(&cfg(LinkMode::DynamicAsymmetric));
        let mut now = 0u64;
        for _ in 0..turn_rounds {
            for _ in 0..50_000 {
                link.send(cycles_to_ticks(now), LinkDirection::Egress, 128);
            }
            now += 5_200;
            link.sample_and_rebalance(cycles_to_ticks(now), 0.99);
        }
        link.reset_symmetric(cycles_to_ticks(now));
        prop_assert_eq!(link.lanes(LinkDirection::Egress), 8);
        prop_assert_eq!(link.lanes(LinkDirection::Ingress), 8);
    }

    /// A switch transfer always arrives no earlier than the wire latency
    /// plus the minimum occupancy, and loads exactly the two endpoint links.
    fn switch_transfer_bounds(
        bytes in ints(1u32..100_000),
        from in ints(0u8..4),
        to in ints(0u8..4)
    ) {
        prop_assume!(from != to);
        let mut sw = Switch::new(&cfg(LinkMode::StaticSymmetric), 4).unwrap();
        let arrive = sw
            .transfer(0, SocketId::new(from), SocketId::new(to), bytes)
            .unwrap();
        let min_occ = (bytes as u64 * 1024).div_ceil(64);
        prop_assert!(arrive >= cycles_to_ticks(128) + 2 * min_occ);
        prop_assert_eq!(sw.link(SocketId::new(from)).stats().egress_bytes.get(), bytes as u64);
        prop_assert_eq!(sw.link(SocketId::new(to)).stats().ingress_bytes.get(), bytes as u64);
        prop_assert_eq!(sw.total_bytes(), 2 * bytes as u64);
    }

    /// Double-bandwidth mode is never slower than the static link for the
    /// same traffic.
    fn double_bandwidth_dominates(sends in vecs(pairs(ints(0u64..100), ints(1u32..10_000)), 1..100)) {
        let mut fast = GpuLink::new(&cfg(LinkMode::DoubleBandwidth));
        let mut slow = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        let mut now = 0;
        for (dt, bytes) in sends {
            now += dt;
            let f = fast.send(cycles_to_ticks(now), LinkDirection::Egress, bytes);
            let s = slow.send(cycles_to_ticks(now), LinkDirection::Egress, bytes);
            prop_assert!(f <= s);
        }
    }
}
