//! Composable inter-socket fabric topologies with per-hop routing.
//!
//! Generalizes the paper's single-switch star (Figure 1) into a graph of
//! nodes (GPU sockets and switches) connected by [`GpuLink`]-backed edges.
//! Four shapes are provided (see [`TopologyKind`]): the star the paper
//! evaluates, a bidirectional ring, a 2D mesh with X-then-Y routing, and a
//! two-level NVSwitch-style fat-tree.
//!
//! # Edge identity and latency model
//!
//! Edges are numbered deterministically: edge `i` for `i < num_sockets` is
//! socket `i`'s *access* edge (the socket↔fabric link the paper's per-GPU
//! lane balancer manages); interior switch↔switch edges follow in
//! construction order. This keeps edge ids `0..n` interchangeable with
//! socket indices, so existing fault plans and per-socket link reports keep
//! their meaning on every topology.
//!
//! Every hop charges lane occupancy on its edge's [`GpuLink`] plus the
//! edge's propagation latency. Access edges pay half the configured one-way
//! link latency — exactly the old switch model, where socket→socket is two
//! access hops of `latency_cycles / 2` each. Interior backplane hops are
//! modeled at half an access hop (`latency_cycles / 4`): switch-to-switch
//! traces are short compared to the socket↔switch cable. The consequence,
//! relied on by the partitioned executor, is that the minimum adjacent-hop
//! latency equals the access-hop latency only in the star fabric.
//!
//! Routes are precomputed at construction into a flat table indexed by
//! `(from, to)`; routing is therefore deterministic and allocation-free on
//! the send path (simlint D001: arrays, not hash maps).
//!
//! # Examples
//!
//! ```
//! use numa_gpu_interconnect::Topology;
//! use numa_gpu_types::{LinkConfig, LinkMode, SocketId, TopologyKind};
//!
//! let cfg = LinkConfig {
//!     lanes_per_direction: 8,
//!     lane_bytes_per_cycle: 8,
//!     latency_cycles: 128,
//!     switch_time_cycles: 100,
//!     sample_time_cycles: 5000,
//!     mode: LinkMode::StaticSymmetric,
//! };
//! let mut ring = Topology::new(TopologyKind::Ring, &cfg, 8).unwrap();
//! // Opposite sides of an 8-ring: 2 access hops + 4 ring segments.
//! assert_eq!(ring.hop_count(SocketId::new(0), SocketId::new(4)), 6);
//! let (egress_clear, arrival) = ring
//!     .route(0, SocketId::new(0), SocketId::new(4), 128)
//!     .unwrap();
//! assert!(arrival > egress_clear);
//! ```

use crate::link::{GpuLink, LinkDirection, LinkSample};
use crate::switch::switch_hop_latency;
use crate::BalanceAction;
use numa_gpu_types::{ConfigError, LinkConfig, SimError, SocketId, Tick, TopologyKind};

/// A vertex of the fabric graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// A GPU socket endpoint (index `< num_sockets`).
    Socket(u8),
    /// An interconnect switch (index meaningful per topology).
    Switch(u8),
}

/// One bidirectional fabric edge: a [`GpuLink`] between two nodes plus its
/// propagation latency per traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeSpec {
    /// One endpoint (for access edges, always the socket).
    pub a: Node,
    /// The other endpoint.
    pub b: Node,
    /// Propagation latency charged per traversal of this edge, in ticks.
    pub hop_latency: Tick,
}

/// A directed traversal step: which edge, and which lane direction models
/// the orientation (`a`→`b` uses [`LinkDirection::Egress`], `b`→`a` uses
/// [`LinkDirection::Ingress`]), so the reversible-lane balancer sees each
/// interior edge's directional load exactly like an endpoint link's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Index into the topology's edge list.
    pub edge: u16,
    /// Lane direction charged on the edge's link for this orientation.
    pub dir: LinkDirection,
}

/// A composable inter-socket fabric: sockets and switches joined by
/// [`GpuLink`]-backed edges, with deterministic precomputed route tables.
///
/// Built standalone it is a drop-in generalization of [`crate::Switch`]:
/// [`Topology::route`] charges egress, per-hop traversal, and ingress and
/// returns the same `(egress_clear, arrival)` pair as
/// [`crate::Switch::transfer_timed`] — bit-identical for the star shape.
/// Inside the core simulator the access links are detached into the socket
/// partitions (see [`Topology::detach_access_link`]) and only the interior
/// hops are charged here, at deterministic serial points.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    num_sockets: u8,
    edges: Vec<EdgeSpec>,
    /// One link per edge; `None` after `detach_access_link`.
    links: Vec<Option<GpuLink>>,
    /// Full hop path for `from * n + to`; empty when `from == to`.
    routes: Vec<Vec<Hop>>,
    access_hop_latency: Tick,
}

impl Topology {
    /// Builds the fabric of the given shape over `num_sockets` sockets.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `num_sockets` is zero.
    pub fn new(
        kind: TopologyKind,
        config: &LinkConfig,
        num_sockets: u8,
    ) -> Result<Self, ConfigError> {
        if num_sockets == 0 {
            return Err(ConfigError::new("topology needs at least one socket"));
        }
        let access = switch_hop_latency(config);
        // Interior switch-to-switch traces are short backplane hops; model
        // them at half an access hop. Never zero, so windows stay nonempty.
        let interior = (access / 2).max(1);
        let builder = TopologyBuilder::new(num_sockets, access, interior);
        let built = match kind {
            TopologyKind::Star => builder.star(),
            TopologyKind::Ring => builder.ring(),
            TopologyKind::Mesh2d => builder.mesh2d(),
            TopologyKind::FatTree => builder.fattree(),
        };
        let links = built
            .edges
            .iter()
            .map(|_| Some(GpuLink::new(config)))
            .collect();
        Ok(Topology {
            kind,
            num_sockets,
            edges: built.edges,
            links,
            routes: built.routes,
            access_hop_latency: access,
        })
    }

    /// The shape this fabric was built as.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of attached sockets.
    pub fn num_sockets(&self) -> usize {
        self.num_sockets as usize
    }

    /// Total edge count (access edges first, then interior edges).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edge ids of the interior (switch↔switch) hops.
    pub fn interior_edge_ids(&self) -> std::ops::Range<usize> {
        self.num_sockets as usize..self.edges.len()
    }

    /// The edge list (index = edge id).
    pub fn edges(&self) -> &[EdgeSpec] {
        &self.edges
    }

    /// The precomputed hop path from `from` to `to` (empty when the pair is
    /// degenerate: equal endpoints or out of range).
    pub fn path(&self, from: SocketId, to: SocketId) -> &[Hop] {
        let n = self.num_sockets as usize;
        if from.index() >= n || to.index() >= n {
            return &[];
        }
        &self.routes[from.index() * n + to.index()]
    }

    /// Number of hops (access + interior) between two sockets.
    pub fn hop_count(&self, from: SocketId, to: SocketId) -> usize {
        self.path(from, to).len()
    }

    /// Propagation latency of an access (socket↔fabric) hop, in ticks —
    /// the half-latency of the old switch model.
    pub fn access_hop_latency(&self) -> Tick {
        self.access_hop_latency
    }

    /// Minimum hop latency over every edge in the fabric: the partitioned
    /// executor's conservative lookahead. No message sent by one socket at
    /// time `t` can affect any other socket before `t + min_hop_latency()`,
    /// because the first hop out of a socket is always at least this long
    /// (and interior hops only add delay after it).
    pub fn min_hop_latency(&self) -> Tick {
        self.edges
            .iter()
            .map(|e| e.hop_latency)
            .min()
            .unwrap_or(self.access_hop_latency)
    }

    /// Sends `bytes` along the full precomputed route, charging lane
    /// occupancy and propagation on every hop in order. Returns
    /// `(egress_clear, arrival)` exactly like
    /// [`crate::Switch::transfer_timed`]: the tick the packet clears the
    /// source's access lanes, and the tick it arrives at the destination.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRoute`] when `from == to`, an endpoint is
    /// out of range, or a link on the path has been detached into a socket
    /// partition (standalone use only — the core charges detached access
    /// links itself).
    pub fn route(
        &mut self,
        now: Tick,
        from: SocketId,
        to: SocketId,
        bytes: u32,
    ) -> Result<(Tick, Tick), SimError> {
        let n = self.num_sockets as usize;
        if from.index() >= n || to.index() >= n {
            return Err(SimError::InvalidRoute {
                message: format!("endpoint {from}->{to} out of range ({n} sockets)"),
            });
        }
        if from == to {
            return Err(SimError::InvalidRoute {
                message: format!("local transfer {from}->{to} must not enter the fabric"),
            });
        }
        let key = from.index() * n + to.index();
        let mut t = now;
        let mut egress_clear = now;
        for i in 0..self.routes[key].len() {
            let hop = self.routes[key][i];
            let latency = self.edges[hop.edge as usize].hop_latency;
            let link =
                self.links[hop.edge as usize]
                    .as_mut()
                    .ok_or_else(|| SimError::InvalidRoute {
                        message: format!(
                            "edge {} on route {from}->{to} is detached from the fabric",
                            hop.edge
                        ),
                    })?;
            t = link.send(t, hop.dir, bytes);
            if i == 0 {
                egress_clear = t;
            }
            t += latency;
        }
        Ok((egress_clear, t))
    }

    /// Charges only the *interior* hops of the `from`→`to` route, starting
    /// from `at` (the tick the packet reached the source-side fabric
    /// boundary), and returns the tick it reaches the destination-side
    /// boundary. The two access hops are the caller's responsibility — in
    /// the core they are owned by the socket partitions and charged inside
    /// the parallel windows, while interior hops are charged here at
    /// deterministic serial points (window barriers, flush, control plane).
    ///
    /// For the star fabric there are no interior hops and `at` is returned
    /// unchanged, which is what keeps star reports byte-identical to the
    /// pre-topology model. Degenerate endpoints also return `at` unchanged.
    pub fn interior_traverse(
        &mut self,
        from: SocketId,
        to: SocketId,
        at: Tick,
        bytes: u32,
    ) -> Tick {
        let n = self.num_sockets as usize;
        if from.index() >= n || to.index() >= n || from == to {
            return at;
        }
        let key = from.index() * n + to.index();
        let len = self.routes[key].len();
        let mut t = at;
        for i in 1..len.saturating_sub(1) {
            let hop = self.routes[key][i];
            let latency = self.edges[hop.edge as usize].hop_latency;
            if let Some(link) = self.links[hop.edge as usize].as_mut() {
                t = link.send(t, hop.dir, bytes) + latency;
            }
        }
        t
    }

    /// Moves socket `s`'s access link out of the fabric (the core gives it
    /// to the socket's partition so parallel windows never share link
    /// state). Returns `None` if out of range or already detached.
    pub fn detach_access_link(&mut self, socket: SocketId) -> Option<GpuLink> {
        if socket.index() >= self.num_sockets as usize {
            return None;
        }
        self.links[socket.index()].take()
    }

    /// Immutable access to one edge's link (`None` if out of range or
    /// detached).
    pub fn link(&self, edge: usize) -> Option<&GpuLink> {
        self.links.get(edge).and_then(|l| l.as_ref())
    }

    /// Mutable access to one edge's link (`None` if out of range or
    /// detached). Edge ids `0..num_sockets` are the access links; interior
    /// edges follow — this is how fault injection addresses hops.
    pub fn link_mut(&mut self, edge: usize) -> Option<&mut GpuLink> {
        self.links.get_mut(edge).and_then(|l| l.as_mut())
    }

    /// Captures each attached interior link's utilization point for the
    /// window ending at `now`, in edge-id order.
    pub fn interior_sample_points(&self, now: Tick) -> Vec<(usize, LinkSample)> {
        self.interior_edge_ids()
            .filter_map(|e| self.links[e].as_ref().map(|l| (e, l.sample_point(now))))
            .collect()
    }

    /// Runs one balancer period on every attached interior link, in edge-id
    /// order; returns `(edge, action)` pairs.
    pub fn interior_sample_and_rebalance(
        &mut self,
        now: Tick,
        threshold: f64,
    ) -> Vec<(usize, BalanceAction)> {
        let ids: Vec<usize> = self.interior_edge_ids().collect();
        ids.into_iter()
            .filter_map(|e| {
                self.links[e]
                    .as_mut()
                    .map(|l| (e, l.sample_and_rebalance(now, threshold)))
            })
            .collect()
    }

    /// Resets every attached interior link to the symmetric kernel-launch
    /// lane split (access links are reset by their owning partitions).
    pub fn reset_interior_symmetric(&mut self, now: Tick) {
        for e in self.num_sockets as usize..self.links.len() {
            if let Some(l) = self.links[e].as_mut() {
                l.reset_symmetric(now);
            }
        }
    }

    /// Total bytes moved over the interior hops (both directions).
    pub fn interior_bytes(&self) -> u64 {
        self.interior_edge_ids()
            .filter_map(|e| self.links[e].as_ref())
            .map(|l| l.stats().egress_bytes.get() + l.stats().ingress_bytes.get())
            .sum()
    }
}

/// Intermediate construction state shared by the shape builders.
struct TopologyBuilder {
    n: usize,
    access_latency: Tick,
    interior_latency: Tick,
}

struct Built {
    edges: Vec<EdgeSpec>,
    routes: Vec<Vec<Hop>>,
}

impl TopologyBuilder {
    fn new(num_sockets: u8, access_latency: Tick, interior_latency: Tick) -> Self {
        TopologyBuilder {
            n: num_sockets as usize,
            access_latency,
            interior_latency,
        }
    }

    /// Access edges 0..n, socket `i` attached to `attach(i)`.
    fn access_edges(&self, attach: impl Fn(usize) -> Node) -> Vec<EdgeSpec> {
        (0..self.n)
            .map(|i| EdgeSpec {
                a: Node::Socket(i as u8),
                b: attach(i),
                hop_latency: self.access_latency,
            })
            .collect()
    }

    fn interior_edge(&self, a: Node, b: Node) -> EdgeSpec {
        EdgeSpec {
            a,
            b,
            hop_latency: self.interior_latency,
        }
    }

    /// Assembles the route table given a closure producing the interior
    /// hops of each ordered pair. Every route is access-out, interior hops,
    /// access-in.
    fn routes(&self, interior: impl Fn(usize, usize) -> Vec<Hop>) -> Vec<Vec<Hop>> {
        let mut table = Vec::with_capacity(self.n * self.n);
        for from in 0..self.n {
            for to in 0..self.n {
                if from == to {
                    table.push(Vec::new());
                    continue;
                }
                let mut path = Vec::new();
                path.push(Hop {
                    edge: from as u16,
                    dir: LinkDirection::Egress,
                });
                path.extend(interior(from, to));
                path.push(Hop {
                    edge: to as u16,
                    dir: LinkDirection::Ingress,
                });
                table.push(path);
            }
        }
        table
    }

    /// The paper's fabric: every socket on one central switch, no interior
    /// edges. Routes are exactly the old `Switch::transfer` path.
    fn star(self) -> Built {
        Built {
            edges: self.access_edges(|_| Node::Switch(0)),
            routes: self.routes(|_, _| Vec::new()),
        }
    }

    /// Per-socket switches on a bidirectional ring; traffic takes the
    /// shorter arc, breaking ties clockwise (ascending socket order).
    fn ring(self) -> Built {
        let n = self.n;
        let mut edges = self.access_edges(|i| Node::Switch(i as u8));
        // Ring segment s: Switch(s) -- Switch((s+1) % n). A 2-ring is a
        // single segment (two parallel segments would double the physical
        // links without changing routing); a 1-ring has none.
        let segments = match n {
            0 | 1 => 0,
            2 => 1,
            _ => n,
        };
        for s in 0..segments {
            edges
                .push(self.interior_edge(Node::Switch(s as u8), Node::Switch(((s + 1) % n) as u8)));
        }
        let routes = self.routes(|from, to| {
            let mut hops = Vec::new();
            let cw = (to + n - from) % n;
            let ccw = (from + n - to) % n;
            if cw <= ccw {
                // Clockwise: traverse segment s in its a->b orientation.
                let mut s = from;
                for _ in 0..cw {
                    hops.push(Hop {
                        edge: (n + s % segments.max(1)) as u16,
                        dir: if n == 2 && s == 1 {
                            // 2-ring reuses the single segment backwards.
                            LinkDirection::Ingress
                        } else {
                            LinkDirection::Egress
                        },
                    });
                    s = (s + 1) % n;
                }
            } else {
                // Counter-clockwise: traverse segment (s-1) b->a.
                let mut s = from;
                for _ in 0..ccw {
                    let seg = (s + n - 1) % n;
                    hops.push(Hop {
                        edge: (n + seg % segments.max(1)) as u16,
                        dir: LinkDirection::Ingress,
                    });
                    s = seg;
                }
            }
            hops
        });
        Built { edges, routes }
    }

    /// Sockets on a ⌈√n⌉-column switch grid with deterministic X-then-Y
    /// (column-first) dimension-order routing.
    fn mesh2d(self) -> Built {
        let n = self.n;
        let cols = (1..).find(|c| c * c >= n).unwrap_or(1);
        let rows = n.div_ceil(cols);
        // Socket i sits on grid switch i (row-major); switches beyond n-1
        // up to rows*cols-1 exist as pure routers so X-then-Y paths always
        // have a full rectangle to turn in.
        let mut edges = self.access_edges(|i| Node::Switch(i as u8));
        let base_h = edges.len();
        for r in 0..rows {
            for c in 0..cols - 1 {
                edges.push(self.interior_edge(
                    Node::Switch((r * cols + c) as u8),
                    Node::Switch((r * cols + c + 1) as u8),
                ));
            }
        }
        let base_v = edges.len();
        for r in 0..rows - 1 {
            for c in 0..cols {
                edges.push(self.interior_edge(
                    Node::Switch((r * cols + c) as u8),
                    Node::Switch(((r + 1) * cols + c) as u8),
                ));
            }
        }
        let h_edge = move |r: usize, c: usize| (base_h + r * (cols - 1) + c) as u16;
        let v_edge = move |r: usize, c: usize| (base_v + r * cols + c) as u16;
        let routes = self.routes(|from, to| {
            let (r1, c1) = (from / cols, from % cols);
            let (r2, c2) = (to / cols, to % cols);
            let mut hops = Vec::new();
            // X first: walk columns within row r1.
            if c2 > c1 {
                for c in c1..c2 {
                    hops.push(Hop {
                        edge: h_edge(r1, c),
                        dir: LinkDirection::Egress,
                    });
                }
            } else {
                for c in (c2..c1).rev() {
                    hops.push(Hop {
                        edge: h_edge(r1, c),
                        dir: LinkDirection::Ingress,
                    });
                }
            }
            // Then Y: walk rows within column c2.
            if r2 > r1 {
                for r in r1..r2 {
                    hops.push(Hop {
                        edge: v_edge(r, c2),
                        dir: LinkDirection::Egress,
                    });
                }
            } else {
                for r in (r2..r1).rev() {
                    hops.push(Hop {
                        edge: v_edge(r, c2),
                        dir: LinkDirection::Ingress,
                    });
                }
            }
            hops
        });
        Built { edges, routes }
    }

    /// Two-level fat-tree: leaf switches host up to four sockets each and
    /// share a single root switch (NVSwitch-style). The per-leaf uplink is
    /// shared by its sockets — a 4:1 oversubscription under all-to-all.
    fn fattree(self) -> Built {
        let n = self.n;
        let leaves = n.div_ceil(4);
        let root = Node::Switch(leaves as u8);
        let mut edges = self.access_edges(|i| Node::Switch((i / 4) as u8));
        if leaves > 1 {
            for leaf in 0..leaves {
                edges.push(self.interior_edge(Node::Switch(leaf as u8), root));
            }
        }
        let routes = self.routes(|from, to| {
            let (lf, lt) = (from / 4, to / 4);
            if lf == lt {
                Vec::new()
            } else {
                vec![
                    Hop {
                        edge: (n + lf) as u16,
                        dir: LinkDirection::Egress,
                    },
                    Hop {
                        edge: (n + lt) as u16,
                        dir: LinkDirection::Ingress,
                    },
                ]
            }
        });
        Built { edges, routes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Switch;
    use numa_gpu_types::{ticks_to_cycles, LinkMode};

    fn cfg() -> LinkConfig {
        LinkConfig {
            lanes_per_direction: 8,
            lane_bytes_per_cycle: 8,
            latency_cycles: 128,
            switch_time_cycles: 100,
            sample_time_cycles: 5_000,
            mode: LinkMode::StaticSymmetric,
        }
    }

    fn s(i: u8) -> SocketId {
        SocketId::new(i)
    }

    #[test]
    fn star_has_no_interior_edges_and_two_hop_routes() {
        let t = Topology::new(TopologyKind::Star, &cfg(), 8).unwrap();
        assert_eq!(t.num_edges(), 8);
        assert_eq!(t.interior_edge_ids().len(), 0);
        for a in 0..8 {
            for b in 0..8 {
                let expect = if a == b { 0 } else { 2 };
                assert_eq!(t.hop_count(s(a), s(b)), expect);
            }
        }
        assert_eq!(t.min_hop_latency(), t.access_hop_latency());
    }

    #[test]
    fn star_route_matches_switch_exactly() {
        // The differential contract: the star topology must reproduce the
        // old Switch arrival and egress-clear ticks bit for bit, including
        // queueing state carried across transfers.
        let c = cfg();
        let mut sw = Switch::new(&c, 4).unwrap();
        let mut topo = Topology::new(TopologyKind::Star, &c, 4).unwrap();
        let transfers = [
            (0u64, 0u8, 1u8, 6400u32),
            (0, 0, 2, 144),
            (10, 2, 0, 144),
            (10, 3, 1, 16),
            (500, 1, 0, 128),
            (500, 0, 1, 6400),
        ];
        for &(now, from, to, bytes) in &transfers {
            let want = sw.transfer_timed(now, s(from), s(to), bytes).unwrap();
            let got = topo.route(now, s(from), s(to), bytes).unwrap();
            assert_eq!(got, want, "transfer {now} {from}->{to} {bytes}B");
        }
    }

    #[test]
    fn star_route_pays_full_latency() {
        let mut t = Topology::new(TopologyKind::Star, &cfg(), 4).unwrap();
        let (_, arrive) = t.route(0, s(0), s(1), 128).unwrap();
        assert_eq!(ticks_to_cycles(arrive), 132); // 2 + 64 + 2 + 64
    }

    #[test]
    fn ring_takes_shorter_arc_with_clockwise_ties() {
        let t = Topology::new(TopologyKind::Ring, &cfg(), 8).unwrap();
        assert_eq!(t.num_edges(), 16); // 8 access + 8 segments
        assert_eq!(t.hop_count(s(0), s(1)), 3); // 2 access + 1 segment
        assert_eq!(t.hop_count(s(0), s(7)), 3); // wraps counter-clockwise
        assert_eq!(t.hop_count(s(0), s(4)), 6); // tie distance: 4 segments
        assert_eq!(t.hop_count(s(4), s(0)), 6); // symmetric cost
                                                // Tie breaks clockwise: 0->4 uses segments 0..4 in Egress.
        let path = t.path(s(0), s(4));
        assert_eq!(path[1].edge, 8);
        assert_eq!(path[1].dir, LinkDirection::Egress);
        // And 4->0 also goes clockwise (4,5,6,7), not back the same way.
        let back = t.path(s(4), s(0));
        assert_eq!(back[1].edge, 12);
        assert_eq!(back[1].dir, LinkDirection::Egress);
    }

    #[test]
    fn two_socket_ring_reuses_its_single_segment() {
        let t = Topology::new(TopologyKind::Ring, &cfg(), 2).unwrap();
        assert_eq!(t.num_edges(), 3); // 2 access + 1 segment
        let fwd = t.path(s(0), s(1));
        let rev = t.path(s(1), s(0));
        assert_eq!(
            fwd[1],
            Hop {
                edge: 2,
                dir: LinkDirection::Egress
            }
        );
        assert_eq!(
            rev[1],
            Hop {
                edge: 2,
                dir: LinkDirection::Ingress
            }
        );
    }

    #[test]
    fn mesh_routes_x_then_y() {
        // 8 sockets: 3x3 grid (9 switches, last one socket-less).
        let t = Topology::new(TopologyKind::Mesh2d, &cfg(), 8).unwrap();
        // interior: 3 rows * 2 h-edges + 2 rows * 3 v-edges = 12.
        assert_eq!(t.num_edges(), 8 + 12);
        // 0 (0,0) -> 5 (1,2): two h hops east then one v hop south.
        let path = t.path(s(0), s(5));
        assert_eq!(path.len(), 5);
        assert_eq!(path[1].dir, LinkDirection::Egress);
        assert_eq!(path[2].dir, LinkDirection::Egress);
        // 5 -> 0 walks west then north: same hop count.
        assert_eq!(t.hop_count(s(5), s(0)), 5);
    }

    #[test]
    fn fattree_is_two_level() {
        let t = Topology::new(TopologyKind::FatTree, &cfg(), 16).unwrap();
        assert_eq!(t.num_edges(), 16 + 4); // 4 leaves, 4 uplinks
        assert_eq!(t.hop_count(s(0), s(1)), 2); // same leaf: star-like
        assert_eq!(t.hop_count(s(0), s(5)), 4); // cross-leaf: via root
        assert_eq!(t.hop_count(s(5), s(0)), 4);
        // Up to 4 sockets it degenerates to a pure star.
        let small = Topology::new(TopologyKind::FatTree, &cfg(), 4).unwrap();
        assert_eq!(small.num_edges(), 4);
        assert_eq!(small.hop_count(s(0), s(3)), 2);
    }

    #[test]
    fn interior_traverse_is_identity_on_star() {
        let mut t = Topology::new(TopologyKind::Star, &cfg(), 4).unwrap();
        assert_eq!(t.interior_traverse(s(0), s(3), 1234, 144), 1234);
        assert_eq!(t.interior_bytes(), 0);
    }

    #[test]
    fn interior_traverse_charges_interior_hops_only() {
        let mut t = Topology::new(TopologyKind::Ring, &cfg(), 4).unwrap();
        let before = t.interior_bytes();
        let out = t.interior_traverse(s(0), s(1), 1000, 144);
        // One interior segment: service time plus the short hop latency.
        assert!(out > 1000);
        assert_eq!(t.interior_bytes() - before, 144);
        // Access links untouched by interior traversal.
        assert_eq!(t.link(0).unwrap().stats().egress_bytes.get(), 0);
    }

    #[test]
    fn detached_access_link_fails_standalone_routing() {
        let mut t = Topology::new(TopologyKind::Star, &cfg(), 2).unwrap();
        let link = t.detach_access_link(s(0));
        assert!(link.is_some());
        assert!(t.detach_access_link(s(0)).is_none());
        let err = t.route(0, s(0), s(1), 128).unwrap_err();
        assert!(matches!(err, SimError::InvalidRoute { .. }));
        // Interior traversal still works (star: identity).
        assert_eq!(t.interior_traverse(s(0), s(1), 7, 16), 7);
    }

    #[test]
    fn degenerate_routes_error() {
        let mut t = Topology::new(TopologyKind::Ring, &cfg(), 4).unwrap();
        assert!(t.route(0, s(1), s(1), 16).is_err());
        assert!(t.route(0, s(0), s(9), 16).is_err());
        assert!(Topology::new(TopologyKind::Ring, &cfg(), 0).is_err());
    }

    #[test]
    fn min_hop_latency_is_below_access_only_off_star() {
        for kind in [
            TopologyKind::Ring,
            TopologyKind::Mesh2d,
            TopologyKind::FatTree,
        ] {
            let t = Topology::new(kind, &cfg(), 8).unwrap();
            assert!(
                t.min_hop_latency() < t.access_hop_latency(),
                "{kind} should have shorter interior hops"
            );
        }
        let star = Topology::new(TopologyKind::Star, &cfg(), 8).unwrap();
        assert_eq!(star.min_hop_latency(), star.access_hop_latency());
    }
}
