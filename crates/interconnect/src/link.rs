//! One GPU socket's link to the switch: reversible lanes in two directions.

use crate::balancer::{BalanceAction, LinkBalancer};
use numa_gpu_engine::ServiceQueue;
use numa_gpu_obs::{CounterHandle, HistogramHandle};
use numa_gpu_types::{cycles_to_ticks, ticks_to_cycles, Counter, LinkConfig, LinkMode, Tick};

/// Direction of travel relative to the owning GPU socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDirection {
    /// From this GPU toward the switch.
    Egress,
    /// From the switch into this GPU.
    Ingress,
}

impl LinkDirection {
    /// The opposite direction.
    #[inline]
    pub const fn other(self) -> Self {
        match self {
            LinkDirection::Egress => LinkDirection::Ingress,
            LinkDirection::Ingress => LinkDirection::Egress,
        }
    }
}

/// Observability handles for one link, installed via [`GpuLink::set_obs`].
///
/// Default handles are disabled no-ops, so an uninstrumented link pays one
/// branch per send.
#[derive(Debug, Clone, Default)]
pub struct LinkObs {
    /// Queueing delay (in cycles) each egress packet saw on arrival.
    pub egress_backlog_cycles: HistogramHandle,
    /// Queueing delay (in cycles) each ingress packet saw on arrival.
    pub ingress_backlog_cycles: HistogramHandle,
    /// Sends that found the direction busy and had to queue — the switch
    /// arbitration conflict count.
    pub conflicts: CounterHandle,
}

/// One point of the Fig-5-style utilization timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSample {
    /// Cycle at which the sample window ended.
    pub cycle: u64,
    /// Egress utilization over the window, `[0, 1]`.
    pub egress_util: f64,
    /// Ingress utilization over the window, `[0, 1]`.
    pub ingress_util: f64,
    /// Egress lanes at sampling time.
    pub egress_lanes: u8,
    /// Ingress lanes at sampling time.
    pub ingress_lanes: u8,
}

/// Aggregate traffic statistics for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Bytes sent GPU→switch.
    pub egress_bytes: Counter,
    /// Bytes received switch→GPU.
    pub ingress_bytes: Counter,
    /// Lane reversals performed.
    pub lane_turns: Counter,
    /// Equalization steps performed.
    pub equalizations: Counter,
}

/// A GPU↔switch link built from individually reversible lanes.
///
/// At kernel launch the link is symmetric (`lanes_per_direction` each way).
/// Under [`LinkMode::DynamicAsymmetric`] the load balancer may reverse
/// lanes one at a time; the donor direction loses bandwidth immediately
/// (the lane quiesces) and the gaining direction receives it `switch_time`
/// cycles later.
///
/// # Examples
///
/// ```
/// use numa_gpu_interconnect::{GpuLink, LinkDirection};
/// use numa_gpu_types::{LinkConfig, LinkMode, TICKS_PER_CYCLE};
///
/// let cfg = LinkConfig {
///     lanes_per_direction: 8,
///     lane_bytes_per_cycle: 8,
///     latency_cycles: 128,
///     switch_time_cycles: 100,
///     sample_time_cycles: 5000,
///     mode: LinkMode::StaticSymmetric,
/// };
/// let mut link = GpuLink::new(&cfg);
/// // 64 B/cycle per direction: a 128 B packet occupies 2 cycles.
/// assert_eq!(link.send(0, LinkDirection::Egress, 128), 2 * TICKS_PER_CYCLE);
/// ```
#[derive(Debug, Clone)]
pub struct GpuLink {
    egress: ServiceQueue,
    ingress: ServiceQueue,
    egress_lanes: u8,
    ingress_lanes: u8,
    lanes_total: u8,
    healthy_total: u8,
    avail_acc: u64,
    avail_since: Tick,
    lane_rate: u64,
    switch_penalty: Tick,
    mode: LinkMode,
    pending_gain: Option<(Tick, LinkDirection)>,
    stats: LinkStats,
    obs: LinkObs,
}

impl GpuLink {
    /// Builds a link from its configuration. [`LinkMode::DoubleBandwidth`]
    /// doubles the per-lane rate (Fig 6's upper-bound configuration).
    ///
    /// # Panics
    ///
    /// Panics on zero lanes or zero lane rate.
    pub fn new(config: &LinkConfig) -> Self {
        assert!(
            config.lanes_per_direction > 0 && config.lane_bytes_per_cycle > 0,
            "link lanes and lane rate must be nonzero"
        );
        let lane_rate = match config.mode {
            LinkMode::DoubleBandwidth => config.lane_bytes_per_cycle * 2,
            _ => config.lane_bytes_per_cycle,
        };
        let per_dir = config.lanes_per_direction as u64 * lane_rate;
        GpuLink {
            egress: ServiceQueue::new(per_dir),
            ingress: ServiceQueue::new(per_dir),
            egress_lanes: config.lanes_per_direction,
            ingress_lanes: config.lanes_per_direction,
            lanes_total: config.lanes_per_direction * 2,
            healthy_total: config.lanes_per_direction * 2,
            avail_acc: 0,
            avail_since: 0,
            lane_rate,
            switch_penalty: cycles_to_ticks(config.switch_time_cycles as u64),
            mode: config.mode,
            pending_gain: None,
            stats: LinkStats::default(),
            obs: LinkObs::default(),
        }
    }

    /// Installs observability handles (disabled no-op handles by default).
    pub fn set_obs(&mut self, obs: LinkObs) {
        self.obs = obs;
    }

    /// Lanes currently assigned to `dir` (including a lane still in its
    /// quiesce window, which counts for its destination).
    pub fn lanes(&self, dir: LinkDirection) -> u8 {
        match dir {
            LinkDirection::Egress => self.egress_lanes,
            LinkDirection::Ingress => self.ingress_lanes,
        }
    }

    fn queue_mut(&mut self, dir: LinkDirection) -> &mut ServiceQueue {
        match dir {
            LinkDirection::Egress => &mut self.egress,
            LinkDirection::Ingress => &mut self.ingress,
        }
    }

    fn queue(&self, dir: LinkDirection) -> &ServiceQueue {
        match dir {
            LinkDirection::Egress => &self.egress,
            LinkDirection::Ingress => &self.ingress,
        }
    }

    /// Matures any pending lane gain whose quiesce window has elapsed.
    fn apply_pending(&mut self, now: Tick) {
        if let Some((ready_at, dir)) = self.pending_gain {
            if now >= ready_at {
                let rate = self.lanes(dir) as u64 * self.lane_rate;
                self.queue_mut(dir).set_rate(rate);
                self.pending_gain = None;
            }
        }
    }

    /// Transfers `bytes` in `dir`; returns the tick the last byte clears
    /// this link stage (propagation latency is added by the switch).
    pub fn send(&mut self, now: Tick, dir: LinkDirection, bytes: u32) -> Tick {
        self.apply_pending(now);
        let backlog = self.queue(dir).next_free().saturating_sub(now);
        if backlog > 0 {
            self.obs.conflicts.inc();
        }
        match dir {
            LinkDirection::Egress => {
                self.stats.egress_bytes.add(bytes as u64);
                self.obs
                    .egress_backlog_cycles
                    .observe(ticks_to_cycles(backlog));
            }
            LinkDirection::Ingress => {
                self.stats.ingress_bytes.add(bytes as u64);
                self.obs
                    .ingress_backlog_cycles
                    .observe(ticks_to_cycles(backlog));
            }
        }
        self.queue_mut(dir).service(now, bytes)
    }

    /// Current service rate of `dir` in bytes per cycle (reflects lane
    /// reallocation).
    pub fn direction_rate(&self, dir: LinkDirection) -> u64 {
        self.queue(dir).rate()
    }

    /// Windowed utilization of `dir` in `[0, 1]`.
    pub fn window_utilization(&self, now: Tick, dir: LinkDirection) -> f64 {
        self.queue(dir).window_utilization(now)
    }

    /// Whether `dir` is saturated in the current window.
    pub fn is_saturated(&self, now: Tick, dir: LinkDirection, threshold: f64) -> bool {
        self.queue(dir).is_saturated(now, threshold)
    }

    /// Captures the Fig-5-style utilization point for the window ending at
    /// `now`. Callers that want a timeline sample this immediately before
    /// [`Self::sample_and_rebalance`] (which opens a fresh window).
    pub fn sample_point(&self, now: Tick) -> LinkSample {
        LinkSample {
            cycle: ticks_to_cycles(now),
            egress_util: self.egress.window_utilization(now),
            ingress_util: self.ingress.window_utilization(now),
            egress_lanes: self.egress_lanes,
            ingress_lanes: self.ingress_lanes,
        }
    }

    /// Runs one balancer sampling period: applies the paper's
    /// reconfiguration rule (only under [`LinkMode::DynamicAsymmetric`])
    /// and opens a fresh window. Returns the action taken.
    pub fn sample_and_rebalance(&mut self, now: Tick, threshold: f64) -> BalanceAction {
        self.apply_pending(now);
        let sat_e = self.egress.is_saturated(now, threshold);
        let sat_i = self.ingress.is_saturated(now, threshold);
        let action = if self.mode == LinkMode::DynamicAsymmetric && self.pending_gain.is_none() {
            LinkBalancer::decide(sat_e, sat_i, self.egress_lanes, self.ingress_lanes)
        } else {
            BalanceAction::Hold
        };
        match action {
            BalanceAction::TurnTowardEgress => self.turn_lane(now, LinkDirection::Egress),
            BalanceAction::TurnTowardIngress => self.turn_lane(now, LinkDirection::Ingress),
            BalanceAction::Equalize => {
                let toward = if self.egress_lanes < self.ingress_lanes {
                    LinkDirection::Egress
                } else {
                    LinkDirection::Ingress
                };
                self.turn_lane(now, toward);
                self.stats.equalizations.inc();
            }
            BalanceAction::Hold => {}
        }
        self.egress.begin_window(now);
        self.ingress.begin_window(now);
        action
    }

    /// Reverses one lane from `gaining.other()` to `gaining`: the donor
    /// loses rate immediately, the gainer's rate rises after the quiesce
    /// penalty.
    fn turn_lane(&mut self, now: Tick, gaining: LinkDirection) {
        let donor = gaining.other();
        debug_assert!(self.lanes(donor) > 1);
        match gaining {
            LinkDirection::Egress => {
                self.ingress_lanes -= 1;
                self.egress_lanes += 1;
            }
            LinkDirection::Ingress => {
                self.egress_lanes -= 1;
                self.ingress_lanes += 1;
            }
        }
        let donor_lanes = self.lanes(donor) as u64;
        let rate = self.lane_rate;
        self.queue_mut(donor).set_rate(donor_lanes * rate);
        self.pending_gain = Some((now + self.switch_penalty, gaining));
        self.stats.lane_turns.inc();
    }

    /// Restores the symmetric kernel-launch configuration ("at kernel
    /// launch the links are always reconfigured to contain symmetric link
    /// bandwidth") and opens fresh windows. Only healthy lanes are
    /// redistributed: a degraded link comes back as symmetric as its
    /// surviving lanes allow.
    pub fn reset_symmetric(&mut self, now: Tick) {
        let egress = (self.healthy_total / 2).max(1);
        let ingress = (self.healthy_total - egress).max(1);
        self.egress_lanes = egress;
        self.ingress_lanes = ingress;
        self.pending_gain = None;
        self.egress.set_rate(egress as u64 * self.lane_rate);
        self.ingress.set_rate(ingress as u64 * self.lane_rate);
        self.egress.begin_window(now);
        self.ingress.begin_window(now);
    }

    /// Nominal lane count across both directions (the fault-free total).
    pub fn nominal_lanes(&self) -> u8 {
        self.lanes_total
    }

    /// Healthy lanes currently available across both directions.
    pub fn healthy_lanes(&self) -> u8 {
        self.healthy_total
    }

    /// Degrades (or restores) the link to `healthy_total` working lanes
    /// across both directions, clamped to `2..=nominal`. The surviving
    /// lanes are split proportionally to the current egress/ingress
    /// allocation (each direction keeps at least one); a lane mid-turn is
    /// abandoned. Returns the clamped healthy count now in force.
    pub fn set_lane_health(&mut self, now: Tick, healthy_total: u8) -> u8 {
        let healthy = healthy_total.clamp(2, self.lanes_total);
        self.accrue_availability(now);
        if healthy == self.healthy_total {
            return healthy;
        }
        self.healthy_total = healthy;
        let assigned = self.egress_lanes as u32 + self.ingress_lanes as u32;
        let egress = ((self.egress_lanes as u32 * healthy as u32 + assigned / 2) / assigned)
            .clamp(1, healthy as u32 - 1) as u8;
        let ingress = healthy - egress;
        self.egress_lanes = egress;
        self.ingress_lanes = ingress;
        self.pending_gain = None;
        self.egress.set_rate(egress as u64 * self.lane_rate);
        self.ingress.set_rate(ingress as u64 * self.lane_rate);
        healthy
    }

    /// Holds both directions busy for `window` ticks starting at `now` —
    /// the link transfers nothing while it retrains.
    pub fn retrain(&mut self, now: Tick, window: Tick) {
        self.egress.add_busy(now, window);
        self.ingress.add_busy(now, window);
    }

    /// Folds the segment since the last health change into the
    /// availability integral.
    fn accrue_availability(&mut self, now: Tick) {
        let span = now.saturating_sub(self.avail_since);
        self.avail_acc += span * self.healthy_total as u64;
        self.avail_since = self.avail_since.max(now);
    }

    /// Lane-ticks actually available on this link through `now` (the
    /// integral of healthy lanes over time). Divide by
    /// `nominal_lanes() * now` for the availability fraction.
    pub fn available_lane_ticks(&self, now: Tick) -> u64 {
        self.avail_acc + now.saturating_sub(self.avail_since) * self.healthy_total as u64
    }

    /// Traffic statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Total busy ticks in `dir` since construction.
    pub fn total_busy(&self, dir: LinkDirection) -> Tick {
        self.queue(dir).total_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_gpu_types::TICKS_PER_CYCLE;

    fn cfg(mode: LinkMode) -> LinkConfig {
        LinkConfig {
            lanes_per_direction: 8,
            lane_bytes_per_cycle: 8,
            latency_cycles: 128,
            switch_time_cycles: 100,
            sample_time_cycles: 5_000,
            mode,
        }
    }

    #[test]
    fn symmetric_rates_at_launch() {
        let mut l = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        assert_eq!(l.send(0, LinkDirection::Egress, 64), TICKS_PER_CYCLE);
        assert_eq!(l.send(0, LinkDirection::Ingress, 64), TICKS_PER_CYCLE);
    }

    #[test]
    fn double_bandwidth_mode_doubles_rate() {
        let mut l = GpuLink::new(&cfg(LinkMode::DoubleBandwidth));
        assert_eq!(l.send(0, LinkDirection::Egress, 128), TICKS_PER_CYCLE);
    }

    #[test]
    fn static_mode_never_rebalances() {
        let mut l = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        l.egress.begin_window(0);
        for _ in 0..100_000 {
            l.send(0, LinkDirection::Egress, 128);
        }
        let a = l.sample_and_rebalance(cycles_to_ticks(5_000), 0.99);
        assert_eq!(a, BalanceAction::Hold);
        assert_eq!(l.lanes(LinkDirection::Egress), 8);
    }

    #[test]
    fn dynamic_mode_turns_lane_under_asymmetric_saturation() {
        let mut l = GpuLink::new(&cfg(LinkMode::DynamicAsymmetric));
        for _ in 0..100_000 {
            l.send(0, LinkDirection::Egress, 128);
        }
        let a = l.sample_and_rebalance(cycles_to_ticks(5_000), 0.99);
        assert_eq!(a, BalanceAction::TurnTowardEgress);
        assert_eq!(l.lanes(LinkDirection::Egress), 9);
        assert_eq!(l.lanes(LinkDirection::Ingress), 7);
        assert_eq!(l.stats().lane_turns.get(), 1);
    }

    #[test]
    fn donor_rate_drops_immediately_gainer_after_quiesce() {
        let mut l = GpuLink::new(&cfg(LinkMode::DynamicAsymmetric));
        for _ in 0..100_000 {
            l.send(0, LinkDirection::Egress, 128);
        }
        let t = cycles_to_ticks(5_000);
        l.sample_and_rebalance(t, 0.99);
        // Ingress (donor) now 7 lanes = 56 B/cycle immediately.
        let done = l.send(t, LinkDirection::Ingress, 56);
        assert_eq!(done, t + TICKS_PER_CYCLE);
        // Egress (gainer) still at 64 B/cycle during quiesce: next_free far
        // in the future anyway; check rate via a fresh link instead.
        let mut l2 = GpuLink::new(&cfg(LinkMode::DynamicAsymmetric));
        for _ in 0..100_000 {
            l2.send(0, LinkDirection::Egress, 128);
        }
        l2.sample_and_rebalance(t, 0.99);
        // Before quiesce matures, egress rate is still 8 lanes.
        // After switch_time, a send applies the pending gain (9 lanes).
        let after = t + cycles_to_ticks(100);
        l2.send(after, LinkDirection::Egress, 72);
        // 72 B at 72 B/cycle = 1 cycle occupancy (queued behind backlog).
        assert_eq!(l2.lanes(LinkDirection::Egress), 9);
    }

    #[test]
    fn converges_to_one_lane_floor() {
        let mut l = GpuLink::new(&cfg(LinkMode::DynamicAsymmetric));
        let mut t = 0;
        for _ in 0..20 {
            for _ in 0..200_000 {
                l.send(t, LinkDirection::Egress, 128);
            }
            t += cycles_to_ticks(5_000 + 200); // past quiesce
            l.sample_and_rebalance(t, 0.99);
        }
        assert_eq!(l.lanes(LinkDirection::Ingress), 1);
        assert_eq!(l.lanes(LinkDirection::Egress), 15);
    }

    #[test]
    fn both_saturated_asymmetric_equalizes() {
        let mut l = GpuLink::new(&cfg(LinkMode::DynamicAsymmetric));
        // Drive to asymmetric 9/7 first.
        for _ in 0..100_000 {
            l.send(0, LinkDirection::Egress, 128);
        }
        let mut t = cycles_to_ticks(5_000);
        l.sample_and_rebalance(t, 0.99);
        assert_eq!(l.lanes(LinkDirection::Egress), 9);
        // Now saturate both directions.
        t += cycles_to_ticks(5_000);
        for _ in 0..100_000 {
            l.send(t, LinkDirection::Egress, 128);
            l.send(t, LinkDirection::Ingress, 128);
        }
        let a = l.sample_and_rebalance(t + cycles_to_ticks(5_000), 0.99);
        assert_eq!(a, BalanceAction::Equalize);
        assert_eq!(l.lanes(LinkDirection::Egress), 8);
        assert_eq!(l.lanes(LinkDirection::Ingress), 8);
    }

    #[test]
    fn reset_symmetric_restores_launch_state() {
        let mut l = GpuLink::new(&cfg(LinkMode::DynamicAsymmetric));
        for _ in 0..100_000 {
            l.send(0, LinkDirection::Egress, 128);
        }
        l.sample_and_rebalance(cycles_to_ticks(5_000), 0.99);
        l.reset_symmetric(cycles_to_ticks(10_000));
        assert_eq!(l.lanes(LinkDirection::Egress), 8);
        assert_eq!(l.lanes(LinkDirection::Ingress), 8);
    }

    #[test]
    fn sample_point_reports_window_state() {
        let mut l = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        l.send(0, LinkDirection::Egress, 6400);
        let s = l.sample_point(cycles_to_ticks(100));
        assert_eq!(s.cycle, 100);
        assert!(s.egress_util > 0.9);
        assert_eq!(s.ingress_util, 0.0);
        assert_eq!(s.egress_lanes, 8);
        assert_eq!(s.ingress_lanes, 8);
        // Rebalancing opens a fresh window: the next point reads idle.
        l.sample_and_rebalance(cycles_to_ticks(100), 0.99);
        let s2 = l.sample_point(cycles_to_ticks(200));
        assert_eq!(s2.egress_util, 0.0);
    }

    #[test]
    fn obs_handles_record_backlog_and_conflicts() {
        use numa_gpu_obs::MetricsRegistry;

        let mut reg = MetricsRegistry::new();
        let obs = LinkObs {
            egress_backlog_cycles: reg.histogram("link.egress_backlog_cycles"),
            ingress_backlog_cycles: reg.histogram("link.ingress_backlog_cycles"),
            conflicts: reg.counter("link.conflicts"),
        };
        let mut l = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        l.set_obs(obs);
        // First send finds an idle link; the second queues behind it.
        l.send(0, LinkDirection::Egress, 6400);
        l.send(0, LinkDirection::Egress, 128);
        l.send(0, LinkDirection::Ingress, 128);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("link.conflicts"), Some(1));
        let numa_gpu_obs::MetricValue::Histogram(h) =
            snap.get("link.egress_backlog_cycles").unwrap()
        else {
            panic!("not a histogram");
        };
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 100); // 6400 B / 64 B-per-cycle backlog
    }

    #[test]
    fn default_link_obs_is_noop() {
        let mut l = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        l.send(0, LinkDirection::Egress, 6400);
        l.send(0, LinkDirection::Egress, 128); // conflicts handle disabled: no panic, no state
        assert_eq!(l.stats().egress_bytes.get(), 6528);
    }

    #[test]
    fn lane_health_degrades_proportionally_and_restores() {
        let mut l = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        // 50% degradation: 16 -> 8 healthy lanes, split 4/4.
        assert_eq!(l.set_lane_health(cycles_to_ticks(100), 8), 8);
        assert_eq!(l.lanes(LinkDirection::Egress), 4);
        assert_eq!(l.lanes(LinkDirection::Ingress), 4);
        // Rate follows the healthy split: 4 lanes * 8 B = 32 B/cycle.
        assert_eq!(l.direction_rate(LinkDirection::Egress), 32);
        // Restore to nominal.
        assert_eq!(l.set_lane_health(cycles_to_ticks(200), 16), 16);
        assert_eq!(l.lanes(LinkDirection::Egress), 8);
        assert_eq!(l.direction_rate(LinkDirection::Egress), 64);
    }

    #[test]
    fn lane_health_clamps_and_keeps_direction_floor() {
        let mut l = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        assert_eq!(l.set_lane_health(0, 0), 2); // floor: one lane each way
        assert_eq!(l.lanes(LinkDirection::Egress), 1);
        assert_eq!(l.lanes(LinkDirection::Ingress), 1);
        assert_eq!(l.set_lane_health(0, 200), 16); // ceiling: nominal
        assert_eq!(l.healthy_lanes(), 16);
        assert_eq!(l.nominal_lanes(), 16);
    }

    #[test]
    fn degraded_link_keeps_rebalancing_and_resets_to_healthy_split() {
        let mut l = GpuLink::new(&cfg(LinkMode::DynamicAsymmetric));
        l.set_lane_health(0, 8);
        for _ in 0..100_000 {
            l.send(0, LinkDirection::Egress, 128);
        }
        let a = l.sample_and_rebalance(cycles_to_ticks(5_000), 0.99);
        assert_eq!(a, BalanceAction::TurnTowardEgress);
        assert_eq!(l.lanes(LinkDirection::Egress), 5);
        assert_eq!(l.lanes(LinkDirection::Ingress), 3);
        // Kernel boundary: symmetric within the healthy total, not nominal.
        l.reset_symmetric(cycles_to_ticks(10_000));
        assert_eq!(l.lanes(LinkDirection::Egress), 4);
        assert_eq!(l.lanes(LinkDirection::Ingress), 4);
    }

    #[test]
    fn degradation_cancels_pending_gain() {
        let mut l = GpuLink::new(&cfg(LinkMode::DynamicAsymmetric));
        for _ in 0..100_000 {
            l.send(0, LinkDirection::Egress, 128);
        }
        l.sample_and_rebalance(cycles_to_ticks(5_000), 0.99); // 9/7, gain pending
        l.set_lane_health(cycles_to_ticks(5_010), 8);
        // Proportional: 9/16 of 8 rounds to 5 (nearest), ingress 3.
        assert_eq!(l.lanes(LinkDirection::Egress), 5);
        assert_eq!(l.lanes(LinkDirection::Ingress), 3);
        // The abandoned gain never matures: rates already match the split.
        let far = cycles_to_ticks(1_000_000);
        l.apply_pending(far);
        assert_eq!(l.direction_rate(LinkDirection::Egress), 40);
    }

    #[test]
    fn retrain_window_blocks_both_directions() {
        let mut l = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        let t = cycles_to_ticks(100);
        l.retrain(t, cycles_to_ticks(400));
        // The next packet in either direction queues behind the window.
        let done = l.send(t, LinkDirection::Egress, 64);
        assert_eq!(done, t + cycles_to_ticks(400) + TICKS_PER_CYCLE);
        let done_i = l.send(t, LinkDirection::Ingress, 64);
        assert_eq!(done_i, t + cycles_to_ticks(400) + TICKS_PER_CYCLE);
    }

    #[test]
    fn availability_integral_tracks_health_changes() {
        let mut l = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        let t1 = cycles_to_ticks(100);
        let t2 = cycles_to_ticks(300);
        // Healthy for 100 cycles at 16 lanes, then 200 cycles at 8.
        l.set_lane_health(t1, 8);
        let avail = l.available_lane_ticks(t2);
        assert_eq!(avail, 16 * t1 + 8 * (t2 - t1));
        // No degradation ever: integral equals nominal.
        let l2 = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        assert_eq!(l2.available_lane_ticks(t2), 16 * t2);
    }

    #[test]
    fn stats_count_bytes_per_direction() {
        let mut l = GpuLink::new(&cfg(LinkMode::StaticSymmetric));
        l.send(0, LinkDirection::Egress, 128);
        l.send(0, LinkDirection::Egress, 16);
        l.send(0, LinkDirection::Ingress, 144);
        assert_eq!(l.stats().egress_bytes.get(), 144);
        assert_eq!(l.stats().ingress_bytes.get(), 144);
    }
}
