//! Switched inter-GPU interconnect with dynamic asymmetric lane allocation.
//!
//! Models the paper's §4 proposal: each GPU socket connects to a high
//! bandwidth switch through a link made of individually reversible lanes
//! (8 lanes × 8 GB/s per direction at kernel launch, Table 1). A link load
//! balancer samples directional saturation every `sample_time` cycles and
//! turns one lane around when one direction is ≥99% saturated while the
//! other has headroom — recovering up to 2× bandwidth for asymmetric
//! phases such as parallel reductions.
//!
//! # Examples
//!
//! ```
//! use numa_gpu_interconnect::{BalanceAction, LinkBalancer};
//!
//! // Egress saturated, ingress idle: steal one ingress lane.
//! let action = LinkBalancer::decide(true, false, 8, 8);
//! assert_eq!(action, BalanceAction::TurnTowardEgress);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod balancer;
mod link;
mod switch;
mod topology;

pub use balancer::{BalanceAction, LinkBalancer};
pub use link::{GpuLink, LinkDirection, LinkObs, LinkSample, LinkStats};
pub use switch::{switch_hop_latency, Switch};
pub use topology::{EdgeSpec, Hop, Node, Topology};
