//! The multi-socket switch fabric.

use crate::link::{GpuLink, LinkDirection};
use crate::BalanceAction;
use numa_gpu_types::{cycles_to_ticks, ConfigError, LinkConfig, SimError, SocketId, Tick};

/// The high-bandwidth switch connecting every GPU socket (Figure 1).
///
/// A socket-to-socket transfer traverses the source link's egress lanes,
/// the switch (half the one-way latency each side), and the destination
/// link's ingress lanes — so, as in the paper, a packet from GPU1 to GPU0
/// loads GPU1's egress *and* GPU0's ingress.
///
/// # Examples
///
/// ```
/// use numa_gpu_interconnect::Switch;
/// use numa_gpu_types::{LinkConfig, LinkMode, SocketId, ticks_to_cycles};
///
/// let cfg = LinkConfig {
///     lanes_per_direction: 8,
///     lane_bytes_per_cycle: 8,
///     latency_cycles: 128,
///     switch_time_cycles: 100,
///     sample_time_cycles: 5000,
///     mode: LinkMode::StaticSymmetric,
/// };
/// let mut sw = Switch::new(&cfg, 4).unwrap();
/// let arrive = sw.transfer(0, SocketId::new(1), SocketId::new(0), 128).unwrap();
/// assert!(ticks_to_cycles(arrive) >= 128); // at least the wire latency
/// ```
#[derive(Debug, Clone)]
pub struct Switch {
    links: Vec<GpuLink>,
    half_latency: Tick,
}

/// Half the one-way link latency in ticks for `config` — the earliest a
/// packet emitted by one socket can reach the switch boundary, and
/// therefore the conservative lookahead of the partitioned executor: no
/// cross-socket message can affect another partition sooner than this.
pub fn switch_hop_latency(config: &LinkConfig) -> Tick {
    cycles_to_ticks(config.latency_cycles as u64) / 2
}

impl Switch {
    /// Builds a switch with one link per socket.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `num_sockets` is zero — a fabric with
    /// no endpoints cannot route anything.
    pub fn new(config: &LinkConfig, num_sockets: u8) -> Result<Self, ConfigError> {
        if num_sockets == 0 {
            return Err(ConfigError::new("switch needs at least one socket"));
        }
        Ok(Switch {
            links: (0..num_sockets).map(|_| GpuLink::new(config)).collect(),
            half_latency: cycles_to_ticks(config.latency_cycles as u64) / 2,
        })
    }

    /// Number of attached sockets.
    pub fn num_sockets(&self) -> usize {
        self.links.len()
    }

    /// Half the one-way link latency in ticks — the time from clearing a
    /// source's egress lanes to reaching the switch (and again from the
    /// switch to the destination).
    pub fn half_latency(&self) -> Tick {
        self.half_latency
    }

    /// Transfers `bytes` from `from` to `to`; returns the arrival tick at
    /// the destination socket.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRoute`] when `from == to` (local traffic
    /// never crosses the switch) or a socket index is out of range.
    pub fn transfer(
        &mut self,
        now: Tick,
        from: SocketId,
        to: SocketId,
        bytes: u32,
    ) -> Result<Tick, SimError> {
        Ok(self.transfer_timed(now, from, to, bytes)?.1)
    }

    /// Like [`Self::transfer`] but also returns the tick at which the packet
    /// clears the source's egress lanes (used for store backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRoute`] when `from == to` or a socket
    /// index is out of range.
    pub fn transfer_timed(
        &mut self,
        now: Tick,
        from: SocketId,
        to: SocketId,
        bytes: u32,
    ) -> Result<(Tick, Tick), SimError> {
        if from == to {
            return Err(SimError::InvalidRoute {
                message: format!("local transfer {from}->{to} must not cross the switch"),
            });
        }
        let n = self.links.len();
        let out_of_range = |which: &str, s: SocketId| SimError::InvalidRoute {
            message: format!("{which} socket {s} out of range ({n} sockets)"),
        };
        let egress_clear = self
            .links
            .get_mut(from.index())
            .ok_or_else(|| out_of_range("source", from))?
            .send(now, LinkDirection::Egress, bytes);
        let at_switch = egress_clear + self.half_latency;
        let arrival = self
            .links
            .get_mut(to.index())
            .ok_or_else(|| out_of_range("destination", to))?
            .send(at_switch, LinkDirection::Ingress, bytes)
            + self.half_latency;
        Ok((egress_clear, arrival))
    }

    /// Immutable access to one socket's link.
    pub fn link(&self, socket: SocketId) -> &GpuLink {
        &self.links[socket.index()]
    }

    /// Mutable access to one socket's link (observability installation,
    /// etc.).
    pub fn link_mut(&mut self, socket: SocketId) -> &mut GpuLink {
        &mut self.links[socket.index()]
    }

    /// Captures every link's Fig-5 utilization point for the window ending
    /// at `now`, in socket order. Call immediately before
    /// [`Self::sample_and_rebalance_all`], which opens fresh windows.
    pub fn sample_points(&self, now: Tick) -> Vec<crate::link::LinkSample> {
        self.links.iter().map(|l| l.sample_point(now)).collect()
    }

    /// Runs one balancer sampling period on every link; returns the per-link
    /// actions. Link policy is per-GPU — the paper shows global policies
    /// fail to capture per-GPU phase behaviour.
    pub fn sample_and_rebalance_all(&mut self, now: Tick, threshold: f64) -> Vec<BalanceAction> {
        self.links
            .iter_mut()
            .map(|l| l.sample_and_rebalance(now, threshold))
            .collect()
    }

    /// Resets every link to the symmetric kernel-launch configuration.
    pub fn reset_symmetric_all(&mut self, now: Tick) {
        for l in &mut self.links {
            l.reset_symmetric(now);
        }
    }

    /// Total bytes moved across all links (each transfer counted once per
    /// link stage it traverses, i.e. twice end to end).
    pub fn total_bytes(&self) -> u64 {
        self.links
            .iter()
            .map(|l| l.stats().egress_bytes.get() + l.stats().ingress_bytes.get())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_gpu_types::{ticks_to_cycles, LinkMode, TICKS_PER_CYCLE};

    fn cfg() -> LinkConfig {
        LinkConfig {
            lanes_per_direction: 8,
            lane_bytes_per_cycle: 8,
            latency_cycles: 128,
            switch_time_cycles: 100,
            sample_time_cycles: 5_000,
            mode: LinkMode::StaticSymmetric,
        }
    }

    #[test]
    fn transfer_pays_latency_and_occupancy() {
        let mut sw = Switch::new(&cfg(), 4).unwrap();
        let arrive = sw
            .transfer(0, SocketId::new(0), SocketId::new(1), 128)
            .unwrap();
        // 2 cycles egress + 64 + 2 cycles ingress + 64 = 132 cycles.
        assert_eq!(ticks_to_cycles(arrive), 132);
    }

    #[test]
    fn transfer_loads_both_endpoint_links() {
        let mut sw = Switch::new(&cfg(), 2).unwrap();
        sw.transfer(0, SocketId::new(0), SocketId::new(1), 128)
            .unwrap();
        assert_eq!(sw.link(SocketId::new(0)).stats().egress_bytes.get(), 128);
        assert_eq!(sw.link(SocketId::new(1)).stats().ingress_bytes.get(), 128);
        assert_eq!(sw.link(SocketId::new(0)).stats().ingress_bytes.get(), 0);
        assert_eq!(sw.total_bytes(), 256);
    }

    #[test]
    fn independent_links_do_not_contend() {
        let mut sw = Switch::new(&cfg(), 4).unwrap();
        let a = sw
            .transfer(0, SocketId::new(0), SocketId::new(1), 640)
            .unwrap();
        let b = sw
            .transfer(0, SocketId::new(2), SocketId::new(3), 640)
            .unwrap();
        assert_eq!(a, b); // disjoint socket pairs, identical timing
    }

    #[test]
    fn same_source_transfers_serialize_on_egress() {
        let mut sw = Switch::new(&cfg(), 4).unwrap();
        let a = sw
            .transfer(0, SocketId::new(0), SocketId::new(1), 6400)
            .unwrap();
        let b = sw
            .transfer(0, SocketId::new(0), SocketId::new(2), 6400)
            .unwrap();
        assert!(b > a);
        assert!(b - a >= 100 * TICKS_PER_CYCLE); // 6400 B / 64 B-per-cycle
    }

    #[test]
    fn local_transfer_is_an_invalid_route() {
        let mut sw = Switch::new(&cfg(), 2).unwrap();
        let err = sw
            .transfer(0, SocketId::new(1), SocketId::new(1), 128)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidRoute { .. }));
        assert!(err.to_string().contains("local transfer"));
    }

    #[test]
    fn out_of_range_socket_is_an_invalid_route() {
        let mut sw = Switch::new(&cfg(), 2).unwrap();
        let err = sw
            .transfer(0, SocketId::new(0), SocketId::new(5), 128)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidRoute { .. }));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn zero_socket_switch_is_a_config_error() {
        assert!(Switch::new(&cfg(), 0).is_err());
    }

    #[test]
    fn rebalance_all_touches_every_link() {
        let mut sw = Switch::new(&cfg(), 4).unwrap();
        let actions = sw.sample_and_rebalance_all(cycles_to_ticks(5_000), 0.99);
        assert_eq!(actions.len(), 4);
    }

    #[test]
    fn reset_all_is_symmetric() {
        let mut sw = Switch::new(&cfg(), 2).unwrap();
        sw.reset_symmetric_all(0);
        for s in 0..2 {
            assert_eq!(sw.link(SocketId::new(s)).lanes(LinkDirection::Egress), 8);
        }
    }
}
