//! The link load balancer's pure decision function (§4).

/// Decision taken by one sampling period of the link load balancer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceAction {
    /// Reverse one ingress lane to serve egress traffic.
    TurnTowardEgress,
    /// Reverse one egress lane to serve ingress traffic.
    TurnTowardIngress,
    /// Both directions saturated in an asymmetric configuration: move one
    /// lane back toward symmetry ("encourage global bandwidth
    /// equalization").
    Equalize,
    /// No reconfiguration.
    Hold,
}

/// Stateless decision logic of the paper's link load balancer, split from
/// the timed link model so the policy is testable in isolation.
///
/// Rules (paper §4):
/// * If one direction's lanes are ≥99% saturated while the opposite
///   direction is not, reverse one unsaturated lane — unless that would
///   leave the donor direction with no lanes ("all but one lane").
/// * If both directions are saturated and the configuration is asymmetric,
///   reconfigure back toward symmetric.
/// * Otherwise hold.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkBalancer;

impl LinkBalancer {
    /// Decides the action for one sampling period.
    ///
    /// `egress_lanes` / `ingress_lanes` are the current lane counts;
    /// saturation flags come from windowed utilization measurements.
    pub fn decide(
        egress_saturated: bool,
        ingress_saturated: bool,
        egress_lanes: u8,
        ingress_lanes: u8,
    ) -> BalanceAction {
        match (egress_saturated, ingress_saturated) {
            (true, false) if ingress_lanes > 1 => BalanceAction::TurnTowardEgress,
            (false, true) if egress_lanes > 1 => BalanceAction::TurnTowardIngress,
            (true, true) if egress_lanes != ingress_lanes => BalanceAction::Equalize,
            _ => BalanceAction::Hold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steals_from_idle_ingress() {
        assert_eq!(
            LinkBalancer::decide(true, false, 8, 8),
            BalanceAction::TurnTowardEgress
        );
    }

    #[test]
    fn steals_from_idle_egress() {
        assert_eq!(
            LinkBalancer::decide(false, true, 8, 8),
            BalanceAction::TurnTowardIngress
        );
    }

    #[test]
    fn never_takes_last_lane() {
        assert_eq!(
            LinkBalancer::decide(true, false, 15, 1),
            BalanceAction::Hold
        );
        assert_eq!(
            LinkBalancer::decide(false, true, 1, 15),
            BalanceAction::Hold
        );
    }

    #[test]
    fn both_saturated_symmetric_holds() {
        assert_eq!(LinkBalancer::decide(true, true, 8, 8), BalanceAction::Hold);
    }

    #[test]
    fn both_saturated_asymmetric_equalizes() {
        assert_eq!(
            LinkBalancer::decide(true, true, 12, 4),
            BalanceAction::Equalize
        );
    }

    #[test]
    fn idle_link_holds() {
        assert_eq!(
            LinkBalancer::decide(false, false, 8, 8),
            BalanceAction::Hold
        );
        assert_eq!(
            LinkBalancer::decide(false, false, 2, 14),
            BalanceAction::Hold
        );
    }
}
