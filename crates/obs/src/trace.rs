//! Cycle-stamped structured event tracing.
//!
//! Model code emits [`TraceEvent`]s through a [`Tracer`], which forwards
//! them to a pluggable [`TraceSink`]. Two sinks ship in-tree: a bounded
//! [`RingBufferSink`] that keeps the most recent events in memory, and a
//! [`JsonLinesSink`] that accumulates one JSON object per line for
//! streaming to disk.

use numa_gpu_testkit::json::Json;

/// Chrome `trace_event` phase of an emitted event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A span with a duration (`ph: "X"`).
    Complete,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`).
    Counter,
}

impl TracePhase {
    /// The single-character Chrome `ph` code.
    pub fn code(self) -> &'static str {
        match self {
            TracePhase::Complete => "X",
            TracePhase::Instant => "i",
            TracePhase::Counter => "C",
        }
    }
}

/// A typed argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Short string (category, decision label, …).
    Str(String),
}

impl TraceValue {
    /// Converts to the in-tree [`Json`] value.
    pub fn to_json(&self) -> Json {
        match self {
            TraceValue::UInt(v) => Json::UInt(*v),
            TraceValue::Int(v) => Json::Int(*v),
            TraceValue::Float(v) => Json::Float(*v),
            TraceValue::Str(s) => Json::Str(s.clone()),
        }
    }
}

impl From<u64> for TraceValue {
    fn from(v: u64) -> Self {
        TraceValue::UInt(v)
    }
}

impl From<f64> for TraceValue {
    fn from(v: f64) -> Self {
        TraceValue::Float(v)
    }
}

impl From<&str> for TraceValue {
    fn from(v: &str) -> Self {
        TraceValue::Str(v.to_string())
    }
}

/// One structured, cycle-stamped trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (`"kernel"`, `"link.turn"`, `"l2.repartition"`, …).
    pub name: String,
    /// Category used for filtering in trace viewers.
    pub category: &'static str,
    /// Chrome phase this event maps to.
    pub phase: TracePhase,
    /// Start cycle of the event.
    pub cycle: u64,
    /// Duration in cycles (only meaningful for [`TracePhase::Complete`]).
    pub dur_cycles: u64,
    /// Track the event renders on (socket id, or a synthetic lane id).
    pub track: u32,
    /// Structured arguments, in insertion order.
    pub args: Vec<(&'static str, TraceValue)>,
}

impl TraceEvent {
    /// A point-in-time event on `track` at `cycle`.
    pub fn instant(
        name: impl Into<String>,
        category: &'static str,
        cycle: u64,
        track: u32,
    ) -> Self {
        TraceEvent {
            name: name.into(),
            category,
            phase: TracePhase::Instant,
            cycle,
            dur_cycles: 0,
            track,
            args: Vec::new(),
        }
    }

    /// A span covering `[cycle, cycle + dur_cycles)` on `track`.
    pub fn complete(
        name: impl Into<String>,
        category: &'static str,
        cycle: u64,
        dur_cycles: u64,
        track: u32,
    ) -> Self {
        TraceEvent {
            name: name.into(),
            category,
            phase: TracePhase::Complete,
            cycle,
            dur_cycles,
            track,
            args: Vec::new(),
        }
    }

    /// A counter sample at `cycle` on `track`; each arg becomes one series.
    pub fn counter(
        name: impl Into<String>,
        category: &'static str,
        cycle: u64,
        track: u32,
    ) -> Self {
        TraceEvent {
            name: name.into(),
            category,
            phase: TracePhase::Counter,
            cycle,
            dur_cycles: 0,
            track,
            args: Vec::new(),
        }
    }

    /// Attaches one argument (builder style).
    pub fn arg(mut self, key: &'static str, value: impl Into<TraceValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }
}

/// Destination for trace events.
///
/// Sinks must be deterministic: recording the same event sequence twice
/// must produce identical observable state.
///
/// # Examples
///
/// ```
/// use numa_gpu_obs::{RingBufferSink, TraceEvent, TraceSink};
///
/// let mut sink = RingBufferSink::new(2);
/// for cycle in 0..3 {
///     sink.record(TraceEvent::instant("tick", "engine", cycle, 0));
/// }
/// sink.finish();
///
/// // Capacity 2: the oldest event was dropped, newest two retained.
/// assert_eq!(sink.dropped(), 1);
/// let cycles: Vec<u64> = sink.events().map(|e| e.cycle).collect();
/// assert_eq!(cycles, [1, 2]);
/// ```
pub trait TraceSink {
    /// Accepts one event.
    fn record(&mut self, event: TraceEvent);

    /// Flushes any buffered state; called once when the run ends.
    fn finish(&mut self) {}

    /// Number of events this sink has discarded (capacity pressure).
    fn dropped(&self) -> u64 {
        0
    }
}

/// A bounded in-memory sink that keeps the most recent events.
#[derive(Debug, Default)]
pub struct RingBufferSink {
    capacity: usize,
    events: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
}

/// Largest event count [`RingBufferSink::new`] pre-allocates for. Callers
/// request "unbounded" retention as `usize::MAX`, so the pre-allocation
/// must be capped — reserving the requested capacity verbatim would abort
/// on allocation failure before the first event.
const RING_PREALLOC_MAX: usize = 4096;

impl RingBufferSink {
    /// A sink retaining at most `capacity` events (0 drops everything).
    ///
    /// Pre-allocates `min(capacity, 4096)` slots: a bounded ring reaches
    /// its steady state without reallocating on the record path, while an
    /// effectively unbounded request (`usize::MAX`) still starts small and
    /// grows with use.
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity,
            events: std::collections::VecDeque::with_capacity(capacity.min(RING_PREALLOC_MAX)),
            dropped: 0,
        }
    }

    /// Slots currently allocated by the backing buffer (≥ [`Self::len`]).
    /// Exposed so tests can pin the peak-allocation invariant: a bounded
    /// sink's backing storage must never grow past its initial
    /// pre-allocation, however many events stream through it.
    pub fn buffer_capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Drains the retained events, oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_iter().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A sink that encodes each event as one JSON object per line.
///
/// The accumulated text is newline-delimited JSON (`.jsonl`); every line
/// parses independently with `testkit::json`, and the encoding is
/// byte-stable for a given event sequence.
#[derive(Debug, Default)]
pub struct JsonLinesSink {
    out: String,
    lines: u64,
}

impl JsonLinesSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated newline-delimited JSON text.
    pub fn text(&self) -> &str {
        &self.out
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

/// Structured JSON encoding of one event (shared by the JSON-lines sink
/// and tests): name, cat, ph, cycle, dur, track, then args in order.
pub fn event_to_json(e: &TraceEvent) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::Str(e.name.clone())),
        ("cat".to_string(), Json::Str(e.category.to_string())),
        ("ph".to_string(), Json::Str(e.phase.code().to_string())),
        ("cycle".to_string(), Json::UInt(e.cycle)),
    ];
    if e.phase == TracePhase::Complete {
        fields.push(("dur".to_string(), Json::UInt(e.dur_cycles)));
    }
    fields.push(("track".to_string(), Json::UInt(u64::from(e.track))));
    if !e.args.is_empty() {
        fields.push((
            "args".to_string(),
            Json::Obj(
                e.args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_json()))
                    .collect(),
            ),
        ));
    }
    Json::Obj(fields)
}

impl TraceSink for JsonLinesSink {
    fn record(&mut self, event: TraceEvent) {
        self.out.push_str(&event_to_json(&event).to_string());
        self.out.push('\n');
        self.lines += 1;
    }
}

/// Front door model code emits through: holds the enabled sink, or
/// nothing, in which case every emit is a cheap no-op.
#[derive(Default)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
    emitted: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .field("emitted", &self.emitted)
            .finish()
    }
}

impl Tracer {
    /// A tracer that discards everything.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer forwarding to `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            sink: Some(sink),
            emitted: 0,
        }
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one event (no-op when disabled).
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = &mut self.sink {
            sink.record(event);
            self.emitted += 1;
        }
    }

    /// Events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Finishes the run and returns the sink, if any.
    pub fn finish(mut self) -> Option<Box<dyn TraceSink>> {
        if let Some(sink) = &mut self.sink {
            sink.finish();
        }
        self.sink.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_gpu_testkit::json::Json;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::instant("t", "test", cycle, 0)
    }

    #[test]
    fn ring_buffer_caps_and_counts_drops() {
        let mut sink = RingBufferSink::new(3);
        for c in 0..5 {
            sink.record(ev(c));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let cycles: Vec<u64> = sink.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, [2, 3, 4]);
        assert_eq!(sink.into_events().len(), 3);
    }

    /// Regression: the backing buffer of a bounded ring must hit its peak
    /// at construction time and stay there — recording must never grow it
    /// (the retained length never exceeds `capacity`, so steady-state
    /// record/evict cycles are allocation-free).
    #[test]
    fn ring_buffer_backing_storage_never_grows_past_prealloc() {
        let mut sink = RingBufferSink::new(100);
        let initial = sink.buffer_capacity();
        assert!(initial >= 100, "bounded ring pre-allocates its capacity");
        for c in 0..1_000 {
            sink.record(ev(c));
        }
        assert_eq!(sink.len(), 100);
        assert_eq!(sink.dropped(), 900);
        assert_eq!(
            sink.buffer_capacity(),
            initial,
            "recording must not reallocate a bounded ring"
        );
    }

    /// Regression: an "unbounded" sink is requested as `usize::MAX`
    /// capacity; pre-allocating that verbatim would abort immediately, so
    /// the pre-allocation must be capped and growth left to use.
    #[test]
    fn ring_buffer_unbounded_request_starts_small() {
        let sink = RingBufferSink::new(usize::MAX);
        assert!(sink.buffer_capacity() <= 8192);
        let mut sink = sink;
        for c in 0..10_000 {
            sink.record(ev(c));
        }
        assert_eq!(sink.len(), 10_000, "unbounded sink retains everything");
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn ring_buffer_zero_capacity_drops_all() {
        let mut sink = RingBufferSink::new(0);
        sink.record(ev(1));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn json_lines_each_line_parses() {
        let mut sink = JsonLinesSink::new();
        sink.record(TraceEvent::complete("span", "engine", 10, 5, 1).arg("bytes", 128u64));
        sink.record(TraceEvent::counter("util", "link", 20, 0).arg("egress", 0.5));
        assert_eq!(sink.lines(), 2);
        for line in sink.text().lines() {
            let parsed = Json::parse(line).expect("line parses");
            assert!(parsed.get("name").is_some());
            assert!(parsed.get("cycle").is_some());
        }
        let first = Json::parse(sink.text().lines().next().unwrap()).unwrap();
        assert_eq!(first.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(first.get("dur").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn json_lines_encoding_is_byte_stable() {
        let run = || {
            let mut sink = JsonLinesSink::new();
            sink.record(TraceEvent::instant("a", "x", 1, 0).arg("k", "v"));
            sink.record(TraceEvent::counter("b", "y", 2, 1).arg("n", 3u64));
            sink.text().to_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disabled_tracer_is_noop() {
        let mut t = Tracer::disabled();
        t.emit(ev(1));
        assert!(!t.is_enabled());
        assert_eq!(t.emitted(), 0);
        assert!(t.finish().is_none());
    }

    #[test]
    fn tracer_forwards_and_finishes() {
        let mut t = Tracer::new(Box::new(RingBufferSink::new(8)));
        t.emit(ev(1));
        t.emit(ev(2));
        assert!(t.is_enabled());
        assert_eq!(t.emitted(), 2);
        let sink = t.finish().expect("sink returned");
        assert_eq!(sink.dropped(), 0);
    }
}
