//! Structured observability for the numa-gpu simulator.
//!
//! The paper's mechanisms (§4 dynamic lane allocation, §5 cache
//! partitioning) are argued from *time-resolved* resource behaviour —
//! Fig. 5's link-utilization phases, Fig. 8's cache-pressure shifts — so
//! the simulator needs more than end-of-run aggregates. This crate is the
//! one uniform mechanism every model crate reports through:
//!
//! - [`MetricsRegistry`]: named counters, gauges, and power-of-two
//!   histograms that components register at build time and update through
//!   cheap shared handles ([`CounterHandle`], [`GaugeHandle`],
//!   [`HistogramHandle`]). Disabled handles are no-ops, so instrumentation
//!   can stay in the hot path unconditionally.
//! - [`TraceEvent`] + [`TraceSink`] + [`Tracer`]: a cycle-stamped
//!   structured event trace emitted from the engine's event loop and from
//!   lane-turn / repartition decision points. Ships a bounded
//!   [`RingBufferSink`] and a newline-delimited-JSON [`JsonLinesSink`].
//! - [`chrome_trace`]: export to Chrome `trace_event` JSON, loadable in
//!   `chrome://tracing` or Perfetto (1 viewer µs = 1 simulated cycle).
//! - [`ProfileReport`]: per-subsystem attribution of simulation work,
//!   assembled at report time from the simulator's own monotonic counters
//!   (the `--profile` plane). Timing-invariant by construction: it reads
//!   values that exist whether or not profiling is on.
//!
//! # Determinism
//!
//! Every output is byte-stable: snapshots list metrics in registration
//! order, trace export stable-sorts by start cycle, and all encoding goes
//! through `testkit::json`. Two runs with the same configuration and seed
//! produce identical bytes.
//!
//! # Example
//!
//! ```
//! use numa_gpu_obs::{chrome_trace, MetricsRegistry, RingBufferSink, TraceEvent, Tracer};
//!
//! // Components register metrics once and keep handles.
//! let mut reg = MetricsRegistry::new();
//! let stalls = reg.counter("sm.s0.issue_stalls");
//! stalls.add(3);
//!
//! // The engine emits cycle-stamped events through a tracer.
//! let mut tracer = Tracer::new(Box::new(RingBufferSink::new(1024)));
//! tracer.emit(TraceEvent::instant("link.turn", "interconnect", 500, 0));
//!
//! let sink = tracer.finish().unwrap();
//! assert_eq!(reg.snapshot().counter("sm.s0.issue_stalls"), Some(3));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod metrics;
pub mod profiler;
pub mod trace;

pub use chrome::{chrome_event_json, chrome_trace, TRACE_PID};
pub use metrics::{
    CounterHandle, GaugeHandle, HistogramHandle, HistogramSummary, MetricKind, MetricValue,
    MetricsRegistry, MetricsSnapshot,
};
pub use profiler::{ProfileReport, ProfileScope};
pub use trace::{
    event_to_json, JsonLinesSink, RingBufferSink, TraceEvent, TracePhase, TraceSink, TraceValue,
    Tracer,
};
