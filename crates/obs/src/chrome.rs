//! Chrome `trace_event` JSON export.
//!
//! Converts recorded [`TraceEvent`]s into the JSON Array Format consumed
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): an
//! object with a `traceEvents` array where each event carries `name`,
//! `cat`, `ph`, `ts`, `pid`, `tid` (and `dur` for complete events).
//!
//! One simulated cycle maps to one microsecond of viewer time, so the
//! viewer's time axis reads directly in cycles. Events are stable-sorted
//! by start cycle before export, which guarantees monotone `ts` even when
//! spans are emitted at their end (stamped with their start cycle).

use crate::trace::{TraceEvent, TracePhase};
use numa_gpu_testkit::json::Json;

/// Process id used for all exported events (one simulated GPU system).
pub const TRACE_PID: u64 = 1;

/// Converts one event to a Chrome `trace_event` object.
pub fn chrome_event_json(e: &TraceEvent) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::Str(e.name.clone())),
        ("cat".to_string(), Json::Str(e.category.to_string())),
        ("ph".to_string(), Json::Str(e.phase.code().to_string())),
        ("ts".to_string(), Json::UInt(e.cycle)),
        ("pid".to_string(), Json::UInt(TRACE_PID)),
        ("tid".to_string(), Json::UInt(u64::from(e.track))),
    ];
    match e.phase {
        TracePhase::Complete => fields.push(("dur".to_string(), Json::UInt(e.dur_cycles))),
        // Thread-scoped instants render as small arrows in the viewer.
        TracePhase::Instant => fields.push(("s".to_string(), Json::Str("t".to_string()))),
        TracePhase::Counter => {}
    }
    if !e.args.is_empty() {
        fields.push((
            "args".to_string(),
            Json::Obj(
                e.args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_json()))
                    .collect(),
            ),
        ));
    }
    Json::Obj(fields)
}

/// Builds the full Chrome trace document from recorded events.
///
/// Events are stable-sorted by start cycle (ties keep emission order), so
/// `ts` is monotone non-decreasing and the output is byte-stable for a
/// given event sequence.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| e.cycle);
    Json::obj([
        (
            "traceEvents",
            Json::Arr(ordered.iter().map(|e| chrome_event_json(e)).collect()),
        ),
        ("displayTimeUnit", Json::Str("ms".to_string())),
        (
            "otherData",
            Json::obj([("timeUnit", Json::Str("1 ts = 1 cycle".to_string()))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    #[test]
    fn events_sorted_monotone_by_ts() {
        let events = vec![
            TraceEvent::complete("late-emitted-span", "engine", 5, 10, 0),
            TraceEvent::instant("early", "engine", 2, 0),
            TraceEvent::counter("c", "link", 5, 1),
        ];
        let doc = chrome_trace(&events);
        let arr = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let ts: Vec<u64> = arr
            .iter()
            .map(|e| e.get("ts").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(ts, [2, 5, 5]);
        // Stable sort: the span emitted first stays ahead of the counter.
        assert_eq!(
            arr[1].get("name").and_then(Json::as_str),
            Some("late-emitted-span")
        );
    }

    #[test]
    fn phase_specific_fields() {
        let events = vec![
            TraceEvent::complete("x", "a", 0, 7, 0),
            TraceEvent::instant("i", "a", 1, 0),
            TraceEvent::counter("c", "a", 2, 0).arg("v", 3u64),
        ];
        let doc = chrome_trace(&events);
        let arr = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].get("dur").and_then(Json::as_u64), Some(7));
        assert_eq!(arr[1].get("s").and_then(Json::as_str), Some("t"));
        assert!(arr[2].get("dur").is_none());
        let args = arr[2].get("args").unwrap();
        assert_eq!(args.get("v").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn document_round_trips_through_parser() {
        let events = vec![TraceEvent::instant("i", "a", 1, 0)];
        let text = chrome_trace(&events).to_string();
        let parsed = Json::parse(&text).expect("chrome trace parses");
        assert!(parsed.get("traceEvents").and_then(Json::as_array).is_some());
        assert_eq!(text, chrome_trace(&events).to_string());
    }
}
