//! Self-profiling: per-subsystem attribution of simulation work.
//!
//! The profiler answers "where does a run's wall-clock go?" without a
//! sampling profiler and without perturbing the run. Instead of timing
//! anything, it collects the *monotonic work counters* the simulator
//! maintains anyway — events popped, calendar-queue path splits,
//! service-queue requests, cross-socket merges, allocations avoided by
//! buffer recycling — and attributes each to the subsystem that did the
//! work (`engine`, `sm`, `cache`, `mem`, `interconnect`).
//!
//! # Timing invariance
//!
//! Every counter is a pure function of the simulated event sequence, which
//! is deterministic by construction. Assembling a [`ProfileReport`] happens
//! once, at report time, from values that exist whether or not profiling is
//! enabled — so turning the profile on cannot change simulated timing, the
//! event order, or any other report field. No wall clocks are read
//! anywhere (the in-tree `simlint` D002 rule forbids `Instant` outside the
//! bench harness).
//!
//! # Reading a profile
//!
//! Counters are *work volumes*, not seconds. The leverage of an
//! optimization is proportional to the counter it shrinks times the
//! per-unit cost it removes; see DESIGN.md §13 for a worked walkthrough.
//!
//! # Example
//!
//! ```
//! use numa_gpu_obs::{ProfileReport, ProfileScope};
//!
//! let mut p = ProfileReport::new();
//! p.scope("engine")
//!     .count("events_popped", 1_000)
//!     .count("queue_bucket_pushes", 900);
//! p.scope("sm").count("warp_ops_issued", 640);
//! assert_eq!(p.get("engine", "events_popped"), Some(1_000));
//! let table = p.render_table();
//! assert!(table.contains("engine"));
//! assert!(table.contains("events_popped"));
//! ```

use crate::metrics::MetricsRegistry;
use numa_gpu_testkit::json::Json;

/// Work counters attributed to one subsystem.
///
/// Counters keep insertion order, so a scope's JSON encoding and rendered
/// table are byte-stable across identical runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileScope {
    /// Subsystem name (`engine`, `sm`, `cache`, `mem`, `interconnect`).
    pub name: String,
    /// `(counter, value)` pairs in insertion order.
    pub counters: Vec<(String, u64)>,
}

impl ProfileScope {
    /// Adds (or accumulates into) a named counter and returns `self` for
    /// chaining.
    pub fn count(&mut self, name: &str, value: u64) -> &mut Self {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = v.saturating_add(value),
            None => self.counters.push((name.to_string(), value)),
        }
        self
    }

    /// Sum of this scope's counters — the scope's share in the summary
    /// table. Counters measure different units of work, so the sum is a
    /// rough volume indicator, not a precise cost.
    pub fn total(&self) -> u64 {
        self.counters.iter().map(|(_, v)| *v).sum()
    }
}

/// A per-subsystem work-attribution profile, assembled at report time from
/// the simulator's own monotonic counters.
///
/// Scopes and counters keep insertion order; construction code must add
/// them in a fixed order so the encoding is byte-stable (the same
/// discipline as [`MetricsRegistry`] registration order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Attribution scopes in insertion order.
    pub scopes: Vec<ProfileScope>,
}

impl ProfileReport {
    /// Creates an empty profile.
    pub fn new() -> Self {
        ProfileReport { scopes: Vec::new() }
    }

    /// Returns the scope named `name`, creating it at the end if absent.
    pub fn scope(&mut self, name: &str) -> &mut ProfileScope {
        if let Some(i) = self.scopes.iter().position(|s| s.name == name) {
            &mut self.scopes[i]
        } else {
            self.scopes.push(ProfileScope {
                name: name.to_string(),
                counters: Vec::new(),
            });
            let last = self.scopes.len() - 1;
            &mut self.scopes[last]
        }
    }

    /// Looks up one counter value.
    pub fn get(&self, scope: &str, counter: &str) -> Option<u64> {
        self.scopes
            .iter()
            .find(|s| s.name == scope)?
            .counters
            .iter()
            .find(|(n, _)| n == counter)
            .map(|(_, v)| *v)
    }

    /// Publishes every counter into `registry` as `profile.<scope>.<name>`,
    /// so profiles ride along in metrics snapshots when both observability
    /// planes are enabled.
    pub fn publish(&self, registry: &mut MetricsRegistry) {
        for scope in &self.scopes {
            for (name, value) in &scope.counters {
                registry
                    .counter(&format!("profile.{}.{}", scope.name, name))
                    .add(*value);
            }
        }
    }

    /// Machine-readable form: `{"scopes": [{"name", "counters": {...}}]}`
    /// with scopes and counters in insertion order (byte-stable).
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "scopes",
            Json::Arr(
                self.scopes
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(s.name.clone())),
                            (
                                "counters".to_string(),
                                Json::Obj(
                                    s.counters
                                        .iter()
                                        .map(|(n, v)| (n.clone(), Json::UInt(*v)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// Renders the human summary table printed by `simulate --profile`:
    /// one header line per scope with its work-volume total, one indented
    /// line per counter.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "self-profile (work units, not seconds):");
        for scope in &self.scopes {
            let _ = writeln!(out, "  {:<14} {:>14}", scope.name, scope.total());
            for (name, value) in &scope.counters {
                let _ = writeln!(out, "    {:<24} {:>12}", name, value);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileReport {
        let mut p = ProfileReport::new();
        p.scope("engine")
            .count("events_popped", 10)
            .count("queue_bucket_pushes", 7);
        p.scope("mem").count("dram_requests", 3);
        p
    }

    #[test]
    fn counters_accumulate_and_keep_order() {
        let mut p = sample();
        p.scope("engine").count("events_popped", 5);
        assert_eq!(p.get("engine", "events_popped"), Some(15));
        let names: Vec<_> = p.scopes.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["engine", "mem"]);
        assert_eq!(p.scopes[0].total(), 22);
    }

    #[test]
    fn json_is_byte_stable_and_reparses() {
        let p = sample();
        let a = p.to_json().to_string();
        let b = p.to_json().to_string();
        assert_eq!(a, b);
        let parsed = Json::parse(&a).unwrap();
        let scopes = parsed.get("scopes").unwrap().as_array().unwrap();
        assert_eq!(scopes.len(), 2);
        assert_eq!(
            scopes[0]
                .get("counters")
                .unwrap()
                .get("events_popped")
                .unwrap()
                .as_u64(),
            Some(10)
        );
    }

    #[test]
    fn publish_exports_prefixed_counters() {
        let mut reg = MetricsRegistry::new();
        sample().publish(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("profile.engine.events_popped"), Some(10));
        assert_eq!(snap.counter("profile.mem.dram_requests"), Some(3));
    }

    #[test]
    fn table_lists_every_counter() {
        let table = sample().render_table();
        for needle in [
            "engine",
            "events_popped",
            "queue_bucket_pushes",
            "mem",
            "dram_requests",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn missing_lookups_are_none() {
        let p = sample();
        assert_eq!(p.get("engine", "nope"), None);
        assert_eq!(p.get("nope", "events_popped"), None);
    }
}
