//! Named metrics: counters, gauges, and power-of-two histograms.
//!
//! Components register their metrics once at build time and keep cheap
//! shared handles; the registry snapshots every metric in registration
//! order, so the snapshot (and its JSON encoding) is byte-stable across
//! identical runs.

use numa_gpu_testkit::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Kind of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// Last-set value (occupancy, way split, high-water mark).
    Gauge,
    /// Distribution over power-of-two buckets.
    Histogram,
}

/// A shared counter handle.
///
/// The default handle is *disabled*: every operation is a no-op, so model
/// code can increment unconditionally and pays one branch when
/// observability is off.
///
/// Handles are `Send + Sync` (atomic cells) so per-socket model state can
/// cross into the windowed executor's worker threads. Writes use relaxed
/// ordering: during a window each cell has a single writer, and the
/// barrier's thread join orders everything before the next read.
// simlint: shared(reason = "single writer per window; barrier join publishes before any read")
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Option<Arc<AtomicU64>>);

impl CounterHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        CounterHandle(None)
    }

    /// Whether this handle is backed by a registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` (saturating).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            let v = c.load(Ordering::Relaxed);
            c.store(v.saturating_add(n), Ordering::Relaxed);
        }
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (`0` when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A shared gauge handle (see [`CounterHandle`] for the disabled-default
/// contract).
// simlint: shared(reason = "single writer per window; barrier join publishes before any read")
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Option<Arc<AtomicU64>>);

impl GaugeHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        GaugeHandle(None)
    }

    /// Whether this handle is backed by a registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if it is below (high-water mark tracking).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if let Some(c) = &self.0 {
            let cur = c.load(Ordering::Relaxed);
            c.store(cur.max(v), Ordering::Relaxed);
        }
    }

    /// Current value (`0` when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Backing state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct HistogramData {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// `buckets[b]` counts samples with `floor(log2(v)) + 1 == b`
    /// (bucket 0 holds the zeros); grown on demand.
    buckets: Vec<u64>,
}

impl HistogramData {
    fn observe(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let b = bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
    }
}

/// Bucket index of `v`: 0 for 0, else `floor(log2(v)) + 1` — bucket `b`
/// covers `[2^(b-1), 2^b)`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// A shared histogram handle (see [`CounterHandle`] for the
/// disabled-default contract).
// simlint: shared(reason = "lock is only contended across windows, never within one; single writer per window")
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Mutex<HistogramData>>>);

impl HistogramHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        HistogramHandle(None)
    }

    /// Whether this handle is backed by a registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if a previous observer panicked while holding the histogram
    /// lock (poisoning; cannot happen in model code, which never panics
    /// mid-observation).
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.lock().expect("histogram lock poisoned").observe(v);
        }
    }

    /// Number of samples recorded (`0` when disabled).
    ///
    /// # Panics
    ///
    /// Panics if the histogram lock is poisoned (see [`Self::observe`]).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.lock().expect("histogram lock poisoned").count)
    }
}

enum MetricCell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Mutex<HistogramData>>),
}

impl MetricCell {
    fn kind(&self) -> MetricKind {
        match self {
            MetricCell::Counter(_) => MetricKind::Counter,
            MetricCell::Gauge(_) => MetricKind::Gauge,
            MetricCell::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A registry of named metrics.
///
/// Registration is idempotent: asking for the same name (and kind) again
/// returns a handle sharing the same cell, which is how e.g. all 64 SMs of
/// a socket aggregate into one per-socket counter. Snapshots list metrics
/// in first-registration order, making the encoding deterministic.
///
/// # Examples
///
/// ```
/// use numa_gpu_obs::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// let stalls = reg.counter("sm.s0.issue_stalls");
/// let occ = reg.histogram("sm.s0.mshr_occupancy");
/// stalls.inc();
/// stalls.add(2);
/// occ.observe(5);
///
/// // A second registration under the same name shares the same cell.
/// reg.counter("sm.s0.issue_stalls").add(1);
/// assert_eq!(stalls.get(), 4);
///
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("sm.s0.issue_stalls"), Some(4));
/// let json = snap.to_json().to_string();
/// assert!(json.starts_with("{\"sm.s0.issue_stalls\":4"));
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, MetricCell)>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.entries.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn find(&self, name: &str, kind: MetricKind) -> Option<&MetricCell> {
        let cell = self
            .entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)?;
        assert!(
            cell.kind() == kind,
            "metric `{name}` already registered as {:?}, requested {kind:?}",
            cell.kind()
        );
        Some(cell)
    }

    /// Registers (or re-attaches to) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn counter(&mut self, name: &str) -> CounterHandle {
        if let Some(MetricCell::Counter(c)) = self.find(name, MetricKind::Counter) {
            return CounterHandle(Some(c.clone()));
        }
        let cell = Arc::new(AtomicU64::new(0));
        self.entries
            .push((name.to_string(), MetricCell::Counter(cell.clone())));
        CounterHandle(Some(cell))
    }

    /// Registers (or re-attaches to) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn gauge(&mut self, name: &str) -> GaugeHandle {
        if let Some(MetricCell::Gauge(c)) = self.find(name, MetricKind::Gauge) {
            return GaugeHandle(Some(c.clone()));
        }
        let cell = Arc::new(AtomicU64::new(0));
        self.entries
            .push((name.to_string(), MetricCell::Gauge(cell.clone())));
        GaugeHandle(Some(cell))
    }

    /// Registers (or re-attaches to) a histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn histogram(&mut self, name: &str) -> HistogramHandle {
        if let Some(MetricCell::Histogram(h)) = self.find(name, MetricKind::Histogram) {
            return HistogramHandle(Some(h.clone()));
        }
        let cell = Arc::new(Mutex::new(HistogramData::default()));
        self.entries
            .push((name.to_string(), MetricCell::Histogram(cell.clone())));
        HistogramHandle(Some(cell))
    }

    /// Captures every metric's current value, in registration order.
    ///
    /// # Panics
    ///
    /// Panics if a histogram lock is poisoned (see
    /// [`HistogramHandle::observe`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .map(|(name, cell)| {
                    let value = match cell {
                        MetricCell::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                        MetricCell::Gauge(c) => MetricValue::Gauge(c.load(Ordering::Relaxed)),
                        MetricCell::Histogram(h) => {
                            let h = h.lock().expect("histogram lock poisoned");
                            MetricValue::Histogram(HistogramSummary {
                                count: h.count,
                                sum: h.sum,
                                min: h.min,
                                max: h.max,
                                buckets: h.buckets.clone(),
                            })
                        }
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// Point-in-time value of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`0` when empty).
    pub min: u64,
    /// Largest sample (`0` when empty).
    pub max: u64,
    /// Power-of-two bucket counts: `buckets[0]` holds zeros, `buckets[b]`
    /// holds samples in `[2^(b-1), 2^b)`.
    pub buckets: Vec<u64>,
}

/// An ordered, immutable capture of every registered metric.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in first-registration order.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter value by name (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name (`None` if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// JSON object keyed by metric name, in registration order — the
    /// encoding is byte-stable for identical runs.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(name, value)| {
                    let v = match value {
                        MetricValue::Counter(v) | MetricValue::Gauge(v) => Json::UInt(*v),
                        MetricValue::Histogram(h) => Json::obj([
                            ("count", Json::UInt(h.count)),
                            ("sum", Json::UInt(h.sum)),
                            ("min", Json::UInt(h.min)),
                            ("max", Json::UInt(h.max)),
                            (
                                "buckets",
                                Json::Arr(h.buckets.iter().map(|&b| Json::UInt(b)).collect()),
                            ),
                        ]),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let c = CounterHandle::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
        let g = GaugeHandle::disabled();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = HistogramHandle::disabled();
        h.observe(3);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn handles_are_send_and_sync() {
        // The windowed executor moves per-socket handle bundles into
        // scoped worker threads; losing these bounds would break it.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CounterHandle>();
        assert_send_sync::<GaugeHandle>();
        assert_send_sync::<HistogramHandle>();
        assert_send_sync::<MetricsRegistry>();
    }

    #[test]
    fn handles_share_cells_by_name() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let mut reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn gauge_set_max_tracks_high_water() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("hw");
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let MetricValue::Histogram(s) = snap.get("lat").unwrap() else {
            panic!("not a histogram");
        };
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[10], 1); // 1000 in [512, 1024)
    }

    #[test]
    fn snapshot_preserves_registration_order_and_is_stable() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z").add(1);
        reg.gauge("a").set(2);
        let s1 = reg.snapshot().to_json().to_string();
        let s2 = reg.snapshot().to_json().to_string();
        assert_eq!(s1, s2);
        assert_eq!(s1, r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let mut reg = MetricsRegistry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(8);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(7));
        assert_eq!(snap.gauge("g"), Some(8));
        assert_eq!(snap.counter("g"), None);
        assert!(snap.get("missing").is_none());
    }
}
