//! Property tests for the memory substrate.

use numa_gpu_mem::{Dram, PageTable};
use numa_gpu_testkit::gen::{bools, ints, pairs, triples, vecs};
use numa_gpu_testkit::{prop_assert, prop_assert_eq, prop_check};
use numa_gpu_types::{Addr, DramConfig, PagePlacement, SocketId, PAGE_SIZE, TICKS_PER_CYCLE};

prop_check! {
    /// Interleaved policies are pure functions of the address: the
    /// requester never influences the home.
    fn interleave_ignores_requester(
        addr in ints(0u64..1u64 << 34),
        reqs in vecs(ints(0u8..4), 2..8)
    ) {
        for policy in [PagePlacement::FineInterleave, PagePlacement::PageInterleave] {
            let mut pt = PageTable::new(policy, 4);
            let homes: Vec<_> = reqs
                .iter()
                .map(|r| pt.home_of_line(Addr::new(addr).line(), SocketId::new(r % 4)))
                .collect();
            prop_assert!(homes.windows(2).all(|w| w[0] == w[1]));
        }
    }

    /// First-touch distributes exactly one placement per page regardless of
    /// how many lines of the page are touched.
    fn one_placement_per_page(lines in vecs(pairs(ints(0u64..32), ints(0u8..4)), 1..200)) {
        let mut pt = PageTable::new(PagePlacement::FirstTouch, 4);
        let mut pages = std::collections::HashSet::new();
        for (line_in_page, r) in lines {
            // All addresses within page 7.
            let addr = 7 * PAGE_SIZE + line_in_page * 128;
            pt.home_of_line(Addr::new(addr).line(), SocketId::new(r % 4));
            pages.insert(7u64);
        }
        prop_assert_eq!(pt.stats().pages_placed.get() as usize, pages.len());
        prop_assert_eq!(pt.resident_pages(), pages.len());
    }

    /// Migration never yields an out-of-range home and migrates at most
    /// once per remote run reaching the threshold.
    fn migration_homes_in_range(
        threshold in ints(1u32..8),
        touches in vecs(ints(0u8..4), 1..100),
    ) {
        let mut pt = PageTable::new(
            PagePlacement::FirstTouchMigrate { migrate_threshold: threshold },
            4,
        );
        let line = Addr::new(0).line();
        for r in touches {
            let home = pt.home_of_line(line, SocketId::new(r % 4));
            prop_assert!(home.index() < 4);
        }
    }

    /// DRAM completions are FIFO and each includes at least the access
    /// latency; total bytes are conserved.
    fn dram_fifo_and_latency(
        reqs in vecs(triples(ints(0u64..1_000), ints(1u32..10_000), bools()), 1..100)
    ) {
        let cfg = DramConfig { bytes_per_cycle: 768, latency_cycles: 100 };
        let mut d = Dram::new(cfg);
        let mut now = 0;
        let mut last = 0;
        let mut bytes = 0u64;
        for (dt, b, write) in reqs {
            now += dt;
            let t = cycles_into_ticks(now);
            let done = if write { d.write(t, b) } else { d.read(t, b) };
            prop_assert!(done >= t + 100 * TICKS_PER_CYCLE);
            prop_assert!(done >= last);
            last = done;
            bytes += b as u64;
        }
        prop_assert_eq!(d.stats().bytes.get(), bytes);
    }
}

fn cycles_into_ticks(c: u64) -> u64 {
    c * TICKS_PER_CYCLE
}
