//! Memory-system substrate: NUMA page placement and DRAM timing.
//!
//! The paper (§3) studies three placement policies for the aggregated GPU
//! address space — fine-grained line interleaving, round-robin page
//! interleaving, and UVM-style first-touch — implemented here by
//! [`PageTable`]. Each socket's on-package HBM is modeled by [`Dram`] as a
//! bandwidth-limited FIFO plus fixed access latency (Table 1: 768 GB/s,
//! 100 ns).
//!
//! # Examples
//!
//! ```
//! use numa_gpu_mem::PageTable;
//! use numa_gpu_types::{Addr, PagePlacement, SocketId};
//!
//! let mut pt = PageTable::new(PagePlacement::FirstTouch, 4);
//! let home = pt.home_of_line(Addr::new(0x10_0000).line(), SocketId::new(2));
//! assert_eq!(home, SocketId::new(2)); // first toucher owns the page
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod dram;
mod page_table;

pub use dram::{Dram, DramObs, DramStats, NUM_BANKS, ROW_BYTES};
pub use page_table::{PageTable, PlacementStats};
