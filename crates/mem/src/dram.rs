//! Per-socket DRAM (on-package HBM) model.

use numa_gpu_engine::ServiceQueue;
use numa_gpu_obs::CounterHandle;
use numa_gpu_types::{cycles_to_ticks, Counter, DramConfig, LineAddr, Tick};

/// Row buffer size assumed by the open-row locality model, in bytes.
pub const ROW_BYTES: u64 = 8192;

/// Number of banks assumed by the open-row locality model.
pub const NUM_BANKS: usize = 16;

/// Observability handles for one DRAM, installed via [`Dram::set_obs`].
///
/// Row-locality accounting is stats-only: it classifies each addressed
/// access as a row-buffer hit or miss without changing the timing model.
/// Default handles are disabled no-ops.
#[derive(Debug, Clone, Default)]
pub struct DramObs {
    /// Addressed accesses that found their row open in the bank.
    pub row_hits: CounterHandle,
    /// Addressed accesses that had to open a new row.
    pub row_misses: CounterHandle,
}

/// DRAM access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read line transfers serviced.
    pub reads: Counter,
    /// Write line transfers serviced.
    pub writes: Counter,
    /// Total bytes moved.
    pub bytes: Counter,
}

/// One socket's high-bandwidth memory: a bandwidth-limited FIFO interface
/// plus a fixed access latency (Table 1: 768 GB/s, 100 ns).
///
/// # Examples
///
/// ```
/// use numa_gpu_mem::Dram;
/// use numa_gpu_types::{DramConfig, TICKS_PER_CYCLE};
///
/// let mut dram = Dram::new(DramConfig { bytes_per_cycle: 768, latency_cycles: 100 });
/// let done = dram.read(0, 128);
/// // occupancy (128/768 of a cycle, rounded up in ticks) + 100-cycle latency
/// assert!(done > 100 * TICKS_PER_CYCLE);
/// assert!(done < 101 * TICKS_PER_CYCLE);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    queue: ServiceQueue,
    latency: Tick,
    stats: DramStats,
    obs: DramObs,
    /// Open row per bank (stats-only open-row locality model).
    open_rows: [Option<u64>; NUM_BANKS],
    /// End of the current ECC-retry window (0 when healthy). Requests
    /// issued before this tick pay `ecc_penalty` extra latency.
    ecc_until: Tick,
    /// Extra per-access latency inside an ECC-retry window.
    ecc_penalty: Tick,
}

impl Dram {
    /// Creates a DRAM model from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configured bandwidth is zero.
    pub fn new(config: DramConfig) -> Self {
        Dram {
            queue: ServiceQueue::new(config.bytes_per_cycle),
            latency: cycles_to_ticks(config.latency_cycles as u64),
            stats: DramStats::default(),
            obs: DramObs::default(),
            open_rows: [None; NUM_BANKS],
            ecc_until: 0,
            ecc_penalty: 0,
        }
    }

    /// Installs observability handles (disabled no-op handles by default).
    pub fn set_obs(&mut self, obs: DramObs) {
        self.obs = obs;
    }

    /// Classifies an addressed access against the per-bank open rows.
    /// Purely observational: never affects timing.
    fn touch_row(&mut self, line: LineAddr) {
        let raw = line.base().raw();
        let bank = ((raw / ROW_BYTES) as usize) % NUM_BANKS;
        let row = raw / (ROW_BYTES * NUM_BANKS as u64);
        if self.open_rows[bank] == Some(row) {
            self.obs.row_hits.inc();
        } else {
            self.obs.row_misses.inc();
            self.open_rows[bank] = Some(row);
        }
    }

    /// Like [`Self::read`] but addressed, feeding the open-row locality
    /// model. Timing is identical to `read`.
    pub fn read_line(&mut self, now: Tick, line: LineAddr, bytes: u32) -> Tick {
        self.touch_row(line);
        self.read(now, bytes)
    }

    /// Like [`Self::write`] but addressed, feeding the open-row locality
    /// model. Timing is identical to `write`.
    pub fn write_line(&mut self, now: Tick, line: LineAddr, bytes: u32) -> Tick {
        self.touch_row(line);
        self.write(now, bytes)
    }

    /// Extra latency a request issued at `now` pays while an ECC-retry
    /// window is open (0 on a healthy DRAM, so the fault-free timing is
    /// bit-identical to a build without fault support).
    #[inline]
    fn ecc_extra(&self, now: Tick) -> Tick {
        if now < self.ecc_until {
            self.ecc_penalty
        } else {
            0
        }
    }

    /// Services a read of `bytes` at tick `now`; returns the tick the data
    /// is available (queueing + occupancy + access latency).
    pub fn read(&mut self, now: Tick, bytes: u32) -> Tick {
        self.stats.reads.inc();
        self.stats.bytes.add(bytes as u64);
        self.queue.service(now, bytes) + self.latency + self.ecc_extra(now)
    }

    /// Services a write of `bytes` at tick `now`; returns the tick the write
    /// is globally visible. Callers typically do not block on this.
    pub fn write(&mut self, now: Tick, bytes: u32) -> Tick {
        self.stats.writes.inc();
        self.stats.bytes.add(bytes as u64);
        self.queue.service(now, bytes) + self.latency + self.ecc_extra(now)
    }

    /// Injects a fault: the interface is held busy for `window` ticks
    /// starting at `now` (requests queue behind the stall), and requests
    /// issued before the window closes pay `retry_penalty` extra latency —
    /// the ECC scrub-and-retry model.
    pub fn stall(&mut self, now: Tick, window: Tick, retry_penalty: Tick) {
        self.queue.add_busy(now, window);
        self.ecc_until = self.ecc_until.max(now + window);
        self.ecc_penalty = retry_penalty;
    }

    /// Starts a fresh utilization window (for the NUMA-aware cache
    /// controller's local-DRAM-saturation input).
    pub fn begin_window(&mut self, now: Tick) {
        self.queue.begin_window(now);
    }

    /// Whether the DRAM interface is saturated in the current window.
    pub fn is_saturated(&self, now: Tick, threshold: f64) -> bool {
        self.queue.is_saturated(now, threshold)
    }

    /// Windowed utilization in `[0, 1]`.
    pub fn window_utilization(&self, now: Tick) -> f64 {
        self.queue.window_utilization(now)
    }

    /// Total busy ticks since construction.
    pub fn total_busy(&self) -> Tick {
        self.queue.total_busy()
    }

    /// Access statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_gpu_types::TICKS_PER_CYCLE;

    fn dram() -> Dram {
        Dram::new(DramConfig {
            bytes_per_cycle: 768,
            latency_cycles: 100,
        })
    }

    #[test]
    fn read_includes_latency() {
        let mut d = dram();
        let done = d.read(0, 128);
        assert_eq!(done, 171 + 100 * TICKS_PER_CYCLE);
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let mut d = dram();
        // 6 lines/cycle at 768 B/cycle; the 12th line finishes ~2 cycles in.
        let mut last = 0;
        for _ in 0..12 {
            last = d.read(0, 128);
        }
        let occupancy = last - 100 * TICKS_PER_CYCLE;
        assert!(occupancy >= 2 * TICKS_PER_CYCLE, "occupancy {occupancy}");
        assert!(occupancy < 3 * TICKS_PER_CYCLE);
    }

    #[test]
    fn writes_share_the_interface() {
        let mut d = dram();
        let r = d.read(0, 768);
        let w = d.write(0, 768);
        assert_eq!(w - r, TICKS_PER_CYCLE);
    }

    #[test]
    fn stats_track_reads_writes_bytes() {
        let mut d = dram();
        d.read(0, 128);
        d.write(0, 128);
        d.write(0, 16);
        let s = d.stats();
        assert_eq!(s.reads.get(), 1);
        assert_eq!(s.writes.get(), 2);
        assert_eq!(s.bytes.get(), 272);
    }

    #[test]
    fn row_model_classifies_hits_and_misses() {
        use numa_gpu_obs::MetricsRegistry;

        let mut reg = MetricsRegistry::new();
        let mut d = dram();
        d.set_obs(DramObs {
            row_hits: reg.counter("dram.row_hits"),
            row_misses: reg.counter("dram.row_misses"),
        });
        let line = |raw: u64| numa_gpu_types::Addr::new(raw).line();
        // Two lines in the same 8 KiB row: miss (opens row) then hit.
        d.read_line(0, line(0), 128);
        d.read_line(0, line(128), 128);
        // A line one row further in the same bank: closes the first row.
        d.read_line(0, line(ROW_BYTES * NUM_BANKS as u64), 128);
        // Back to the original row: miss again.
        d.write_line(0, line(256), 128);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("dram.row_hits"), Some(1));
        assert_eq!(snap.counter("dram.row_misses"), Some(3));
        // Distinct banks never conflict.
        d.read_line(0, line(ROW_BYTES), 128); // bank 1
        d.read_line(0, line(ROW_BYTES + 128), 128);
        assert_eq!(reg.snapshot().counter("dram.row_hits"), Some(2));
    }

    #[test]
    fn addressed_accesses_match_plain_timing() {
        let mut a = dram();
        let mut b = dram();
        let t1 = a.read(0, 128);
        let t2 = b.read_line(0, numa_gpu_types::Addr::new(0).line(), 128);
        assert_eq!(t1, t2);
        let t3 = a.write(t1, 128);
        let t4 = b.write_line(t1, numa_gpu_types::Addr::new(4096).line(), 128);
        assert_eq!(t3, t4);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn saturation_detected_under_backlog() {
        let mut d = dram();
        d.begin_window(0);
        for _ in 0..10_000 {
            d.read(0, 128);
        }
        assert!(d.is_saturated(TICKS_PER_CYCLE, 0.99));
        assert_eq!(d.window_utilization(TICKS_PER_CYCLE), 1.0);
    }

    #[test]
    fn stall_queues_requests_and_applies_ecc_penalty() {
        let mut d = dram();
        let healthy = dram().read(0, 128);
        let window = 50 * TICKS_PER_CYCLE;
        let penalty = 20 * TICKS_PER_CYCLE;
        d.stall(0, window, penalty);
        // Inside the window: queued behind the stall plus the retry penalty.
        let done = d.read(0, 128);
        assert_eq!(done, healthy + window + penalty);
        // After the window closes the penalty disappears.
        let t = 2 * window;
        let late = d.read(t, 128);
        let fresh = dram().read(t, 128);
        assert_eq!(late, fresh);
    }

    #[test]
    fn unstalled_dram_timing_is_unchanged() {
        // The ECC fields default to zero: a healthy DRAM's arithmetic is
        // exactly the pre-fault model.
        let mut d = dram();
        assert_eq!(d.read(0, 128), 171 + 100 * TICKS_PER_CYCLE);
        assert_eq!(d.ecc_extra(12345), 0);
    }

    #[test]
    fn idle_dram_not_saturated() {
        let mut d = dram();
        d.begin_window(0);
        d.read(0, 128);
        assert!(!d.is_saturated(1_000 * TICKS_PER_CYCLE, 0.99));
    }
}
