//! NUMA page placement policies (paper §3).

use numa_gpu_types::{Counter, LineAddr, PageId, PagePlacement, SocketId};
use std::collections::BTreeMap;

/// Per-page migration bookkeeping for
/// [`PagePlacement::FirstTouchMigrate`].
#[derive(Debug, Clone, Copy, Default)]
struct MigrationState {
    /// Socket issuing the current run of remote accesses.
    contender: Option<SocketId>,
    /// Length of that run.
    run: u32,
}

/// Statistics gathered by the placement layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// Pages placed by first-touch.
    pub pages_placed: Counter,
    /// Line-home lookups answered.
    pub lookups: Counter,
    /// Pages migrated (only under `FirstTouchMigrate`).
    pub pages_migrated: Counter,
}

/// Maps cache lines to their home socket under one of the paper's three
/// placement policies.
///
/// * [`PagePlacement::FineInterleave`] — line-granular modulo interleaving,
///   the traditional single-GPU policy: in an `N`-socket system `(N-1)/N` of
///   all traffic is remote.
/// * [`PagePlacement::PageInterleave`] — round-robin by page index (the
///   Linux `interleave` NUMA policy). Load balanced, still mostly remote.
/// * [`PagePlacement::FirstTouch`] — UVM-style: the first socket to touch a
///   page becomes its home; pages never move afterwards (§3: "after which
///   pages are not dynamically moved between GPUs").
///
/// # Examples
///
/// ```
/// use numa_gpu_mem::PageTable;
/// use numa_gpu_types::{Addr, PagePlacement, SocketId};
///
/// let mut pt = PageTable::new(PagePlacement::FineInterleave, 4);
/// let l0 = Addr::new(0).line();
/// let l1 = Addr::new(128).line();
/// assert_eq!(pt.home_of_line(l0, SocketId::new(0)).index(), 0);
/// assert_eq!(pt.home_of_line(l1, SocketId::new(0)).index(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    policy: PagePlacement,
    num_sockets: u8,
    first_touch: BTreeMap<PageId, SocketId>,
    migration: BTreeMap<PageId, MigrationState>,
    stats: PlacementStats,
}

impl PageTable {
    /// Creates a page table for `num_sockets` sockets under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `num_sockets` is zero.
    pub fn new(policy: PagePlacement, num_sockets: u8) -> Self {
        assert!(num_sockets > 0, "num_sockets must be nonzero");
        PageTable {
            policy,
            num_sockets,
            first_touch: BTreeMap::new(),
            migration: BTreeMap::new(),
            stats: PlacementStats::default(),
        }
    }

    /// Policy in force.
    #[inline]
    pub fn policy(&self) -> PagePlacement {
        self.policy
    }

    /// Resolves the home socket of `line` for an access issued by
    /// `requester`. Under first-touch this may *place* the page; under
    /// [`PagePlacement::FirstTouchMigrate`] it may also *move* it after a
    /// run of remote accesses.
    pub fn home_of_line(&mut self, line: LineAddr, requester: SocketId) -> SocketId {
        self.stats.lookups.inc();
        let n = self.num_sockets as u64;
        match self.policy {
            PagePlacement::FineInterleave => SocketId::new((line.raw() % n) as u8),
            PagePlacement::PageInterleave => SocketId::new((line.page().index() % n) as u8),
            PagePlacement::FirstTouch => self.first_touch_home(line.page(), requester),
            PagePlacement::FirstTouchMigrate { migrate_threshold } => {
                let home = self.first_touch_home(line.page(), requester);
                if home == requester {
                    // A local access resets any remote run.
                    self.migration.remove(&line.page());
                    return home;
                }
                let st = self.migration.entry(line.page()).or_default();
                if st.contender == Some(requester) {
                    st.run += 1;
                } else {
                    *st = MigrationState {
                        contender: Some(requester),
                        run: 1,
                    };
                }
                if st.run >= migrate_threshold.max(1) {
                    self.migration.remove(&line.page());
                    self.first_touch.insert(line.page(), requester);
                    self.stats.pages_migrated.inc();
                    return requester;
                }
                home
            }
        }
    }

    fn first_touch_home(&mut self, page: PageId, requester: SocketId) -> SocketId {
        let stats = &mut self.stats;
        *self.first_touch.entry(page).or_insert_with(|| {
            stats.pages_placed.inc();
            requester
        })
    }

    /// Resolves `line`'s home without placing anything: `Some` when the
    /// home is computable or already recorded, `None` when the line's page
    /// is unplaced first-touch territory. Unlike [`Self::peek_page`] this
    /// answers for every policy (fine interleaving is sub-page, so the
    /// page-granular peek cannot).
    ///
    /// This is the read-only lookup the partitioned executor uses inside a
    /// window, where the table is shared immutably across partitions; a
    /// `None` becomes a first-touch *claim*, committed at the barrier via
    /// [`Self::commit_claim`].
    pub fn peek_line(&self, line: LineAddr) -> Option<SocketId> {
        match self.policy {
            PagePlacement::FineInterleave => {
                Some(SocketId::new((line.raw() % self.num_sockets as u64) as u8))
            }
            _ => self.peek_page(line.page()),
        }
    }

    /// Records a first-touch placement decided outside the table (the
    /// partitioned executor resolves same-window claim races
    /// deterministically at the barrier, then commits each winner here).
    /// A page that is already placed keeps its home — commits are
    /// first-wins, exactly like [`Self::home_of_line`] under first-touch.
    /// No-op for the computed (interleaved) policies.
    pub fn commit_claim(&mut self, page: PageId, socket: SocketId) {
        match self.policy {
            PagePlacement::FirstTouch | PagePlacement::FirstTouchMigrate { .. } => {
                let stats = &mut self.stats;
                self.first_touch.entry(page).or_insert_with(|| {
                    stats.pages_placed.inc();
                    socket
                });
            }
            PagePlacement::FineInterleave | PagePlacement::PageInterleave => {}
        }
    }

    /// Accounts for `n` home lookups answered outside [`Self::home_of_line`]
    /// (the partitioned executor resolves homes through [`Self::peek_line`]
    /// against a shared borrow and folds its counts in at the barrier).
    pub fn note_lookups(&mut self, n: u64) {
        self.stats.lookups.add(n);
    }

    /// Looks up a page's current home without placing it.
    pub fn peek_page(&self, page: PageId) -> Option<SocketId> {
        let n = self.num_sockets as u64;
        match self.policy {
            PagePlacement::FineInterleave => None, // sub-page granularity
            PagePlacement::PageInterleave => Some(SocketId::new((page.index() % n) as u8)),
            PagePlacement::FirstTouch | PagePlacement::FirstTouchMigrate { .. } => {
                self.first_touch.get(&page).copied()
            }
        }
    }

    /// Number of pages placed so far (first-touch only; interleaved policies
    /// report zero because placement is computed, not recorded).
    pub fn resident_pages(&self) -> usize {
        self.first_touch.len()
    }

    /// All recorded first-touch placements in ascending page order. The
    /// order depends only on the set of placed pages — never on the order
    /// the placements happened — so snapshots built from it are stable
    /// across runs and thread schedules.
    pub fn placements(&self) -> impl Iterator<Item = (PageId, SocketId)> + '_ {
        self.first_touch.iter().map(|(p, s)| (*p, *s))
    }

    /// Placement statistics.
    pub fn stats(&self) -> PlacementStats {
        self.stats
    }

    /// Drops all first-touch placements (used between independent workload
    /// runs sharing a system instance).
    pub fn reset(&mut self) {
        self.first_touch.clear();
        self.migration.clear();
        self.stats = PlacementStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_gpu_types::{Addr, PAGE_SIZE};

    fn line(addr: u64) -> LineAddr {
        Addr::new(addr).line()
    }

    #[test]
    fn fine_interleave_rotates_per_line() {
        let mut pt = PageTable::new(PagePlacement::FineInterleave, 4);
        let homes: Vec<_> = (0..8)
            .map(|i| pt.home_of_line(line(i * 128), SocketId::new(0)).index())
            .collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn fine_interleave_75pct_remote_on_4_sockets() {
        let mut pt = PageTable::new(PagePlacement::FineInterleave, 4);
        let me = SocketId::new(1);
        let remote = (0..1000)
            .filter(|i| pt.home_of_line(line(i * 128), me) != me)
            .count();
        assert_eq!(remote, 750);
    }

    #[test]
    fn page_interleave_constant_within_page() {
        let mut pt = PageTable::new(PagePlacement::PageInterleave, 4);
        let me = SocketId::new(0);
        let h0 = pt.home_of_line(line(0), me);
        let h1 = pt.home_of_line(line(PAGE_SIZE - 128), me);
        assert_eq!(h0, h1);
        let h2 = pt.home_of_line(line(PAGE_SIZE), me);
        assert_eq!(h2.index(), (h0.index() + 1) % 4);
    }

    #[test]
    fn first_touch_sticks_to_first_requester() {
        let mut pt = PageTable::new(PagePlacement::FirstTouch, 4);
        let l = line(5 * PAGE_SIZE);
        assert_eq!(pt.home_of_line(l, SocketId::new(3)), SocketId::new(3));
        // A later touch by another socket does not move the page.
        assert_eq!(pt.home_of_line(l, SocketId::new(1)), SocketId::new(3));
        assert_eq!(pt.resident_pages(), 1);
        assert_eq!(pt.stats().pages_placed.get(), 1);
    }

    #[test]
    fn first_touch_distinguishes_pages() {
        let mut pt = PageTable::new(PagePlacement::FirstTouch, 2);
        pt.home_of_line(line(0), SocketId::new(0));
        pt.home_of_line(line(PAGE_SIZE), SocketId::new(1));
        assert_eq!(pt.peek_page(PageId::from_index(0)), Some(SocketId::new(0)));
        assert_eq!(pt.peek_page(PageId::from_index(1)), Some(SocketId::new(1)));
        assert_eq!(pt.peek_page(PageId::from_index(2)), None);
    }

    #[test]
    fn single_socket_everything_local() {
        for policy in [
            PagePlacement::FineInterleave,
            PagePlacement::PageInterleave,
            PagePlacement::FirstTouch,
        ] {
            let mut pt = PageTable::new(policy, 1);
            for i in 0..64 {
                assert_eq!(
                    pt.home_of_line(line(i * 12345), SocketId::new(0)),
                    SocketId::new(0)
                );
            }
        }
    }

    #[test]
    fn peek_line_answers_every_policy() {
        let fine = PageTable::new(PagePlacement::FineInterleave, 4);
        assert_eq!(fine.peek_line(line(128)), Some(SocketId::new(1)));
        assert_eq!(fine.peek_page(PageId::from_index(0)), None);

        let page = PageTable::new(PagePlacement::PageInterleave, 4);
        assert_eq!(page.peek_line(line(PAGE_SIZE)), Some(SocketId::new(1)));

        let mut ft = PageTable::new(PagePlacement::FirstTouch, 4);
        assert_eq!(ft.peek_line(line(0)), None);
        ft.home_of_line(line(0), SocketId::new(2));
        assert_eq!(ft.peek_line(line(0)), Some(SocketId::new(2)));
    }

    #[test]
    fn commit_claim_is_first_wins_and_counted() {
        let mut pt = PageTable::new(PagePlacement::FirstTouch, 4);
        pt.commit_claim(PageId::from_index(3), SocketId::new(1));
        pt.commit_claim(PageId::from_index(3), SocketId::new(2)); // loser
        assert_eq!(pt.peek_page(PageId::from_index(3)), Some(SocketId::new(1)));
        assert_eq!(pt.stats().pages_placed.get(), 1);
        // And home_of_line agrees with the committed claim.
        assert_eq!(
            pt.home_of_line(line(3 * PAGE_SIZE), SocketId::new(0)),
            SocketId::new(1)
        );
    }

    #[test]
    fn commit_claim_noop_for_computed_policies() {
        let mut pt = PageTable::new(PagePlacement::FineInterleave, 4);
        pt.commit_claim(PageId::from_index(0), SocketId::new(3));
        assert_eq!(pt.resident_pages(), 0);
        assert_eq!(pt.stats().pages_placed.get(), 0);
    }

    #[test]
    fn note_lookups_folds_into_stats() {
        let mut pt = PageTable::new(PagePlacement::FirstTouch, 2);
        pt.note_lookups(7);
        pt.home_of_line(line(0), SocketId::new(0));
        assert_eq!(pt.stats().lookups.get(), 8);
    }

    #[test]
    fn reset_clears_placements() {
        let mut pt = PageTable::new(PagePlacement::FirstTouch, 2);
        pt.home_of_line(line(0), SocketId::new(1));
        pt.reset();
        assert_eq!(pt.resident_pages(), 0);
        assert_eq!(pt.home_of_line(line(0), SocketId::new(0)), SocketId::new(0));
    }

    #[test]
    fn lookups_counted() {
        let mut pt = PageTable::new(PagePlacement::PageInterleave, 2);
        for i in 0..5 {
            pt.home_of_line(line(i), SocketId::new(0));
        }
        assert_eq!(pt.stats().lookups.get(), 5);
    }

    #[test]
    #[should_panic(expected = "num_sockets must be nonzero")]
    fn zero_sockets_panics() {
        let _ = PageTable::new(PagePlacement::FirstTouch, 0);
    }

    #[test]
    fn migration_moves_page_after_threshold() {
        let mut pt = PageTable::new(
            PagePlacement::FirstTouchMigrate {
                migrate_threshold: 3,
            },
            4,
        );
        let l = line(0);
        assert_eq!(pt.home_of_line(l, SocketId::new(0)), SocketId::new(0));
        // Two remote touches: not yet migrated.
        assert_eq!(pt.home_of_line(l, SocketId::new(2)), SocketId::new(0));
        assert_eq!(pt.home_of_line(l, SocketId::new(2)), SocketId::new(0));
        // Third consecutive remote touch from the same socket migrates.
        assert_eq!(pt.home_of_line(l, SocketId::new(2)), SocketId::new(2));
        assert_eq!(pt.peek_page(PageId::from_index(0)), Some(SocketId::new(2)));
        assert_eq!(pt.stats().pages_migrated.get(), 1);
    }

    #[test]
    fn migration_run_resets_on_local_or_different_remote() {
        let mut pt = PageTable::new(
            PagePlacement::FirstTouchMigrate {
                migrate_threshold: 2,
            },
            4,
        );
        let l = line(0);
        pt.home_of_line(l, SocketId::new(0)); // place on 0
        pt.home_of_line(l, SocketId::new(1)); // run(1)=1
        pt.home_of_line(l, SocketId::new(2)); // run(2)=1 (reset)
        pt.home_of_line(l, SocketId::new(0)); // local access resets
        pt.home_of_line(l, SocketId::new(2)); // run(2)=1 again
        assert_eq!(pt.home_of_line(l, SocketId::new(2)), SocketId::new(2));
        assert_eq!(pt.stats().pages_migrated.get(), 1);
    }

    #[test]
    fn placements_enumerate_in_page_order_regardless_of_touch_order() {
        // Touch the same pages in two different orders; the placement
        // snapshot must come out identical. This is the determinism
        // property the BTreeMap backing guarantees (simlint rule D001) —
        // a hash map would enumerate these in a process-varying order.
        let touch = |order: &[u64]| {
            let mut pt = PageTable::new(PagePlacement::FirstTouch, 4);
            for &page in order {
                pt.home_of_line(line(page * PAGE_SIZE), SocketId::new((page % 4) as u8));
            }
            pt.placements().collect::<Vec<_>>()
        };
        let a = touch(&[7, 2, 9, 0, 4, 11, 3]);
        let b = touch(&[3, 11, 0, 9, 4, 2, 7]);
        assert_eq!(a, b);
        let pages: Vec<u64> = a.iter().map(|(p, _)| p.index()).collect();
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        assert_eq!(pages, sorted, "placements must enumerate in page order");
    }

    #[test]
    fn migration_threshold_zero_clamps_to_one() {
        let mut pt = PageTable::new(
            PagePlacement::FirstTouchMigrate {
                migrate_threshold: 0,
            },
            2,
        );
        let l = line(0);
        pt.home_of_line(l, SocketId::new(0));
        // A single remote touch migrates immediately.
        assert_eq!(pt.home_of_line(l, SocketId::new(1)), SocketId::new(1));
    }
}
