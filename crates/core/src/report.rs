//! Simulation reports.

use numa_gpu_cache::CacheStats;
use numa_gpu_faults::ResilienceReport;
use numa_gpu_interconnect::LinkSample;
use numa_gpu_obs::{chrome_trace, MetricsSnapshot, ProfileReport, TraceEvent};
use numa_gpu_testkit::json::Json;

/// Per-socket results of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SocketReport {
    /// Bytes this socket sent toward the switch.
    pub egress_bytes: u64,
    /// Bytes this socket received from the switch.
    pub ingress_bytes: u64,
    /// Bytes moved through this socket's DRAM interface.
    pub dram_bytes: u64,
    /// L2 statistics.
    pub l2: CacheStats,
    /// Lane reversals performed on this socket's link.
    pub lane_turns: u64,
    /// Equalization steps performed on this socket's link.
    pub equalizations: u64,
    /// Final L2 way split (local ways, remote ways) when partitioned.
    pub l2_partition: Option<(u16, u16)>,
}

/// Complete result of simulating one workload on one configuration.
///
/// Speedups between configurations are ratios of [`SimReport::total_cycles`]
/// ([`SimReport::speedup_over`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// Total execution time of the region of interest, in GPU cycles.
    pub total_cycles: u64,
    /// Per-kernel execution cycles, in launch order.
    pub kernel_cycles: Vec<u64>,
    /// Cycle at which each kernel launched (for Fig-5-style timelines).
    pub kernel_start_cycles: Vec<u64>,
    /// Per-socket breakdowns.
    pub sockets: Vec<SocketReport>,
    /// Per-socket link utilization timelines (empty unless recording was
    /// enabled).
    pub link_timelines: Vec<Vec<LinkSample>>,
    /// Aggregated L1 statistics over every SM.
    pub l1: CacheStats,
    /// Fraction of read accesses whose home was a remote socket.
    pub remote_read_fraction: f64,
    /// End-to-end bytes transported over the switch (each packet counted
    /// once).
    pub interconnect_bytes: u64,
    /// Average interconnect power in watts under the §6 energy model.
    pub link_power_w: f64,
    /// End-of-run metrics snapshot (`None` unless `SystemConfig::obs.metrics`
    /// was set).
    pub metrics: Option<MetricsSnapshot>,
    /// Structured trace events recorded during the run (empty unless
    /// `SystemConfig::obs.trace` was set). Export with
    /// [`SimReport::chrome_trace`].
    pub trace_events: Vec<TraceEvent>,
    /// Fault timeline and resilience metrics (`None` unless a non-empty
    /// fault plan was installed, so fault-free reports are unchanged).
    pub resilience: Option<ResilienceReport>,
    /// Per-subsystem work attribution (`None` unless
    /// `SystemConfig::obs.profile` was set). Assembled at report time from
    /// monotonic counters, so enabling it never changes any other field.
    pub profile: Option<ProfileReport>,
}

impl std::fmt::Display for SimReport {
    /// One-line human summary: cycles, remote fraction, link traffic/power.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} cycles over {} kernels, {:.0}% reads remote, {} MiB over links ({:.1} W), {} lane turns",
            self.workload,
            self.total_cycles,
            self.kernel_cycles.len(),
            100.0 * self.remote_read_fraction,
            self.interconnect_bytes >> 20,
            self.link_power_w,
            self.lane_turns(),
        )
    }
}

// Reports cross thread boundaries as `Arc<SimReport>` when sweeps fan out
// over the worker pool; this fails to compile if a field ever stops being
// thread-safe.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimReport>();
};

impl SimReport {
    /// Speedup of `self` relative to `baseline` (`>1` means faster).
    ///
    /// Returns `0.0` if `self` recorded zero cycles (empty workload).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            baseline.total_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Total lane turns across all sockets.
    pub fn lane_turns(&self) -> u64 {
        self.sockets.iter().map(|s| s.lane_turns).sum()
    }

    /// Total DRAM bytes across all sockets.
    pub fn dram_bytes(&self) -> u64 {
        self.sockets.iter().map(|s| s.dram_bytes).sum()
    }

    /// Renders the recorded trace as a Chrome `trace_event` JSON document
    /// loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
    ///
    /// Timestamps are GPU cycles (1 ts = 1 cycle); the document is empty but
    /// well-formed when tracing was off.
    pub fn chrome_trace(&self) -> Json {
        chrome_trace(&self.trace_events)
    }

    /// Machine-readable form of the report. Fields keep insertion order,
    /// so the encoding of a given report is byte-stable across runs.
    /// The `metrics` field is `null` when metrics collection was off, and
    /// `resilience` is `null` when no faults were injected.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::Str(self.workload.clone())),
            ("total_cycles", Json::UInt(self.total_cycles)),
            (
                "kernel_cycles",
                Json::Arr(self.kernel_cycles.iter().map(|&c| Json::UInt(c)).collect()),
            ),
            (
                "sockets",
                Json::Arr(self.sockets.iter().map(SocketReport::to_json).collect()),
            ),
            ("l1", cache_stats_json(&self.l1)),
            (
                "remote_read_fraction",
                Json::Float(self.remote_read_fraction),
            ),
            ("interconnect_bytes", Json::UInt(self.interconnect_bytes)),
            ("link_power_w", Json::Float(self.link_power_w)),
            (
                "metrics",
                match &self.metrics {
                    Some(snap) => snap.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "resilience",
                match &self.resilience {
                    Some(r) => r.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "profile",
                match &self.profile {
                    Some(p) => p.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl SocketReport {
    /// Machine-readable form of one socket's breakdown.
    pub fn to_json(&self) -> Json {
        let partition = match self.l2_partition {
            Some((local, remote)) => {
                Json::Arr(vec![Json::UInt(local as u64), Json::UInt(remote as u64)])
            }
            None => Json::Null,
        };
        Json::obj([
            ("egress_bytes", Json::UInt(self.egress_bytes)),
            ("ingress_bytes", Json::UInt(self.ingress_bytes)),
            ("dram_bytes", Json::UInt(self.dram_bytes)),
            ("l2", cache_stats_json(&self.l2)),
            ("lane_turns", Json::UInt(self.lane_turns)),
            ("equalizations", Json::UInt(self.equalizations)),
            ("l2_partition", partition),
        ])
    }
}

/// JSON form of cache statistics (a free function because both the trait
/// and the type live in other crates).
fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj([
        ("local_hits", Json::UInt(s.local_hits.get())),
        ("local_misses", Json::UInt(s.local_misses.get())),
        ("remote_hits", Json::UInt(s.remote_hits.get())),
        ("remote_misses", Json::UInt(s.remote_misses.get())),
        ("fills", Json::UInt(s.fills.get())),
        ("evictions", Json::UInt(s.evictions.get())),
        ("dirty_evictions", Json::UInt(s.dirty_evictions.get())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_ratio() {
        let base = SimReport {
            total_cycles: 1000,
            ..SimReport::default()
        };
        let fast = SimReport {
            total_cycles: 500,
            ..SimReport::default()
        };
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((base.speedup_over(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_speedup_is_zero() {
        let base = SimReport {
            total_cycles: 100,
            ..SimReport::default()
        };
        let empty = SimReport::default();
        assert_eq!(empty.speedup_over(&base), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let r = SimReport {
            workload: "w".into(),
            total_cycles: 10,
            kernel_cycles: vec![10],
            ..SimReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("w: 10 cycles over 1 kernels"));
    }

    #[test]
    fn json_encoding_is_stable_and_reparses() {
        let mut r = SimReport {
            workload: "w".into(),
            total_cycles: 42,
            kernel_cycles: vec![40, 2],
            ..SimReport::default()
        };
        r.sockets.push(SocketReport {
            dram_bytes: 7,
            l2_partition: Some((3, 5)),
            ..SocketReport::default()
        });
        let a = r.to_json().to_string();
        let b = r.to_json().to_string();
        assert_eq!(a, b, "encoding must be byte-stable");
        let parsed = numa_gpu_testkit::json::Json::parse(&a).unwrap();
        assert_eq!(parsed.get("total_cycles").unwrap().as_u64(), Some(42));
        assert_eq!(
            parsed.get("sockets").unwrap().as_array().unwrap()[0]
                .get("dram_bytes")
                .unwrap()
                .as_u64(),
            Some(7)
        );
    }

    #[test]
    fn aggregates_sum_over_sockets() {
        let mut r = SimReport::default();
        r.sockets.push(SocketReport {
            lane_turns: 2,
            dram_bytes: 10,
            ..SocketReport::default()
        });
        r.sockets.push(SocketReport {
            lane_turns: 3,
            dram_bytes: 30,
            ..SocketReport::default()
        });
        assert_eq!(r.lane_turns(), 5);
        assert_eq!(r.dram_bytes(), 40);
    }
}
