//! The multi-socket NUMA GPU system: construction and public API.
//!
//! # Partitioned event loop
//!
//! The simulator runs one event-queue *partition per socket* — a
//! [`SocketShard`] bundling the socket's SMs, L2, DRAM, NoC, and switch
//! link — plus a shared *control partition* for the cross-cutting plane
//! (link balancer sampling, cache repartition sampling, fault injection).
//! Shards advance concurrently inside conservative lookahead windows and
//! exchange cross-socket traffic as explicit [`XMsg`] messages, merged
//! deterministically at window barriers (see `exec` for the executor and
//! `mempath` for the message plane). Reports are byte-identical at every
//! `sim_threads` setting because the windowed algorithm itself — window
//! boundaries, merge order, per-shard event order — never depends on how
//! many worker threads happen to execute it.

use crate::observe::ObsState;
use crate::power::average_link_power_w;
use crate::report::{SimReport, SocketReport};
use numa_gpu_cache::LineClass;
use numa_gpu_cache::{CacheStats, PartitionController, SetAssocCache, WayPartition};
use numa_gpu_engine::{CrossMessage, EventQueue, ServiceQueue, Watchdog};
use numa_gpu_exec::ThreadPool;
use numa_gpu_faults::{AppliedFault, FaultPlan, LinkResilience, ResilienceReport};
use numa_gpu_interconnect::{switch_hop_latency, GpuLink, Topology};
use numa_gpu_mem::{Dram, PageTable};
use numa_gpu_obs::{ProfileReport, TraceEvent};
use numa_gpu_runtime::{Kernel, Workload};
use numa_gpu_sm::Sm;
use numa_gpu_types::{
    cycles_to_ticks, ticks_to_cycles, CacheMode, ConfigError, CtaId, LineAddr, PageId, SimError,
    SocketId, SystemConfig, Tick, WarpOp, WarpSlot, TICKS_PER_CYCLE,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Events driving the simulation. Memory-path stages are separate events so
/// each bandwidth resource is touched at its true arrival time (keeping
/// queue timestamps monotone).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// A warp is ready to issue its next operation.
    WarpIssue { sm: u32, slot: WarpSlot },
    /// Read request reached the requester's L2 complex.
    ReadAtL2 {
        sm: u32,
        line: LineAddr,
        home: SocketId,
    },
    /// Read request reached the home socket (remote path).
    ReadAtHome {
        sm: u32,
        line: LineAddr,
        home: SocketId,
    },
    /// Data ready at home; response crosses the switch back.
    ReadReturn {
        sm: u32,
        line: LineAddr,
        home: SocketId,
    },
    /// Data at the requester socket boundary: optional L2 fill, then the
    /// response NoC.
    DataToSm {
        sm: u32,
        line: LineAddr,
        class: LineClass,
        fill_l2: bool,
    },
    /// A fill response arrives at an SM's L1.
    L1Fill {
        sm: u32,
        line: LineAddr,
        class: LineClass,
    },
    /// Write data reached the requester's L2 complex. Carries the issuing
    /// warp so store backpressure can wake it on acceptance.
    WriteAtL2 {
        sm: u32,
        slot: WarpSlot,
        line: LineAddr,
        home: SocketId,
    },
    /// Write data reached the home socket (remote path).
    WriteAtHome {
        from: SocketId,
        line: LineAddr,
        home: SocketId,
    },
    /// A cross-partition message reaches this shard's switch boundary: the
    /// payload still has to cross the ingress lanes before its next stage.
    /// Delivered at the barrier merge; counts as watchdog forward progress
    /// like every other shard event.
    XArrive { msg: XMsg },
    /// Periodic link load balancer sampling (§4). Control partition only.
    LinkSample,
    /// Periodic NUMA-aware cache partition sampling (§5). Control partition
    /// only.
    CacheSample,
    /// An injected fault fires (index into the installed `FaultPlan`).
    /// Control partition only.
    Fault { idx: u32 },
}

impl Ev {
    /// Whether this event is an in-flight memory-path stage (tracked so the
    /// kernel loop drains outstanding traffic before finishing).
    pub(crate) fn is_mem_stage(&self) -> bool {
        !matches!(
            self,
            Ev::WarpIssue { .. } | Ev::LinkSample | Ev::CacheSample | Ev::Fault { .. }
        )
    }
}

/// A cross-partition message: one leg of socket-to-socket traffic. The
/// emitting shard pays its egress lanes and the access-hop latency, stamps
/// the switch-boundary arrival tick, and appends the message to its window
/// outbox; the barrier charges any interior switch↔switch hops of the
/// fabric (a no-op on the star), and the destination shard pays ingress
/// plus the final access hop on delivery — reproducing the monolithic
/// switch's transfer timing leg for leg on the star topology.
#[derive(Debug, Clone, Copy)]
pub(crate) enum XMsg {
    /// Read request travelling to the home socket (header-sized).
    ReadReq {
        sm: u32,
        line: LineAddr,
        home: SocketId,
    },
    /// Read response returning to the requester (line + header).
    ReadResp { sm: u32, line: LineAddr },
    /// Write data travelling to the home socket (line + header).
    WriteData {
        from: SocketId,
        line: LineAddr,
        home: SocketId,
    },
    /// Write acknowledgment returning to the requester (header-sized);
    /// extends the requester's write drain on arrival.
    WriteAck,
}

impl XMsg {
    /// Wire size of this message, charged on every hop it traverses.
    pub(crate) fn bytes(&self) -> u32 {
        match self {
            XMsg::ReadReq { .. } | XMsg::WriteAck => crate::mempath::REQ_BYTES,
            XMsg::ReadResp { .. } | XMsg::WriteData { .. } => crate::mempath::DATA_PACKET_BYTES,
        }
    }
}

/// Fault-injection bookkeeping: the installed plan plus what actually
/// happened. Present only when a *non-empty* [`FaultPlan`] was installed, so
/// a zero-fault run is bit-identical to a run with no plan at all.
#[derive(Debug)]
pub(crate) struct FaultState {
    /// The installed plan (validated against the configuration).
    pub plan: FaultPlan,
    /// Timeline of faults as they were applied, in application order.
    pub applied: Vec<AppliedFault>,
    /// SMs permanently disabled by `FaultKind::SmDisable`.
    pub disabled_sms: u32,
    /// Resident CTAs evicted from disabled SMs and requeued.
    pub requeued_ctas: u32,
    /// Per-edge cycle of the earliest still-unanswered lane degradation
    /// (indexed by fabric edge id; access edges first, so index == socket
    /// on the star fabric).
    pub degraded_at: Vec<Option<u64>>,
    /// Per-edge balancer recovery latency in cycles (first non-Hold
    /// rebalance after the degradation).
    pub recovery: Vec<Option<u64>>,
}

impl FaultState {
    fn new(plan: FaultPlan, edges: usize) -> Self {
        FaultState {
            plan,
            applied: Vec::new(),
            disabled_sms: 0,
            requeued_ctas: 0,
            degraded_at: vec![None; edges],
            recovery: vec![None; edges],
        }
    }
}

/// Per-warp load scoreboard state.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WarpMemState {
    /// Loads in flight for this warp.
    pub outstanding: u16,
    /// Warp stalled because the scoreboard is full.
    pub blocked: bool,
    /// Warp has exhausted its trace and waits for outstanding loads.
    pub draining: bool,
}

/// How a shard resolves line homes inside a window.
///
/// Every policy except reactive migration is served by a shared immutable
/// borrow: computed policies answer directly, and unplaced first-touch
/// pages become shard-local *claims* committed at the barrier. Reactive
/// migration mutates the table on remote accesses, so those runs hold an
/// exclusive borrow and the executor advances shards sequentially — still
/// windowed, still deterministic, independent of `sim_threads`.
pub(crate) enum PagesView<'a> {
    /// Read-only table shared across concurrently running shards.
    Shared(&'a PageTable),
    /// Exclusive table for the sequential (migration-policy) schedule.
    Exclusive(&'a mut PageTable),
}

/// One event-loop partition: a socket's private state — SMs, L1s, L2,
/// DRAM, NoC queues, switch link, partition controller — plus its event
/// queue and the cross-partition outbox. Events carry *global* SM ids; the
/// shard translates to its local slice via `base_sm`.
///
/// All fields a window touches live here, so a shard can run on a worker
/// thread with no synchronization beyond the barrier. `Send` is required
/// (and checked below) for exactly that move.
pub(crate) struct SocketShard {
    pub socket: SocketId,
    pub base_sm: u32,
    pub cfg: Arc<SystemConfig>,
    /// Kernel whose CTAs this shard is dispatching (set per kernel run).
    pub kernel: Option<Arc<dyn Kernel>>,
    /// Pending CTAs for this socket, drained from the launch plan at kernel
    /// start (dispatch never steals across sockets, matching the paper).
    pub ctas: VecDeque<CtaId>,
    pub sms: Vec<Sm>,
    /// Pending (not yet successfully issued) memory op per warp slot,
    /// parked on MSHR-full and replayed on retry.
    pub pending_ops: Vec<Vec<Option<WarpOp>>>,
    /// Per-warp memory scoreboard: outstanding loads and wait state.
    pub warp_mem: Vec<Vec<WarpMemState>>,
    pub l2: SetAssocCache,
    pub dram: Dram,
    /// Request-direction crossbar (SM -> L2/switch).
    pub noc_req: ServiceQueue,
    /// Response-direction crossbar (L2/switch -> SM).
    pub noc_resp: ServiceQueue,
    /// This socket's fabric access link (egress and ingress lanes),
    /// detached from the topology's edge table at construction so the
    /// shard can drive it without synchronization.
    pub link: GpuLink,
    pub ctl: PartitionController,
    /// This partition's event queue.
    pub queue: EventQueue<Ev>,
    /// Cross-partition messages emitted this window, in emission order,
    /// stamped with their switch-boundary tick and destination.
    pub outbox: Vec<(Tick, (SocketId, XMsg))>,
    /// First-touch pages this shard claimed this window (page -> first
    /// claim tick); the barrier arbitrates racing claims deterministically.
    pub claims: BTreeMap<PageId, Tick>,
    /// Outgoing remote read requests in the current cache sampling window
    /// (the paper's incoming-bandwidth estimator).
    pub remote_reads_window: u64,
    pub reads_local_class: u64,
    pub reads_remote_class: u64,
    /// Shard-local high-water mark of fire-and-forget write completions;
    /// folded into the global drain at each barrier.
    pub write_drain: Tick,
    /// Net change to the global in-flight memory event count this window.
    pub inflight_delta: i64,
    /// CTAs retired this window; folded at the barrier.
    pub retired_ctas: u32,
    /// Page-table lookups answered against the shared borrow this window.
    pub lookups: u64,
    /// Events processed this window (watchdog progress evidence).
    pub processed: u64,
    /// Highest event tick this shard has processed.
    pub last_tick: Tick,
    /// Scratch buffer recycled across CTA dispatches and L1 fills, so the
    /// per-event hot path allocates no warp-slot vectors in steady state.
    pub scratch_slots: Vec<WarpSlot>,
    /// Times `scratch_slots` was reused with retained capacity
    /// (allocations avoided; feeds the self-profiler).
    pub buf_reuses: u64,
    // Derived constants.
    pub noc_latency: Tick,
    pub l2_hit_latency: Tick,
    /// The access-hop latency (half the one-way link latency): the cost
    /// each message leg pays to cross between this socket and its switch.
    pub hop_latency: Tick,
}

// Shards move onto pool worker threads inside windows; this fails to
// compile if any component stops being thread-safe.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SocketShard>();
    fn assert_sync<T: Sync>() {}
    assert_sync::<PageTable>();
};

impl SocketShard {
    fn new(cfg: &Arc<SystemConfig>, socket: SocketId) -> Self {
        let sms_per_socket = cfg.sm.sms_per_socket as u32;
        let l1_partition = if cfg.cache_mode == CacheMode::NumaAwareDynamic && cfg.partition_l1 {
            Some(WayPartition::balanced(cfg.l1.ways))
        } else {
            None
        };
        let l2_partition = match cfg.cache_mode {
            CacheMode::NumaAwareDynamic | CacheMode::StaticRemoteCache => {
                Some(WayPartition::balanced(cfg.l2.ways))
            }
            _ => None,
        };
        SocketShard {
            socket,
            base_sm: socket.index() as u32 * sms_per_socket,
            kernel: None,
            ctas: VecDeque::new(),
            sms: (0..sms_per_socket)
                .map(|_| Sm::new(&cfg.sm, &cfg.l1, l1_partition))
                .collect(),
            pending_ops: (0..sms_per_socket)
                .map(|_| vec![None; cfg.sm.max_warps as usize])
                .collect(),
            warp_mem: (0..sms_per_socket)
                .map(|_| vec![WarpMemState::default(); cfg.sm.max_warps as usize])
                .collect(),
            l2: SetAssocCache::new(&cfg.l2, l2_partition),
            dram: Dram::new(cfg.dram),
            noc_req: ServiceQueue::new(cfg.noc.bytes_per_cycle),
            noc_resp: ServiceQueue::new(cfg.noc.bytes_per_cycle),
            link: GpuLink::new(&cfg.link),
            ctl: PartitionController::new(cfg.l2.ways),
            queue: EventQueue::new(),
            outbox: Vec::new(),
            claims: BTreeMap::new(),
            remote_reads_window: 0,
            reads_local_class: 0,
            reads_remote_class: 0,
            write_drain: 0,
            inflight_delta: 0,
            retired_ctas: 0,
            lookups: 0,
            processed: 0,
            last_tick: 0,
            scratch_slots: Vec::new(),
            buf_reuses: 0,
            noc_latency: cycles_to_ticks(cfg.noc.latency_cycles as u64),
            l2_hit_latency: cycles_to_ticks(cfg.l2.hit_latency_cycles as u64),
            hop_latency: switch_hop_latency(&cfg.link),
            cfg: Arc::clone(cfg),
        }
    }

    /// Schedules a memory-path stage event in this shard's queue, tracking
    /// it as in flight.
    #[inline]
    pub(crate) fn push_mem(&mut self, at: Tick, ev: Ev) {
        debug_assert!(ev.is_mem_stage());
        self.inflight_delta += 1;
        self.queue.push(at, ev);
    }

    /// Resolves `line`'s home socket. Against a shared table, unplaced
    /// first-touch pages are *claimed* for this shard (treated as local
    /// until the barrier arbitrates); claims and lookup counts fold into
    /// the real table at the barrier.
    pub(crate) fn home_of_line(
        &mut self,
        t: Tick,
        line: LineAddr,
        pages: &mut PagesView<'_>,
    ) -> SocketId {
        match pages {
            PagesView::Exclusive(pt) => pt.home_of_line(line, self.socket),
            PagesView::Shared(pt) => {
                self.lookups += 1;
                if let Some(home) = pt.peek_line(line) {
                    return home;
                }
                self.claims.entry(line.page()).or_insert(t);
                self.socket
            }
        }
    }

    /// Emits a cross-partition message: pays this socket's egress lanes and
    /// the access hop, then parks the message in the outbox for the barrier
    /// merge (which charges any interior fabric hops). The message is in
    /// flight until its final stage pops.
    pub(crate) fn send_cross(&mut self, t: Tick, to: SocketId, msg: XMsg, bytes: u32) -> Tick {
        debug_assert_ne!(to, self.socket, "local traffic must not cross the switch");
        let egress_clear = self
            .link
            .send(t, numa_gpu_interconnect::LinkDirection::Egress, bytes);
        let at_switch = egress_clear + self.hop_latency;
        self.inflight_delta += 1;
        self.outbox.push((at_switch, (to, msg)));
        egress_clear
    }
}

/// A simulated multi-socket NUMA GPU (or single-GPU baseline).
///
/// Build one per run with [`NumaGpuSystem::new`], optionally enable
/// timeline recording, then call [`NumaGpuSystem::run`] with a workload.
///
/// # Examples
///
/// ```no_run
/// use numa_gpu_core::NumaGpuSystem;
/// use numa_gpu_types::SystemConfig;
///
/// # fn workload() -> numa_gpu_runtime::Workload { unimplemented!() }
/// let mut sys = NumaGpuSystem::new(SystemConfig::numa_aware_sockets(4))?;
/// let report = sys.run(&workload())?;
/// println!("took {} cycles", report.total_cycles);
/// # Ok::<(), numa_gpu_types::SimError>(())
/// ```
pub struct NumaGpuSystem {
    pub(crate) cfg: Arc<SystemConfig>,
    /// One event-loop partition per socket.
    pub(crate) shards: Vec<SocketShard>,
    /// The interconnect fabric. Its per-socket access links are detached
    /// into the shards at construction; the interior switch↔switch links
    /// stay here and are only ever charged at serial points (the barrier
    /// merge, the boundary flush, the control plane), so richer topologies
    /// keep the byte-identical determinism argument of the star.
    pub(crate) fabric: Topology,
    pub(crate) pages: PageTable,
    /// The shared control partition: balancer/cache sampling and fault
    /// stamps. Always handled serially, after same-tick shard events (the
    /// control partition sorts as the highest partition index).
    pub(crate) control: EventQueue<Ev>,
    /// Worker pool for intra-window shard execution (`sim_threads`).
    pub(crate) pool: ThreadPool,
    /// Conservative lookahead: the minimum adjacent-hop latency over the
    /// fabric, bounding window width. Sound because the first hop out of
    /// any socket costs at least this much; equal to `hop_latency` on the
    /// star fabric and strictly smaller on shapes with cheaper interior
    /// hops.
    pub(crate) lookahead: Tick,
    /// The access-hop latency each socket↔switch message leg pays (half
    /// the one-way link latency). Distinct from `lookahead`: the two
    /// values coincide only in the star fabric.
    pub(crate) hop_latency: Tick,
    pub(crate) now: Tick,
    pub(crate) outstanding_ctas: u32,
    /// In-flight staged memory events (the kernel loop drains these).
    pub(crate) inflight_mem: u64,
    /// High-water mark of fire-and-forget write completions, so a kernel
    /// that ends in a write burst is charged for the drain.
    pub(crate) write_drain: Tick,
    pub(crate) samplers_scheduled: bool,
    pub(crate) has_run: bool,
    pub(crate) kernel_starts: Vec<u64>,
    /// Fault-injection state (`None` unless a non-empty plan is installed).
    pub(crate) fault_state: Option<FaultState>,
    /// Forward-progress watchdog (cycle budget + no-progress detector).
    /// Cross-partition message deliveries count as progress like any other
    /// shard event, so barrier-heavy runs never trip the stall detector.
    pub(crate) watchdog: Watchdog,
    /// Metrics registry, trace sink, and Fig-5 timelines (see `observe`).
    pub(crate) obs: ObsState,
    pub(crate) sms_per_socket: u32,
    /// Persistent merge buffer for the window barrier; outboxes drain into
    /// it in place, so the steady-state barrier allocates nothing.
    pub(crate) merge_buf: Vec<CrossMessage<(SocketId, XMsg)>>,
    /// Window barriers folded so far.
    pub(crate) barriers: u64,
    /// Cross-partition messages merged and delivered at barriers.
    pub(crate) xmsgs_merged: u64,
    /// Barrier buffer reuses with retained capacity (allocations avoided).
    pub(crate) merge_reuses: u64,
}

impl std::fmt::Debug for NumaGpuSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NumaGpuSystem")
            .field("sockets", &self.cfg.num_sockets)
            .field("sim_threads", &self.pool.workers())
            .field("now_cycles", &ticks_to_cycles(self.now))
            .finish_non_exhaustive()
    }
}

impl NumaGpuSystem {
    /// Builds a system from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cfg.validate()` fails.
    pub fn new(cfg: SystemConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let sockets = cfg.num_sockets as usize;
        let sms_per_socket = cfg.sm.sms_per_socket as u32;
        let cfg = Arc::new(cfg);

        let mut shards: Vec<SocketShard> = (0..sockets)
            .map(|s| SocketShard::new(&cfg, SocketId::new(s as u8)))
            .collect();

        // The fabric owns every link at construction; each socket's access
        // link is detached into its shard so windowed execution can drive
        // it without synchronization. Interior links stay with the fabric.
        let mut fabric = Topology::new(cfg.topology, &cfg.link, cfg.num_sockets)?;
        for shard in &mut shards {
            if let Some(link) = fabric.detach_access_link(shard.socket) {
                shard.link = link;
            }
        }

        // Observability: registration happens once here, in socket order, so
        // snapshots are byte-stable across runs. All SMs of a socket share
        // clones of the same handles (socket-level cardinality).
        let mut obs = ObsState::new(&cfg.obs, sockets);
        if obs.registry.is_some() {
            for (s, shard) in shards.iter_mut().enumerate() {
                let h = obs.socket_handles(s);
                for sm in &mut shard.sms {
                    sm.set_obs(h.sm.clone());
                }
                shard.l2.set_obs(h.l2);
                shard.dram.set_obs(h.dram);
                shard.link.set_obs(h.link);
            }
        }
        let pages = PageTable::new(cfg.placement, cfg.num_sockets);
        let budget = if cfg.watchdog.max_cycles > 0 {
            Some(cycles_to_ticks(cfg.watchdog.max_cycles))
        } else {
            None
        };
        let watchdog = Watchdog::new(
            budget,
            cycles_to_ticks(cfg.watchdog.effective_stall_cycles()),
        );
        // `0` auto-sizes to the machine; anything else is taken literally.
        // Either way there is no point running more workers than partitions.
        let requested = if cfg.sim_threads == 0 {
            ThreadPool::available().workers()
        } else {
            cfg.sim_threads as usize
        };
        let pool = ThreadPool::new(requested.min(sockets).max(1));

        Ok(NumaGpuSystem {
            lookahead: fabric.min_hop_latency(),
            hop_latency: fabric.access_hop_latency(),
            sms_per_socket,
            cfg,
            shards,
            fabric,
            pages,
            control: EventQueue::new(),
            pool,
            now: 0,
            outstanding_ctas: 0,
            inflight_mem: 0,
            write_drain: 0,
            samplers_scheduled: false,
            has_run: false,
            kernel_starts: Vec::new(),
            fault_state: None,
            watchdog,
            obs,
            merge_buf: Vec::new(),
            barriers: 0,
            xmsgs_merged: 0,
            merge_reuses: 0,
        })
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Enables per-sample link utilization recording (Fig 5 timelines).
    /// Call before [`Self::run`].
    pub fn enable_link_timeline(&mut self) {
        self.obs.record_timeline = true;
    }

    /// Installs a fault plan to apply during [`Self::run`]. Call before
    /// `run`. Installing an *empty* plan is exactly equivalent to never
    /// calling this: the run (and its report, byte for byte) is identical
    /// to a fault-free run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFaultPlan`] if the plan references
    /// sockets, fabric edges, lanes, or SMs outside this system's shape.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), SimError> {
        let lanes_total = self.cfg.link.lanes_per_direction.saturating_mul(2);
        let total_sms = self.shards.len() as u32 * self.sms_per_socket;
        let num_edges = self.fabric.num_edges().min(u8::MAX as usize) as u8;
        plan.validate(self.cfg.num_sockets, num_edges, lanes_total, total_sms)?;
        self.fault_state = if plan.is_empty() {
            None
        } else {
            Some(FaultState::new(plan, self.fabric.num_edges()))
        };
        Ok(())
    }

    /// Runs `workload` to completion and returns the report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the scheduler stops making forward
    /// progress (event queues empty with CTAs outstanding, or the stall
    /// watchdog sees no progress for `watchdog.stall_cycles`), and
    /// [`SimError::CycleLimit`] if `watchdog.max_cycles` is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if called twice on the same system (state is single-use), if
    /// the workload has no kernels, or if a kernel's CTAs need more warps
    /// than an SM can hold.
    pub fn run(&mut self, workload: &Workload) -> Result<SimReport, SimError> {
        assert!(!self.has_run, "NumaGpuSystem::run is single-use");
        assert!(
            !workload.kernels.is_empty(),
            "workload must contain at least one kernel"
        );
        self.has_run = true;

        if let Some(fs) = &self.fault_state {
            let stamps: Vec<(Tick, u32)> = fs
                .plan
                .specs()
                .iter()
                .enumerate()
                .map(|(i, s)| (cycles_to_ticks(s.cycle), i as u32))
                .collect();
            for (at, idx) in stamps {
                self.control.push(at, Ev::Fault { idx });
            }
        }

        for kernel in &workload.kernels {
            assert!(
                kernel.warps_per_cta() >= 1
                    && kernel.warps_per_cta() <= self.cfg.sm.max_warps as u32,
                "kernel warps_per_cta {} exceeds SM capacity",
                kernel.warps_per_cta()
            );
            let start = self.kernel_boundary();
            self.now = start;
            self.kernel_starts.push(ticks_to_cycles(start));
            self.run_kernel(kernel.clone())?;
            if self.obs.tracing() {
                let start_cycle = ticks_to_cycles(start);
                let end_cycle = ticks_to_cycles(self.now.max(self.write_drain));
                let idx = self.kernel_starts.len() - 1;
                self.obs.emit(
                    TraceEvent::complete(
                        format!("kernel[{idx}] {}", kernel.name()),
                        "kernel",
                        start_cycle,
                        end_cycle.saturating_sub(start_cycle),
                        0,
                    )
                    .arg("ctas", kernel.num_ctas() as u64),
                );
            }
        }
        // Charge the final write drain.
        self.now = self.now.max(self.write_drain);
        Ok(self.build_report(workload))
    }

    fn build_report(&mut self, workload: &Workload) -> SimReport {
        // `run` folds the trailing write drain into `now` before reporting;
        // `kernel_cycles` relies on this so the last kernel's span covers
        // its fire-and-forget writes.
        debug_assert!(
            self.now >= self.write_drain,
            "build_report before the final write drain was charged"
        );
        let total_cycles = ticks_to_cycles(self.now);
        let sockets: Vec<SocketReport> = self
            .shards
            .iter()
            .map(|shard| SocketReport {
                egress_bytes: shard.link.stats().egress_bytes.get(),
                ingress_bytes: shard.link.stats().ingress_bytes.get(),
                dram_bytes: shard.dram.stats().bytes.get(),
                l2: shard.l2.stats(),
                lane_turns: shard.link.stats().lane_turns.get(),
                equalizations: shard.link.stats().equalizations.get(),
                l2_partition: shard
                    .l2
                    .partition()
                    .map(|p| (p.local_ways(), p.remote_ways())),
            })
            .collect();
        // Access-link egress counts each cross-socket transfer once;
        // interior links charge exactly one direction per traversal, so
        // their byte totals add without double counting (zero on the star).
        let interconnect_bytes: u64 =
            sockets.iter().map(|s| s.egress_bytes).sum::<u64>() + self.fabric.interior_bytes();
        let mut l1 = CacheStats::default();
        for sm in self.shards.iter().flat_map(|shard| shard.sms.iter()) {
            let s = sm.l1_stats();
            l1.local_hits.add(s.local_hits.get());
            l1.local_misses.add(s.local_misses.get());
            l1.remote_hits.add(s.remote_hits.get());
            l1.remote_misses.add(s.remote_misses.get());
            l1.fills.add(s.fills.get());
            l1.evictions.add(s.evictions.get());
        }
        let reads_local: u64 = self.shards.iter().map(|s| s.reads_local_class).sum();
        let reads_remote: u64 = self.shards.iter().map(|s| s.reads_remote_class).sum();
        let reads = reads_local + reads_remote;
        let link_timelines = std::mem::take(&mut self.obs.timelines);
        if let Some(reg) = &mut self.obs.registry {
            // Engine-level high-water marks, published once at end of run:
            // aggregated over every partition queue plus the control queue.
            let mut pushes = self.control.stats().pushes;
            let mut pops = self.control.stats().pops;
            let mut max_len = self.control.stats().max_len;
            for shard in &self.shards {
                let st = shard.queue.stats();
                pushes += st.pushes;
                pops += st.pops;
                max_len = max_len.max(st.max_len);
            }
            reg.gauge("engine.events_scheduled").set(pushes);
            reg.gauge("engine.events_dispatched").set(pops);
            reg.gauge("engine.queue_max_len").set(max_len as u64);
        }
        // The profile is assembled from counters the simulator maintains
        // regardless of the flag, so enabling it cannot change any other
        // report field. When metrics are also on, the profile rides along
        // in the snapshot as `profile.*` counters.
        let profile = self.cfg.obs.profile.then(|| self.build_profile());
        if let (Some(p), Some(reg)) = (&profile, &mut self.obs.registry) {
            p.publish(reg);
        }
        let metrics = self.obs.registry.as_ref().map(|r| r.snapshot());
        let trace_events = self.obs.take_trace();
        let resilience = self.fault_state.as_ref().map(|fs| {
            // Access edges first (edge id == socket), then the fabric's
            // interior edges — absent on the star, so star reports are
            // byte-identical to the pre-topology format.
            let mut links: Vec<LinkResilience> = self
                .shards
                .iter()
                .enumerate()
                .map(|(s, shard)| LinkResilience {
                    edge: s as u8,
                    nominal_lane_cycles: total_cycles * shard.link.nominal_lanes() as u64,
                    available_lane_cycles: shard.link.available_lane_ticks(self.now)
                        / TICKS_PER_CYCLE,
                    recovery_cycles: fs.recovery[s],
                })
                .collect();
            for e in self.fabric.interior_edge_ids() {
                if let Some(link) = self.fabric.link(e) {
                    links.push(LinkResilience {
                        edge: e as u8,
                        nominal_lane_cycles: total_cycles * link.nominal_lanes() as u64,
                        available_lane_cycles: link.available_lane_ticks(self.now)
                            / TICKS_PER_CYCLE,
                        recovery_cycles: fs.recovery[e],
                    });
                }
            }
            ResilienceReport {
                applied: fs.applied.clone(),
                links,
                disabled_sms: fs.disabled_sms,
                requeued_ctas: fs.requeued_ctas,
            }
        });
        SimReport {
            workload: workload.meta.name.clone(),
            total_cycles,
            kernel_cycles: self.kernel_cycles(),
            kernel_start_cycles: self.kernel_starts.clone(),
            sockets,
            link_timelines,
            l1,
            remote_read_fraction: if reads == 0 {
                0.0
            } else {
                reads_remote as f64 / reads as f64
            },
            interconnect_bytes,
            link_power_w: average_link_power_w(interconnect_bytes, total_cycles),
            metrics,
            trace_events,
            resilience,
            profile,
        }
    }

    /// Assembles the self-profile: every subsystem's monotonic work
    /// counters, attributed to fixed scopes in a fixed order (so the JSON
    /// encoding is byte-stable). Pure read of state that exists whether or
    /// not profiling is enabled — see `numa_gpu_obs::profiler` for the
    /// timing-invariance argument.
    fn build_profile(&self) -> ProfileReport {
        let mut p = ProfileReport::new();

        // Engine: event-queue traffic (split by calendar-queue path),
        // window barriers, and the cross-partition merge plane.
        let mut q = self.control.stats();
        for shard in &self.shards {
            let s = shard.queue.stats();
            q.pushes += s.pushes;
            q.pops += s.pops;
            q.max_len = q.max_len.max(s.max_len);
            q.bucket_pushes += s.bucket_pushes;
            q.sorted_pushes += s.sorted_pushes;
            q.overflow_pushes += s.overflow_pushes;
            q.promotions += s.promotions;
            q.rebases += s.rebases;
            q.rebuilds += s.rebuilds;
        }
        p.scope("engine")
            .count("events_scheduled", q.pushes)
            .count("events_popped", q.pops)
            .count("queue_peak_len", q.max_len as u64)
            .count("queue_bucket_pushes", q.bucket_pushes)
            .count("queue_sorted_pushes", q.sorted_pushes)
            .count("queue_overflow_pushes", q.overflow_pushes)
            .count("queue_promotions", q.promotions)
            .count("queue_rebases", q.rebases)
            .count("queue_rebuilds", q.rebuilds)
            .count("window_barriers", self.barriers)
            .count("cross_msgs_merged", self.xmsgs_merged)
            .count("allocations_avoided", self.merge_reuses);

        // SM: warp issue volume and the dispatch/fill recycling plane.
        let (mut ops, mut ctas, mut stalls, mut recycled) = (0u64, 0u64, 0u64, 0u64);
        for shard in &self.shards {
            recycled += shard.buf_reuses;
            for sm in &shard.sms {
                let s = sm.stats();
                ops += s.ops_issued.get();
                ctas += s.ctas_completed.get();
                stalls += s.mshr_stalls.get();
                recycled += sm.recycled_allocations();
            }
        }
        p.scope("sm")
            .count("warp_ops_issued", ops)
            .count("ctas_completed", ctas)
            .count("mshr_stall_parks", stalls)
            .count("allocations_avoided", recycled);

        // Cache: access volumes at both levels.
        let (mut l1a, mut l1f, mut l2a, mut l2f, mut l2e) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for shard in &self.shards {
            for sm in &shard.sms {
                let s = sm.l1_stats();
                l1a += s.local_hits.get()
                    + s.local_misses.get()
                    + s.remote_hits.get()
                    + s.remote_misses.get();
                l1f += s.fills.get();
            }
            let s = shard.l2.stats();
            l2a += s.local_hits.get()
                + s.local_misses.get()
                + s.remote_hits.get()
                + s.remote_misses.get();
            l2f += s.fills.get();
            l2e += s.evictions.get();
        }
        p.scope("cache")
            .count("l1_accesses", l1a)
            .count("l1_fills", l1f)
            .count("l2_accesses", l2a)
            .count("l2_fills", l2f)
            .count("l2_evictions", l2e);

        // Mem: DRAM transfer volume and page-home resolution.
        let (mut reads, mut writes, mut bytes) = (0u64, 0u64, 0u64);
        for shard in &self.shards {
            let s = shard.dram.stats();
            reads += s.reads.get();
            writes += s.writes.get();
            bytes += s.bytes.get();
        }
        let pt = self.pages.stats();
        p.scope("mem")
            .count("dram_reads", reads)
            .count("dram_writes", writes)
            .count("dram_bytes", bytes)
            .count("page_lookups", pt.lookups.get())
            .count("pages_placed", pt.pages_placed.get());

        // Interconnect: NoC service requests and fabric-link traffic
        // (access links in the shards plus any interior fabric edges).
        let (mut noc, mut egress, mut ingress, mut turns) = (0u64, 0u64, 0u64, 0u64);
        for shard in &self.shards {
            noc += shard.noc_req.total_requests() + shard.noc_resp.total_requests();
            let s = shard.link.stats();
            egress += s.egress_bytes.get();
            ingress += s.ingress_bytes.get();
            turns += s.lane_turns.get();
        }
        for e in self.fabric.interior_edge_ids() {
            if let Some(link) = self.fabric.link(e) {
                let s = link.stats();
                egress += s.egress_bytes.get();
                ingress += s.ingress_bytes.get();
                turns += s.lane_turns.get();
            }
        }
        p.scope("interconnect")
            .count("noc_requests", noc)
            .count("link_egress_bytes", egress)
            .count("link_ingress_bytes", ingress)
            .count("lane_turns", turns);
        p
    }

    fn kernel_cycles(&self) -> Vec<u64> {
        // Derive per-kernel durations from consecutive start marks plus the
        // final end time. Inter-kernel boundaries already fold the write
        // drain into the next start (`kernel_boundary`), so only the last
        // kernel needs the explicit `max` here: a trailing fire-and-forget
        // write burst belongs to the kernel that issued it, matching the
        // `now.max(write_drain)` fold in `run`.
        let mut cycles = Vec::with_capacity(self.kernel_starts.len());
        let last_end = ticks_to_cycles(self.now.max(self.write_drain));
        for (i, &start) in self.kernel_starts.iter().enumerate() {
            let end = self.kernel_starts.get(i + 1).copied().unwrap_or(last_end);
            cycles.push(end.saturating_sub(start));
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_gpu_types::TopologyKind;

    /// Satellite of the topology refactor: the executor's conservative
    /// lookahead and the flush path's access-hop latency are distinct
    /// quantities that coincide only in the star fabric, where the
    /// cheapest adjacent hop *is* the access hop. Off-star fabrics have
    /// interior switch-to-switch hops cheaper than the access hop, so the
    /// lookahead (a lower bound over every adjacent hop) must drop below
    /// the access-hop latency — if these were still one aliased value,
    /// either the parallel windows would be unsound or flush timing would
    /// change on the star fabric.
    #[test]
    fn lookahead_and_hop_latency_coincide_only_on_star() {
        let star = NumaGpuSystem::new(SystemConfig::numa_sockets(4)).unwrap();
        assert_eq!(star.lookahead, star.hop_latency);
        for kind in [
            TopologyKind::Ring,
            TopologyKind::Mesh2d,
            TopologyKind::FatTree,
        ] {
            let mut cfg = SystemConfig::numa_sockets(8);
            cfg.topology = kind;
            let sys = NumaGpuSystem::new(cfg).unwrap();
            assert!(
                sys.lookahead < sys.hop_latency,
                "{kind:?}: lookahead {} must undercut the access hop {}",
                sys.lookahead,
                sys.hop_latency
            );
            assert!(sys.lookahead > 0, "{kind:?}: lookahead must stay positive");
        }
    }

    /// The 1..=32 socket range (relaxed from the old 8-socket cap) builds
    /// on every topology; edge counts grow past `num_sockets` only when
    /// interior fabric links exist.
    #[test]
    fn fabrics_build_across_the_full_socket_range() {
        for kind in [
            TopologyKind::Star,
            TopologyKind::Ring,
            TopologyKind::Mesh2d,
            TopologyKind::FatTree,
        ] {
            for n in [1u8, 2, 4, 8, 16, 32] {
                let mut cfg = SystemConfig::numa_sockets(n);
                cfg.topology = kind;
                let sys = NumaGpuSystem::new(cfg).unwrap();
                assert!(
                    sys.fabric.num_edges() >= n as usize,
                    "{kind:?}/{n}: every socket needs its access edge"
                );
                if kind == TopologyKind::Star {
                    assert_eq!(sys.fabric.num_edges(), n as usize);
                }
            }
        }
    }
}
