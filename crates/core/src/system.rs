//! The multi-socket NUMA GPU system: construction and public API.

use crate::observe::ObsState;
use crate::power::average_link_power_w;
use crate::report::{SimReport, SocketReport};
use numa_gpu_cache::LineClass;
use numa_gpu_cache::{CacheStats, PartitionController, SetAssocCache, WayPartition};
use numa_gpu_engine::{EventQueue, ServiceQueue, Watchdog};
use numa_gpu_faults::{AppliedFault, FaultPlan, LinkResilience, ResilienceReport};
use numa_gpu_interconnect::Switch;
use numa_gpu_mem::{Dram, PageTable};
use numa_gpu_obs::TraceEvent;
use numa_gpu_runtime::{Kernel, LaunchPlan, Workload};
use numa_gpu_sm::Sm;
use numa_gpu_types::{
    cycles_to_ticks, ticks_to_cycles, CacheMode, ConfigError, LineAddr, SimError, SocketId,
    SystemConfig, Tick, WarpOp, WarpSlot, TICKS_PER_CYCLE,
};
use std::sync::Arc;

/// Events driving the simulation. Memory-path stages are separate events so
/// each bandwidth resource is touched at its true arrival time (keeping
/// queue timestamps monotone).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// A warp is ready to issue its next operation.
    WarpIssue { sm: u32, slot: WarpSlot },
    /// Read request reached the requester's L2 complex.
    ReadAtL2 {
        sm: u32,
        line: LineAddr,
        home: SocketId,
    },
    /// Read request reached the home socket (remote path).
    ReadAtHome {
        sm: u32,
        line: LineAddr,
        home: SocketId,
    },
    /// Data ready at home; response crosses the switch back.
    ReadReturn {
        sm: u32,
        line: LineAddr,
        home: SocketId,
    },
    /// Data at the requester socket boundary: optional L2 fill, then the
    /// response NoC.
    DataToSm {
        sm: u32,
        line: LineAddr,
        class: LineClass,
        fill_l2: bool,
    },
    /// A fill response arrives at an SM's L1.
    L1Fill {
        sm: u32,
        line: LineAddr,
        class: LineClass,
    },
    /// Write data reached the requester's L2 complex. Carries the issuing
    /// warp so store backpressure can wake it on acceptance.
    WriteAtL2 {
        sm: u32,
        slot: WarpSlot,
        line: LineAddr,
        home: SocketId,
    },
    /// Write data reached the home socket (remote path).
    WriteAtHome {
        from: SocketId,
        line: LineAddr,
        home: SocketId,
    },
    /// Periodic link load balancer sampling (§4).
    LinkSample,
    /// Periodic NUMA-aware cache partition sampling (§5).
    CacheSample,
    /// An injected fault fires (index into the installed `FaultPlan`).
    Fault { idx: u32 },
}

impl Ev {
    /// Whether this event is an in-flight memory-path stage (tracked so the
    /// kernel loop drains outstanding traffic before finishing).
    pub(crate) fn is_mem_stage(&self) -> bool {
        !matches!(
            self,
            Ev::WarpIssue { .. } | Ev::LinkSample | Ev::CacheSample | Ev::Fault { .. }
        )
    }
}

/// Fault-injection bookkeeping: the installed plan plus what actually
/// happened. Present only when a *non-empty* [`FaultPlan`] was installed, so
/// a zero-fault run is bit-identical to a run with no plan at all.
#[derive(Debug)]
pub(crate) struct FaultState {
    /// The installed plan (validated against the configuration).
    pub plan: FaultPlan,
    /// Timeline of faults as they were applied, in application order.
    pub applied: Vec<AppliedFault>,
    /// SMs permanently disabled by `FaultKind::SmDisable`.
    pub disabled_sms: u32,
    /// Resident CTAs evicted from disabled SMs and requeued.
    pub requeued_ctas: u32,
    /// Per-socket cycle of the earliest still-unanswered lane degradation.
    pub degraded_at: Vec<Option<u64>>,
    /// Per-socket balancer recovery latency in cycles (first non-Hold
    /// rebalance after the degradation).
    pub recovery: Vec<Option<u64>>,
}

impl FaultState {
    fn new(plan: FaultPlan, sockets: usize) -> Self {
        FaultState {
            plan,
            applied: Vec::new(),
            disabled_sms: 0,
            requeued_ctas: 0,
            degraded_at: vec![None; sockets],
            recovery: vec![None; sockets],
        }
    }
}

/// Per-warp load scoreboard state.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WarpMemState {
    /// Loads in flight for this warp.
    pub outstanding: u16,
    /// Warp stalled because the scoreboard is full.
    pub blocked: bool,
    /// Warp has exhausted its trace and waits for outstanding loads.
    pub draining: bool,
}

/// A simulated multi-socket NUMA GPU (or single-GPU baseline).
///
/// Build one per run with [`NumaGpuSystem::new`], optionally enable
/// timeline recording, then call [`NumaGpuSystem::run`] with a workload.
///
/// # Examples
///
/// ```no_run
/// use numa_gpu_core::NumaGpuSystem;
/// use numa_gpu_types::SystemConfig;
///
/// # fn workload() -> numa_gpu_runtime::Workload { unimplemented!() }
/// let mut sys = NumaGpuSystem::new(SystemConfig::numa_aware_sockets(4))?;
/// let report = sys.run(&workload())?;
/// println!("took {} cycles", report.total_cycles);
/// # Ok::<(), numa_gpu_types::SimError>(())
/// ```
pub struct NumaGpuSystem {
    pub(crate) cfg: SystemConfig,
    pub(crate) sms: Vec<Sm>,
    /// Pending (not yet successfully issued) memory op per warp slot,
    /// parked on MSHR-full and replayed on retry.
    pub(crate) pending_ops: Vec<Vec<Option<WarpOp>>>,
    /// Per-warp memory scoreboard: outstanding loads and wait state.
    pub(crate) warp_mem: Vec<Vec<WarpMemState>>,
    pub(crate) l2s: Vec<SetAssocCache>,
    pub(crate) drams: Vec<Dram>,
    /// Per-socket request-direction crossbar (SM -> L2/switch).
    pub(crate) noc_req: Vec<ServiceQueue>,
    /// Per-socket response-direction crossbar (L2/switch -> SM).
    pub(crate) noc_resp: Vec<ServiceQueue>,
    pub(crate) switch: Switch,
    pub(crate) pages: PageTable,
    pub(crate) ctls: Vec<PartitionController>,
    pub(crate) events: EventQueue<Ev>,
    pub(crate) now: Tick,
    pub(crate) plan: Option<LaunchPlan>,
    pub(crate) kernel: Option<Arc<dyn Kernel>>,
    pub(crate) outstanding_ctas: u32,
    /// In-flight staged memory events (the kernel loop drains these).
    pub(crate) inflight_mem: u64,
    /// High-water mark of fire-and-forget write completions, so a kernel
    /// that ends in a write burst is charged for the drain.
    pub(crate) write_drain: Tick,
    /// Outgoing remote read requests per socket in the current cache
    /// sampling window (the paper's incoming-bandwidth estimator).
    pub(crate) remote_reads_window: Vec<u64>,
    pub(crate) reads_local_class: u64,
    pub(crate) reads_remote_class: u64,
    pub(crate) samplers_scheduled: bool,
    pub(crate) has_run: bool,
    pub(crate) kernel_starts: Vec<u64>,
    /// Fault-injection state (`None` unless a non-empty plan is installed).
    pub(crate) fault_state: Option<FaultState>,
    /// Forward-progress watchdog (cycle budget + no-progress detector).
    pub(crate) watchdog: Watchdog,
    /// Metrics registry, trace sink, and Fig-5 timelines (see `observe`).
    pub(crate) obs: ObsState,
    // Derived constants.
    pub(crate) noc_latency: Tick,
    pub(crate) l2_hit_latency: Tick,
    pub(crate) sms_per_socket: u32,
}

impl std::fmt::Debug for NumaGpuSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NumaGpuSystem")
            .field("sockets", &self.cfg.num_sockets)
            .field("sms", &self.sms.len())
            .field("now_cycles", &ticks_to_cycles(self.now))
            .finish_non_exhaustive()
    }
}

impl NumaGpuSystem {
    /// Builds a system from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cfg.validate()` fails.
    pub fn new(cfg: SystemConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let sockets = cfg.num_sockets as usize;
        let sms_per_socket = cfg.sm.sms_per_socket as u32;
        let total_sms = sockets * sms_per_socket as usize;

        let l1_partition = if cfg.cache_mode == CacheMode::NumaAwareDynamic && cfg.partition_l1 {
            Some(WayPartition::balanced(cfg.l1.ways))
        } else {
            None
        };
        let l2_partition = match cfg.cache_mode {
            CacheMode::NumaAwareDynamic | CacheMode::StaticRemoteCache => {
                Some(WayPartition::balanced(cfg.l2.ways))
            }
            _ => None,
        };

        let mut sms = (0..total_sms)
            .map(|_| Sm::new(&cfg.sm, &cfg.l1, l1_partition))
            .collect::<Vec<_>>();
        let pending_ops = (0..total_sms)
            .map(|_| vec![None; cfg.sm.max_warps as usize])
            .collect();
        let warp_mem = (0..total_sms)
            .map(|_| vec![WarpMemState::default(); cfg.sm.max_warps as usize])
            .collect();
        let mut l2s: Vec<SetAssocCache> = (0..sockets)
            .map(|_| SetAssocCache::new(&cfg.l2, l2_partition))
            .collect();
        let mut drams: Vec<Dram> = (0..sockets).map(|_| Dram::new(cfg.dram)).collect();
        let noc_req = (0..sockets)
            .map(|_| ServiceQueue::new(cfg.noc.bytes_per_cycle))
            .collect();
        let noc_resp = (0..sockets)
            .map(|_| ServiceQueue::new(cfg.noc.bytes_per_cycle))
            .collect();
        let mut switch = Switch::new(&cfg.link, cfg.num_sockets);

        // Observability: registration happens once here, in socket order, so
        // snapshots are byte-stable across runs. All SMs of a socket share
        // clones of the same handles (socket-level cardinality).
        let mut obs = ObsState::new(&cfg.obs, sockets);
        if obs.registry.is_some() {
            for s in 0..sockets {
                let h = obs.socket_handles(s);
                for sm in &mut sms[s * sms_per_socket as usize..(s + 1) * sms_per_socket as usize] {
                    sm.set_obs(h.sm.clone());
                }
                l2s[s].set_obs(h.l2);
                drams[s].set_obs(h.dram);
                switch.link_mut(SocketId::new(s as u8)).set_obs(h.link);
            }
        }
        let pages = PageTable::new(cfg.placement, cfg.num_sockets);
        let ctls = (0..sockets)
            .map(|_| PartitionController::new(cfg.l2.ways))
            .collect();
        let budget = if cfg.watchdog.max_cycles > 0 {
            Some(cycles_to_ticks(cfg.watchdog.max_cycles))
        } else {
            None
        };
        let watchdog = Watchdog::new(
            budget,
            cycles_to_ticks(cfg.watchdog.effective_stall_cycles()),
        );

        Ok(NumaGpuSystem {
            noc_latency: cycles_to_ticks(cfg.noc.latency_cycles as u64),
            l2_hit_latency: cycles_to_ticks(cfg.l2.hit_latency_cycles as u64),
            sms_per_socket,
            cfg,
            sms,
            pending_ops,
            warp_mem,
            l2s,
            drams,
            noc_req,
            noc_resp,
            switch,
            pages,
            ctls,
            events: EventQueue::new(),
            now: 0,
            plan: None,
            kernel: None,
            outstanding_ctas: 0,
            inflight_mem: 0,
            write_drain: 0,
            remote_reads_window: vec![0; sockets],
            reads_local_class: 0,
            reads_remote_class: 0,
            samplers_scheduled: false,
            has_run: false,
            kernel_starts: Vec::new(),
            fault_state: None,
            watchdog,
            obs,
        })
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Enables per-sample link utilization recording (Fig 5 timelines).
    /// Call before [`Self::run`].
    pub fn enable_link_timeline(&mut self) {
        self.obs.record_timeline = true;
    }

    /// Installs a fault plan to apply during [`Self::run`]. Call before
    /// `run`. Installing an *empty* plan is exactly equivalent to never
    /// calling this: the run (and its report, byte for byte) is identical
    /// to a fault-free run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFaultPlan`] if the plan references
    /// sockets, lanes, or SMs outside this system's shape.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), SimError> {
        let lanes_total = self.cfg.link.lanes_per_direction.saturating_mul(2);
        plan.validate(self.cfg.num_sockets, lanes_total, self.sms.len() as u32)?;
        self.fault_state = if plan.is_empty() {
            None
        } else {
            Some(FaultState::new(plan, self.cfg.num_sockets as usize))
        };
        Ok(())
    }

    /// Socket that owns SM `sm`.
    #[inline]
    pub(crate) fn socket_of_sm(&self, sm: u32) -> SocketId {
        SocketId::new((sm / self.sms_per_socket) as u8)
    }

    /// Schedules a memory-path stage event, tracking it as in flight.
    #[inline]
    pub(crate) fn push_mem(&mut self, at: Tick, ev: Ev) {
        debug_assert!(ev.is_mem_stage());
        self.inflight_mem += 1;
        self.events.push(at, ev);
    }

    /// Runs `workload` to completion and returns the report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the scheduler stops making forward
    /// progress (event queue empties with CTAs outstanding, or the stall
    /// watchdog sees no progress for `watchdog.stall_cycles`), and
    /// [`SimError::CycleLimit`] if `watchdog.max_cycles` is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if called twice on the same system (state is single-use), if
    /// the workload has no kernels, or if a kernel's CTAs need more warps
    /// than an SM can hold.
    pub fn run(&mut self, workload: &Workload) -> Result<SimReport, SimError> {
        assert!(!self.has_run, "NumaGpuSystem::run is single-use");
        assert!(
            !workload.kernels.is_empty(),
            "workload must contain at least one kernel"
        );
        self.has_run = true;

        if let Some(fs) = &self.fault_state {
            let stamps: Vec<(Tick, u32)> = fs
                .plan
                .specs()
                .iter()
                .enumerate()
                .map(|(i, s)| (cycles_to_ticks(s.cycle), i as u32))
                .collect();
            for (at, idx) in stamps {
                self.events.push(at, Ev::Fault { idx });
            }
        }

        for kernel in &workload.kernels {
            assert!(
                kernel.warps_per_cta() >= 1
                    && kernel.warps_per_cta() <= self.cfg.sm.max_warps as u32,
                "kernel warps_per_cta {} exceeds SM capacity",
                kernel.warps_per_cta()
            );
            let start = self.kernel_boundary();
            self.now = start;
            self.kernel_starts.push(ticks_to_cycles(start));
            self.run_kernel(kernel.clone())?;
            if self.obs.tracing() {
                let start_cycle = ticks_to_cycles(start);
                let end_cycle = ticks_to_cycles(self.now.max(self.write_drain));
                let idx = self.kernel_starts.len() - 1;
                self.obs.emit(
                    TraceEvent::complete(
                        format!("kernel[{idx}] {}", kernel.name()),
                        "kernel",
                        start_cycle,
                        end_cycle.saturating_sub(start_cycle),
                        0,
                    )
                    .arg("ctas", kernel.num_ctas() as u64),
                );
            }
        }
        // Charge the final write drain.
        self.now = self.now.max(self.write_drain);
        Ok(self.build_report(workload))
    }

    fn build_report(&mut self, workload: &Workload) -> SimReport {
        // `run` folds the trailing write drain into `now` before reporting;
        // `kernel_cycles` relies on this so the last kernel's span covers
        // its fire-and-forget writes.
        debug_assert!(
            self.now >= self.write_drain,
            "build_report before the final write drain was charged"
        );
        let total_cycles = ticks_to_cycles(self.now);
        let sockets: Vec<SocketReport> = (0..self.cfg.num_sockets as usize)
            .map(|s| {
                let link = self.switch.link(SocketId::new(s as u8));
                SocketReport {
                    egress_bytes: link.stats().egress_bytes.get(),
                    ingress_bytes: link.stats().ingress_bytes.get(),
                    dram_bytes: self.drams[s].stats().bytes.get(),
                    l2: self.l2s[s].stats(),
                    lane_turns: link.stats().lane_turns.get(),
                    equalizations: link.stats().equalizations.get(),
                    l2_partition: self.l2s[s]
                        .partition()
                        .map(|p| (p.local_ways(), p.remote_ways())),
                }
            })
            .collect();
        let interconnect_bytes: u64 = sockets.iter().map(|s| s.egress_bytes).sum();
        let mut l1 = CacheStats::default();
        for sm in &self.sms {
            let s = sm.l1_stats();
            l1.local_hits.add(s.local_hits.get());
            l1.local_misses.add(s.local_misses.get());
            l1.remote_hits.add(s.remote_hits.get());
            l1.remote_misses.add(s.remote_misses.get());
            l1.fills.add(s.fills.get());
            l1.evictions.add(s.evictions.get());
        }
        let reads = self.reads_local_class + self.reads_remote_class;
        let link_timelines = std::mem::take(&mut self.obs.timelines);
        if let Some(reg) = &mut self.obs.registry {
            // Engine-level high-water marks, published once at end of run.
            let st = self.events.stats();
            reg.gauge("engine.events_scheduled").set(st.pushes);
            reg.gauge("engine.events_dispatched").set(st.pops);
            reg.gauge("engine.queue_max_len").set(st.max_len as u64);
        }
        let metrics = self.obs.registry.as_ref().map(|r| r.snapshot());
        let trace_events = self.obs.take_trace();
        let resilience = self.fault_state.as_ref().map(|fs| {
            let links = (0..self.cfg.num_sockets as usize)
                .map(|s| {
                    let link = self.switch.link(SocketId::new(s as u8));
                    LinkResilience {
                        socket: s as u8,
                        nominal_lane_cycles: total_cycles * link.nominal_lanes() as u64,
                        available_lane_cycles: link.available_lane_ticks(self.now)
                            / TICKS_PER_CYCLE,
                        recovery_cycles: fs.recovery[s],
                    }
                })
                .collect();
            ResilienceReport {
                applied: fs.applied.clone(),
                links,
                disabled_sms: fs.disabled_sms,
                requeued_ctas: fs.requeued_ctas,
            }
        });
        SimReport {
            workload: workload.meta.name.clone(),
            total_cycles,
            kernel_cycles: self.kernel_cycles(),
            kernel_start_cycles: self.kernel_starts.clone(),
            sockets,
            link_timelines,
            l1,
            remote_read_fraction: if reads == 0 {
                0.0
            } else {
                self.reads_remote_class as f64 / reads as f64
            },
            interconnect_bytes,
            link_power_w: average_link_power_w(interconnect_bytes, total_cycles),
            metrics,
            trace_events,
            resilience,
        }
    }

    fn kernel_cycles(&self) -> Vec<u64> {
        // Derive per-kernel durations from consecutive start marks plus the
        // final end time. Inter-kernel boundaries already fold the write
        // drain into the next start (`kernel_boundary`), so only the last
        // kernel needs the explicit `max` here: a trailing fire-and-forget
        // write burst belongs to the kernel that issued it, matching the
        // `now.max(write_drain)` fold in `run`.
        let mut cycles = Vec::with_capacity(self.kernel_starts.len());
        let last_end = ticks_to_cycles(self.now.max(self.write_drain));
        for (i, &start) in self.kernel_starts.iter().enumerate() {
            let end = self.kernel_starts.get(i + 1).copied().unwrap_or(last_end);
            cycles.push(end.saturating_sub(start));
        }
        cycles
    }
}
