//! Interconnect power model (paper §6).
//!
//! The paper estimates on-board link + switch energy at **10 pJ/bit**
//! (extrapolated from public Mellanox switch and adapter data) and reports
//! average communication power for the 4-GPU baseline (~30 W) versus the
//! NUMA-aware design (~14 W), with communication-intensive workloads
//! reaching ~130 W.

/// Energy per transported bit in picojoules (combined links and switch).
pub const PICOJOULES_PER_BIT: f64 = 10.0;

/// GPU clock period in nanoseconds (1 GHz).
pub const CYCLE_NS: f64 = 1.0;

/// Average interconnect power in watts for `bytes` transported end-to-end
/// over `cycles` of execution.
///
/// # Examples
///
/// ```
/// use numa_gpu_core::power::average_link_power_w;
///
/// // 64 B/cycle sustained = 64 GB/s = 5.12 W at 10 pJ/b.
/// let w = average_link_power_w(64_000, 1_000);
/// assert!((w - 5.12).abs() < 1e-9);
/// ```
pub fn average_link_power_w(bytes: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let joules = bytes as f64 * 8.0 * PICOJOULES_PER_BIT * 1e-12;
    let seconds = cycles as f64 * CYCLE_NS * 1e-9;
    joules / seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cycles_zero_power() {
        assert_eq!(average_link_power_w(1000, 0), 0.0);
    }

    #[test]
    fn full_duplex_4gpu_ballpark() {
        // 4 GPUs each sustaining 64 GB/s egress for 1M cycles:
        // 4 * 64e9 B/s * 8 b/B * 10 pJ/b = 20.5 W.
        let bytes = 4 * 64_000_000u64; // 64 B/cycle * 1e6 cycles * 4 links
        let w = average_link_power_w(bytes, 1_000_000);
        assert!((w - 20.48).abs() < 0.01, "got {w}");
    }

    #[test]
    fn power_scales_linearly_with_traffic() {
        let w1 = average_link_power_w(1_000_000, 1_000);
        let w2 = average_link_power_w(2_000_000, 1_000);
        assert!((w2 / w1 - 2.0).abs() < 1e-12);
    }
}
