//! Multi-tenancy on large NUMA GPUs (paper §6, "Multi-Tenancy on Large
//! GPUs").
//!
//! When a workload cannot fill a large multi-socket GPU, the paper suggests
//! partitioning the machine *along NUMA boundaries* into 1–N logical GPUs
//! rather than time-multiplexing the whole machine. Because sockets are
//! whole resource islands (SMs + L2 + DRAM + link), a NUMA-boundary
//! partition gives each tenant fully isolated hardware; this module
//! simulates both provisioning strategies so they can be compared:
//!
//! * [`run_space_partitioned`] — tenants run **concurrently**, each on its
//!   own group of sockets (makespan = slowest tenant).
//! * [`run_time_multiplexed`] — tenants run **sequentially**, each getting
//!   the whole machine (makespan = sum of runtimes).
//!
//! # Examples
//!
//! ```no_run
//! use numa_gpu_core::tenancy::{run_space_partitioned, TenantSpec};
//! use numa_gpu_types::SystemConfig;
//!
//! # fn wl() -> numa_gpu_runtime::Workload { unimplemented!() }
//! let tenants = vec![
//!     TenantSpec { workload: wl(), sockets: 2 },
//!     TenantSpec { workload: wl(), sockets: 2 },
//! ];
//! let r = run_space_partitioned(&SystemConfig::numa_aware_sockets(4), &tenants)?;
//! println!("makespan: {} cycles", r.makespan_cycles);
//! # Ok::<(), numa_gpu_types::SimError>(())
//! ```

use crate::{NumaGpuSystem, SimReport};
use numa_gpu_runtime::Workload;
use numa_gpu_types::{ConfigError, SimError, SystemConfig};

/// One tenant: a workload plus the number of sockets its logical GPU gets.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// The tenant's workload.
    pub workload: Workload,
    /// Sockets allocated to this tenant's logical GPU.
    pub sockets: u8,
}

/// Result of running a set of tenants under one provisioning strategy.
#[derive(Debug, Clone)]
pub struct TenancyReport {
    /// Per-tenant simulation reports, in input order.
    pub per_tenant: Vec<SimReport>,
    /// Total machine occupancy: the slowest tenant for space partitioning,
    /// the sum of runtimes for time multiplexing.
    pub makespan_cycles: u64,
}

impl TenancyReport {
    /// Aggregate throughput in tenant-workloads per million cycles.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.per_tenant.len() as f64 * 1.0e6 / self.makespan_cycles as f64
        }
    }
}

/// Runs every tenant concurrently, each on its own NUMA-boundary partition
/// of `base` (a logical GPU of `tenant.sockets` sockets with the same
/// per-socket resources and policies).
///
/// # Errors
///
/// Returns [`SimError::Config`] if the tenants request more sockets than
/// `base` provides, request zero sockets, or the derived configuration is
/// invalid; simulation errors propagate as for
/// [`run_workload`](crate::run_workload).
pub fn run_space_partitioned(
    base: &SystemConfig,
    tenants: &[TenantSpec],
) -> Result<TenancyReport, SimError> {
    let requested: u32 = tenants.iter().map(|t| t.sockets as u32).sum();
    if requested > base.num_sockets as u32 {
        return Err(ConfigError::new(format!(
            "tenants request {requested} sockets but the machine has {}",
            base.num_sockets
        ))
        .into());
    }
    if tenants.iter().any(|t| t.sockets == 0) {
        return Err(ConfigError::new("each tenant needs at least one socket").into());
    }
    let mut per_tenant = Vec::with_capacity(tenants.len());
    let mut makespan = 0u64;
    for t in tenants {
        let mut cfg = base.clone();
        cfg.num_sockets = t.sockets;
        let mut sys = NumaGpuSystem::new(cfg)?;
        let report = sys.run(&t.workload)?;
        makespan = makespan.max(report.total_cycles);
        per_tenant.push(report);
    }
    Ok(TenancyReport {
        per_tenant,
        makespan_cycles: makespan,
    })
}

/// Runs every tenant sequentially on the whole machine (cooperative time
/// multiplexing — the alternative §6 calls undesirable for small kernels).
///
/// # Errors
///
/// Returns [`SimError::Config`] if `base` is invalid; simulation errors
/// propagate as for [`run_workload`](crate::run_workload).
pub fn run_time_multiplexed(
    base: &SystemConfig,
    tenants: &[TenantSpec],
) -> Result<TenancyReport, SimError> {
    let mut per_tenant = Vec::with_capacity(tenants.len());
    let mut makespan = 0u64;
    for t in tenants {
        let mut sys = NumaGpuSystem::new(base.clone())?;
        let report = sys.run(&t.workload)?;
        makespan += report.total_cycles;
        per_tenant.push(report);
    }
    Ok(TenancyReport {
        per_tenant,
        makespan_cycles: makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_gpu_runtime::{Kernel, Suite, WorkloadMeta};
    use numa_gpu_types::{Addr, CtaId, CtaProgram, WarpOp};
    use std::sync::Arc;

    struct SmallKernel;

    impl Kernel for SmallKernel {
        fn num_ctas(&self) -> u32 {
            32
        }
        fn warps_per_cta(&self) -> u32 {
            2
        }
        fn cta(&self, cta: CtaId) -> Box<dyn CtaProgram> {
            struct P {
                base: u64,
                left: [u32; 2],
            }
            impl CtaProgram for P {
                fn num_warps(&self) -> u32 {
                    2
                }
                fn next_op(&mut self, warp: u32) -> Option<WarpOp> {
                    let w = warp as usize;
                    if self.left[w] == 0 {
                        return None;
                    }
                    self.left[w] -= 1;
                    Some(WarpOp::read(Addr::new(
                        self.base + (self.left[w] as u64 + warp as u64 * 64) * 128,
                    )))
                }
            }
            Box::new(P {
                base: cta.index() as u64 * 16384,
                left: [8, 8],
            })
        }
    }

    fn workload() -> Workload {
        Workload {
            meta: WorkloadMeta {
                name: "tenant".into(),
                suite: Suite::Other,
                paper_avg_ctas: 32,
                paper_footprint_mb: 1,
                study_set: false,
            },
            kernels: vec![Arc::new(SmallKernel) as Arc<dyn Kernel>],
            footprint_bytes: 32 * 16384,
        }
    }

    #[test]
    fn space_partitioning_runs_all_tenants() {
        let tenants = vec![
            TenantSpec {
                workload: workload(),
                sockets: 2,
            },
            TenantSpec {
                workload: workload(),
                sockets: 2,
            },
        ];
        let r = run_space_partitioned(&SystemConfig::numa_aware_sockets(4), &tenants).unwrap();
        assert_eq!(r.per_tenant.len(), 2);
        assert_eq!(
            r.makespan_cycles,
            r.per_tenant.iter().map(|t| t.total_cycles).max().unwrap()
        );
        assert!(r.throughput_per_mcycle() > 0.0);
    }

    #[test]
    fn time_multiplexing_sums_runtimes() {
        let tenants = vec![
            TenantSpec {
                workload: workload(),
                sockets: 4,
            },
            TenantSpec {
                workload: workload(),
                sockets: 4,
            },
        ];
        let r = run_time_multiplexed(&SystemConfig::numa_aware_sockets(4), &tenants).unwrap();
        assert_eq!(
            r.makespan_cycles,
            r.per_tenant.iter().map(|t| t.total_cycles).sum::<u64>()
        );
    }

    #[test]
    fn space_beats_time_for_small_tenants() {
        // Two tenants that cannot fill a 4-socket machine each: running
        // them side by side on 2+2 sockets should beat running them one
        // after another on all 4 (the §6 argument).
        let tenants = vec![
            TenantSpec {
                workload: workload(),
                sockets: 2,
            },
            TenantSpec {
                workload: workload(),
                sockets: 2,
            },
        ];
        let base = SystemConfig::numa_aware_sockets(4);
        let space = run_space_partitioned(&base, &tenants).unwrap();
        let time = run_time_multiplexed(&base, &tenants).unwrap();
        assert!(
            space.makespan_cycles < time.makespan_cycles,
            "space {} !< time {}",
            space.makespan_cycles,
            time.makespan_cycles
        );
    }

    #[test]
    fn over_subscription_rejected() {
        let tenants = vec![TenantSpec {
            workload: workload(),
            sockets: 8,
        }];
        let err = run_space_partitioned(&SystemConfig::numa_aware_sockets(4), &tenants);
        assert!(err.is_err());
    }

    #[test]
    fn zero_socket_tenant_rejected() {
        let tenants = vec![TenantSpec {
            workload: workload(),
            sockets: 0,
        }];
        assert!(run_space_partitioned(&SystemConfig::numa_aware_sockets(4), &tenants).is_err());
    }
}
