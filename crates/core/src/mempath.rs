//! The staged memory path: L1 miss → NoC → L2 → DRAM or switch → home.
//!
//! Every resource (NoC direction, DRAM interface, link direction) is a
//! bandwidth-limited FIFO, and each is touched by an *event at its actual
//! arrival time*, so queue timestamps stay monotone and a far-future
//! response never blocks a present-time request.

use crate::system::{Ev, NumaGpuSystem};
use numa_gpu_cache::LineClass;
use numa_gpu_types::{LineAddr, SocketId, Tick, WarpSlot, WritePolicy, HEADER_BYTES, LINE_SIZE};

/// Bytes of a cache-line data packet.
pub(crate) const LINE_BYTES: u32 = LINE_SIZE as u32;
/// Bytes of a read request or write acknowledgment (header only).
pub(crate) const REQ_BYTES: u32 = HEADER_BYTES;
/// Bytes of a read response or write packet (line + header).
pub(crate) const DATA_PACKET_BYTES: u32 = LINE_BYTES + HEADER_BYTES;

impl NumaGpuSystem {
    /// Stage 1 (issue time): a read miss leaves the SM and crosses the
    /// request NoC toward the L2 / switch stop.
    pub(crate) fn start_read(&mut self, t: Tick, sm: u32, line: LineAddr, home: SocketId) {
        let s = self.socket_of_sm(sm).index();
        let at_l2 = self.noc_req[s].service(t, REQ_BYTES) + self.noc_latency;
        self.push_mem(at_l2, Ev::ReadAtL2 { sm, line, home });
    }

    /// Stage 2: the read request is at the requester's L2 complex.
    pub(crate) fn on_read_at_l2(&mut self, t: Tick, sm: u32, line: LineAddr, home: SocketId) {
        let socket = self.socket_of_sm(sm);
        let s = socket.index();
        if home == socket {
            if self.l2s[s].probe_read(line) {
                self.push_mem(
                    t + self.l2_hit_latency,
                    Ev::DataToSm {
                        sm,
                        line,
                        class: LineClass::Local,
                        fill_l2: false,
                    },
                );
                return;
            }
            self.l2s[s].record_miss(LineClass::Local);
            let ready = self.drams[s].read_line(t + self.l2_hit_latency, line, LINE_BYTES);
            self.push_mem(
                ready,
                Ev::DataToSm {
                    sm,
                    line,
                    class: LineClass::Local,
                    fill_l2: true,
                },
            );
            return;
        }
        // Remote line: GPU-side modes may have it cached locally.
        if self.cfg.cache_mode.caches_remote() {
            if self.l2s[s].probe_read(line) {
                self.push_mem(
                    t + self.l2_hit_latency,
                    Ev::DataToSm {
                        sm,
                        line,
                        class: LineClass::Remote,
                        fill_l2: false,
                    },
                );
                return;
            }
            self.l2s[s].record_miss(LineClass::Remote);
        }
        self.remote_reads_window[s] += 1;
        let arrive = self.switch.transfer(t, socket, home, REQ_BYTES);
        self.push_mem(arrive, Ev::ReadAtHome { sm, line, home });
    }

    /// Stage 3 (remote path): the request reached the home socket, whose L2
    /// is memory-side for incoming traffic in every mode.
    pub(crate) fn on_read_at_home(&mut self, t: Tick, sm: u32, line: LineAddr, home: SocketId) {
        let h = home.index();
        let ready = if self.l2s[h].probe_read(line) {
            t + self.l2_hit_latency
        } else {
            self.l2s[h].record_miss(LineClass::Local);
            let r = self.drams[h].read_line(t + self.l2_hit_latency, line, LINE_BYTES);
            self.fill_l2(t, home, line, LineClass::Local, false);
            r
        };
        self.push_mem(ready, Ev::ReadReturn { sm, line, home });
    }

    /// Stage 4 (remote path): data travels back over the switch.
    pub(crate) fn on_read_return(&mut self, t: Tick, sm: u32, line: LineAddr, home: SocketId) {
        let socket = self.socket_of_sm(sm);
        let arrive = self.switch.transfer(t, home, socket, DATA_PACKET_BYTES);
        self.push_mem(
            arrive,
            Ev::DataToSm {
                sm,
                line,
                class: LineClass::Remote,
                fill_l2: self.cfg.cache_mode.caches_remote(),
            },
        );
    }

    /// Stage 5: data is at the requester socket — optionally fill the local
    /// L2, then cross the response NoC to the SM.
    pub(crate) fn on_data_to_sm(
        &mut self,
        t: Tick,
        sm: u32,
        line: LineAddr,
        class: LineClass,
        fill_l2: bool,
    ) {
        let socket = self.socket_of_sm(sm);
        let s = socket.index();
        if fill_l2 {
            self.fill_l2(t, socket, line, class, false);
        }
        let at_sm = self.noc_resp[s].service(t, LINE_BYTES) + self.noc_latency;
        self.push_mem(at_sm, Ev::L1Fill { sm, line, class });
    }

    /// Write stage 1 (issue time): write data crosses the request NoC.
    /// The issuing warp is blocked until the store is *accepted* (absorbed
    /// locally or clear of the egress lanes) — finite store buffering, which
    /// gives the natural backpressure real SMs have.
    pub(crate) fn start_write(
        &mut self,
        t: Tick,
        sm: u32,
        slot: WarpSlot,
        line: LineAddr,
        home: SocketId,
    ) {
        let s = self.socket_of_sm(sm).index();
        let at_l2 = self.noc_req[s].service(t, DATA_PACKET_BYTES) + self.noc_latency;
        self.push_mem(
            at_l2,
            Ev::WriteAtL2 {
                sm,
                slot,
                line,
                home,
            },
        );
    }

    /// Write stage 2: at the requester's L2 complex. Returns control to the
    /// issuing warp at the acceptance tick.
    pub(crate) fn on_write_at_l2(
        &mut self,
        t: Tick,
        sm: u32,
        slot: WarpSlot,
        line: LineAddr,
        home: SocketId,
    ) {
        let socket = self.socket_of_sm(sm);
        let s = socket.index();
        let write_back = self.cfg.l2.write_policy == WritePolicy::WriteBack;
        let accept = if home == socket {
            let done = if write_back {
                if !self.l2s[s].probe_write(line, true) {
                    // Write-allocate without fetch (coalesced full-line
                    // writes, the common GPU case).
                    self.fill_l2(t, socket, line, LineClass::Local, true);
                }
                t
            } else {
                let _ = self.l2s[s].probe_write(line, false);
                self.drams[s].write_line(t, line, LINE_BYTES)
            };
            self.write_drain = self.write_drain.max(done);
            t
        } else if self.cfg.cache_mode.caches_remote() && write_back {
            // The GPU-side write-back L2 absorbs remote writes locally; data
            // crosses the link on eviction or at the coherence flush — the
            // §5.2 WB-vs-WT inter-GPU write bandwidth saving.
            if !self.l2s[s].probe_write(line, true) {
                self.fill_l2(t, socket, line, LineClass::Remote, true);
            }
            self.write_drain = self.write_drain.max(t);
            t
        } else {
            let (egress_clear, arrive) =
                self.switch
                    .transfer_timed(t, socket, home, DATA_PACKET_BYTES);
            self.push_mem(
                arrive,
                Ev::WriteAtHome {
                    from: socket,
                    line,
                    home,
                },
            );
            egress_clear
        };
        self.events.push(accept, Ev::WarpIssue { sm, slot });
    }

    /// Write stage 3 (remote path): absorbed at the home socket; a small
    /// acknowledgment returns.
    pub(crate) fn on_write_at_home(
        &mut self,
        t: Tick,
        from: SocketId,
        line: LineAddr,
        home: SocketId,
    ) {
        let done = self.absorb_write_at_home(t, home, line);
        let ack = self.switch.transfer(t, home, from, REQ_BYTES);
        self.write_drain = self.write_drain.max(done.max(ack));
    }

    /// A write (or writeback) arriving at its home socket: absorbed by the
    /// memory-side L2 or forwarded to DRAM under write-through.
    fn absorb_write_at_home(&mut self, t: Tick, home: SocketId, line: LineAddr) -> Tick {
        let h = home.index();
        if self.cfg.l2.write_policy == WritePolicy::WriteBack {
            if !self.l2s[h].probe_write(line, true) {
                self.fill_l2(t, home, line, LineClass::Local, true);
            }
            t
        } else {
            let _ = self.l2s[h].probe_write(line, false);
            self.drams[h].write_line(t, line, LINE_BYTES)
        }
    }

    /// Installs a line into `socket`'s L2, draining any dirty victim.
    pub(crate) fn fill_l2(
        &mut self,
        t: Tick,
        socket: SocketId,
        line: LineAddr,
        class: LineClass,
        dirty: bool,
    ) {
        if let Some(victim) = self.l2s[socket.index()].fill(line, class, dirty) {
            if victim.dirty {
                let done = self.writeback(t, socket, victim.line);
                self.write_drain = self.write_drain.max(done);
            }
        }
    }

    /// Writes a dirty line back to its home memory; returns completion tick.
    pub(crate) fn writeback(&mut self, t: Tick, socket: SocketId, line: LineAddr) -> Tick {
        let home = self.pages.home_of_line(line, socket);
        if home == socket {
            self.drams[socket.index()].write_line(t, line, LINE_BYTES)
        } else {
            let arrive = self.switch.transfer(t, socket, home, DATA_PACKET_BYTES);
            self.push_mem(
                arrive,
                Ev::WriteAtHome {
                    from: socket,
                    line,
                    home,
                },
            );
            arrive
        }
    }
}
