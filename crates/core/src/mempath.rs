//! The staged memory path: L1 miss → NoC → L2 → DRAM or cross-partition
//! message → home.
//!
//! Every resource (NoC direction, DRAM interface, link direction) is a
//! bandwidth-limited FIFO, and each is touched by an *event at its actual
//! arrival time*, so queue timestamps stay monotone and a far-future
//! response never blocks a present-time request.
//!
//! Socket-to-socket traffic is the partition boundary. The monolithic
//! switch's transfer decomposed into two legs: the source shard pays its
//! egress lanes plus half the wire latency and parks an [`XMsg`] in its
//! window outbox ([`SocketShard::send_cross`]); the barrier delivers it as
//! an `Ev::XArrive` in the destination shard, which pays ingress plus the
//! second half on receipt ([`SocketShard::on_x_arrive`]). End to end the
//! timing legs are the monolithic model's, but each link is only ever
//! touched by its owning partition.

use crate::system::{Ev, PagesView, SocketShard, XMsg};
use numa_gpu_cache::LineClass;
use numa_gpu_interconnect::LinkDirection;
use numa_gpu_types::{LineAddr, SocketId, Tick, WarpSlot, WritePolicy, HEADER_BYTES, LINE_SIZE};

/// Bytes of a cache-line data packet.
pub(crate) const LINE_BYTES: u32 = LINE_SIZE as u32;
/// Bytes of a read request or write acknowledgment (header only).
pub(crate) const REQ_BYTES: u32 = HEADER_BYTES;
/// Bytes of a read response or write packet (line + header).
pub(crate) const DATA_PACKET_BYTES: u32 = LINE_BYTES + HEADER_BYTES;

impl SocketShard {
    /// Stage 1 (issue time): a read miss leaves the SM and crosses the
    /// request NoC toward the L2 / switch stop.
    pub(crate) fn start_read(&mut self, t: Tick, sm: u32, line: LineAddr, home: SocketId) {
        let at_l2 = self.noc_req.service(t, REQ_BYTES) + self.noc_latency;
        self.push_mem(at_l2, Ev::ReadAtL2 { sm, line, home });
    }

    /// Stage 2: the read request is at the requester's L2 complex.
    pub(crate) fn on_read_at_l2(&mut self, t: Tick, sm: u32, line: LineAddr, home: SocketId) {
        if home == self.socket {
            if self.l2.probe_read(line) {
                self.push_mem(
                    t + self.l2_hit_latency,
                    Ev::DataToSm {
                        sm,
                        line,
                        class: LineClass::Local,
                        fill_l2: false,
                    },
                );
                return;
            }
            self.l2.record_miss(LineClass::Local);
            let ready = self
                .dram
                .read_line(t + self.l2_hit_latency, line, LINE_BYTES);
            self.push_mem(
                ready,
                Ev::DataToSm {
                    sm,
                    line,
                    class: LineClass::Local,
                    fill_l2: true,
                },
            );
            return;
        }
        // Remote line: GPU-side modes may have it cached locally.
        if self.cfg.cache_mode.caches_remote() {
            if self.l2.probe_read(line) {
                self.push_mem(
                    t + self.l2_hit_latency,
                    Ev::DataToSm {
                        sm,
                        line,
                        class: LineClass::Remote,
                        fill_l2: false,
                    },
                );
                return;
            }
            self.l2.record_miss(LineClass::Remote);
        }
        self.remote_reads_window += 1;
        self.send_cross(t, home, XMsg::ReadReq { sm, line, home }, REQ_BYTES);
    }

    /// Stage 3 (remote path): the request reached the home socket, whose L2
    /// is memory-side for incoming traffic in every mode.
    pub(crate) fn on_read_at_home(
        &mut self,
        t: Tick,
        sm: u32,
        line: LineAddr,
        pages: &mut PagesView<'_>,
    ) {
        let home = self.socket;
        let ready = if self.l2.probe_read(line) {
            t + self.l2_hit_latency
        } else {
            self.l2.record_miss(LineClass::Local);
            let r = self
                .dram
                .read_line(t + self.l2_hit_latency, line, LINE_BYTES);
            self.fill_l2(t, line, LineClass::Local, false, pages);
            r
        };
        self.push_mem(ready, Ev::ReadReturn { sm, line, home });
    }

    /// Stage 4 (remote path): data travels back over the switch to the
    /// requester's partition.
    pub(crate) fn on_read_return(&mut self, t: Tick, sm: u32, line: LineAddr) {
        let dest = self.socket_of(sm);
        self.send_cross(t, dest, XMsg::ReadResp { sm, line }, DATA_PACKET_BYTES);
    }

    /// Stage 5: data is at the requester socket — optionally fill the local
    /// L2, then cross the response NoC to the SM.
    pub(crate) fn on_data_to_sm(
        &mut self,
        t: Tick,
        sm: u32,
        line: LineAddr,
        class: LineClass,
        fill_l2: bool,
        pages: &mut PagesView<'_>,
    ) {
        if fill_l2 {
            self.fill_l2(t, line, class, false, pages);
        }
        let at_sm = self.noc_resp.service(t, LINE_BYTES) + self.noc_latency;
        self.push_mem(at_sm, Ev::L1Fill { sm, line, class });
    }

    /// Write stage 1 (issue time): write data crosses the request NoC.
    /// The issuing warp is blocked until the store is *accepted* (absorbed
    /// locally or clear of the egress lanes) — finite store buffering, which
    /// gives the natural backpressure real SMs have.
    pub(crate) fn start_write(
        &mut self,
        t: Tick,
        sm: u32,
        slot: WarpSlot,
        line: LineAddr,
        home: SocketId,
    ) {
        let at_l2 = self.noc_req.service(t, DATA_PACKET_BYTES) + self.noc_latency;
        self.push_mem(
            at_l2,
            Ev::WriteAtL2 {
                sm,
                slot,
                line,
                home,
            },
        );
    }

    /// Write stage 2: at the requester's L2 complex. Returns control to the
    /// issuing warp at the acceptance tick.
    pub(crate) fn on_write_at_l2(
        &mut self,
        t: Tick,
        sm: u32,
        slot: WarpSlot,
        line: LineAddr,
        home: SocketId,
        pages: &mut PagesView<'_>,
    ) {
        let write_back = self.cfg.l2.write_policy == WritePolicy::WriteBack;
        let accept = if home == self.socket {
            let done = if write_back {
                if !self.l2.probe_write(line, true) {
                    // Write-allocate without fetch (coalesced full-line
                    // writes, the common GPU case).
                    self.fill_l2(t, line, LineClass::Local, true, pages);
                }
                t
            } else {
                let _ = self.l2.probe_write(line, false);
                self.dram.write_line(t, line, LINE_BYTES)
            };
            self.write_drain = self.write_drain.max(done);
            t
        } else if self.cfg.cache_mode.caches_remote() && write_back {
            // The GPU-side write-back L2 absorbs remote writes locally; data
            // crosses the link on eviction or at the coherence flush — the
            // §5.2 WB-vs-WT inter-GPU write bandwidth saving.
            if !self.l2.probe_write(line, true) {
                self.fill_l2(t, line, LineClass::Remote, true, pages);
            }
            self.write_drain = self.write_drain.max(t);
            t
        } else {
            let from = self.socket;
            self.send_cross(
                t,
                home,
                XMsg::WriteData { from, line, home },
                DATA_PACKET_BYTES,
            )
        };
        self.queue.push(accept, Ev::WarpIssue { sm, slot });
    }

    /// Write stage 3 (remote path): absorbed at this (home) socket; a small
    /// acknowledgment returns to the writer's partition, extending its
    /// write drain on arrival.
    pub(crate) fn on_write_at_home(
        &mut self,
        t: Tick,
        from: SocketId,
        line: LineAddr,
        pages: &mut PagesView<'_>,
    ) {
        let done = self.absorb_write_at_home(t, line, pages);
        self.write_drain = self.write_drain.max(done);
        self.send_cross(t, from, XMsg::WriteAck, REQ_BYTES);
    }

    /// A cross-partition message reached this shard's switch boundary: pay
    /// the ingress lanes and the second latency half, then continue the
    /// pipeline stage the message carries.
    pub(crate) fn on_x_arrive(&mut self, t: Tick, msg: XMsg) {
        match msg {
            XMsg::ReadReq { sm, line, home } => {
                let arrive =
                    self.link.send(t, LinkDirection::Ingress, REQ_BYTES) + self.hop_latency;
                self.push_mem(arrive, Ev::ReadAtHome { sm, line, home });
            }
            XMsg::ReadResp { sm, line } => {
                let arrive =
                    self.link.send(t, LinkDirection::Ingress, DATA_PACKET_BYTES) + self.hop_latency;
                self.push_mem(
                    arrive,
                    Ev::DataToSm {
                        sm,
                        line,
                        class: LineClass::Remote,
                        fill_l2: self.cfg.cache_mode.caches_remote(),
                    },
                );
            }
            XMsg::WriteData { from, line, home } => {
                let arrive =
                    self.link.send(t, LinkDirection::Ingress, DATA_PACKET_BYTES) + self.hop_latency;
                self.push_mem(arrive, Ev::WriteAtHome { from, line, home });
            }
            XMsg::WriteAck => {
                let arrive =
                    self.link.send(t, LinkDirection::Ingress, REQ_BYTES) + self.hop_latency;
                self.write_drain = self.write_drain.max(arrive);
            }
        }
    }

    /// A write (or writeback) arriving at its home socket: absorbed by the
    /// memory-side L2 or forwarded to DRAM under write-through.
    fn absorb_write_at_home(&mut self, t: Tick, line: LineAddr, pages: &mut PagesView<'_>) -> Tick {
        if self.cfg.l2.write_policy == WritePolicy::WriteBack {
            if !self.l2.probe_write(line, true) {
                self.fill_l2(t, line, LineClass::Local, true, pages);
            }
            t
        } else {
            let _ = self.l2.probe_write(line, false);
            self.dram.write_line(t, line, LINE_BYTES)
        }
    }

    /// Installs a line into this socket's L2, draining any dirty victim.
    pub(crate) fn fill_l2(
        &mut self,
        t: Tick,
        line: LineAddr,
        class: LineClass,
        dirty: bool,
        pages: &mut PagesView<'_>,
    ) {
        if let Some(victim) = self.l2.fill(line, class, dirty) {
            if victim.dirty {
                let done = self.writeback(t, victim.line, pages);
                self.write_drain = self.write_drain.max(done);
            }
        }
    }

    /// Writes a dirty line back to its home memory; returns the completion
    /// tick as far as this partition can know it (a remote home's DRAM
    /// write extends the drain further via the WriteAck path).
    pub(crate) fn writeback(&mut self, t: Tick, line: LineAddr, pages: &mut PagesView<'_>) -> Tick {
        let home = self.home_of_line(t, line, pages);
        if home == self.socket {
            self.dram.write_line(t, line, LINE_BYTES)
        } else {
            let from = self.socket;
            let egress_clear = self.send_cross(
                t,
                home,
                XMsg::WriteData { from, line, home },
                DATA_PACKET_BYTES,
            );
            egress_clear + self.hop_latency
        }
    }
}
