//! Kernel-boundary software coherence (paper §3.2, §5.2).
//!
//! GPU coherence in the modeled machine is software based: compiler
//! inserted cache control operations flush the SM-side L1s at every kernel
//! boundary. When the L2 holds GPU-side data (the static R$, shared
//! coherent, and NUMA-aware organizations), the same bulk invalidation must
//! extend into it: dirty lines drain to their homes (consuming DRAM and
//! link bandwidth) before the next kernel may launch.
//!
//! The boundary runs serially between kernels — no windows are open, every
//! outbox is empty — so it may touch any pair of shards directly; the two
//! legs of a cross-socket writeback are applied back to back exactly as the
//! monolithic switch would have.
//!
//! The `ideal_no_l2_invalidate` switch models Figure 9's hypothetical upper
//! bound: an L2 that can ignore invalidation events entirely.

use crate::mempath::{DATA_PACKET_BYTES, LINE_BYTES};
use crate::system::{Ev, NumaGpuSystem};
use numa_gpu_cache::LineClass;
use numa_gpu_interconnect::LinkDirection;
use numa_gpu_types::{cycles_to_ticks, CacheMode, SocketId, Tick};

/// Fixed cost of broadcasting the bulk-invalidate command, in cycles.
const INVALIDATE_BROADCAST_CYCLES: u64 = 64;

impl NumaGpuSystem {
    /// Performs the kernel-boundary synchronization: flushes software
    /// coherent caches, drains dirty data, resets links to symmetric and
    /// cache partitions to the even split. Returns the tick at which the
    /// next kernel may launch.
    pub(crate) fn kernel_boundary(&mut self) -> Tick {
        let t = self.now;
        let mut ready = t;

        // L1s always flush (write-through: clean, so no traffic).
        for shard in &mut self.shards {
            for sm in &mut shard.sms {
                sm.flush_l1();
            }
        }

        // Writes issued during the previous kernel must be globally visible
        // (per-GPU fences are promoted to system level).
        ready = ready.max(self.write_drain);

        // L2 flush by organization. Invalidation is a broadcast; the dirty
        // lines drain *lazily* through the DRAM and link queues, delaying
        // the next kernel only through contention (real flush hardware
        // overlaps the drain the same way).
        let flush_l2 = self.cfg.cache_mode.l2_needs_flush() && !self.cfg.ideal_no_l2_invalidate;
        if flush_l2 {
            ready += cycles_to_ticks(INVALIDATE_BROADCAST_CYCLES);
            for s in 0..self.shards.len() {
                let socket = SocketId::new(s as u8);
                let outcome = match self.cfg.cache_mode {
                    // Only the GPU-side remote cache portion is coherent; the
                    // memory-side local portion needs no invalidation.
                    CacheMode::StaticRemoteCache => self.shards[s]
                        .l2
                        .invalidate_where(|_, class| class == LineClass::Remote),
                    _ => self.shards[s].l2.invalidate_all(),
                };
                for line in outcome.dirty_writebacks {
                    let home = self.pages.home_of_line(line, socket);
                    if home == socket {
                        let done = self.shards[s].dram.write_line(t, line, LINE_BYTES);
                        self.write_drain = self.write_drain.max(done);
                    } else {
                        // Every message leg applied here, serially: egress
                        // plus the access hop at the flushing socket, any
                        // interior fabric hops, then ingress plus the final
                        // access hop at the home. Note `hop_latency`, not
                        // the executor's `lookahead` — the two values
                        // coincide only in the star fabric. The home-side
                        // absorption is still an event, processed by the
                        // next kernel's loop (in-flight count keeps the
                        // loop alive until it drains).
                        let egress_clear =
                            self.shards[s]
                                .link
                                .send(t, LinkDirection::Egress, DATA_PACKET_BYTES);
                        let at_switch = egress_clear + self.hop_latency;
                        let at_home_switch = self.fabric.interior_traverse(
                            socket,
                            home,
                            at_switch,
                            DATA_PACKET_BYTES,
                        );
                        let arrive = self.shards[home.index()].link.send(
                            at_home_switch,
                            LinkDirection::Ingress,
                            DATA_PACKET_BYTES,
                        ) + self.hop_latency;
                        self.shards[home.index()].queue.push(
                            arrive,
                            Ev::WriteAtHome {
                                from: socket,
                                line,
                                home,
                            },
                        );
                        self.inflight_mem += 1;
                        self.write_drain = self.write_drain.max(arrive);
                    }
                }
            }
        }

        // Links return to the symmetric kernel-launch configuration. The
        // cache partition controllers keep their learned split: the paper
        // allocates the even split "at initial kernel launch" and adapts
        // from there (resetting every launch would re-pay the convergence
        // tax each kernel).
        for shard in &mut self.shards {
            shard.link.reset_symmetric(ready);
        }
        self.fabric.reset_interior_symmetric(ready);
        ready
    }
}
