//! Observability wiring: builds the metrics registry and trace sink from
//! [`ObsConfig`](numa_gpu_types::ObsConfig) and installs per-component
//! handles at system construction time.
//!
//! Aggregation is per socket: every SM of a socket shares clones of the
//! same handles, so metric cardinality stays bounded at 256 SMs. With
//! observability off (the default) no registry or sink exists and every
//! handle is a disabled no-op.

use numa_gpu_cache::CacheObs;
use numa_gpu_interconnect::{LinkObs, LinkSample};
use numa_gpu_mem::DramObs;
use numa_gpu_obs::{MetricsRegistry, RingBufferSink, TraceEvent, TraceSink};
use numa_gpu_sm::SmObs;
use numa_gpu_types::ObsConfig;

/// Per-run observability state owned by the system.
#[derive(Debug, Default)]
pub(crate) struct ObsState {
    /// Metrics registry, present when `obs.metrics` is on.
    pub registry: Option<MetricsRegistry>,
    /// Trace event sink, present when `obs.trace` is on.
    pub sink: Option<RingBufferSink>,
    /// Whether Fig-5 link timelines are being recorded (back-compat path).
    pub record_timeline: bool,
    /// Per-socket utilization timelines recorded at each link sample.
    pub timelines: Vec<Vec<LinkSample>>,
}

impl ObsState {
    /// Builds the state implied by `cfg` for `sockets` sockets.
    pub fn new(cfg: &ObsConfig, sockets: usize) -> Self {
        ObsState {
            registry: cfg.metrics.then(MetricsRegistry::new),
            sink: cfg.trace.then(|| {
                RingBufferSink::new(if cfg.trace_capacity == 0 {
                    usize::MAX
                } else {
                    cfg.trace_capacity as usize
                })
            }),
            record_timeline: false,
            timelines: vec![Vec::new(); sockets],
        }
    }

    /// Whether trace events should be emitted.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// Records one trace event (no-op when tracing is off).
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = &mut self.sink {
            sink.record(event);
        }
    }

    /// Registers the per-socket handle bundle for socket `s`. Returns
    /// all-disabled handles when metrics are off.
    pub fn socket_handles(&mut self, s: usize) -> SocketObs {
        let Some(reg) = &mut self.registry else {
            return SocketObs::default();
        };
        SocketObs {
            sm: SmObs {
                issue_stalls: reg.counter(&format!("sm.s{s}.issue_stalls")),
                mshr_occupancy: reg.histogram(&format!("sm.s{s}.mshr_occupancy")),
            },
            l2: CacheObs {
                repartitions: reg.counter(&format!("l2.s{s}.repartitions")),
                local_ways: reg.gauge(&format!("l2.s{s}.local_ways")),
            },
            dram: DramObs {
                row_hits: reg.counter(&format!("dram.s{s}.row_hits")),
                row_misses: reg.counter(&format!("dram.s{s}.row_misses")),
            },
            link: LinkObs {
                egress_backlog_cycles: reg.histogram(&format!("link.s{s}.egress_backlog_cycles")),
                ingress_backlog_cycles: reg.histogram(&format!("link.s{s}.ingress_backlog_cycles")),
                conflicts: reg.counter(&format!("link.s{s}.conflicts")),
            },
        }
    }

    /// Takes the recorded trace, finishing the sink. Subsequent emits are
    /// dropped.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match self.sink.take() {
            Some(mut sink) => {
                sink.finish();
                sink.into_events()
            }
            None => Vec::new(),
        }
    }
}

/// The handle bundle every component of one socket shares.
#[derive(Debug, Clone, Default)]
pub(crate) struct SocketObs {
    pub sm: SmObs,
    pub l2: CacheObs,
    pub dram: DramObs,
    pub link: LinkObs,
}
