//! Kernel execution: the partitioned window-barrier event loop, warp
//! lifecycle, and CTA dispatch.
//!
//! # Conservative lookahead executor
//!
//! The loop repeatedly picks the earliest pending shard event `start`,
//! opens a window `[start, w_end)` with
//! `w_end = conservative_window(start, lookahead, next_control_tick)`,
//! runs every shard's events inside the window (concurrently on the
//! `exec` thread pool when `sim_threads > 1`), and then executes a
//! *barrier*: cross-partition outboxes are merged in canonical
//! `(tick, partition, seq)` order and delivered, first-touch page claims
//! are arbitrated, and global counters fold. Control-plane events
//! (samplers, fault stamps) run serially between windows, after same-tick
//! shard events — the control partition sorts last.
//!
//! The lookahead is the fabric's minimum adjacent-hop latency
//! (`Topology::min_hop_latency`). It is sound because the first hop out
//! of any socket is its access edge, which costs at least the minimum
//! hop: every cross-socket message pays at least the lookahead before
//! reaching the switch, so events inside a window can only schedule
//! cross-partition work at or after the window's end. Interior
//! switch↔switch hops are charged at the barrier itself, in canonical
//! merge order — they only ever *delay* deliveries beyond the stamped
//! switch-boundary tick, so they cannot violate the window bound, and on
//! the star fabric (no interior edges) the traversal is the identity.
//! Control events are excluded from windows the same way — a control
//! event at tick `c` bounds `w_end` to `c + 1`, and everything it
//! schedules lands at least the dispatch latency later.
//!
//! Identical state evolution at every `sim_threads` value follows from
//! shard isolation: inside a window a shard touches only its own state
//! (plus a read-only page table), so the execution interleaving chosen by
//! the pool cannot be observed.

use crate::system::{Ev, FaultState, NumaGpuSystem, PagesView, SocketShard};
use numa_gpu_cache::LineClass;
use numa_gpu_engine::{conservative_window, merge_cross_into, WatchdogTrip};
use numa_gpu_faults::{AppliedFault, FaultKind};
use numa_gpu_interconnect::{BalanceAction, LinkDirection};
use numa_gpu_obs::TraceEvent;
use numa_gpu_runtime::{Kernel, LaunchPlan};
use numa_gpu_sm::L1ReadOutcome;
use numa_gpu_types::{
    cycles_to_ticks, ticks_to_cycles, CacheMode, MemKind, PageId, PagePlacement, SimError,
    SocketId, Tick, WarpOp, WarpSlot, SATURATION_THRESHOLD, TICKS_PER_CYCLE,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Latency between CTA dispatch and its warps' first issue, in cycles.
const DISPATCH_LATENCY_CYCLES: u64 = 10;

/// Extra per-access latency a faulted DRAM charges inside its ECC
/// scrub-and-retry window, in cycles.
const ECC_RETRY_PENALTY_CYCLES: u64 = 25;

impl NumaGpuSystem {
    /// Runs one kernel to completion. `self.now` must already be the kernel
    /// launch time (after the boundary flush).
    ///
    /// Returns [`SimError::Deadlock`] when forward progress stops (all
    /// partition queues empty with CTAs outstanding, or the stall watchdog
    /// fires) and [`SimError::CycleLimit`] when the configured cycle budget
    /// runs out.
    pub(crate) fn run_kernel(&mut self, kernel: Arc<dyn Kernel>) -> Result<(), SimError> {
        let total_ctas = kernel.num_ctas();
        assert!(total_ctas > 0, "kernel with zero CTAs");
        // The launch plan's per-socket queues drain straight into the
        // shards: CTA dispatch never steals across sockets (matching the
        // paper's scheduler), so each shard owns its CTA list outright.
        let mut plan = LaunchPlan::new(self.cfg.cta_policy, total_ctas, self.cfg.num_sockets);
        self.outstanding_ctas = total_ctas;

        let launch = self.now;
        self.watchdog.note_progress(launch);
        for shard in &mut self.shards {
            while let Some(cta) = plan.next_for_socket(shard.socket) {
                shard.ctas.push_back(cta);
            }
            shard.kernel = Some(kernel.clone());
            shard.dispatch_local(launch);
        }
        self.ensure_samplers(launch);

        let result = self.event_loop();
        for shard in &mut self.shards {
            shard.kernel = None;
            shard.ctas.clear();
        }
        result
    }

    /// The window-barrier loop (see the module docs for the algorithm).
    fn event_loop(&mut self) -> Result<(), SimError> {
        while self.outstanding_ctas > 0 || self.inflight_mem > 0 {
            // In-flight traffic is always materialized: every staged event
            // sits in some shard queue, and outboxes are empty here (the
            // barrier drains them). So empty shard queues with work
            // outstanding means only the self-rescheduling control plane is
            // left; control events are not progress, and the stall watchdog
            // converts the spin into a deadlock report.
            let shard_next = self.shards.iter().filter_map(|s| s.queue.peek_tick()).min();
            let ctrl_next = self.control.peek_tick();
            match (shard_next, ctrl_next) {
                (None, None) => return Err(self.deadlock()),
                (None, Some(_)) => self.step_control()?,
                (Some(start), ctrl) => {
                    if ctrl.is_some_and(|c| c < start) {
                        self.step_control()?;
                        continue;
                    }
                    let w_end = conservative_window(start, self.lookahead, ctrl);
                    self.run_windows(w_end);
                    self.barrier_fold()?;
                    // Control events at the window edge run now, *after*
                    // the shard events of the same tick (control is the
                    // highest partition in the canonical order).
                    while self.control.peek_tick().is_some_and(|c| c < w_end) {
                        self.step_control()?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Pops and handles exactly one control-partition event.
    fn step_control(&mut self) -> Result<(), SimError> {
        let Some((t, ev)) = self.control.pop() else {
            return Ok(());
        };
        self.now = self.now.max(t);
        // Samplers and fault stamps fire unconditionally, so they are not
        // evidence of forward progress; shard events (including
        // cross-partition deliveries) are what resets the stall watchdog.
        let idle = self.outstanding_ctas > 0 && self.inflight_mem == 0;
        self.check_watchdog(idle)?;
        match ev {
            Ev::LinkSample => self.on_link_sample(t),
            Ev::CacheSample => self.on_cache_sample(t),
            Ev::Fault { idx } => self.on_fault(idx),
            _ => debug_assert!(false, "shard event {ev:?} in the control partition"),
        }
        Ok(())
    }

    /// Runs every shard up to (exclusive) `w_end`, concurrently when the
    /// pool has more than one worker and the page-placement policy allows a
    /// shared page table.
    fn run_windows(&mut self, w_end: Tick) {
        if matches!(self.cfg.placement, PagePlacement::FirstTouchMigrate { .. }) {
            // Reactive migration mutates the page table on remote accesses,
            // so these runs hold the exclusive borrow and advance shards in
            // partition order — same windows, same barriers, same results,
            // at every `sim_threads` value.
            for shard in &mut self.shards {
                let mut pages = PagesView::Exclusive(&mut self.pages);
                shard.run_window(w_end, &mut pages);
            }
        } else if self.pool.workers() == 1 {
            for shard in &mut self.shards {
                let mut pages = PagesView::Shared(&self.pages);
                shard.run_window(w_end, &mut pages);
            }
        } else {
            let pages = &self.pages;
            let tasks: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| {
                    move || {
                        let mut view = PagesView::Shared(pages);
                        shard.run_window(w_end, &mut view);
                    }
                })
                .collect();
            self.pool.run_scoped(tasks);
        }
    }

    /// The window barrier: merge and deliver cross-partition messages,
    /// arbitrate first-touch page claims, fold shard counters into the
    /// globals, and run the watchdog.
    fn barrier_fold(&mut self) -> Result<(), SimError> {
        // Cross-partition messages, gathered in partition order and merged
        // into the canonical (tick, partition, seq) order. Delivery pushes
        // are in merged order, so destination queues see an identical
        // insertion sequence at every thread count. Outboxes drain in place
        // and the merge buffer persists across barriers, so the steady
        // state allocates nothing here.
        self.barriers += 1;
        self.merge_reuses += self
            .shards
            .iter()
            .filter(|s| s.outbox.capacity() > 0)
            .count() as u64
            + u64::from(self.merge_buf.capacity() > 0);
        let shards = &mut self.shards;
        let merge_buf = &mut self.merge_buf;
        let fabric = &mut self.fabric;
        merge_cross_into(shards.iter_mut().map(|s| &mut s.outbox), merge_buf);
        self.xmsgs_merged += merge_buf.len() as u64;
        for m in merge_buf.iter() {
            let (dest, msg) = m.payload;
            // Interior fabric hops are charged here, in canonical merge
            // order — deterministic at every thread count, and the
            // identity on the star (no interior edges). In-flight
            // accounting happened at emission (`send_cross`); the XArrive
            // pop decrements it.
            let at =
                fabric.interior_traverse(SocketId::new(m.source as u8), dest, m.at, msg.bytes());
            shards[dest.index()].queue.push(at, Ev::XArrive { msg });
        }

        // First-touch claims: the earliest (tick, partition) touch wins,
        // exactly the order a single global queue would have placed in.
        let mut winners: BTreeMap<PageId, (Tick, usize)> = BTreeMap::new();
        for (p, shard) in self.shards.iter_mut().enumerate() {
            for (&page, &tick) in &shard.claims {
                let entry = winners.entry(page).or_insert((tick, p));
                if (tick, p) < *entry {
                    *entry = (tick, p);
                }
            }
            shard.claims.clear();
        }
        for (page, (_tick, p)) in winners {
            self.pages.commit_claim(page, SocketId::new(p as u8));
        }

        let mut delta: i64 = 0;
        let mut retired: u32 = 0;
        let mut lookups: u64 = 0;
        let mut processed: u64 = 0;
        let mut max_tick: Tick = 0;
        for shard in &mut self.shards {
            delta += std::mem::take(&mut shard.inflight_delta);
            retired += std::mem::take(&mut shard.retired_ctas);
            lookups += std::mem::take(&mut shard.lookups);
            processed += std::mem::take(&mut shard.processed);
            max_tick = max_tick.max(shard.last_tick);
            self.write_drain = self.write_drain.max(shard.write_drain);
        }
        let inflight = self.inflight_mem as i64 + delta;
        debug_assert!(inflight >= 0, "in-flight memory events went negative");
        self.inflight_mem = inflight.max(0) as u64;
        debug_assert!(
            retired <= self.outstanding_ctas,
            "retired more CTAs than launched"
        );
        self.outstanding_ctas = self.outstanding_ctas.saturating_sub(retired);
        self.pages.note_lookups(lookups);
        if processed > 0 {
            // Every shard event — cross-partition deliveries included — is
            // forward progress; a barrier-heavy run under a tight stall
            // watchdog must never trip while messages still flow.
            self.watchdog.note_progress(max_tick);
        }
        self.now = self.now.max(max_tick);
        let idle = self.outstanding_ctas > 0 && self.inflight_mem == 0;
        self.check_watchdog(idle)
    }

    /// Maps a watchdog trip onto the public error type.
    fn check_watchdog(&self, idle: bool) -> Result<(), SimError> {
        match self.watchdog.check(self.now, idle) {
            Ok(()) => Ok(()),
            Err(WatchdogTrip::Budget { limit, .. }) => Err(SimError::CycleLimit {
                limit_cycles: ticks_to_cycles(limit),
                at_cycle: ticks_to_cycles(self.now),
            }),
            Err(WatchdogTrip::Stall { .. }) => Err(self.deadlock()),
        }
    }

    /// The error for a run whose scheduler stopped making forward progress.
    fn deadlock(&self) -> SimError {
        SimError::Deadlock {
            cycle: ticks_to_cycles(self.now),
            outstanding_ctas: self.outstanding_ctas,
            inflight_mem: self.inflight_mem,
        }
    }

    /// Applies fault `idx` of the installed plan at the current time.
    fn on_fault(&mut self, idx: u32) {
        let spec = match self
            .fault_state
            .as_ref()
            .and_then(|fs: &FaultState| fs.plan.specs().get(idx as usize))
        {
            Some(spec) => *spec,
            None => return,
        };
        let now = self.now;
        let cycle = ticks_to_cycles(now);
        match spec.kind {
            FaultKind::LinkLanes {
                edge,
                healthy_lanes,
            } => {
                // Edge ids below the socket count hit the access links in
                // the shards; higher ids hit the fabric's interior links.
                let e = edge as usize;
                let link = if e < self.shards.len() {
                    Some(&mut self.shards[e].link)
                } else {
                    self.fabric.link_mut(e)
                };
                if let Some(link) = link {
                    let nominal = link.nominal_lanes();
                    let healthy = link.set_lane_health(now, healthy_lanes);
                    if let Some(fs) = &mut self.fault_state {
                        if healthy < nominal {
                            if fs.degraded_at[e].is_none() {
                                fs.degraded_at[e] = Some(cycle);
                            }
                        } else {
                            // Fully restored: a later degradation starts a
                            // fresh recovery measurement.
                            fs.degraded_at[e] = None;
                        }
                    }
                }
            }
            FaultKind::LinkRetrain {
                edge,
                window_cycles,
            } => {
                let e = edge as usize;
                let link = if e < self.shards.len() {
                    Some(&mut self.shards[e].link)
                } else {
                    self.fabric.link_mut(e)
                };
                if let Some(link) = link {
                    link.retrain(now, cycles_to_ticks(window_cycles as u64));
                }
            }
            FaultKind::DramStall {
                socket,
                window_cycles,
            } => {
                self.shards[socket as usize].dram.stall(
                    now,
                    cycles_to_ticks(window_cycles as u64),
                    cycles_to_ticks(ECC_RETRY_PENALTY_CYCLES),
                );
            }
            FaultKind::SmDisable { first_sm, last_sm } => {
                for sm in first_sm..=last_sm {
                    let sm = sm as u32;
                    let si = (sm / self.sms_per_socket) as usize;
                    let shard = &mut self.shards[si];
                    let li = (sm - shard.base_sm) as usize;
                    if !shard.sms[li].is_enabled() {
                        continue;
                    }
                    let evicted = shard.sms[li].disable();
                    // In-flight fills and wakeups for the dead SM are
                    // dropped at their handlers; clear the replay state so
                    // nothing resurrects a freed warp slot.
                    for op in &mut shard.pending_ops[li] {
                        *op = None;
                    }
                    for st in &mut shard.warp_mem[li] {
                        *st = Default::default();
                    }
                    // Evicted CTAs go back to the *front* of this socket's
                    // queue, preserving launch order.
                    for cta in evicted.iter().rev() {
                        shard.ctas.push_front(*cta);
                    }
                    shard.dispatch_local(now);
                    if let Some(fs) = &mut self.fault_state {
                        fs.disabled_sms += 1;
                        fs.requeued_ctas += evicted.len() as u32;
                    }
                }
            }
        }
        if let Some(fs) = &mut self.fault_state {
            fs.applied.push(AppliedFault {
                cycle,
                description: spec.kind.describe(),
            });
        }
        if self.obs.tracing() {
            self.obs.emit(
                TraceEvent::instant(
                    format!("fault: {}", spec.kind.describe()),
                    "fault",
                    cycle,
                    0,
                )
                .arg("planned_cycle", spec.cycle),
            );
        }
    }

    /// Schedules the periodic samplers the first time a kernel runs.
    fn ensure_samplers(&mut self, now: Tick) {
        if self.samplers_scheduled {
            return;
        }
        self.samplers_scheduled = true;
        self.control.push(
            now + cycles_to_ticks(self.cfg.link.sample_time_cycles as u64),
            Ev::LinkSample,
        );
        self.control.push(
            now + cycles_to_ticks(self.cfg.cache_sample_time_cycles as u64),
            Ev::CacheSample,
        );
        for shard in &mut self.shards {
            shard.dram.begin_window(now);
        }
    }

    /// Periodic link load balancer tick (§4).
    fn on_link_sample(&mut self, t: Tick) {
        // Capture window state before the balancer consumes it: rebalancing
        // resets the sampling window, so this is the only point where the
        // utilizations the decision saw are observable.
        let observing = self.obs.record_timeline || self.obs.tracing();
        let samples: Vec<numa_gpu_interconnect::LinkSample> = if observing {
            self.shards.iter().map(|s| s.link.sample_point(t)).collect()
        } else {
            Vec::new()
        };
        let interior_samples: Vec<(usize, numa_gpu_interconnect::LinkSample)> = if observing {
            self.fabric.interior_sample_points(t)
        } else {
            Vec::new()
        };
        let actions: Vec<BalanceAction> = self
            .shards
            .iter_mut()
            .map(|s| s.link.sample_and_rebalance(t, SATURATION_THRESHOLD))
            .collect();
        // Interior fabric edges run the same balancer, serially in edge
        // order on the control plane (empty on the star fabric).
        let interior_actions: Vec<(usize, BalanceAction)> = self
            .fabric
            .interior_sample_and_rebalance(t, SATURATION_THRESHOLD);
        // Resilience: the first non-Hold rebalance after a lane degradation
        // is the balancer's recovery response; record its latency. Access
        // edges (edge == socket) and interior edges share the bookkeeping.
        let mut recoveries: Vec<(usize, u64)> = Vec::new();
        if let Some(fs) = &mut self.fault_state {
            let cycle = ticks_to_cycles(t);
            let all_actions = actions
                .iter()
                .enumerate()
                .map(|(s, a)| (s, *a))
                .chain(interior_actions.iter().copied());
            for (e, action) in all_actions {
                if action == BalanceAction::Hold {
                    continue;
                }
                if let (Some(degraded), None) = (fs.degraded_at[e], fs.recovery[e]) {
                    let latency = cycle.saturating_sub(degraded);
                    fs.recovery[e] = Some(latency);
                    recoveries.push((e, latency));
                }
            }
        }
        if self.obs.record_timeline {
            for (s, sample) in samples.iter().enumerate() {
                self.obs.timelines[s].push(*sample);
            }
        }
        if self.obs.tracing() {
            let cycle = ticks_to_cycles(t);
            for (s, sample) in samples.iter().enumerate() {
                self.obs.emit(
                    TraceEvent::counter(format!("link.s{s}.util"), "link", cycle, s as u32)
                        .arg("egress", sample.egress_util)
                        .arg("ingress", sample.ingress_util),
                );
                self.obs.emit(
                    TraceEvent::counter(format!("link.s{s}.lanes"), "link", cycle, s as u32)
                        .arg("egress", sample.egress_lanes as u64)
                        .arg("ingress", sample.ingress_lanes as u64),
                );
            }
            for (e, sample) in &interior_samples {
                self.obs.emit(
                    TraceEvent::counter(format!("link.e{e}.util"), "link", cycle, *e as u32)
                        .arg("egress", sample.egress_util)
                        .arg("ingress", sample.ingress_util),
                );
                self.obs.emit(
                    TraceEvent::counter(format!("link.e{e}.lanes"), "link", cycle, *e as u32)
                        .arg("egress", sample.egress_lanes as u64)
                        .arg("ingress", sample.ingress_lanes as u64),
                );
            }
            for (s, action) in actions.iter().enumerate() {
                if *action != BalanceAction::Hold {
                    self.obs.emit(
                        TraceEvent::instant(
                            format!("link.s{s}.{action:?}"),
                            "rebalance",
                            cycle,
                            s as u32,
                        )
                        .arg("egress_util", samples[s].egress_util)
                        .arg("ingress_util", samples[s].ingress_util),
                    );
                }
            }
            for (e, action) in &interior_actions {
                if *action != BalanceAction::Hold {
                    let mut ev = TraceEvent::instant(
                        format!("link.e{e}.{action:?}"),
                        "rebalance",
                        cycle,
                        *e as u32,
                    );
                    if let Some((_, sample)) = interior_samples.iter().find(|(ie, _)| ie == e) {
                        ev = ev
                            .arg("egress_util", sample.egress_util)
                            .arg("ingress_util", sample.ingress_util);
                    }
                    self.obs.emit(ev);
                }
            }
            for (e, latency) in &recoveries {
                let label = if *e < self.shards.len() {
                    format!("link.s{e}.recovered")
                } else {
                    format!("link.e{e}.recovered")
                };
                self.obs.emit(
                    TraceEvent::instant(label, "fault", cycle, *e as u32)
                        .arg("recovery_cycles", *latency),
                );
            }
        }
        self.control.push(
            t + cycles_to_ticks(self.cfg.link.sample_time_cycles as u64),
            Ev::LinkSample,
        );
    }

    /// Periodic NUMA-aware cache partition tick (§5, Figure 7(d)).
    fn on_cache_sample(&mut self, t: Tick) {
        let window = self.cfg.cache_sample_time_cycles as u64;
        if self.cfg.cache_mode == CacheMode::NumaAwareDynamic {
            let partition_l1 = self.cfg.partition_l1;
            let l1_ways = self.cfg.l1.ways;
            for s in 0..self.shards.len() {
                let shard = &mut self.shards[s];
                // Step 1: estimate incoming inter-GPU bandwidth from the
                // outgoing read-request rate times the response packet size
                // (avoids mistaking incoming writes for read pressure).
                let resp_bytes = numa_gpu_types::LINE_SIZE + numa_gpu_types::HEADER_BYTES as u64;
                let est_incoming = shard.remote_reads_window * resp_bytes;
                let capacity = shard.link.direction_rate(LinkDirection::Ingress) * window;
                // The paper projects link utilization from demand. A
                // link-throttled requester issues at exactly the link rate
                // (the estimate hovers *at* capacity, never above), so the
                // projection counts ≥85% of capacity — or a directly
                // backlogged ingress queue — as saturated demand.
                let link_sat = est_incoming as f64 >= 0.85 * capacity as f64
                    || shard
                        .link
                        .is_saturated(t, LinkDirection::Ingress, SATURATION_THRESHOLD);
                let dram_sat = shard.dram.is_saturated(t, SATURATION_THRESHOLD);
                let action = shard.ctl.step(link_sat, dram_sat);
                let p = shard.ctl.partition();
                shard.l2.set_partition(p);
                if partition_l1 {
                    let l1p = scale_partition(p, l1_ways);
                    for sm in &mut shard.sms {
                        sm.set_l1_partition(l1p);
                    }
                }
                shard.remote_reads_window = 0;
                shard.dram.begin_window(t);
                if action != numa_gpu_cache::PartitionAction::Hold && self.obs.tracing() {
                    self.obs.emit(
                        TraceEvent::instant(
                            format!("l2.s{s}.{action:?}"),
                            "repartition",
                            ticks_to_cycles(t),
                            s as u32,
                        )
                        .arg("local_ways", p.local_ways() as u64)
                        .arg("remote_ways", p.remote_ways() as u64),
                    );
                }
            }
        }
        self.control
            .push(t + cycles_to_ticks(window), Ev::CacheSample);
    }
}

impl SocketShard {
    /// Runs this partition's events with timestamps strictly below `w_end`.
    /// Same-tick pushes made by handlers re-enter the loop, so a window is
    /// exactly the events a single global queue would have run for this
    /// socket in `[start, w_end)`.
    pub(crate) fn run_window(&mut self, w_end: Tick, pages: &mut PagesView<'_>) {
        while let Some((t, ev)) = self.queue.pop_if_before(w_end) {
            if ev.is_mem_stage() {
                self.inflight_delta -= 1;
            }
            self.processed += 1;
            self.last_tick = self.last_tick.max(t);
            self.handle(t, ev, pages);
        }
    }

    fn handle(&mut self, t: Tick, ev: Ev, pages: &mut PagesView<'_>) {
        match ev {
            Ev::WarpIssue { sm, slot } => self.on_warp_issue(t, sm, slot, pages),
            Ev::ReadAtL2 { sm, line, home } => self.on_read_at_l2(t, sm, line, home),
            Ev::ReadAtHome { sm, line, home } => {
                debug_assert_eq!(home, self.socket);
                self.on_read_at_home(t, sm, line, pages);
            }
            Ev::ReadReturn { sm, line, home } => {
                debug_assert_eq!(home, self.socket);
                self.on_read_return(t, sm, line);
            }
            Ev::DataToSm {
                sm,
                line,
                class,
                fill_l2,
            } => self.on_data_to_sm(t, sm, line, class, fill_l2, pages),
            Ev::L1Fill { sm, line, class } => self.on_l1_fill(t, sm, line, class),
            Ev::WriteAtL2 {
                sm,
                slot,
                line,
                home,
            } => self.on_write_at_l2(t, sm, slot, line, home, pages),
            Ev::WriteAtHome { from, line, home } => {
                debug_assert_eq!(home, self.socket);
                self.on_write_at_home(t, from, line, pages);
            }
            Ev::XArrive { msg } => self.on_x_arrive(t, msg),
            Ev::LinkSample | Ev::CacheSample | Ev::Fault { .. } => {
                debug_assert!(false, "control event {ev:?} in a shard partition");
            }
        }
    }

    /// Socket owning global SM id `sm`.
    #[inline]
    pub(crate) fn socket_of(&self, sm: u32) -> SocketId {
        SocketId::new((sm / self.sms.len() as u32) as u8)
    }

    /// Fills this socket's SMs with pending CTAs, in SM order.
    pub(crate) fn dispatch_local(&mut self, t: Tick) {
        let Some(kernel) = self.kernel.clone() else {
            return;
        };
        let warps = kernel.warps_per_cta();
        // Recycle the shard scratch buffer across dispatches (and L1
        // fills): in steady state no warp-slot vector is allocated.
        let mut slots = std::mem::take(&mut self.scratch_slots);
        'outer: loop {
            if self.ctas.is_empty() {
                break;
            }
            // Find the next SM with capacity.
            let mut placed = false;
            for i in 0..self.sms.len() {
                if self.sms[i].can_accept_cta(warps) {
                    let Some(cta) = self.ctas.pop_front() else {
                        break 'outer;
                    };
                    let program = kernel.cta(cta);
                    slots.clear();
                    if slots.capacity() > 0 {
                        self.buf_reuses += 1;
                    }
                    self.sms[i].dispatch_cta_into(cta, program, &mut slots);
                    let sm = self.base_sm + i as u32;
                    for &slot in &slots {
                        self.warp_mem[i][slot.index()] = Default::default();
                        // Deterministic per-warp jitter staggers first
                        // issues so near-simultaneous first touches spread
                        // across sockets instead of following event order.
                        let jitter = (sm as u64)
                            .wrapping_mul(2_654_435_761)
                            .wrapping_add(slot.index() as u64 * 40_503)
                            % 509;
                        let wake = t + cycles_to_ticks(DISPATCH_LATENCY_CYCLES + jitter);
                        self.queue.push(wake, Ev::WarpIssue { sm, slot });
                    }
                    placed = true;
                }
            }
            if !placed {
                break;
            }
        }
        self.scratch_slots = slots;
    }

    /// A warp is ready: pull its next op (or replay a parked one) and model
    /// its issue.
    fn on_warp_issue(&mut self, t: Tick, sm: u32, slot: WarpSlot, pages: &mut PagesView<'_>) {
        let li = (sm - self.base_sm) as usize;
        if !self.sms[li].is_enabled() {
            // Stale wakeup for an SM a fault disabled: its warp slots are
            // freed and its CTAs already requeued elsewhere.
            return;
        }
        let op = match self.pending_ops[li][slot.index()].take() {
            Some(op) => op,
            None => match self.sms[li].next_op(slot) {
                Some(op) => op,
                None => {
                    // Trace exhausted: wait for outstanding loads, then
                    // retire (and maybe complete the CTA).
                    if self.warp_mem[li][slot.index()].outstanding > 0 {
                        self.warp_mem[li][slot.index()].draining = true;
                        return;
                    }
                    if self.sms[li].retire_warp(slot).is_some() {
                        self.retired_ctas += 1;
                        self.dispatch_local(t);
                    }
                    return;
                }
            },
        };
        match op {
            WarpOp::Compute { cycles } => {
                let issue = self.sms[li].reserve_issue(t);
                self.queue.push(
                    issue + cycles_to_ticks(cycles as u64),
                    Ev::WarpIssue { sm, slot },
                );
            }
            WarpOp::Mem { addr, kind } => {
                let issue = self.sms[li].reserve_issue(t);
                let line = addr.line();
                let home = self.home_of_line(t, line, pages);
                let class = if home == self.socket {
                    LineClass::Local
                } else {
                    LineClass::Remote
                };
                match kind {
                    MemKind::Write => {
                        self.sms[li].l1_write(line);
                        // The warp resumes when the store is accepted
                        // (WriteAtL2 schedules the wakeup).
                        self.start_write(issue, sm, slot, line, home);
                    }
                    MemKind::Read => {
                        match self.sms[li].l1_read(line, class, slot) {
                            L1ReadOutcome::Hit => {
                                self.count_read(class);
                                let lat = self.sms[li].l1_hit_latency();
                                self.queue.push(issue + lat, Ev::WarpIssue { sm, slot });
                            }
                            outcome @ (L1ReadOutcome::MissMerged | L1ReadOutcome::MissPrimary) => {
                                self.count_read(class);
                                if outcome == L1ReadOutcome::MissPrimary {
                                    self.start_read(issue, sm, line, home);
                                }
                                // The load enters the warp's scoreboard; the
                                // warp keeps issuing until the scoreboard
                                // fills (memory-level parallelism), then
                                // blocks until a fill wakes it.
                                let st = &mut self.warp_mem[li][slot.index()];
                                st.outstanding += 1;
                                if (st.outstanding as u32) < self.cfg.sm.max_pending_loads as u32 {
                                    self.queue
                                        .push(issue + TICKS_PER_CYCLE, Ev::WarpIssue { sm, slot });
                                } else {
                                    st.blocked = true;
                                }
                            }
                            L1ReadOutcome::MshrFull => {
                                self.pending_ops[li][slot.index()] = Some(op);
                                self.sms[li].park_retry(slot);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Accounts one issued read by NUMA class (MSHR-full retries are not
    /// counted until they issue).
    fn count_read(&mut self, class: LineClass) {
        match class {
            LineClass::Local => self.reads_local_class += 1,
            LineClass::Remote => self.reads_remote_class += 1,
        }
    }

    /// A fill arrived at an SM: install the line, credit each waiting
    /// warp's scoreboard, and wake the ones that were stalled on it.
    fn on_l1_fill(&mut self, t: Tick, sm: u32, line: numa_gpu_types::LineAddr, class: LineClass) {
        let li = (sm - self.base_sm) as usize;
        if !self.sms[li].is_enabled() {
            // Fill for an SM a fault disabled: the data is dropped (the
            // requeued CTA will refetch); in-flight accounting already
            // happened at the event loop.
            return;
        }
        // Reuse the shard scratch buffer for the woken-warp list: the MSHR
        // file recycles its waiter storage internally, so a steady-state
        // fill allocates nothing.
        let mut woken = std::mem::take(&mut self.scratch_slots);
        woken.clear();
        if woken.capacity() > 0 {
            self.buf_reuses += 1;
        }
        self.sms[li].l1_fill_into(line, class, &mut woken);
        for &slot in &woken {
            let st = &mut self.warp_mem[li][slot.index()];
            debug_assert!(st.outstanding > 0, "fill without outstanding load");
            st.outstanding -= 1;
            if st.blocked {
                st.blocked = false;
                self.queue.push(t, Ev::WarpIssue { sm, slot });
            } else if st.draining && st.outstanding == 0 {
                self.queue.push(t, Ev::WarpIssue { sm, slot });
            }
        }
        self.scratch_slots = woken;
        // An MSHR freed: retry one parked warp.
        if let Some(slot) = self.sms[li].pop_retry() {
            self.queue.push(t, Ev::WarpIssue { sm, slot });
        }
    }
}

/// Projects an L2 way split onto a cache with `ways` ways, preserving the
/// local fraction and both one-way floors.
pub(crate) fn scale_partition(
    p: numa_gpu_cache::WayPartition,
    ways: u16,
) -> numa_gpu_cache::WayPartition {
    let local = (p.local_ways() as u32 * ways as u32 / p.total_ways() as u32) as u16;
    let local = local.clamp(1, ways - 1);
    numa_gpu_cache::WayPartition::with_local_ways(local, ways)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_gpu_cache::WayPartition;

    #[test]
    fn scale_partition_preserves_fraction() {
        let p = WayPartition::with_local_ways(4, 16); // 25% local
        let q = scale_partition(p, 4);
        assert_eq!(q.local_ways(), 1);
        assert_eq!(q.total_ways(), 4);
    }

    #[test]
    fn scale_partition_respects_floors() {
        let p = WayPartition::with_local_ways(15, 16);
        let q = scale_partition(p, 4);
        assert!(q.local_ways() >= 1 && q.remote_ways() >= 1);
        let p = WayPartition::with_local_ways(1, 16);
        let q = scale_partition(p, 4);
        assert_eq!(q.local_ways(), 1);
    }
}
