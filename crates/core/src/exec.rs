//! Kernel execution: event loop, warp lifecycle, CTA dispatch.

use crate::system::{Ev, NumaGpuSystem};
use numa_gpu_cache::LineClass;
use numa_gpu_engine::WatchdogTrip;
use numa_gpu_faults::{AppliedFault, FaultKind};
use numa_gpu_interconnect::BalanceAction;
use numa_gpu_obs::TraceEvent;
use numa_gpu_runtime::{Kernel, LaunchPlan};
use numa_gpu_sm::L1ReadOutcome;
use numa_gpu_types::{
    cycles_to_ticks, ticks_to_cycles, CacheMode, MemKind, SimError, SocketId, Tick, WarpOp,
    WarpSlot, SATURATION_THRESHOLD, TICKS_PER_CYCLE,
};
use std::sync::Arc;

/// Latency between CTA dispatch and its warps' first issue, in cycles.
const DISPATCH_LATENCY_CYCLES: u64 = 10;

/// Extra per-access latency a faulted DRAM charges inside its ECC
/// scrub-and-retry window, in cycles.
const ECC_RETRY_PENALTY_CYCLES: u64 = 25;

impl NumaGpuSystem {
    /// Runs one kernel to completion. `self.now` must already be the kernel
    /// launch time (after the boundary flush).
    ///
    /// Returns [`SimError::Deadlock`] when forward progress stops (empty
    /// event queue with CTAs outstanding, or the stall watchdog fires) and
    /// [`SimError::CycleLimit`] when the configured cycle budget runs out.
    pub(crate) fn run_kernel(&mut self, kernel: Arc<dyn Kernel>) -> Result<(), SimError> {
        let total_ctas = kernel.num_ctas();
        assert!(total_ctas > 0, "kernel with zero CTAs");
        self.plan = Some(LaunchPlan::new(
            self.cfg.cta_policy,
            total_ctas,
            self.cfg.num_sockets,
        ));
        self.kernel = Some(kernel);
        self.outstanding_ctas = total_ctas;

        let launch = self.now;
        self.watchdog.note_progress(launch);
        for s in 0..self.cfg.num_sockets {
            self.dispatch_socket(launch, SocketId::new(s));
        }
        self.ensure_samplers(launch);

        while self.outstanding_ctas > 0 || self.inflight_mem > 0 {
            // The periodic samplers self-reschedule forever, so the queue
            // never empties while a kernel runs in a healthy system; an
            // empty pop here is a genuine scheduler deadlock.
            let Some((t, ev)) = self.events.pop() else {
                return Err(self.deadlock());
            };
            self.now = self.now.max(t);
            if ev.is_mem_stage() {
                self.inflight_mem -= 1;
            }
            // Samplers and fault stamps fire unconditionally, so they are
            // not evidence of forward progress; everything else is.
            if !matches!(ev, Ev::LinkSample | Ev::CacheSample | Ev::Fault { .. }) {
                self.watchdog.note_progress(self.now);
            }
            let idle = self.outstanding_ctas > 0 && self.inflight_mem == 0;
            if let Err(trip) = self.watchdog.check(self.now, idle) {
                return Err(match trip {
                    WatchdogTrip::Budget { limit, .. } => SimError::CycleLimit {
                        limit_cycles: ticks_to_cycles(limit),
                        at_cycle: ticks_to_cycles(self.now),
                    },
                    WatchdogTrip::Stall { .. } => self.deadlock(),
                });
            }
            match ev {
                Ev::WarpIssue { sm, slot } => self.on_warp_issue(t, sm, slot),
                Ev::ReadAtL2 { sm, line, home } => self.on_read_at_l2(t, sm, line, home),
                Ev::ReadAtHome { sm, line, home } => self.on_read_at_home(t, sm, line, home),
                Ev::ReadReturn { sm, line, home } => self.on_read_return(t, sm, line, home),
                Ev::DataToSm {
                    sm,
                    line,
                    class,
                    fill_l2,
                } => self.on_data_to_sm(t, sm, line, class, fill_l2),
                Ev::L1Fill { sm, line, class } => self.on_l1_fill(t, sm, line, class),
                Ev::WriteAtL2 {
                    sm,
                    slot,
                    line,
                    home,
                } => self.on_write_at_l2(t, sm, slot, line, home),
                Ev::WriteAtHome { from, line, home } => self.on_write_at_home(t, from, line, home),
                Ev::LinkSample => self.on_link_sample(t),
                Ev::CacheSample => self.on_cache_sample(t),
                Ev::Fault { idx } => self.on_fault(idx),
            }
        }
        self.kernel = None;
        self.plan = None;
        Ok(())
    }

    /// The error for a run whose scheduler stopped making forward progress.
    fn deadlock(&self) -> SimError {
        SimError::Deadlock {
            cycle: ticks_to_cycles(self.now),
            outstanding_ctas: self.outstanding_ctas,
            inflight_mem: self.inflight_mem,
        }
    }

    /// Applies fault `idx` of the installed plan at the current time.
    fn on_fault(&mut self, idx: u32) {
        let spec = match self
            .fault_state
            .as_ref()
            .and_then(|fs| fs.plan.specs().get(idx as usize))
        {
            Some(spec) => *spec,
            None => return,
        };
        let now = self.now;
        let cycle = ticks_to_cycles(now);
        match spec.kind {
            FaultKind::LinkLanes {
                socket,
                healthy_lanes,
            } => {
                let link = self.switch.link_mut(SocketId::new(socket));
                let nominal = link.nominal_lanes();
                let healthy = link.set_lane_health(now, healthy_lanes);
                if let Some(fs) = &mut self.fault_state {
                    let s = socket as usize;
                    if healthy < nominal {
                        if fs.degraded_at[s].is_none() {
                            fs.degraded_at[s] = Some(cycle);
                        }
                    } else {
                        // Fully restored: a later degradation starts a
                        // fresh recovery measurement.
                        fs.degraded_at[s] = None;
                    }
                }
            }
            FaultKind::LinkRetrain {
                socket,
                window_cycles,
            } => {
                self.switch
                    .link_mut(SocketId::new(socket))
                    .retrain(now, cycles_to_ticks(window_cycles as u64));
            }
            FaultKind::DramStall {
                socket,
                window_cycles,
            } => {
                self.drams[socket as usize].stall(
                    now,
                    cycles_to_ticks(window_cycles as u64),
                    cycles_to_ticks(ECC_RETRY_PENALTY_CYCLES),
                );
            }
            FaultKind::SmDisable { first_sm, last_sm } => {
                for sm in first_sm..=last_sm {
                    let smi = sm as usize;
                    if !self.sms[smi].is_enabled() {
                        continue;
                    }
                    let evicted = self.sms[smi].disable();
                    // In-flight fills and wakeups for the dead SM are
                    // dropped at their handlers; clear the replay state so
                    // nothing resurrects a freed warp slot.
                    for op in &mut self.pending_ops[smi] {
                        *op = None;
                    }
                    for st in &mut self.warp_mem[smi] {
                        *st = Default::default();
                    }
                    let socket = self.socket_of_sm(sm as u32);
                    if let Some(plan) = &mut self.plan {
                        plan.requeue_front(socket, &evicted);
                    }
                    if let Some(fs) = &mut self.fault_state {
                        fs.disabled_sms += 1;
                        fs.requeued_ctas += evicted.len() as u32;
                    }
                    self.dispatch_socket(now, socket);
                }
            }
        }
        if let Some(fs) = &mut self.fault_state {
            fs.applied.push(AppliedFault {
                cycle,
                description: spec.kind.describe(),
            });
        }
        if self.obs.tracing() {
            self.obs.emit(
                TraceEvent::instant(
                    format!("fault: {}", spec.kind.describe()),
                    "fault",
                    cycle,
                    0,
                )
                .arg("planned_cycle", spec.cycle),
            );
        }
    }

    /// Schedules the periodic samplers the first time a kernel runs.
    fn ensure_samplers(&mut self, now: Tick) {
        if self.samplers_scheduled {
            return;
        }
        self.samplers_scheduled = true;
        self.events.push(
            now + cycles_to_ticks(self.cfg.link.sample_time_cycles as u64),
            Ev::LinkSample,
        );
        self.events.push(
            now + cycles_to_ticks(self.cfg.cache_sample_time_cycles as u64),
            Ev::CacheSample,
        );
        for s in 0..self.cfg.num_sockets as usize {
            self.drams[s].begin_window(now);
        }
    }

    /// Fills every SM of `socket` with pending CTAs, in SM order.
    pub(crate) fn dispatch_socket(&mut self, t: Tick, socket: SocketId) {
        let kernel = match &self.kernel {
            Some(k) => k.clone(),
            None => return,
        };
        // Take the plan out for the duration of the fill so no mid-loop
        // re-borrow is needed; it is restored unconditionally on exit.
        let Some(mut plan) = self.plan.take() else {
            return;
        };
        let warps = kernel.warps_per_cta();
        let base = socket.index() as u32 * self.sms_per_socket;
        'outer: loop {
            if plan.remaining_for(socket) == 0 {
                break;
            }
            // Find the next SM with capacity.
            let mut placed = false;
            for i in 0..self.sms_per_socket {
                let sm = (base + i) as usize;
                if self.sms[sm].can_accept_cta(warps) {
                    let cta = match plan.next_for_socket(socket) {
                        Some(c) => c,
                        None => break 'outer,
                    };
                    let program = kernel.cta(cta);
                    let slots = self.sms[sm].dispatch_cta(cta, program);
                    for slot in slots {
                        self.warp_mem[sm][slot.index()] = Default::default();
                        // Deterministic per-warp jitter staggers first
                        // issues so near-simultaneous first touches spread
                        // across sockets instead of following event order.
                        let jitter = (sm as u64)
                            .wrapping_mul(2_654_435_761)
                            .wrapping_add(slot.index() as u64 * 40_503)
                            % 509;
                        let wake = t + cycles_to_ticks(DISPATCH_LATENCY_CYCLES + jitter);
                        self.events.push(
                            wake,
                            Ev::WarpIssue {
                                sm: sm as u32,
                                slot,
                            },
                        );
                    }
                    placed = true;
                }
            }
            if !placed {
                break;
            }
        }
        self.plan = Some(plan);
    }

    /// A warp is ready: pull its next op (or replay a parked one) and model
    /// its issue.
    fn on_warp_issue(&mut self, t: Tick, sm: u32, slot: WarpSlot) {
        let smi = sm as usize;
        if !self.sms[smi].is_enabled() {
            // Stale wakeup for an SM a fault disabled: its warp slots are
            // freed and its CTAs already requeued elsewhere.
            return;
        }
        let op = match self.pending_ops[smi][slot.index()].take() {
            Some(op) => op,
            None => match self.sms[smi].next_op(slot) {
                Some(op) => op,
                None => {
                    // Trace exhausted: wait for outstanding loads, then
                    // retire (and maybe complete the CTA).
                    if self.warp_mem[smi][slot.index()].outstanding > 0 {
                        self.warp_mem[smi][slot.index()].draining = true;
                        return;
                    }
                    if self.sms[smi].retire_warp(slot).is_some() {
                        self.outstanding_ctas -= 1;
                        let socket = self.socket_of_sm(sm);
                        self.dispatch_socket(t, socket);
                    }
                    return;
                }
            },
        };
        match op {
            WarpOp::Compute { cycles } => {
                let issue = self.sms[smi].reserve_issue(t);
                self.events.push(
                    issue + cycles_to_ticks(cycles as u64),
                    Ev::WarpIssue { sm, slot },
                );
            }
            WarpOp::Mem { addr, kind } => {
                let issue = self.sms[smi].reserve_issue(t);
                let socket = self.socket_of_sm(sm);
                let line = addr.line();
                let home = self.pages.home_of_line(line, socket);
                let class = if home == socket {
                    LineClass::Local
                } else {
                    LineClass::Remote
                };
                match kind {
                    MemKind::Write => {
                        self.sms[smi].l1_write(line);
                        // The warp resumes when the store is accepted
                        // (WriteAtL2 schedules the wakeup).
                        self.start_write(issue, sm, slot, line, home);
                    }
                    MemKind::Read => {
                        match self.sms[smi].l1_read(line, class, slot) {
                            L1ReadOutcome::Hit => {
                                self.count_read(class);
                                let lat = self.sms[smi].l1_hit_latency();
                                self.events.push(issue + lat, Ev::WarpIssue { sm, slot });
                            }
                            outcome @ (L1ReadOutcome::MissMerged | L1ReadOutcome::MissPrimary) => {
                                self.count_read(class);
                                if outcome == L1ReadOutcome::MissPrimary {
                                    self.start_read(issue, sm, line, home);
                                }
                                // The load enters the warp's scoreboard; the
                                // warp keeps issuing until the scoreboard
                                // fills (memory-level parallelism), then
                                // blocks until a fill wakes it.
                                let st = &mut self.warp_mem[smi][slot.index()];
                                st.outstanding += 1;
                                if (st.outstanding as u32) < self.cfg.sm.max_pending_loads as u32 {
                                    self.events
                                        .push(issue + TICKS_PER_CYCLE, Ev::WarpIssue { sm, slot });
                                } else {
                                    st.blocked = true;
                                }
                            }
                            L1ReadOutcome::MshrFull => {
                                self.pending_ops[smi][slot.index()] = Some(op);
                                self.sms[smi].park_retry(slot);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Accounts one issued read by NUMA class (MSHR-full retries are not
    /// counted until they issue).
    fn count_read(&mut self, class: LineClass) {
        match class {
            LineClass::Local => self.reads_local_class += 1,
            LineClass::Remote => self.reads_remote_class += 1,
        }
    }

    /// A fill arrived at an SM: install the line, credit each waiting
    /// warp's scoreboard, and wake the ones that were stalled on it.
    fn on_l1_fill(&mut self, t: Tick, sm: u32, line: numa_gpu_types::LineAddr, class: LineClass) {
        let smi = sm as usize;
        if !self.sms[smi].is_enabled() {
            // Fill for an SM a fault disabled: the data is dropped (the
            // requeued CTA will refetch); in-flight accounting already
            // happened at the event loop.
            return;
        }
        for slot in self.sms[smi].l1_fill(line, class) {
            let st = &mut self.warp_mem[smi][slot.index()];
            debug_assert!(st.outstanding > 0, "fill without outstanding load");
            st.outstanding -= 1;
            if st.blocked {
                st.blocked = false;
                self.events.push(t, Ev::WarpIssue { sm, slot });
            } else if st.draining && st.outstanding == 0 {
                self.events.push(t, Ev::WarpIssue { sm, slot });
            }
        }
        // An MSHR freed: retry one parked warp.
        if let Some(slot) = self.sms[smi].pop_retry() {
            self.events.push(t, Ev::WarpIssue { sm, slot });
        }
    }

    /// Periodic link load balancer tick (§4).
    fn on_link_sample(&mut self, t: Tick) {
        // Capture window state before the balancer consumes it: rebalancing
        // resets the sampling window, so this is the only point where the
        // utilizations the decision saw are observable.
        let observing = self.obs.record_timeline || self.obs.tracing();
        let samples = if observing {
            self.switch.sample_points(t)
        } else {
            Vec::new()
        };
        let actions = self
            .switch
            .sample_and_rebalance_all(t, SATURATION_THRESHOLD);
        // Resilience: the first non-Hold rebalance after a lane degradation
        // is the balancer's recovery response; record its latency.
        let mut recoveries: Vec<(usize, u64)> = Vec::new();
        if let Some(fs) = &mut self.fault_state {
            let cycle = ticks_to_cycles(t);
            for (s, action) in actions.iter().enumerate() {
                if *action == BalanceAction::Hold {
                    continue;
                }
                if let (Some(degraded), None) = (fs.degraded_at[s], fs.recovery[s]) {
                    let latency = cycle.saturating_sub(degraded);
                    fs.recovery[s] = Some(latency);
                    recoveries.push((s, latency));
                }
            }
        }
        if self.obs.record_timeline {
            for (s, sample) in samples.iter().enumerate() {
                self.obs.timelines[s].push(*sample);
            }
        }
        if self.obs.tracing() {
            let cycle = ticks_to_cycles(t);
            for (s, sample) in samples.iter().enumerate() {
                self.obs.emit(
                    TraceEvent::counter(format!("link.s{s}.util"), "link", cycle, s as u32)
                        .arg("egress", sample.egress_util)
                        .arg("ingress", sample.ingress_util),
                );
                self.obs.emit(
                    TraceEvent::counter(format!("link.s{s}.lanes"), "link", cycle, s as u32)
                        .arg("egress", sample.egress_lanes as u64)
                        .arg("ingress", sample.ingress_lanes as u64),
                );
            }
            for (s, action) in actions.iter().enumerate() {
                if *action != BalanceAction::Hold {
                    self.obs.emit(
                        TraceEvent::instant(
                            format!("link.s{s}.{action:?}"),
                            "rebalance",
                            cycle,
                            s as u32,
                        )
                        .arg("egress_util", samples[s].egress_util)
                        .arg("ingress_util", samples[s].ingress_util),
                    );
                }
            }
            for (s, latency) in &recoveries {
                self.obs.emit(
                    TraceEvent::instant(format!("link.s{s}.recovered"), "fault", cycle, *s as u32)
                        .arg("recovery_cycles", *latency),
                );
            }
        }
        self.events.push(
            t + cycles_to_ticks(self.cfg.link.sample_time_cycles as u64),
            Ev::LinkSample,
        );
    }

    /// Periodic NUMA-aware cache partition tick (§5, Figure 7(d)).
    fn on_cache_sample(&mut self, t: Tick) {
        let window = self.cfg.cache_sample_time_cycles as u64;
        if self.cfg.cache_mode == CacheMode::NumaAwareDynamic {
            for s in 0..self.cfg.num_sockets as usize {
                let socket = SocketId::new(s as u8);
                // Step 1: estimate incoming inter-GPU bandwidth from the
                // outgoing read-request rate times the response packet size
                // (avoids mistaking incoming writes for read pressure).
                let resp_bytes = numa_gpu_types::LINE_SIZE + numa_gpu_types::HEADER_BYTES as u64;
                let est_incoming = self.remote_reads_window[s] * resp_bytes;
                let capacity = self
                    .switch
                    .link(socket)
                    .direction_rate(numa_gpu_interconnect::LinkDirection::Ingress)
                    * window;
                // The paper projects link utilization from demand. A
                // link-throttled requester issues at exactly the link rate
                // (the estimate hovers *at* capacity, never above), so the
                // projection counts ≥85% of capacity — or a directly
                // backlogged ingress queue — as saturated demand.
                let link_sat = est_incoming as f64 >= 0.85 * capacity as f64
                    || self.switch.link(socket).is_saturated(
                        t,
                        numa_gpu_interconnect::LinkDirection::Ingress,
                        SATURATION_THRESHOLD,
                    );
                let dram_sat = self.drams[s].is_saturated(t, SATURATION_THRESHOLD);
                let action = self.ctls[s].step(link_sat, dram_sat);
                let p = self.ctls[s].partition();
                self.l2s[s].set_partition(p);
                if action != numa_gpu_cache::PartitionAction::Hold && self.obs.tracing() {
                    self.obs.emit(
                        TraceEvent::instant(
                            format!("l2.s{s}.{action:?}"),
                            "repartition",
                            ticks_to_cycles(t),
                            s as u32,
                        )
                        .arg("local_ways", p.local_ways() as u64)
                        .arg("remote_ways", p.remote_ways() as u64),
                    );
                }
                if self.cfg.partition_l1 {
                    let l1p = scale_partition(p, self.cfg.l1.ways);
                    let base = s as u32 * self.sms_per_socket;
                    for i in 0..self.sms_per_socket {
                        self.sms[(base + i) as usize].set_l1_partition(l1p);
                    }
                }
                self.remote_reads_window[s] = 0;
                self.drams[s].begin_window(t);
            }
        }
        self.events
            .push(t + cycles_to_ticks(window), Ev::CacheSample);
    }
}

/// Projects an L2 way split onto a cache with `ways` ways, preserving the
/// local fraction and both one-way floors.
pub(crate) fn scale_partition(
    p: numa_gpu_cache::WayPartition,
    ways: u16,
) -> numa_gpu_cache::WayPartition {
    let local = (p.local_ways() as u32 * ways as u32 / p.total_ways() as u32) as u16;
    let local = local.clamp(1, ways - 1);
    numa_gpu_cache::WayPartition::with_local_ways(local, ways)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_gpu_cache::WayPartition;

    #[test]
    fn scale_partition_preserves_fraction() {
        let p = WayPartition::with_local_ways(4, 16); // 25% local
        let q = scale_partition(p, 4);
        assert_eq!(q.local_ways(), 1);
        assert_eq!(q.total_ways(), 4);
    }

    #[test]
    fn scale_partition_respects_floors() {
        let p = WayPartition::with_local_ways(15, 16);
        let q = scale_partition(p, 4);
        assert!(q.local_ways() >= 1 && q.remote_ways() >= 1);
        let p = WayPartition::with_local_ways(1, 16);
        let q = scale_partition(p, 4);
        assert_eq!(q.local_ways(), 1);
    }
}
