//! The NUMA-aware multi-socket GPU system of *"Beyond the Socket:
//! NUMA-Aware GPUs"* (Milic et al., MICRO-50, 2017).
//!
//! This crate assembles the substrates — SMs with private L1s
//! ([`numa_gpu_sm`]), per-socket L2s and the partition controller
//! ([`numa_gpu_cache`]), DRAM and page placement ([`numa_gpu_mem`]), and
//! the switched interconnect with reversible lanes
//! ([`numa_gpu_interconnect`]) — into a runnable system,
//! [`NumaGpuSystem`], that executes [`Workload`](numa_gpu_runtime::Workload)s
//! under every design point the paper evaluates:
//!
//! * **Runtime policies** (§3): CTA interleaving vs contiguous block
//!   scheduling; fine-grained, page-interleaved, or first-touch placement.
//! * **Interconnect** (§4): static symmetric links, dynamic asymmetric lane
//!   allocation, or doubled bandwidth.
//! * **Caches** (§5): memory-side local-only L2, static 50/50 remote cache,
//!   shared coherent L1+L2, or NUMA-aware dynamic partitioning.
//!
//! Speedups come from ratios of [`SimReport::total_cycles`] between
//! configurations built by [`SystemConfig`](numa_gpu_types::SystemConfig)
//! constructors (`pascal_single`, `numa_sockets`, `numa_aware_sockets`,
//! `hypothetical_scaled`).
//!
//! # Examples
//!
//! ```
//! use numa_gpu_core::NumaGpuSystem;
//! use numa_gpu_types::SystemConfig;
//!
//! let sys = NumaGpuSystem::new(SystemConfig::pascal_4_socket())?;
//! assert_eq!(sys.config().num_sockets, 4);
//! # Ok::<(), numa_gpu_types::ConfigError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod exec;
mod flush;
mod mempath;
mod observe;
pub mod power;
mod report;
mod system;
pub mod tenancy;

pub use report::{SimReport, SocketReport};
pub use system::NumaGpuSystem;

// Re-exported so downstream crates can name the type of
// [`SimReport::profile`] without depending on the observability crate.
pub use numa_gpu_obs::ProfileReport;

/// Runs `workload` on a fresh system built from `cfg` — the one-call entry
/// point used by the benchmark harness.
///
/// # Errors
///
/// Returns [`SimError::Config`](numa_gpu_types::SimError) if the
/// configuration is invalid, [`SimError::Deadlock`](numa_gpu_types::SimError)
/// if the scheduler stops making forward progress, and
/// [`SimError::CycleLimit`](numa_gpu_types::SimError) if the configured
/// cycle budget runs out.
///
/// # Examples
///
/// ```no_run
/// use numa_gpu_core::run_workload;
/// use numa_gpu_types::SystemConfig;
///
/// # fn wl() -> numa_gpu_runtime::Workload { unimplemented!() }
/// let report = run_workload(SystemConfig::numa_aware_sockets(4), &wl())?;
/// println!("{} cycles", report.total_cycles);
/// # Ok::<(), numa_gpu_types::SimError>(())
/// ```
pub fn run_workload(
    cfg: numa_gpu_types::SystemConfig,
    workload: &numa_gpu_runtime::Workload,
) -> Result<SimReport, numa_gpu_types::SimError> {
    let mut sys = NumaGpuSystem::new(cfg)?;
    sys.run(workload)
}

/// Like [`run_workload`] but with per-sample link timeline recording
/// enabled (Figure 5).
///
/// # Errors
///
/// As for [`run_workload`].
pub fn run_workload_with_timeline(
    cfg: numa_gpu_types::SystemConfig,
    workload: &numa_gpu_runtime::Workload,
) -> Result<SimReport, numa_gpu_types::SimError> {
    let mut sys = NumaGpuSystem::new(cfg)?;
    sys.enable_link_timeline();
    sys.run(workload)
}

/// Like [`run_workload`] but with a [`FaultPlan`](numa_gpu_faults::FaultPlan)
/// installed before the run. An empty plan yields a report byte-identical
/// to [`run_workload`]'s.
///
/// # Errors
///
/// As for [`run_workload`], plus
/// [`SimError::InvalidFaultPlan`](numa_gpu_types::SimError) if the plan does
/// not fit the configured system shape.
pub fn run_workload_with_faults(
    cfg: numa_gpu_types::SystemConfig,
    workload: &numa_gpu_runtime::Workload,
    faults: &numa_gpu_faults::FaultPlan,
) -> Result<SimReport, numa_gpu_types::SimError> {
    let mut sys = NumaGpuSystem::new(cfg)?;
    sys.set_fault_plan(faults.clone())?;
    sys.run(workload)
}
