//! Focused timing-behaviour tests: tiny hand-built workloads with known
//! expected latencies and resource usage.

use numa_gpu_core::{run_workload, NumaGpuSystem};
use numa_gpu_runtime::{Kernel, Suite, Workload, WorkloadMeta};
use numa_gpu_types::{Addr, CtaId, CtaProgram, PagePlacement, SocketId, SystemConfig, WarpOp};
use std::sync::Arc;

/// A kernel whose single CTA executes a fixed op list on one warp.
struct Scripted {
    ops: Vec<WarpOp>,
}

impl Kernel for Scripted {
    fn num_ctas(&self) -> u32 {
        1
    }
    fn warps_per_cta(&self) -> u32 {
        1
    }
    fn cta(&self, _cta: CtaId) -> Box<dyn CtaProgram> {
        struct P {
            ops: Vec<WarpOp>,
            i: usize,
        }
        impl CtaProgram for P {
            fn num_warps(&self) -> u32 {
                1
            }
            fn next_op(&mut self, _w: u32) -> Option<WarpOp> {
                let op = self.ops.get(self.i).copied();
                self.i += 1;
                op
            }
        }
        Box::new(P {
            ops: self.ops.clone(),
            i: 0,
        })
    }
}

fn workload(ops: Vec<WarpOp>) -> Workload {
    Workload {
        meta: WorkloadMeta {
            name: "scripted".into(),
            suite: Suite::Other,
            paper_avg_ctas: 1,
            paper_footprint_mb: 1,
            study_set: false,
        },
        kernels: vec![Arc::new(Scripted { ops }) as Arc<dyn Kernel>],
        footprint_bytes: 1 << 20,
    }
}

fn cycles(cfg: SystemConfig, ops: Vec<WarpOp>) -> u64 {
    run_workload(cfg, &workload(ops)).unwrap().total_cycles
}

#[test]
fn single_read_latency_is_l2_dram_path() {
    // Unloaded local read on one socket:
    // dispatch (10 + jitter<509) + noc req (10+) + L2 (34) + DRAM (100) +
    // noc resp (10+) + occupancies. Must land in a few hundred cycles, far
    // below one thousand, and above the DRAM latency alone.
    let c = cycles(
        SystemConfig::pascal_single(),
        vec![WarpOp::read(Addr::new(0))],
    );
    assert!(c > 100, "must include DRAM latency, got {c}");
    assert!(c < 1000, "unloaded read too slow: {c}");
}

#[test]
fn l2_hit_is_faster_than_dram() {
    // Second read to the same line after an L1 flush boundary would need
    // the L2; here simply read two different lines vs the same line twice
    // (same-line second read hits L1 and is nearly free).
    let miss2 = cycles(
        SystemConfig::pascal_single(),
        vec![WarpOp::read(Addr::new(0)), WarpOp::read(Addr::new(1 << 16))],
    );
    let hit2 = cycles(
        SystemConfig::pascal_single(),
        vec![WarpOp::read(Addr::new(0)), WarpOp::read(Addr::new(0))],
    );
    assert!(
        hit2 < miss2,
        "L1 hit path must be cheaper ({hit2} vs {miss2})"
    );
}

#[test]
fn remote_read_pays_two_link_crossings() {
    // Under fine interleave on 2 sockets, line 1 is remote to socket 0.
    let mut cfg = SystemConfig::numa_sockets(2);
    cfg.placement = PagePlacement::FineInterleave;
    // Line 0 -> socket 0 (local for CTA 0). Line 1 -> socket 1 (remote).
    let local = cycles(cfg.clone(), vec![WarpOp::read(Addr::new(0))]);
    let remote = cycles(cfg, vec![WarpOp::read(Addr::new(128))]);
    // One-way link latency is 128 cycles; a remote read adds two crossings.
    assert!(
        remote >= local + 200,
        "remote read must pay the link ({remote} vs {local})"
    );
}

#[test]
fn independent_reads_overlap_via_scoreboard() {
    let ops: Vec<WarpOp> = (0..4).map(|i| WarpOp::read(Addr::new(i * 4096))).collect();
    let overlapped = cycles(SystemConfig::pascal_single(), ops);
    let single = cycles(
        SystemConfig::pascal_single(),
        vec![WarpOp::read(Addr::new(0))],
    );
    // Four independent reads (scoreboard depth 4) should cost much less
    // than four serialized round trips.
    assert!(
        overlapped < single + 3 * 150,
        "scoreboard must overlap reads: 4 reads {overlapped}, 1 read {single}"
    );
}

#[test]
fn scoreboard_depth_one_serializes() {
    let mut cfg = SystemConfig::pascal_single();
    cfg.sm.max_pending_loads = 1;
    let ops: Vec<WarpOp> = (0..4).map(|i| WarpOp::read(Addr::new(i * 4096))).collect();
    let serial = cycles(cfg, ops.clone());
    let parallel = cycles(SystemConfig::pascal_single(), ops);
    assert!(
        serial > parallel + 200,
        "depth-1 must serialize ({serial} vs {parallel})"
    );
}

#[test]
fn compute_ops_cost_their_cycles() {
    let short = cycles(SystemConfig::pascal_single(), vec![WarpOp::compute(10)]);
    let long = cycles(SystemConfig::pascal_single(), vec![WarpOp::compute(5000)]);
    assert!(long >= short + 4900, "compute delay must be charged");
}

#[test]
fn writes_do_not_block_like_reads() {
    // A local write's acceptance point is the L2 (a dozen cycles), far
    // cheaper than a read round trip.
    let write = cycles(
        SystemConfig::pascal_single(),
        vec![WarpOp::write(Addr::new(0))],
    );
    let read = cycles(
        SystemConfig::pascal_single(),
        vec![WarpOp::read(Addr::new(0))],
    );
    assert!(
        write < read,
        "write accept must beat read latency ({write} vs {read})"
    );
}

#[test]
fn remote_write_traffic_reaches_home_dram_via_writeback_or_flush() {
    let mut cfg = SystemConfig::numa_sockets(2);
    cfg.placement = PagePlacement::FineInterleave;
    let r = run_workload(cfg, &workload(vec![WarpOp::write(Addr::new(128))])).unwrap();
    // The write crossed the switch to its home.
    let total_link: u64 = r.sockets.iter().map(|s| s.egress_bytes).sum();
    assert!(total_link > 0, "remote write must cross the link");
}

#[test]
fn report_accounts_every_socket() {
    let mut sys = NumaGpuSystem::new(SystemConfig::numa_sockets(8)).unwrap();
    let r = sys
        .run(&workload(vec![WarpOp::read(Addr::new(0))]))
        .unwrap();
    assert_eq!(r.sockets.len(), 8);
    // CTA 0 runs on socket 0 under contiguous scheduling.
    let home = SocketId::new(0);
    assert!(r.sockets[home.index()].dram_bytes > 0);
}

#[test]
fn empty_warp_retires_cleanly() {
    let c = cycles(SystemConfig::pascal_single(), vec![]);
    // Just dispatch latency and bookkeeping.
    assert!(c < 1000);
}
