//! Timing invariance of the self-profiler: enabling `obs.profile` must
//! change exactly one thing — the report's `profile` field — and nothing
//! else, at any `sim_threads` setting. The profile is assembled at report
//! time from counters the simulation maintains unconditionally, so these
//! tests pin the "cannot perturb timing" contract end to end.

use numa_gpu_core::run_workload;
use numa_gpu_types::SystemConfig;
use numa_gpu_workloads::{by_name, Scale};

fn cfg(profile: bool, sim_threads: u16) -> SystemConfig {
    let mut cfg = SystemConfig::numa_aware_sockets(4);
    cfg.obs.profile = profile;
    cfg.sim_threads = sim_threads;
    cfg
}

#[test]
fn profile_on_changes_only_the_profile_field() {
    for name in ["Rodinia-Euler3D", "Other-Stream-Triad"] {
        let wl = by_name(name, &Scale::quick()).unwrap();
        let off = run_workload(cfg(false, 1), &wl).unwrap();
        let on = run_workload(cfg(true, 1), &wl).unwrap();

        assert!(off.profile.is_none(), "{name}: profiling defaults off");
        assert!(on.profile.is_some(), "{name}: profile requested but absent");

        // Field-for-field identity once the profile itself is removed.
        let mut stripped = on.clone();
        stripped.profile = None;
        assert_eq!(off, stripped, "{name}: profiling perturbed the report");

        // Same invariant at the byte level: the encodings differ only in
        // the `profile` value, which is `null` when profiling is off.
        let off_json = off.to_json().to_string();
        let on_json = on.to_json().to_string();
        let profile_json = on.profile.as_ref().unwrap().to_json().to_string();
        assert_eq!(
            off_json.replace("\"profile\":null", &format!("\"profile\":{profile_json}")),
            on_json,
            "{name}: encodings diverge outside the profile field"
        );
    }
}

#[test]
fn profile_is_byte_identical_across_sim_threads() {
    let wl = by_name("Rodinia-Euler3D", &Scale::quick()).unwrap();
    let serial = run_workload(cfg(true, 1), &wl).unwrap();
    for threads in [2, 4] {
        let parallel = run_workload(cfg(true, threads), &wl).unwrap();
        assert_eq!(
            serial, parallel,
            "profiled report differs at sim_threads={threads}"
        );
        assert_eq!(
            serial.to_json().to_string(),
            parallel.to_json().to_string(),
            "profiled JSON differs at sim_threads={threads}"
        );
    }
}

#[test]
fn profile_counters_reconcile_with_the_report() {
    let wl = by_name("Rodinia-Euler3D", &Scale::quick()).unwrap();
    let report = run_workload(cfg(true, 1), &wl).unwrap();
    let p = report.profile.as_ref().unwrap();

    // The attribution is drawn from the same counters the report itself
    // aggregates, so the two views must agree where they overlap.
    let scheduled = p.get("engine", "events_scheduled").unwrap();
    let popped = p.get("engine", "events_popped").unwrap();
    assert!(popped > 0, "a real run pops events");
    assert!(popped <= scheduled, "cannot pop more than was scheduled");

    let l1 = p.get("cache", "l1_accesses").unwrap();
    assert_eq!(
        l1,
        report.l1.local_hits.get()
            + report.l1.local_misses.get()
            + report.l1.remote_hits.get()
            + report.l1.remote_misses.get(),
        "L1 attribution disagrees with the report's own stats"
    );

    let dram_bytes = p.get("mem", "dram_bytes").unwrap();
    assert_eq!(
        dram_bytes,
        report.dram_bytes(),
        "DRAM attribution disagrees"
    );

    // Work-conservation sanity on the queue-path split: every scheduled
    // event took exactly one push path.
    let bucket = p.get("engine", "queue_bucket_pushes").unwrap();
    let sorted = p.get("engine", "queue_sorted_pushes").unwrap();
    let overflow = p.get("engine", "queue_overflow_pushes").unwrap();
    assert!(
        bucket + sorted + overflow <= scheduled,
        "push-path split exceeds total pushes"
    );
}

#[test]
fn profile_rides_along_in_metrics_when_both_are_on() {
    let wl = by_name("Other-Stream-Triad", &Scale::quick()).unwrap();
    let mut with_both = cfg(true, 1);
    with_both.obs.metrics = true;
    let report = run_workload(with_both, &wl).unwrap();
    let snap = report.metrics.as_ref().unwrap();
    let p = report.profile.as_ref().unwrap();
    assert_eq!(
        snap.counter("profile.engine.events_popped"),
        p.get("engine", "events_popped"),
        "published metric and profile counter must agree"
    );
}
