//! Determinism: the same configuration and seed through the full system
//! must reproduce the entire report — cycle counts, every stats struct,
//! and the JSON encoding — not just the headline cycle total.

use numa_gpu_core::{run_workload, NumaGpuSystem};
use numa_gpu_types::SystemConfig;
use numa_gpu_workloads::{by_name, Scale};

#[test]
fn identical_runs_reproduce_full_reports() {
    for name in ["Rodinia-Euler3D", "HPC-RSBench", "Other-Stream-Triad"] {
        let wl = by_name(name, &Scale::quick()).unwrap();
        let a = run_workload(SystemConfig::numa_aware_sockets(4), &wl).unwrap();
        let b = run_workload(SystemConfig::numa_aware_sockets(4), &wl).unwrap();
        assert_eq!(a, b, "{name}: reports differ between identical runs");
    }
}

#[test]
fn identical_runs_reproduce_timelines_and_json() {
    let wl = by_name("HPC-HPGMG-UVM", &Scale::quick()).unwrap();
    let run = || {
        let mut sys = NumaGpuSystem::new(SystemConfig::numa_sockets(4)).unwrap();
        sys.enable_link_timeline();
        sys.run(&wl).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "reports (including timelines) differ");
    assert_eq!(
        a.to_json().to_string(),
        b.to_json().to_string(),
        "JSON encodings differ"
    );
}

#[test]
fn different_sockets_produce_different_reports() {
    // Sanity check that the equality above is not vacuous: a different
    // configuration must actually change the report.
    let wl = by_name("Rodinia-Euler3D", &Scale::quick()).unwrap();
    let a = run_workload(SystemConfig::numa_aware_sockets(2), &wl).unwrap();
    let b = run_workload(SystemConfig::numa_aware_sockets(4), &wl).unwrap();
    assert_ne!(a, b);
}
