//! Per-kernel cycle attribution: `kernel_cycles` must tile `total_cycles`
//! exactly, including the trailing write drain of a kernel that ends in a
//! fire-and-forget write burst.

use numa_gpu_core::run_workload;
use numa_gpu_runtime::{Kernel, Suite, Workload, WorkloadMeta};
use numa_gpu_types::{Addr, CtaId, CtaProgram, SystemConfig, WarpOp};
use std::sync::Arc;

/// A kernel whose single CTA executes a fixed op list on one warp.
struct Scripted {
    ops: Vec<WarpOp>,
}

impl Kernel for Scripted {
    fn num_ctas(&self) -> u32 {
        1
    }
    fn warps_per_cta(&self) -> u32 {
        1
    }
    fn cta(&self, _cta: CtaId) -> Box<dyn CtaProgram> {
        struct P {
            ops: Vec<WarpOp>,
            i: usize,
        }
        impl CtaProgram for P {
            fn num_warps(&self) -> u32 {
                1
            }
            fn next_op(&mut self, _w: u32) -> Option<WarpOp> {
                let op = self.ops.get(self.i).copied();
                self.i += 1;
                op
            }
        }
        Box::new(P {
            ops: self.ops.clone(),
            i: 0,
        })
    }
}

fn workload(kernel_ops: Vec<Vec<WarpOp>>) -> Workload {
    Workload {
        meta: WorkloadMeta {
            name: "scripted".into(),
            suite: Suite::Other,
            paper_avg_ctas: 1,
            paper_footprint_mb: 1,
            study_set: false,
        },
        kernels: kernel_ops
            .into_iter()
            .map(|ops| Arc::new(Scripted { ops }) as Arc<dyn Kernel>)
            .collect(),
        footprint_bytes: 1 << 20,
    }
}

/// A burst of fire-and-forget writes to distinct lines: the warp retires
/// immediately but the memory system keeps draining afterwards.
fn write_burst(lines: u64) -> Vec<WarpOp> {
    (0..lines)
        .map(|i| WarpOp::write(Addr::new(i * 128)))
        .collect()
}

/// `kernel_starts[0] + sum(kernel_cycles)` must equal `total_cycles` for
/// the given workload; returns the report for further checks.
fn assert_tiles(kernel_ops: Vec<Vec<WarpOp>>) -> numa_gpu_core::SimReport {
    let r = run_workload(SystemConfig::pascal_single(), &workload(kernel_ops)).unwrap();
    let sum: u64 = r.kernel_cycles.iter().sum();
    assert_eq!(
        r.kernel_start_cycles[0] + sum,
        r.total_cycles,
        "kernel spans must tile the run exactly (starts {:?}, cycles {:?})",
        r.kernel_start_cycles,
        r.kernel_cycles
    );
    r
}

#[test]
fn trailing_write_burst_is_charged_to_the_final_kernel() {
    // Regression: `kernel_cycles` used `now` alone as the last kernel's end
    // bound. `run` folds the write drain into `now` before reporting, and
    // the end bound must stay aligned with that fold — a kernel ending in a
    // write burst owns its drain.
    let with_burst = assert_tiles(vec![write_burst(256)]);
    let compute_only = assert_tiles(vec![vec![WarpOp::compute(1)]]);
    assert_eq!(with_burst.kernel_cycles.len(), 1);
    assert!(
        with_burst.kernel_cycles[0] > compute_only.kernel_cycles[0],
        "the drain of 256 written lines must appear in the kernel's span \
         ({} vs {})",
        with_burst.kernel_cycles[0],
        compute_only.kernel_cycles[0]
    );
}

#[test]
fn mid_run_write_burst_is_charged_to_the_issuing_kernel() {
    // Two kernels; the first ends in a write burst. `kernel_boundary` folds
    // the drain into the second kernel's start, so the first kernel's span
    // covers it and the spans still tile the total.
    let r = assert_tiles(vec![write_burst(256), vec![WarpOp::compute(1)]]);
    assert_eq!(r.kernel_cycles.len(), 2);
    assert_eq!(
        r.kernel_start_cycles[1],
        r.kernel_start_cycles[0] + r.kernel_cycles[0],
        "kernel 1 must start exactly where kernel 0's span (incl. drain) ends"
    );
}

#[test]
fn spans_tile_for_read_and_multi_kernel_mixes() {
    assert_tiles(vec![vec![WarpOp::read(Addr::new(0))]]);
    assert_tiles(vec![
        vec![WarpOp::read(Addr::new(0)), WarpOp::compute(5)],
        write_burst(64),
        vec![WarpOp::read(Addr::new(4096))],
    ]);
}
