//! Self-contained deterministic test substrate for the numa-gpu
//! workspace.
//!
//! The simulator's claims (§4 dynamic lane allocation, §5 cache
//! partitioning, Fig. 12 scaling) are only reproducible if every build and
//! every test runs bit-identically offline — so this crate replaces the
//! workspace's former external dependencies with four small, fully
//! specified substrates:
//!
//! - [`rng`]: a seedable deterministic PRNG (SplitMix64 seeding,
//!   xoshiro256++ stream) with the `gen_range` / `shuffle` / `sample`
//!   surface the workload generators and tests need (replaces `rand`);
//! - [`gen`] + [`prop`]: generator combinators and a property-based
//!   testing harness — [`prop_check!`] with configurable case counts,
//!   failure shrinking, and pinned regression seeds (replaces `proptest`);
//! - [`mod@bench`]: a micro-bench harness with warmup, calibrated batches,
//!   and median/p95/JSON reporting (replaces `criterion`);
//! - [`json`]: a tiny JSON value type with encoder and parser for stats
//!   and report paths (replaces `serde` derives).
//!
//! Everything here is plain `std`; the crate has zero dependencies by
//! design and must stay that way.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod gen;
pub mod json;
pub mod prop;
pub mod rng;

pub use gen::Gen;
pub use json::{Json, ToJson};
pub use prop::Config;
pub use rng::DetRng;
