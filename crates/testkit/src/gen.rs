//! Generator combinators for the property harness.
//!
//! A [`Gen<T>`] pairs a sampling function with a one-step shrinker. The
//! shrinker returns *candidate* simplifications of a failing value; the
//! runner in [`crate::prop`] greedily walks them toward a minimal
//! counterexample. Combinators built with [`Gen::map`] lose shrinking
//! (there is no inverse image), which is the usual price of a
//! value-level — rather than value-tree — design.

use crate::rng::{DetRng, SampleUniform};
use std::rc::Rc;

/// One-step shrinker: candidate simpler values for a failing input.
type Shrinker<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A reusable value generator with an attached shrinker.
pub struct Gen<T> {
    sample: Rc<dyn Fn(&mut DetRng) -> T>,
    shrink: Shrinker<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            sample: self.sample.clone(),
            shrink: self.shrink.clone(),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Builds a generator from a sampling closure and a one-step shrinker.
    pub fn new(
        sample: impl Fn(&mut DetRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen {
            sample: Rc::new(sample),
            shrink: Rc::new(shrink),
        }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut DetRng) -> T {
        (self.sample)(rng)
    }

    /// One-step shrink candidates for `value` (empty when minimal).
    pub fn shrinks(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Maps generated values. The result does not shrink.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let sample = self.sample;
        Gen::new(move |rng| f((sample)(rng)), |_| Vec::new())
    }
}

/// Constant generator.
pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone(), |_| Vec::new())
}

/// Uniform integer (or float) in a half-open range, shrinking toward the
/// range start.
pub fn ints<T>(range: std::ops::Range<T>) -> Gen<T>
where
    T: SampleUniform + ShrinkTowards + 'static,
{
    let (lo, hi) = (range.start, range.end);
    Gen::new(
        move |rng| rng.gen_range(lo..hi),
        move |v| v.shrink_towards(lo),
    )
}

/// Uniform `f64` in a half-open range, shrinking toward the range start.
pub fn floats(range: std::ops::Range<f64>) -> Gen<f64> {
    ints(range)
}

/// Uniform `f64` in `[0, 1)`.
pub fn unit() -> Gen<f64> {
    floats(0.0..1.0)
}

/// Booleans; `true` shrinks to `false`.
pub fn bools() -> Gen<bool> {
    Gen::new(
        |rng| rng.random_bool(0.5),
        |v| if *v { vec![false] } else { Vec::new() },
    )
}

/// Vector of `elem` values with length drawn from `len`; shrinks by
/// halving, dropping single elements, and shrinking elements in place
/// (never below the range's minimum length).
pub fn vecs<T: Clone + 'static>(elem: Gen<T>, len: std::ops::Range<usize>) -> Gen<Vec<T>> {
    let min_len = len.start;
    let shrink_elem = elem.clone();
    Gen::new(
        move |rng| {
            let n = rng.gen_range(len.start..len.end.max(len.start + 1));
            (0..n).map(|_| elem.sample(rng)).collect()
        },
        move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            // Halve the tail off first: biggest structural step.
            if v.len() / 2 >= min_len && v.len() > min_len {
                out.push(v[..v.len() / 2].to_vec());
            }
            // Drop each element (bounded to keep candidate lists small).
            if v.len() > min_len {
                for i in 0..v.len().min(16) {
                    let mut w = v.clone();
                    w.remove(i);
                    out.push(w);
                }
            }
            // Shrink individual elements.
            for i in 0..v.len().min(16) {
                for cand in shrink_elem.shrinks(&v[i]).into_iter().take(4) {
                    let mut w = v.clone();
                    w[i] = cand;
                    out.push(w);
                }
            }
            out
        },
    )
}

/// Pair of independent generators; components shrink independently.
pub fn pairs<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    let (sa, sb) = (a.clone(), b.clone());
    Gen::new(
        move |rng| (a.sample(rng), b.sample(rng)),
        move |(x, y)| {
            let mut out: Vec<(A, B)> = sa
                .shrinks(x)
                .into_iter()
                .map(|x2| (x2, y.clone()))
                .collect();
            out.extend(sb.shrinks(y).into_iter().map(|y2| (x.clone(), y2)));
            out
        },
    )
}

/// Triple of independent generators.
pub fn triples<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    pairs(pairs(a, b), c).map_shrinkable(
        |((a, b), c)| (a, b, c),
        |(a, b, c)| ((a.clone(), b.clone()), c.clone()),
    )
}

/// Quadruple of independent generators.
pub fn quads<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static, D: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
    d: Gen<D>,
) -> Gen<(A, B, C, D)> {
    pairs(pairs(a, b), pairs(c, d)).map_shrinkable(
        |((a, b), (c, d))| (a, b, c, d),
        |(a, b, c, d)| ((a.clone(), b.clone()), (c.clone(), d.clone())),
    )
}

impl<T: Clone + 'static> Gen<T> {
    /// Maps with an explicit inverse so shrinking survives the transform.
    pub fn map_shrinkable<U: Clone + 'static>(
        self,
        forward: impl Fn(T) -> U + 'static,
        back: impl Fn(&U) -> T + 'static,
    ) -> Gen<U> {
        let inner = self.clone();
        let fwd = Rc::new(forward);
        let fwd2 = fwd.clone();
        Gen::new(
            move |rng| fwd(self.sample(rng)),
            move |u| {
                inner
                    .shrinks(&back(u))
                    .into_iter()
                    .map(|t| fwd2(t))
                    .collect()
            },
        )
    }
}

/// Strings with a character count drawn from `len`: mostly printable
/// ASCII with an occasional arbitrary Unicode scalar, which is the mix
/// fuzzed parsers care about. Shrinks like the underlying character
/// vector (dropping characters and simplifying them toward `'a'`).
pub fn strings(len: std::ops::Range<usize>) -> Gen<String> {
    let ch = Gen::new(
        |rng: &mut DetRng| {
            if rng.random_bool(0.85) {
                char::from_u32(rng.gen_range(0x20u32..0x7F)).expect("printable ASCII")
            } else {
                char::from_u32(rng.gen_range(0u32..0x11_0000)).unwrap_or('\u{FFFD}')
            }
        },
        |c: &char| match *c {
            'a' => Vec::new(),
            c if c.is_ascii_graphic() => vec!['a'],
            _ => vec!['a', ' '],
        },
    );
    vecs(ch, len).map_shrinkable(
        |v| v.into_iter().collect::<String>(),
        |s: &String| s.chars().collect(),
    )
}

/// Uniformly selects one of the given concrete values; shrinks toward
/// earlier options.
pub fn select<T: Clone + 'static>(options: Vec<T>) -> Gen<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    let shrink_opts = options.clone();
    Gen::new(
        move |rng| rng.choose(&options).expect("nonempty").clone(),
        move |_| vec![shrink_opts[0].clone()],
    )
}

/// Uniformly picks one of the given generators per sample (the
/// `prop_oneof!` replacement). Values do not shrink across branches.
pub fn one_of<T: 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "one_of needs at least one generator");
    Gen::new(
        move |rng| {
            let i = rng.bounded_u64(gens.len() as u64) as usize;
            gens[i].sample(rng)
        },
        |_| Vec::new(),
    )
}

/// Values that can propose simpler candidates toward a floor.
pub trait ShrinkTowards: Sized {
    /// One-step shrink candidates between `floor` and `self`.
    fn shrink_towards(&self, floor: Self) -> Vec<Self>;
}

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl ShrinkTowards for $t {
            fn shrink_towards(&self, floor: Self) -> Vec<Self> {
                let v = *self;
                if v == floor {
                    return Vec::new();
                }
                let mut out = vec![floor];
                let mid = floor + (v - floor) / 2;
                if mid != floor && mid != v {
                    out.push(mid);
                }
                if v > floor {
                    out.push(v - 1);
                }
                out
            }
        }
    )*};
}

impl_shrink_int!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_signed {
    ($($t:ty),*) => {$(
        impl ShrinkTowards for $t {
            fn shrink_towards(&self, floor: Self) -> Vec<Self> {
                let v = *self;
                if v == floor {
                    return Vec::new();
                }
                let mut out = vec![floor];
                let mid = floor + (v - floor) / 2;
                if mid != floor && mid != v {
                    out.push(mid);
                }
                out
            }
        }
    )*};
}

impl_shrink_signed!(i8, i16, i32, i64);

impl ShrinkTowards for f64 {
    fn shrink_towards(&self, floor: Self) -> Vec<Self> {
        let v = *self;
        if v == floor {
            return Vec::new();
        }
        let mid = floor + (v - floor) / 2.0;
        if mid == floor || mid == v {
            vec![floor]
        } else {
            vec![floor, mid]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(2024)
    }

    #[test]
    fn ints_sample_in_range_and_shrink_toward_start() {
        let g = ints(5u32..50);
        let mut r = rng();
        for _ in 0..1000 {
            let v = g.sample(&mut r);
            assert!((5..50).contains(&v));
        }
        let cands = g.shrinks(&40);
        assert!(cands.contains(&5));
        assert!(cands.iter().all(|c| *c < 40 && *c >= 5));
        assert!(g.shrinks(&5).is_empty());
    }

    #[test]
    fn vecs_respect_length_bounds() {
        let g = vecs(ints(0u8..10), 2..6);
        let mut r = rng();
        for _ in 0..500 {
            let v = g.sample(&mut r);
            assert!((2..6).contains(&v.len()));
        }
        // Shrinks never go below the min length.
        let v = g.sample(&mut r);
        for cand in g.shrinks(&v) {
            assert!(cand.len() >= 2);
        }
    }

    #[test]
    fn pairs_shrink_componentwise() {
        let g = pairs(ints(0u32..100), bools());
        let cands = g.shrinks(&(50, true));
        assert!(cands.iter().any(|(a, b)| *a < 50 && *b));
        assert!(cands.iter().any(|(a, b)| *a == 50 && !*b));
    }

    #[test]
    fn select_and_one_of_stay_in_domain() {
        let g = select(vec!["a", "b", "c"]);
        let h = one_of(vec![ints(0u64..3), ints(10u64..13)]);
        let mut r = rng();
        for _ in 0..300 {
            assert!(["a", "b", "c"].contains(&g.sample(&mut r)));
            let v = h.sample(&mut r);
            assert!((0..3).contains(&v) || (10..13).contains(&v));
        }
    }

    #[test]
    fn triples_preserve_shrinking() {
        let g = triples(ints(0u8..9), ints(0u8..9), ints(0u8..9));
        let cands = g.shrinks(&(4, 5, 6));
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|(a, b, c)| *a <= 4 && *b <= 5 && *c <= 6));
    }

    #[test]
    fn strings_respect_length_and_shrink() {
        let g = strings(0..40);
        let mut r = rng();
        for _ in 0..300 {
            let s = g.sample(&mut r);
            assert!(s.chars().count() < 40);
        }
        // A non-trivial string must offer at least one simpler candidate.
        let cands = g.shrinks(&"Zq".to_string());
        assert!(!cands.is_empty());
        assert!(cands
            .iter()
            .any(|c| c.chars().count() < 2 || c.contains('a')));
    }

    #[test]
    fn map_drops_shrinking_but_samples() {
        let g = ints(1u32..5).map(|v| v * 100);
        let mut r = rng();
        let v = g.sample(&mut r);
        assert!(v % 100 == 0 && (100..500).contains(&v));
        assert!(g.shrinks(&v).is_empty());
    }
}
