//! Micro-bench harness: warmup, calibrated batches, median/p95 reporting,
//! and machine-readable JSON output.
//!
//! The surface intentionally mirrors the slice of `criterion` the
//! workspace used — groups, `sample_size`, `warm_up_time`,
//! `measurement_time`, `bench_function`, `Bencher::iter` — so bench
//! targets stay `harness = false` binaries assembled with
//! [`crate::bench_group!`] and [`crate::bench_main!`].
//!
//! Environment knobs:
//! - `TESTKIT_BENCH_FAST=1` collapses warmup/samples to one iteration each
//!   (smoke-testing every bench body in CI without paying for timing).
//! - `TESTKIT_BENCH_JSON=path` appends one JSON document per bench run to
//!   `path` instead of printing it to stdout.

use crate::json::Json;
use std::hint::black_box;
// simlint: allow(D002, reason = "micro-bench harness: wall clock is the measurement, never simulation state")
use std::time::{Duration, Instant};

/// Top-level bench context handed to every registered bench function.
pub struct Bench {
    results: Vec<BenchResult>,
    fast: bool,
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` label.
    pub name: String,
    /// Samples actually taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Fastest per-iteration time.
    pub min_ns: f64,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time.
    pub p95_ns: f64,
    /// Slowest per-iteration time.
    pub max_ns: f64,
}

impl BenchResult {
    /// JSON form of this result.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("samples", Json::UInt(self.samples as u64)),
            ("iters_per_sample", Json::UInt(self.iters_per_sample)),
            ("min_ns", Json::Float(self.min_ns)),
            ("median_ns", Json::Float(self.median_ns)),
            ("p95_ns", Json::Float(self.p95_ns)),
            ("max_ns", Json::Float(self.max_ns)),
        ])
    }
}

impl Bench {
    /// Creates the harness, honoring `TESTKIT_BENCH_FAST`.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Bench {
            results: Vec::new(),
            fast: std::env::var("TESTKIT_BENCH_FAST").is_ok_and(|v| v == "1"),
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            bench: self,
            name: name.to_string(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Emits the JSON report: to `TESTKIT_BENCH_JSON` when set, else to
    /// stdout.
    pub fn finish(&self) {
        let doc = Json::obj([(
            "benches",
            Json::Arr(self.results.iter().map(BenchResult::to_json).collect()),
        )]);
        match std::env::var("TESTKIT_BENCH_JSON") {
            Ok(path) if !path.is_empty() => {
                use std::io::Write as _;
                let mut f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
                writeln!(f, "{doc}").expect("bench JSON write failed");
                // simlint: allow(O001, reason = "bench harness reporting path; results go to the operator's terminal")
                eprintln!("bench JSON appended to {path}");
            }
            // simlint: allow(O001, reason = "bench harness reporting path; results go to the operator's terminal")
            _ => println!("{doc}"),
        }
    }
}

/// A group of benchmarks sharing sampling parameters.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Group<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warmup duration (also calibrates the batch size).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark, printing and recording its summary.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.as_ref());
        let (samples, warm_up, measurement) = if self.bench.fast {
            (1, Duration::ZERO, Duration::ZERO)
        } else {
            (self.sample_size, self.warm_up_time, self.measurement_time)
        };

        // Warmup: run until the budget elapses, counting iterations to
        // estimate the per-iteration cost.
        let mut bencher = Bencher { iters: 1 };
        // simlint: allow(D002, reason = "micro-bench harness: wall clock is the measurement, never simulation state")
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            f(&mut bencher);
            warm_iters += 1;
            if warm_start.elapsed() >= warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Calibrate so each sample runs long enough to time reliably.
        let target_sample_ns = (measurement.as_nanos() as f64 / samples as f64).max(100_000.0);
        let iters_per_sample = if self.bench.fast {
            1
        } else {
            ((target_sample_ns / per_iter.max(1.0)).ceil() as u64).clamp(1, 1 << 24)
        };

        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.iters = iters_per_sample;
            // simlint: allow(D002, reason = "micro-bench harness: wall clock is the measurement, never simulation state")
            let start = Instant::now();
            f(&mut bencher);
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let pick = |q: f64| sample_ns[((sample_ns.len() - 1) as f64 * q).round() as usize];
        let result = BenchResult {
            name: label.clone(),
            samples,
            iters_per_sample,
            min_ns: sample_ns[0],
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            max_ns: sample_ns[sample_ns.len() - 1],
        };
        // simlint: allow(O001, reason = "bench harness reporting path; results go to the operator's terminal")
        println!(
            "{label}: median {} (p95 {}, {} samples x {} iters)",
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            samples,
            iters_per_sample,
        );
        self.bench.results.push(result);
        self
    }

    /// Ends the group (kept for call-site symmetry; results are recorded
    /// eagerly).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Times closures inside a benchmark body.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Runs the routine for the calibrated number of iterations. Results
    /// are passed through [`black_box`] so the work is not optimized away.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.iters {
            black_box(routine());
        }
    }
}

/// Declares a bench group function from a list of `fn(&mut Bench)` bodies.
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group(bench: &mut $crate::bench::Bench) {
            $( $f(bench); )+
        }
    };
}

/// Declares the `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! bench_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut bench = $crate::bench::Bench::new();
            $( $group(&mut bench); )+
            bench.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_fast<F: FnMut(&mut Bencher)>(name: &str, f: F) -> BenchResult {
        // Force fast mode regardless of the environment by building the
        // harness by hand.
        let mut bench = Bench {
            results: Vec::new(),
            fast: true,
        };
        bench
            .benchmark_group("test")
            .sample_size(3)
            .bench_function(name, f);
        bench.results.pop().expect("one result")
    }

    #[test]
    fn records_sane_timings() {
        let r = run_fast("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        assert_eq!(r.name, "test/spin");
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert!(r.p95_ns <= r.max_ns);
        assert!(r.min_ns >= 0.0);
    }

    #[test]
    fn json_report_shape() {
        let r = run_fast("shape", |b| b.iter(|| 1u32 + 1));
        let j = r.to_json();
        assert_eq!(j.get("name").unwrap().as_str(), Some("test/shape"));
        assert!(j.get("median_ns").unwrap().as_f64().is_some());
        assert!(j.get("p95_ns").unwrap().as_f64().is_some());
        // The document reparses.
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn bencher_runs_each_calibrated_iteration() {
        let count = std::cell::Cell::new(0u64);
        let mut b = Bencher { iters: 7 };
        b.iter(|| count.set(count.get() + 1));
        assert_eq!(count.get(), 7);
    }
}
