//! Minimal property-based testing: deterministic case generation,
//! counterexample shrinking, and persisted regression seeds.
//!
//! Tests are written with [`crate::prop_check!`]; assertions inside a
//! property use [`crate::prop_assert!`] and friends, which report the
//! failing case back to the runner instead of unwinding immediately (plain
//! panics are caught and treated as failures too, so `unwrap` in a
//! property still shrinks).
//!
//! Every case is generated from a 64-bit *case seed* derived from a fixed
//! per-test stream, so runs are identical across machines. When a property
//! fails, the runner shrinks the counterexample and prints the case seed;
//! pinning that seed in [`Config::regressions`] re-runs the historical
//! counterexample before any fresh cases, which is how regression seeds
//! are persisted in source control.

use crate::gen::Gen;
use crate::rng::{DetRng, SplitMix64};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-test harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Fresh cases to generate (default 256; override with
    /// `TESTKIT_CASES`).
    pub cases: u32,
    /// Budget of property evaluations spent shrinking a failure.
    pub max_shrink_iters: u32,
    /// Abort if more than this many cases are discarded by
    /// [`crate::prop_assume!`].
    pub max_discards: u32,
    /// Case seeds of historical counterexamples, re-run before fresh
    /// cases.
    pub regressions: Vec<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 4096,
            max_discards: 65_536,
            regressions: Vec::new(),
        }
    }
}

impl Config {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the fresh-case count.
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Pins historical counterexample seeds (from a failure report).
    pub fn regressions(mut self, seeds: &[u64]) -> Self {
        self.regressions = seeds.to_vec();
        self
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Human-readable description of the violated expectation.
    pub message: String,
    /// `true` when the case was discarded by an assumption rather than
    /// failed.
    pub discard: bool,
}

impl Failure {
    /// A failed assertion.
    pub fn fail(message: impl Into<String>) -> Self {
        Failure {
            message: message.into(),
            discard: false,
        }
    }

    /// A discarded case ([`crate::prop_assume!`]).
    pub fn discard() -> Self {
        Failure {
            message: String::new(),
            discard: true,
        }
    }
}

/// Result type every property body produces.
pub type CaseResult = Result<(), Failure>;

/// FNV-1a, used to give every test its own deterministic seed stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64 (decimal or 0x-hex), got `{raw}`"),
    }
}

/// Evaluates the property once, converting panics into failures so they
/// shrink like ordinary assertion failures.
fn eval_case<T, F>(prop: &F, value: T) -> CaseResult
where
    F: Fn(T) -> CaseResult,
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_string());
            Err(Failure::fail(format!("panic: {msg}")))
        }
    }
}

/// Runs `prop` against values drawn from `gen` under `config`.
///
/// Drives the pinned regression seeds first, then `config.cases` fresh
/// cases. On failure the counterexample is shrunk greedily and the run
/// panics with the minimal case, its error, and the case seed to pin.
///
/// # Panics
///
/// Panics when the property fails (that is the test signal) or when the
/// discard budget is exhausted.
pub fn run<T, F>(name: &str, config: Config, gen: Gen<T>, prop: F)
where
    T: Clone + std::fmt::Debug + 'static,
    F: Fn(T) -> CaseResult,
{
    let cases = env_u64("TESTKIT_CASES")
        .map(|c| c as u32)
        .unwrap_or(config.cases);
    let mut schedule: Vec<(u64, bool)> = config.regressions.iter().map(|&s| (s, true)).collect();
    if let Some(repro) = env_u64("TESTKIT_REPRO") {
        schedule.push((repro, true));
    } else {
        let mut stream = SplitMix64::new(fnv1a(name.as_bytes()));
        schedule.extend((0..cases).map(|_| (stream.next_u64(), false)));
    }

    let mut discards = 0u32;
    let mut executed = 0u32;
    for (case_seed, pinned) in schedule {
        let value = gen.sample(&mut DetRng::seed_from_u64(case_seed));
        executed += 1;
        match eval_case(&prop, value.clone()) {
            Ok(()) => {}
            Err(f) if f.discard => {
                discards += 1;
                assert!(
                    discards <= config.max_discards,
                    "property `{name}`: exhausted discard budget \
                     ({discards} discards) — loosen the generators or the assumptions"
                );
            }
            Err(f) => {
                report_failure(
                    name, &config, &gen, &prop, value, f, case_seed, pinned, executed,
                );
            }
        }
    }
}

/// Shrinks a counterexample and panics with the final report.
#[allow(clippy::too_many_arguments)]
fn report_failure<T, F>(
    name: &str,
    config: &Config,
    gen: &Gen<T>,
    prop: &F,
    original: T,
    original_failure: Failure,
    case_seed: u64,
    pinned: bool,
    executed: u32,
) -> !
where
    T: Clone + std::fmt::Debug + 'static,
    F: Fn(T) -> CaseResult,
{
    // Shrink candidates routinely panic; silence the default hook so the
    // report below is the only output. (Restored before the final panic.)
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut minimal = original.clone();
    let mut message = original_failure.message.clone();
    let mut budget = config.max_shrink_iters;
    let mut steps = 0u32;
    'outer: loop {
        for cand in gen.shrinks(&minimal) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(f) = eval_case(prop, cand.clone()) {
                if !f.discard {
                    minimal = cand;
                    message = f.message;
                    steps += 1;
                    continue 'outer;
                }
            }
        }
        break;
    }

    std::panic::set_hook(hook);
    let origin = if pinned {
        "pinned regression seed".to_string()
    } else {
        format!("case {executed}")
    };
    panic!(
        "property `{name}` failed ({origin}, case seed {case_seed:#x}):\n\
         \x20 minimal counterexample ({steps} shrink steps): {minimal:?}\n\
         \x20 error: {message}\n\
         \x20 original counterexample: {original:?}\n\
         \x20 original error: {original_message}\n\
         persist it: Config::new().regressions(&[{case_seed:#x}]), \
         or reproduce with TESTKIT_REPRO={case_seed:#x}",
        original_message = original_failure.message,
    );
}

/// Defines property tests.
///
/// Each `fn` becomes a `#[test]`. Its arguments are written
/// `pattern in generator` (up to four); the body runs per generated case
/// and uses [`crate::prop_assert!`] / [`crate::prop_assert_eq!`] /
/// [`crate::prop_assert_ne!`] / [`crate::prop_assume!`]. An optional
/// leading `#![config = expr]` applies one [`Config`] to every test in the
/// block.
///
/// # Examples
///
/// ```
/// use numa_gpu_testkit::gen::{ints, vecs};
/// use numa_gpu_testkit::{prop_assert, prop_check};
///
/// prop_check! {
///     fn sort_is_idempotent(mut v in vecs(ints(0u32..100), 0..20)) {
///         v.sort();
///         let once = v.clone();
///         v.sort();
///         prop_assert!(v == once);
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop_check {
    (@tests ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $g:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config = $cfg;
                let __gen = $crate::prop_check!(@gen $($g),+);
                $crate::prop::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    __config,
                    __gen,
                    |$crate::prop_check!(@pat $($pat),+)| -> $crate::prop::CaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )+
    };

    (@gen $g:expr) => { $g };
    (@gen $g1:expr, $g2:expr) => { $crate::gen::pairs($g1, $g2) };
    (@gen $g1:expr, $g2:expr, $g3:expr) => { $crate::gen::triples($g1, $g2, $g3) };
    (@gen $g1:expr, $g2:expr, $g3:expr, $g4:expr) => {
        $crate::gen::quads($g1, $g2, $g3, $g4)
    };

    (@pat $p:pat) => { $p };
    (@pat $p1:pat, $p2:pat) => { ($p1, $p2) };
    (@pat $p1:pat, $p2:pat, $p3:pat) => { ($p1, $p2, $p3) };
    (@pat $p1:pat, $p2:pat, $p3:pat, $p4:pat) => { ($p1, $p2, $p3, $p4) };

    // Entry points: with or without a block-level config attribute.
    (
        #![config = $cfg:expr]
        $($rest:tt)+
    ) => {
        $crate::prop_check!(@tests ($cfg) $($rest)+);
    };
    ( $($rest:tt)+ ) => {
        $crate::prop_check!(@tests ($crate::prop::Config::default()) $($rest)+);
    };
}

/// Asserts a condition inside a property; on failure the case is reported
/// to the runner (and shrunk) instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::Failure::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{}: both {:?}", format!($($fmt)+), l, r);
    }};
}

/// Discards the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::Failure::discard());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ints, vecs};

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run(
            "testkit::pass",
            Config::new().cases(50),
            ints(0u64..100),
            |v| {
                counter.set(counter.get() + 1);
                if v < 100 {
                    Ok(())
                } else {
                    Err(Failure::fail("out of range"))
                }
            },
        );
        count += counter.get();
        assert_eq!(count, 50);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // Fails for any v >= 10: must shrink exactly to 10.
        let result = catch_unwind(|| {
            run(
                "testkit::shrinks",
                Config::new().cases(200),
                ints(0u64..1000),
                |v| {
                    if v >= 10 {
                        Err(Failure::fail("too big"))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = panic_message(result);
        assert!(msg.contains("minimal counterexample"), "{msg}");
        assert!(msg.contains(": 10\n"), "did not shrink to 10: {msg}");
        assert!(msg.contains("case seed 0x"), "{msg}");
    }

    #[test]
    fn vec_counterexamples_shrink_structurally() {
        // Fails when the vector holds two or more even values; minimal
        // counterexample is [0, 0].
        let result = catch_unwind(|| {
            run(
                "testkit::vec_shrink",
                Config::new().cases(300),
                vecs(ints(0u32..64), 0..30),
                |v| {
                    if v.iter().filter(|x| **x % 2 == 0).count() >= 2 {
                        Err(Failure::fail("two evens"))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = panic_message(result);
        assert!(msg.contains("[0, 0]"), "not minimal: {msg}");
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let result = catch_unwind(|| {
            run(
                "testkit::panics",
                Config::new().cases(100),
                ints(0u64..100),
                |v| {
                    assert!(v < 5, "plain assert fired");
                    Ok(())
                },
            );
        });
        let msg = panic_message(result);
        assert!(msg.contains("panic: plain assert fired"), "{msg}");
        assert!(msg.contains(": 5\n"), "should shrink to 5: {msg}");
    }

    #[test]
    fn regression_seeds_run_first() {
        // Derive a case seed that fails, then pin it: the pinned run must
        // hit the failure even with zero fresh cases.
        let result = catch_unwind(|| {
            run(
                "testkit::regression",
                Config::new().cases(0).regressions(&[0xDEAD_BEEF]),
                ints(0u64..u64::MAX),
                |_| Err(Failure::fail("always fails")),
            );
        });
        let msg = panic_message(result);
        assert!(msg.contains("pinned regression seed"), "{msg}");
        assert!(msg.contains("0xdeadbeef"), "{msg}");
    }

    #[test]
    fn discards_do_not_fail_within_budget() {
        run(
            "testkit::discards",
            Config::new().cases(20),
            ints(0u64..100),
            |v| {
                if v % 2 == 0 {
                    Err(Failure::discard())
                } else {
                    Ok(())
                }
            },
        );
    }

    #[test]
    fn same_test_name_generates_identical_schedules() {
        let collect = |name: &str| {
            let seen = std::cell::RefCell::new(Vec::new());
            run(name, Config::new().cases(30), ints(0u64..1 << 60), |v| {
                seen.borrow_mut().push(v);
                Ok(())
            });
            seen.into_inner()
        };
        assert_eq!(collect("testkit::sched"), collect("testkit::sched"));
        assert_ne!(collect("testkit::sched"), collect("testkit::sched2"));
    }

    fn panic_message(result: std::thread::Result<()>) -> String {
        let payload = result.expect_err("property should have failed");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload should be a string")
    }

    mod macro_surface {
        use super::super::Config;
        use crate::gen::{bools, ints, pairs, vecs};

        crate::prop_check! {
            #![config = Config::new().cases(64)]

            fn addition_commutes(a in ints(0u64..1 << 30), b in ints(0u64..1 << 30)) {
                crate::prop_assert_eq!(a + b, b + a);
            }

            fn sorted_vecs_are_monotone(mut v in vecs(ints(0u32..1000), 0..50)) {
                v.sort_unstable();
                crate::prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            }

            fn three_args(a in ints(0u8..10), flag in bools(), v in vecs(ints(0u8..4), 1..5)) {
                crate::prop_assume!(!v.is_empty());
                let bound = if flag { 10 } else { 11 };
                crate::prop_assert!(a < bound);
                crate::prop_assert_ne!(v.len(), 0);
            }

            fn tuple_patterns((x, y) in pairs(ints(0u16..50), ints(50u16..100))) {
                crate::prop_assert!(x < y);
            }
        }
    }
}
