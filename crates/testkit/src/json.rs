//! A tiny JSON value type with an encoder and a recursive-descent parser.
//!
//! Replaces the `serde` derives the workspace used to carry: stats and
//! report types implement [`ToJson`] by hand (a few lines each), and the
//! bench harness emits its results through [`Json`]. Objects preserve
//! insertion order so encoded output is byte-stable across runs.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (encodes without a fractional part).
    Int(i64),
    /// Unsigned integer (encodes without a fractional part).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            Json::Float(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array contents.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep a fractional marker so floats re-parse as floats.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; encode as null like serde_json.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Types that can report themselves as JSON.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::obj([
            ("name", Json::Str("bench".into())),
            ("cycles", Json::UInt(123_456_789)),
            ("speedup", Json::Float(2.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("neg", Json::Int(-7)),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn encoding_is_deterministic_and_ordered() {
        let doc = Json::obj([("b", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(doc.to_string(), r#"{"b":1,"a":2}"#);
        assert_eq!(doc.to_string(), doc.to_string());
    }

    #[test]
    fn parses_whitespace_escapes_and_nesting() {
        let v = Json::parse(" { \"k\" : [ 1 , -2.5e1 , \"a\\n\\u0041\" , { } , null ] } ").unwrap();
        let arr = v.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("a\nA"));
        assert_eq!(arr[3], Json::Obj(vec![]));
        assert_eq!(arr[4], Json::Null);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "tru", "\"open", "{\"a\" 1}", "1 2", "{]}"] {
            assert!(Json::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn float_encoding_reparses_as_float() {
        let v = Json::Float(3.0);
        assert_eq!(v.to_string(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap().as_f64(), Some(3.0));
        assert!(matches!(Json::parse("3.0").unwrap(), Json::Float(_)));
    }

    #[test]
    fn large_u64_survive_exactly() {
        let v = Json::UInt(u64::MAX);
        assert_eq!(
            Json::parse(&v.to_string()).unwrap().as_u64(),
            Some(u64::MAX)
        );
    }
}
