//! Seedable deterministic pseudo-random number generation.
//!
//! The workspace must produce bit-identical traces across runs, platforms,
//! and compiler versions, so every random decision flows through
//! [`DetRng`]: xoshiro256++ state seeded by expanding a single `u64` with
//! SplitMix64 (the seeding procedure the xoshiro authors recommend). Both
//! algorithms are public domain and fully specified by their reference
//! implementations, so streams never change underneath us the way an
//! external crate's `StdRng` may on a major version bump.

/// SplitMix64: a tiny 64-bit generator used to expand seeds.
///
/// # Examples
///
/// ```
/// use numa_gpu_testkit::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's deterministic RNG: xoshiro256++ seeded via SplitMix64.
///
/// # Examples
///
/// ```
/// use numa_gpu_testkit::rng::DetRng;
/// let mut rng = DetRng::seed_from_u64(42);
/// let x = rng.gen_range(0u64..100);
/// assert!(x < 100);
/// let mut again = DetRng::seed_from_u64(42);
/// assert_eq!(again.gen_range(0u64..100), x);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        DetRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// Unbiased uniform value in `[0, bound)` via Lemire's widening
    /// multiply with rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 needs a nonzero bound");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected: retry to stay unbiased.
        }
    }

    /// Uniform value in the half-open range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_uniform(self, range.start, range.end)
    }

    /// Alias for [`Self::gen_range`] (the surface `rand` 0.9+ calls
    /// `random_range`).
    #[inline]
    pub fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        self.gen_range(range)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }

    /// `n` distinct elements sampled without replacement (partial
    /// Fisher–Yates over indices). Returns fewer if the slice is shorter.
    pub fn sample<T: Clone>(&mut self, slice: &[T], n: usize) -> Vec<T> {
        let n = n.min(slice.len());
        let mut idx: Vec<usize> = (0..slice.len()).collect();
        for i in 0..n {
            let j = i + self.bounded_u64((idx.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx[..n].iter().map(|&i| slice[i].clone()).collect()
    }

    /// Derives an independent child generator (for per-entity streams).
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed_from_u64(self.next_u64())
    }
}

/// Types [`DetRng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)`.
    fn sample_uniform(rng: &mut DetRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range on empty range");
                lo + rng.bounded_u64((hi - lo) as u64) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(rng.bounded_u64(span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range on empty range");
        lo + (hi - lo) * rng.random_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, per the reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(123);
        let mut b = DetRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = DetRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = DetRng::seed_from_u64(77);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.bounded_u64(8) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = DetRng::seed_from_u64(5);
        assert!(!(0..1000).any(|_| rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::seed_from_u64(31);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn sample_without_replacement() {
        let mut rng = DetRng::seed_from_u64(13);
        let pool: Vec<u32> = (0..20).collect();
        let picked = rng.sample(&pool, 8);
        assert_eq!(picked.len(), 8);
        let unique: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(unique.len(), 8);
        assert_eq!(rng.sample(&pool, 100).len(), 20);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = DetRng::seed_from_u64(1);
        assert_eq!(rng.choose::<u32>(&[]), None);
        assert_eq!(rng.choose(&[7]), Some(&7));
    }

    #[test]
    fn forks_are_independent_but_deterministic() {
        let mut a = DetRng::seed_from_u64(8);
        let mut b = DetRng::seed_from_u64(8);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_ne!(fa.next_u64(), a.next_u64());
    }
}
