//! Property + pinned-unit suite for the item-graph pass and file
//! scoping. The isolation rules are only as good as the graph the item
//! parser recovers, so the parser must stay total (never panic) and must
//! keep type/fn structure exact on the shapes the workspace actually
//! uses: nested generics, trait impls, cfg-gated test modules.

use numa_gpu_lint::items::{parse_items, FileItems, TypeKind, Vis};
use numa_gpu_lint::lexer::lex;
use numa_gpu_lint::rules::{mark_test_skipped, FileScope};
use numa_gpu_testkit::gen::{ints, pairs, select, strings, vecs};
use numa_gpu_testkit::{prop_assert, prop_assert_eq, prop_check};

fn items_of(src: &str) -> FileItems {
    let toks = lex(src);
    let skip = mark_test_skipped(&toks);
    parse_items(&toks, &skip)
}

// ---------------------------------------------------------------------
// FileScope::classify pinned units — the walker hands in every path shape
// below, and a misclassification either mutes a rule pack or fires it on
// exempt code.
// ---------------------------------------------------------------------

#[test]
fn classify_nested_bin_under_a_sim_crate() {
    // Determinism rules still apply to sim-crate binaries, but they are
    // not shard library code (O001 and the S pack are off).
    let s = FileScope::classify("crates/core/src/bin/partition_probe.rs");
    assert!(s.d001 && s.d002 && s.d003);
    assert!(!s.o001 && !s.sim_lib);
}

#[test]
fn classify_tests_tree_under_a_crate_is_exempt() {
    for p in [
        "crates/engine/tests/determinism.rs",
        "crates/core/src/tests/helpers.rs",
        "crates/mem/benches/hbm.rs",
        "crates/sm/examples/demo.rs",
    ] {
        let s = FileScope::classify(p);
        assert!(
            !s.d001 && !s.d002 && !s.d003 && !s.o001 && !s.sim_lib,
            "{p} must be exempt from every rule, got {s:?}"
        );
    }
}

#[test]
fn classify_root_binary_and_sim_libraries() {
    // Root `src/bin/simulate.rs` belongs to the top-level crate: not a
    // sim crate, and binaries may print.
    let s = FileScope::classify("src/bin/simulate.rs");
    assert!(!s.d001 && s.d002 && !s.o001 && !s.sim_lib);
    // Plain sim-crate library code gets the full pack.
    let s = FileScope::classify("crates/engine/src/lib.rs");
    assert!(s.d001 && s.d002 && s.d003 && s.o001 && s.sim_lib);
    // obs is deliberately outside the sim set: it still contributes
    // items to the type graph, but the S pack does not fire there.
    let s = FileScope::classify("crates/obs/src/metrics.rs");
    assert!(!s.d001 && s.d002 && !s.sim_lib);
}

// ---------------------------------------------------------------------
// Item-parser properties.
// ---------------------------------------------------------------------

prop_check! {
    #![config = numa_gpu_testkit::prop::Config::new()
        .cases(96)
        .regressions(&[0x17E_14001, 0x17E_14002])]

    // Arbitrarily deep generic nesting — including the greedy `>>` lex at
    // the tail — must recover both every wrapper layer and the innermost
    // payload type, with has_ref untouched.
    fn nested_generics_recover_every_layer(
        (depth, wrapper) in pairs(ints(1usize..6), select(vec!["Vec", "Box", "Option"])),
    ) {
        let mut ty = String::from("Payload");
        for _ in 0..depth {
            ty = format!("{wrapper}<{ty}>");
        }
        let src = format!("pub struct S {{ f: {ty} }}\n");
        let items = items_of(&src);
        prop_assert_eq!(items.types.len(), 1);
        prop_assert_eq!(items.types[0].kind, TypeKind::Struct);
        prop_assert_eq!(items.types[0].fields.len(), 1);
        let field = &items.types[0].fields[0];
        prop_assert!(!field.has_ref);
        let names: Vec<&str> = field.types.iter().map(|t| t.name.as_str()).collect();
        prop_assert_eq!(names.iter().filter(|n| **n == wrapper).count(), depth);
        prop_assert_eq!(names.iter().filter(|n| **n == "Payload").count(), 1);
    }

    // Every trait-impl method must carry its concrete owner and the
    // via_trait flag — S004 treats those as reachability entry points, so
    // losing either hides panic paths.
    fn trait_impl_methods_carry_owner_and_via_trait(
        n in ints(1usize..5),
    ) {
        let mut src = String::from("pub trait Tick { fn tick(&mut self); }\n");
        for i in 0..n {
            src.push_str(&format!(
                "struct S{i};\nimpl Tick for S{i} {{ fn tick(&mut self) {{ self.step(); }} }}\n"
            ));
        }
        let items = items_of(&src);
        for i in 0..n {
            let owner = format!("S{i}");
            let f = items
                .fns
                .iter()
                .find(|f| f.owner.as_deref() == Some(owner.as_str()))
                .expect("impl method parsed");
            prop_assert_eq!(f.name.as_str(), "tick");
            prop_assert!(f.via_trait);
            prop_assert!(f.calls.iter().any(|c| c.name == "step" && c.method));
        }
    }

    // `#[cfg(test)]` modules contribute nothing to the graph no matter
    // what they contain — panics in test helpers must never reach S004.
    fn cfg_test_modules_contribute_nothing(
        n in ints(0usize..4),
    ) {
        let mut src = String::from("pub fn live() {}\n#[cfg(test)]\nmod tests {\n");
        for i in 0..n {
            src.push_str(&format!("    fn t{i}() {{ panic!(\"boom\"); }}\n"));
        }
        src.push_str("}\n");
        let items = items_of(&src);
        prop_assert_eq!(items.fns.len(), 1);
        prop_assert_eq!(items.fns[0].name.as_str(), "live");
        prop_assert_eq!(items.fns[0].vis, Vis::Pub);
        prop_assert!(items.fns[0].panics.is_empty());
        prop_assert!(items.top_panics.is_empty());
    }

    // Totality: the parser must survive arbitrary interleavings of item
    // keywords, unbalanced brackets and raw byte soup. Misparses may lose
    // graph edges; they may never panic (the linter gates every build).
    fn parser_never_panics_on_keyword_and_byte_soup(
        (frags, soup) in pairs(
            vecs(
                select(vec![
                    "struct", "enum", "impl", "trait", "fn", "mod", "static",
                    "static mut", "unsafe", "const", "where", "for", "dyn",
                    "#[derive(", "#[cfg(test)]", "{", "}", "(", ")", "<", ">",
                    ">>", "->", "::", ";", ",", "&", "Self",
                ]),
                0..14,
            ),
            strings(0..48),
        ),
    ) {
        let src = format!("{} {soup}", frags.join(" "));
        let toks = lex(&src);
        let skip = mark_test_skipped(&toks);
        let items = parse_items(&toks, &skip);
        // The graph is well-formed even when the input is not.
        prop_assert!(items.fns.iter().all(|f| !f.name.is_empty()));
        prop_assert!(items.types.iter().all(|t| !t.name.is_empty()));
    }
}
