//! Property suite for the simlint lexer: the linter gates every build, so
//! the lexer must never panic and must keep comment/string/char
//! boundaries exact on adversarial input.

use numa_gpu_lint::lexer::{lex, TokKind};
use numa_gpu_testkit::gen::{ints, pairs, strings, vecs};
use numa_gpu_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Strips characters that would terminate the surrounding construct, so
/// generated bodies stay inside it.
fn sanitize(s: &str, banned: &[char]) -> String {
    s.chars().filter(|c| !banned.contains(c)).collect()
}

prop_check! {
    // The pinned seeds replay, ahead of the random cases, inputs that
    // exercised tricky lexer paths during development (deep comment
    // nesting, fence-heavy raw strings, byte soup with stray quotes).
    #![config = numa_gpu_testkit::prop::Config::new()
        .cases(96)
        .regressions(&[0x5EED_0001, 0x5EED_0002, 0xBAD_C0DE])]

    fn nested_block_comments_lex_as_one_token(
        (depth, body) in pairs(ints(1usize..6), strings(0..24)),
    ) {
        let body = sanitize(&body, &['*', '/']);
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("/*");
        }
        src.push_str(&body);
        for _ in 0..depth {
            src.push_str("*/");
        }
        src.push_str(" after");
        let toks = lex(&src);
        prop_assert_eq!(toks.len(), 2);
        prop_assert_eq!(toks[0].kind, TokKind::BlockComment);
        prop_assert_eq!(toks[1].kind, TokKind::Ident);
        prop_assert_eq!(toks[1].text.as_str(), "after");
    }

    fn raw_strings_respect_their_hash_count(
        (hashes, body) in pairs(ints(0usize..5), strings(0..24)),
    ) {
        // A body containing `"` followed by >= `hashes` hashes would
        // terminate early; ban both characters to stay inside.
        let body = sanitize(&body, &['"', '#']);
        let fence = "#".repeat(hashes);
        let src = format!("r{fence}\"{body}\"{fence} after");
        let toks = lex(&src);
        prop_assert_eq!(toks.len(), 2);
        prop_assert_eq!(toks[0].kind, TokKind::RawStr);
        prop_assert!(toks[0].text.contains(&body));
        prop_assert_eq!(toks[1].text.as_str(), "after");
    }

    fn escaped_strings_and_chars_keep_boundaries(
        (pieces, escape) in pairs(
            vecs(strings(0..8), 0..4),
            ints(0usize..4),
        ),
    ) {
        let esc = ["\\\"", "\\\\", "\\n", "\\'"][escape];
        let body = pieces
            .iter()
            .map(|p| sanitize(p, &['"', '\\', '\'']))
            .collect::<Vec<_>>()
            .join(esc);
        let src = format!("\"{body}\" 'x' '\\n' zz");
        let toks = lex(&src);
        prop_assert_eq!(toks.len(), 4);
        prop_assert_eq!(toks[0].kind, TokKind::Str);
        prop_assert_eq!(toks[1].kind, TokKind::Char);
        prop_assert_eq!(toks[2].kind, TokKind::Char);
        prop_assert_eq!(toks[3].text.as_str(), "zz");
    }

    fn lexer_never_panics_and_spans_are_monotone(
        bytes in vecs(ints(0u16..256).map(|v| v as u8), 0..200),
    ) {
        // Arbitrary bytes, lossily decoded: unterminated strings, stray
        // quotes, half comments, NUL bytes — the lexer must produce
        // tokens with 1-based monotonically nondecreasing spans and
        // must not panic.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks = lex(&src);
        let mut prev = (1u32, 0u32);
        for t in &toks {
            prop_assert!(t.line >= 1 && t.col >= 1);
            let here = (t.line, t.col);
            prop_assert!(
                t.line > prev.0 || (t.line == prev.0 && t.col > prev.1),
                "token spans must advance: {:?} after {:?}",
                here,
                prev
            );
            prev = here;
        }
    }

    fn lexer_never_panics_on_adversarial_prefixes(
        (prefix, tail) in pairs(ints(0usize..12), strings(0..40)),
    ) {
        // Constructs that start multi-character tokens, then arbitrary
        // text: every prefix must terminate without panicking.
        let starts = [
            "r#\"", "r\"", "b\"", "br##\"", "b'", "'", "\"", "/*", "//", "r#", "0x", "1e",
        ];
        let src = format!("{}{}", starts[prefix], tail);
        let _ = lex(&src);
        // Reaching here without a panic is the property.
        prop_assert!(true);
    }
}
