//! The enforcement gate: plain `cargo test` fails if the workspace has
//! any unsuppressed simlint finding, so determinism regressions are
//! caught in the same run as everything else — no separate lint step
//! needed locally.

use numa_gpu_lint::lint_workspace;
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let report = lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        report.files_scanned > 50 && report.manifests_scanned > 10,
        "scan looks truncated: {} files, {} manifests",
        report.files_scanned,
        report.manifests_scanned
    );
    assert!(
        report.is_clean(),
        "simlint found {} violation(s) — fix them or add a site-local \
         `simlint: allow(RULE, reason = ...)`:\n{}",
        report.findings.len(),
        report.render_text()
    );
}

#[test]
fn report_json_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = lint_workspace(&root)
        .expect("first scan")
        .to_json()
        .to_string();
    let b = lint_workspace(&root)
        .expect("second scan")
        .to_json()
        .to_string();
    assert_eq!(a, b, "lint report must be byte-stable across runs");
    assert!(a.starts_with("{\"simlint\":1,"));
}

/// Seeding a deliberate `HashMap` into a synthetic `crates/engine` makes
/// the gate fail with a span-accurate D001 — the canary for the whole
/// pipeline (walker → lexer → scope → rule → report).
#[test]
fn seeded_hashmap_in_engine_fails_with_span_accurate_d001() {
    let root = std::env::temp_dir().join(format!("simlint-canary-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let engine_src = root.join("crates/engine/src");
    fs::create_dir_all(&engine_src).expect("mkdir");
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write root manifest");
    fs::write(
        root.join("crates/engine/Cargo.toml"),
        "[package]\nname = \"engine\"\n",
    )
    .expect("write crate manifest");
    fs::write(
        engine_src.join("queue.rs"),
        "//! Event queue.\n\nuse std::collections::HashMap;\n",
    )
    .expect("write seeded source");

    let report = lint_workspace(&root).expect("canary scan");
    assert!(!report.is_clean(), "seeded HashMap must be detected");
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.rule, "D001");
    assert_eq!(f.file, "crates/engine/src/queue.rs");
    // `use std::collections::HashMap` — the ident starts at column 23.
    assert_eq!((f.line, f.col), (3, 23));
    assert_eq!(
        f.render().split_whitespace().next().unwrap(),
        "crates/engine/src/queue.rs:3:23:"
    );

    // A site pragma with a reason silences it; a pragma without a reason
    // downgrades to a P001 instead of silencing.
    fs::write(
        engine_src.join("queue.rs"),
        "// simlint: allow(D001, reason = \"canary\")\nuse std::collections::HashMap;\n",
    )
    .expect("rewrite seeded source");
    assert!(lint_workspace(&root).expect("scan").is_clean());

    let _ = fs::remove_dir_all(&root);
}
