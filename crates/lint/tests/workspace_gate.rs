//! The enforcement gate: plain `cargo test` fails if the workspace has
//! any unsuppressed simlint finding, so determinism regressions are
//! caught in the same run as everything else — no separate lint step
//! needed locally.

use numa_gpu_lint::{lint_workspace, lint_workspace_cached};
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let report = lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        report.files_scanned > 50 && report.manifests_scanned > 10,
        "scan looks truncated: {} files, {} manifests",
        report.files_scanned,
        report.manifests_scanned
    );
    assert!(
        report.is_clean(),
        "simlint found {} violation(s) — fix them or add a site-local \
         `simlint: allow(RULE, reason = ...)`:\n{}",
        report.findings.len(),
        report.render_text()
    );
}

#[test]
fn report_json_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = lint_workspace(&root)
        .expect("first scan")
        .to_json()
        .to_string();
    let b = lint_workspace(&root)
        .expect("second scan")
        .to_json()
        .to_string();
    assert_eq!(a, b, "lint report must be byte-stable across runs");
    assert!(a.starts_with("{\"simlint\":2,"));
}

/// The on-disk cache must be invisible in the output: no-cache, cold-cache
/// and warm-cache scans of the real workspace produce byte-identical JSON.
#[test]
fn cold_and_warm_cache_agree_on_the_real_workspace() {
    let root = workspace_root();
    let cache =
        std::env::temp_dir().join(format!("simlint-gate-cache-{}.json", std::process::id()));
    let _ = fs::remove_file(&cache);
    let nocache = lint_workspace(&root).expect("scan").to_json().to_string();
    let cold = lint_workspace_cached(&root, Some(&cache))
        .expect("cold scan")
        .to_json()
        .to_string();
    assert!(cache.exists(), "cold run must write the cache file");
    let warm = lint_workspace_cached(&root, Some(&cache))
        .expect("warm scan")
        .to_json()
        .to_string();
    assert_eq!(
        nocache, cold,
        "cold-cache report must match the uncached one"
    );
    assert_eq!(cold, warm, "warm-cache report must match the cold one");
    let _ = fs::remove_file(&cache);
}

/// Seeding a deliberate `HashMap` into a synthetic `crates/engine` makes
/// the gate fail with a span-accurate D001 — the canary for the whole
/// pipeline (walker → lexer → scope → rule → report).
#[test]
fn seeded_hashmap_in_engine_fails_with_span_accurate_d001() {
    let root = std::env::temp_dir().join(format!("simlint-canary-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let engine_src = root.join("crates/engine/src");
    fs::create_dir_all(&engine_src).expect("mkdir");
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write root manifest");
    fs::write(
        root.join("crates/engine/Cargo.toml"),
        "[package]\nname = \"engine\"\n",
    )
    .expect("write crate manifest");
    fs::write(
        engine_src.join("queue.rs"),
        "//! Event queue.\n\nuse std::collections::HashMap;\n",
    )
    .expect("write seeded source");

    let report = lint_workspace(&root).expect("canary scan");
    assert!(!report.is_clean(), "seeded HashMap must be detected");
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.rule, "D001");
    assert_eq!(f.file, "crates/engine/src/queue.rs");
    // `use std::collections::HashMap` — the ident starts at column 23.
    assert_eq!((f.line, f.col), (3, 23));
    assert_eq!(
        f.render().split_whitespace().next().unwrap(),
        "crates/engine/src/queue.rs:3:23:"
    );

    // A site pragma with a reason silences it; a pragma without a reason
    // downgrades to a P001 instead of silencing.
    fs::write(
        engine_src.join("queue.rs"),
        "// simlint: allow(D001, reason = \"canary\")\nuse std::collections::HashMap;\n",
    )
    .expect("rewrite seeded source");
    assert!(lint_workspace(&root).expect("scan").is_clean());

    let _ = fs::remove_dir_all(&root);
}

/// Seeding a `RefCell` into the shard-owned type closure makes the gate
/// fail with a span-accurate S002 — the canary for the item-graph
/// pipeline (parser → workspace type index → isolation closure). The
/// reach is transitive: the cell hides one hop away from `SocketShard`.
#[test]
fn seeded_refcell_in_shard_state_fails_with_span_accurate_s002() {
    let root = std::env::temp_dir().join(format!("simlint-s002-canary-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let core_src = root.join("crates/core/src");
    fs::create_dir_all(&core_src).expect("mkdir");
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write root manifest");
    fs::write(
        root.join("crates/core/Cargo.toml"),
        "[package]\nname = \"core\"\n",
    )
    .expect("write crate manifest");
    fs::write(
        core_src.join("shard.rs"),
        "pub struct SocketShard {\n    queue: EventQueue,\n}\npub struct EventQueue {\n    pending: RefCell<u32>,\n}\n",
    )
    .expect("write seeded source");

    let report = lint_workspace(&root).expect("canary scan");
    assert!(!report.is_clean(), "seeded RefCell must be detected");
    assert_eq!(report.findings.len(), 1, "{}", report.render_text());
    let f = &report.findings[0];
    assert_eq!(f.rule, "S002");
    assert_eq!(f.file, "crates/core/src/shard.rs");
    // `    pending: RefCell<u32>,` — the ident starts at column 14.
    assert_eq!((f.line, f.col), (5, 14));
    assert!(f.message.contains("`EventQueue`"), "{}", f.message);
    assert!(f.message.contains("shard-owned"), "{}", f.message);

    // Registering the carrier type as deliberately shared clears the
    // finding and surfaces the type in the audit registry instead.
    fs::write(
        core_src.join("shard.rs"),
        "pub struct SocketShard {\n    queue: EventQueue,\n}\n// simlint: shared(reason = \"audited: single writer per window\")\npub struct EventQueue {\n    pending: RefCell<u32>,\n}\n",
    )
    .expect("rewrite seeded source");
    let report = lint_workspace(&root).expect("shared scan");
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.shared_types.len(), 1);
    assert_eq!(report.shared_types[0].type_name, "EventQueue");
    assert_eq!(
        report.shared_types[0].reason,
        "audited: single writer per window"
    );

    let _ = fs::remove_dir_all(&root);
}
