//! Z001: every dependency in every manifest must resolve inside the
//! workspace.
//!
//! The rule keeps the build hermetic: CI runs with `CARGO_NET_OFFLINE=true`
//! and a registry dependency sneaking into any `Cargo.toml` would only fail
//! at the network boundary, far from the edit that introduced it. Checked
//! shapes:
//!
//! * root `[workspace.dependencies]`: every entry's value must contain
//!   `path =`;
//! * `[dependencies]` / `[dev-dependencies]` / `[build-dependencies]`
//!   (and their `target.*` variants): every entry must inherit with
//!   `workspace = true` or give an explicit `path =`;
//! * `[dependencies.<name>]` subsections: the section body must contain a
//!   `workspace = true` or `path =` line.
//!
//! This is a line-oriented scan, not a full TOML parser — manifests here
//! are machine-regular, and the linter is deliberately dependency-free.
//! TOML comments may carry the same `simlint:` pragmas as Rust comments.

use crate::findings::Finding;
use crate::pragma::{apply_pragmas, parse_pragma, MARKER};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    /// `[workspace.dependencies]` — entries must be path deps.
    WorkspaceDeps,
    /// A dependency table — entries must be workspace or path deps.
    Deps,
    /// `[dependencies.<name>]` — body must contain workspace/path.
    DepSubsection,
    Other,
}

fn classify_section(header: &str) -> Section {
    let h = header.trim();
    if h == "workspace.dependencies" {
        return Section::WorkspaceDeps;
    }
    let dep_tables = ["dependencies", "dev-dependencies", "build-dependencies"];
    for t in dep_tables {
        if h == t || h.ends_with(&format!(".{t}")) && h.starts_with("target.") {
            return Section::Deps;
        }
        if let Some(rest) = h.strip_prefix(t) {
            if rest.starts_with('.') && !rest[1..].is_empty() {
                return Section::DepSubsection;
            }
        }
    }
    Section::Other
}

fn z001(file: &str, line_no: u32, col: u32, what: String) -> Finding {
    Finding {
        file: file.to_string(),
        line: line_no,
        col,
        rule: "Z001",
        message: format!(
            "{what}; every dependency must stay inside the workspace \
             (`workspace = true` or an explicit `path = ...`) — the build is offline"
        ),
    }
}

/// Lints one `Cargo.toml`. `path` is workspace-relative.
pub fn analyze_manifest(path: &str, src: &str) -> Vec<Finding> {
    let mut raw = Vec::new();
    let mut pragmas = Vec::new();
    let mut section = Section::Other;
    // For `[dependencies.<name>]`: (header line, header col, name, satisfied).
    let mut open_sub: Option<(u32, u32, String, bool)> = None;

    let close_sub = |open: &mut Option<(u32, u32, String, bool)>, raw: &mut Vec<Finding>| {
        if let Some((line, col, name, ok)) = open.take() {
            if !ok {
                raw.push(z001(
                    path,
                    line,
                    col,
                    format!("`[dependencies.{name}]` section is not a workspace dependency"),
                ));
            }
        }
    };

    for (idx, full_line) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        // Pragmas ride in TOML comments.
        if let Some(hash) = full_line.find('#') {
            let comment = full_line[hash + 1..].trim_start();
            if let Some(after) = comment.strip_prefix(MARKER) {
                let col = (hash + 1) as u32;
                pragmas.push(parse_pragma(after.trim(), path, line_no, col));
            }
        }
        let line = match full_line.find('#') {
            Some(h) => &full_line[..h],
            None => full_line,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('[') && trimmed.ends_with(']') {
            close_sub(&mut open_sub, &mut raw);
            let header = trimmed.trim_start_matches('[').trim_end_matches(']');
            section = classify_section(header);
            if section == Section::DepSubsection {
                let name = header
                    .rsplit('.')
                    .next()
                    .unwrap_or(header)
                    .trim()
                    .to_string();
                let col = (line.find('[').unwrap_or(0) + 1) as u32;
                open_sub = Some((line_no, col, name, false));
            }
            continue;
        }
        let Some(eq) = trimmed.find('=') else {
            continue;
        };
        let key = trimmed[..eq].trim();
        let value = trimmed[eq + 1..].trim();
        let col = (line.find(key.chars().next().unwrap_or('=')).unwrap_or(0) + 1) as u32;
        match section {
            Section::WorkspaceDeps => {
                if !value.contains("path") {
                    raw.push(z001(
                        path,
                        line_no,
                        col,
                        format!("workspace dependency `{key}` is not a path dependency"),
                    ));
                }
            }
            Section::Deps => {
                let inherited = key.ends_with(".workspace") && value == "true";
                let inline_ok = value.contains("workspace") || value.contains("path");
                if !inherited && !inline_ok {
                    raw.push(z001(
                        path,
                        line_no,
                        col,
                        format!("dependency `{key}` does not resolve inside the workspace"),
                    ));
                }
            }
            Section::DepSubsection => {
                if let Some(sub) = open_sub.as_mut() {
                    if (key == "workspace" && value == "true") || key == "path" {
                        sub.3 = true;
                    }
                }
            }
            Section::Other => {}
        }
    }
    close_sub(&mut open_sub, &mut raw);
    // Manifests have no item graph: no shared pragmas can be consumed.
    let mut out = apply_pragmas(path, pragmas, raw, &[]);
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(src: &str) -> Vec<(&'static str, u32)> {
        analyze_manifest("crates/x/Cargo.toml", src)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn workspace_deps_must_be_path_deps() {
        let ok = "[workspace.dependencies]\nfoo = { path = \"crates/foo\" }\n";
        assert!(hits(ok).is_empty());
        let bad = "[workspace.dependencies]\nserde = \"1.0\"\n";
        assert_eq!(hits(bad), vec![("Z001", 2)]);
    }

    #[test]
    fn crate_deps_must_inherit_or_path() {
        let ok = "[dependencies]\nfoo.workspace = true\nbar = { workspace = true }\nbaz = { path = \"../baz\" }\n";
        assert!(hits(ok).is_empty());
        let bad = "[dependencies]\nserde = \"1.0\"\nrand = { version = \"0.8\" }\n";
        assert_eq!(hits(bad), vec![("Z001", 2), ("Z001", 3)]);
        let dev_bad = "[dev-dependencies]\ncriterion = \"0.5\"\n";
        assert_eq!(hits(dev_bad), vec![("Z001", 2)]);
    }

    #[test]
    fn dep_subsections_checked() {
        let ok = "[dependencies.foo]\nworkspace = true\n";
        assert!(hits(ok).is_empty());
        let ok = "[dependencies.foo]\npath = \"../foo\"\n";
        assert!(hits(ok).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1.0\"\nfeatures = [\"derive\"]\n";
        assert_eq!(hits(bad), vec![("Z001", 1)]);
        // Section closed by the next header still gets checked.
        let bad = "[dependencies.serde]\nversion = \"1.0\"\n\n[dev-dependencies]\n";
        assert_eq!(hits(bad), vec![("Z001", 1)]);
    }

    #[test]
    fn non_dependency_sections_ignored() {
        let src = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[[bin]]\nname = \"tool\"\npath = \"src/bin/tool.rs\"\n";
        assert!(hits(src).is_empty());
        let src = "[features]\ndefault = []\n";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn toml_pragma_suppresses_with_reason() {
        let src = "[dependencies]\nserde = \"1.0\" # simlint: allow(Z001, reason = \"vendored offline\")\n";
        assert!(hits(src).is_empty());
        let unused =
            "[dependencies]\nfoo.workspace = true # simlint: allow(Z001, reason = \"x\")\n";
        assert_eq!(hits(unused), vec![("P002", 2)]);
        let malformed = "[dependencies]\nserde = \"1.0\" # simlint: allow(Z001)\n";
        let h = hits(malformed);
        assert!(h.contains(&("P001", 2)));
        assert!(h.contains(&("Z001", 2)));
    }
}
