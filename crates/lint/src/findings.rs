//! Diagnostics: the [`Finding`] type, the rule catalogue, and the
//! machine-readable report (JSON and SARIF).

use numa_gpu_testkit::json::Json;

/// One catalogue entry: stable ID, one-line summary, rationale, and fix
/// guidance. The latter two feed `simlint --explain RULE` and ride along
/// in the JSON/SARIF reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable rule ID (`D001`, `S002`, …). IDs are append-only — a retired
    /// rule keeps its ID reserved so old pragmas and CI logs never change
    /// meaning.
    pub id: &'static str,
    /// One-line summary for `--list-rules` and the SARIF rule table.
    pub summary: &'static str,
    /// Why the rule exists (one line, embedded per-finding in JSON).
    pub rationale: &'static str,
    /// How to fix a finding.
    pub fix: &'static str,
}

/// The rule catalogue. IDs are append-only — a retired rule (A001,
/// superseded by the call-graph-aware S004) keeps its ID reserved so old
/// pragmas and CI logs never change meaning.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D001",
        summary: "no HashMap/HashSet in deterministic simulation crates (iteration-order nondeterminism)",
        rationale: "hash iteration order varies per process and leaks straight into event order and reports",
        fix: "use BTreeMap/BTreeSet, or drain through an explicitly sorted buffer",
    },
    Rule {
        id: "D002",
        summary: "no std::time::Instant/SystemTime outside bench/exec reporting paths",
        rationale: "wall clock must never reach simulation state or a SimReport; simulated time comes from the event queue",
        fix: "derive timing from event-queue ticks, or move the measurement into bench/exec",
    },
    Rule {
        id: "D003",
        summary: "no float ==/!= comparisons and no f32/f64 Iterator::sum/product reductions",
        rationale: "float comparison and reduction order are representation-dependent; the optimizer may reassociate",
        fix: "compare against an epsilon, or use an explicit left fold so the order is part of the code",
    },
    Rule {
        id: "Z001",
        summary: "every Cargo.toml dependency must be a workspace path dependency",
        rationale: "the build is offline (CARGO_NET_OFFLINE); a registry dependency fails at the network boundary, far from the edit",
        fix: "inherit with `workspace = true` or give an explicit `path = ...`",
    },
    Rule {
        id: "A001",
        summary: "(superseded by S004) no unwrap/expect/panic! in non-test library code of simulation crates",
        rationale: "retired: the textual panic scan is superseded by the call-graph-aware S004 reachability analysis",
        fix: "rename remaining `allow(A001, ...)` pragmas to S004, or delete them if S004 no longer fires",
    },
    Rule {
        id: "O001",
        summary: "no direct println!/eprintln! in library code (use exec::Reporter or a bin)",
        rationale: "library output bypasses the Reporter's buffering and interleaves nondeterministically under --jobs N",
        fix: "route output through exec::Reporter, or keep the print in a bin",
    },
    Rule {
        id: "S001",
        summary: "no static mut / interior-mutable static items in simulation crates",
        rationale: "global mutable state is shared by every shard that can name it, bypassing the partition boundary",
        fix: "move the state into SocketShard (or the serial control plane) and thread it explicitly",
    },
    Rule {
        id: "S002",
        summary: "no interior-mutability types in fields of shard-owned state (SocketShard field-type closure)",
        rationale: "Cell/Mutex/atomic fields let concurrently running shards mutate state the window barrier never merges",
        fix: "make the field plain data owned by the shard, or register the type with `simlint: shared(reason = ...)`",
    },
    Rule {
        id: "S003",
        summary: "no unsafe blocks or functions in simulation crates",
        rationale: "unsafe code can smuggle aliasing and data races past the shard-isolation discipline the S-rules check",
        fix: "rewrite safely; sim crates carry #![forbid(unsafe_code)] and simlint keeps the attribute honest",
    },
    Rule {
        id: "S004",
        summary: "no panic path (unwrap/expect/panic!-family) reachable from a public sim-crate entry point",
        rationale: "a panic inside a shard poisons the window barrier and kills the whole partitioned run",
        fix: "return a typed error, or pragma the audited invariant with `allow(S004, reason = ...)`",
    },
    Rule {
        id: "S005",
        summary: "cross-partition payload types must be plain data (no Rc/Arc/reference fields)",
        rationale: "a shared pointer in an XMsg aliases shard state across the partition boundary the barrier merge cannot see",
        fix: "send owned plain data (ids, lines, ticks); resolve shared lookups on the receiving shard",
    },
    Rule {
        id: "P001",
        summary: "malformed simlint pragma",
        rationale: "a pragma that fails to parse would otherwise silently suppress nothing",
        fix: "use `allow(RULE, reason = \"...\")` or `shared(reason = \"...\")` with a non-empty reason",
    },
    Rule {
        id: "P002",
        summary: "unused simlint pragma",
        rationale: "dead pragmas rot: they document suppressions that no longer exist",
        fix: "delete the pragma (or move it to the line it is meant to cover)",
    },
];

/// Rule IDs a pragma may suppress (the pragma meta-rules cannot suppress
/// themselves; A001 stays allowable so historical branches degrade to P002
/// instead of P001).
pub const ALLOWABLE_RULES: &[&str] = &[
    "D001", "D002", "D003", "Z001", "A001", "O001", "S001", "S002", "S003", "S004", "S005",
];

/// Resolves a user-supplied rule name to its catalogue entry.
pub fn rule_info(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == name)
}

/// Resolves a user-supplied rule name to its catalogue ID.
pub fn rule_id(name: &str) -> Option<&'static str> {
    rule_info(name).map(|r| r.id)
}

/// One diagnostic: a rule violation (or pragma problem) at an exact span.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// Stable rule ID (`D001`, …).
    pub rule: &'static str,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
}

impl Finding {
    /// `file:line:col: RULE message` — the text-format diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }

    /// JSON form (field order fixed so output is byte-stable). Carries the
    /// catalogue rationale so machine consumers need no side table.
    pub fn to_json(&self) -> Json {
        let rationale = rule_info(self.rule).map(|r| r.rationale).unwrap_or("");
        Json::obj([
            ("file", Json::Str(self.file.clone())),
            ("line", Json::UInt(self.line as u64)),
            ("col", Json::UInt(self.col as u64)),
            ("rule", Json::Str(self.rule.to_string())),
            ("message", Json::Str(self.message.clone())),
            ("rationale", Json::Str(rationale.to_string())),
        ])
    }

    /// SARIF `result` object for this finding.
    fn to_sarif(&self) -> Json {
        Json::obj([
            ("ruleId", Json::Str(self.rule.to_string())),
            ("level", Json::Str("error".to_string())),
            (
                "message",
                Json::obj([("text", Json::Str(self.message.clone()))]),
            ),
            (
                "locations",
                Json::Arr(vec![Json::obj([(
                    "physicalLocation",
                    Json::obj([
                        (
                            "artifactLocation",
                            Json::obj([("uri", Json::Str(self.file.clone()))]),
                        ),
                        (
                            "region",
                            Json::obj([
                                ("startLine", Json::UInt(self.line as u64)),
                                ("startColumn", Json::UInt(self.col as u64)),
                            ]),
                        ),
                    ]),
                )])]),
            ),
        ])
    }
}

/// One entry in the shared-state registry: a type deliberately excluded
/// from the shard-isolation closure via `simlint: shared(reason = ...)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SharedEntry {
    /// Type name the pragma covers.
    pub type_name: String,
    /// File the pragma (and type declaration) live in.
    pub file: String,
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// The pragma's reason string.
    pub reason: String,
}

impl SharedEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("type", Json::Str(self.type_name.clone())),
            ("file", Json::Str(self.file.clone())),
            ("line", Json::UInt(self.line as u64)),
            ("reason", Json::Str(self.reason.clone())),
        ])
    }
}

/// Result of linting a whole workspace.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, sorted by `(file, line, col, rule)`.
    pub findings: Vec<Finding>,
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Manifests scanned.
    pub manifests_scanned: usize,
    /// The shared-state registry: every type excluded from the S002
    /// closure, with its reviewed reason — auditable in one place.
    pub shared_types: Vec<SharedEntry>,
}

impl LintReport {
    /// Sorts and dedupes findings into the canonical deterministic order.
    pub fn normalize(&mut self) {
        self.findings.sort();
        self.findings.dedup();
        self.shared_types.sort();
        self.shared_types.dedup();
    }

    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The full machine-readable report. Byte-identical across runs on
    /// identical inputs: ordering is canonical and nothing time- or
    /// environment-dependent is recorded.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("simlint", Json::UInt(2)),
            ("files_scanned", Json::UInt(self.files_scanned as u64)),
            (
                "manifests_scanned",
                Json::UInt(self.manifests_scanned as u64),
            ),
            (
                "findings",
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            ),
            (
                "shared",
                Json::Arr(self.shared_types.iter().map(SharedEntry::to_json).collect()),
            ),
        ])
    }

    /// SARIF 2.1.0 report for CI annotation. Byte-stable for the same
    /// reasons as [`Self::to_json`].
    pub fn to_sarif(&self) -> Json {
        let rules = RULES
            .iter()
            .map(|r| {
                Json::obj([
                    ("id", Json::Str(r.id.to_string())),
                    (
                        "shortDescription",
                        Json::obj([("text", Json::Str(r.summary.to_string()))]),
                    ),
                    (
                        "help",
                        Json::obj([("text", Json::Str(format!("{} Fix: {}", r.rationale, r.fix)))]),
                    ),
                ])
            })
            .collect();
        Json::obj([
            (
                "$schema",
                Json::Str("https://json.schemastore.org/sarif-2.1.0.json".to_string()),
            ),
            ("version", Json::Str("2.1.0".to_string())),
            (
                "runs",
                Json::Arr(vec![Json::obj([
                    (
                        "tool",
                        Json::obj([(
                            "driver",
                            Json::obj([
                                ("name", Json::Str("simlint".to_string())),
                                ("rules", Json::Arr(rules)),
                            ]),
                        )]),
                    ),
                    (
                        "results",
                        Json::Arr(self.findings.iter().map(Finding::to_sarif).collect()),
                    ),
                ])]),
            ),
        ])
    }

    /// Text-format report: one diagnostic line per finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_span_accurate() {
        let f = Finding {
            file: "crates/engine/src/lib.rs".into(),
            line: 7,
            col: 21,
            rule: "D001",
            message: "no".into(),
        };
        assert_eq!(f.render(), "crates/engine/src/lib.rs:7:21: D001 no");
    }

    #[test]
    fn normalize_sorts_and_dedupes() {
        let f = |file: &str, line| Finding {
            file: file.into(),
            line,
            col: 1,
            rule: "D001",
            message: String::new(),
        };
        let mut r = LintReport {
            findings: vec![f("b.rs", 2), f("a.rs", 9), f("b.rs", 2)],
            files_scanned: 2,
            manifests_scanned: 0,
            shared_types: Vec::new(),
        };
        r.normalize();
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.findings[0].file, "a.rs");
    }

    #[test]
    fn json_is_reparsable_and_stable() {
        let r = LintReport {
            findings: vec![Finding {
                file: "x.rs".into(),
                line: 1,
                col: 2,
                rule: "O001",
                message: "msg".into(),
            }],
            files_scanned: 1,
            manifests_scanned: 1,
            shared_types: vec![SharedEntry {
                type_name: "CounterHandle".into(),
                file: "crates/obs/src/metrics.rs".into(),
                line: 30,
                reason: "metric sink".into(),
            }],
        };
        let a = r.to_json().to_string();
        let b = r.to_json().to_string();
        assert_eq!(a, b);
        let parsed = Json::parse(&a).expect("report JSON reparses");
        assert_eq!(parsed.get("simlint").and_then(Json::as_u64), Some(2));
        // Findings carry the catalogue rationale inline.
        let finding = &parsed
            .get("findings")
            .and_then(Json::as_array)
            .expect("arr")[0];
        assert!(finding
            .get("rationale")
            .and_then(Json::as_str)
            .is_some_and(|r| r.contains("Reporter")));
        let shared = &parsed.get("shared").and_then(Json::as_array).expect("arr")[0];
        assert_eq!(
            shared.get("type").and_then(Json::as_str),
            Some("CounterHandle")
        );
    }

    #[test]
    fn sarif_has_schema_rules_and_span_accurate_results() {
        let r = LintReport {
            findings: vec![Finding {
                file: "crates/engine/src/lib.rs".into(),
                line: 7,
                col: 21,
                rule: "S002",
                message: "interior mutability".into(),
            }],
            files_scanned: 1,
            manifests_scanned: 0,
            shared_types: Vec::new(),
        };
        let text = r.to_sarif().to_string();
        assert_eq!(text, r.to_sarif().to_string(), "SARIF must be byte-stable");
        let doc = Json::parse(&text).expect("SARIF reparses");
        assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
        let run = &doc.get("runs").and_then(Json::as_array).expect("runs")[0];
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_array)
            .expect("rules");
        assert_eq!(rules.len(), RULES.len());
        let result = &run
            .get("results")
            .and_then(Json::as_array)
            .expect("results")[0];
        assert_eq!(result.get("ruleId").and_then(Json::as_str), Some("S002"));
        let region = result
            .get("locations")
            .and_then(Json::as_array)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .expect("region");
        assert_eq!(region.get("startLine").and_then(Json::as_u64), Some(7));
        assert_eq!(region.get("startColumn").and_then(Json::as_u64), Some(21));
    }

    #[test]
    fn every_allowable_rule_is_in_the_catalogue() {
        for r in ALLOWABLE_RULES {
            assert!(rule_id(r).is_some(), "{r} missing from catalogue");
        }
        assert!(rule_id("D999").is_none());
        // Every catalogue entry has non-empty explain fields.
        for r in RULES {
            assert!(!r.summary.is_empty() && !r.rationale.is_empty() && !r.fix.is_empty());
        }
    }
}
