//! Diagnostics: the [`Finding`] type, the rule catalogue, and the
//! machine-readable report.

use numa_gpu_testkit::json::Json;

/// The rule catalogue: stable ID plus a one-line summary. IDs are
/// append-only — a retired rule keeps its ID reserved so old pragmas and
/// CI logs never change meaning.
pub const RULES: &[(&str, &str)] = &[
    (
        "D001",
        "no HashMap/HashSet in deterministic simulation crates (iteration-order nondeterminism)",
    ),
    (
        "D002",
        "no std::time::Instant/SystemTime outside bench/exec reporting paths",
    ),
    (
        "D003",
        "no float ==/!= comparisons and no f32/f64 Iterator::sum/product reductions",
    ),
    (
        "Z001",
        "every Cargo.toml dependency must be a workspace path dependency",
    ),
    (
        "A001",
        "no unwrap/expect/panic! in non-test library code of simulation crates",
    ),
    (
        "O001",
        "no direct println!/eprintln! in library code (use exec::Reporter or a bin)",
    ),
    ("P001", "malformed simlint pragma"),
    ("P002", "unused simlint pragma"),
];

/// Rule IDs a pragma may suppress (the pragma meta-rules cannot suppress
/// themselves).
pub const ALLOWABLE_RULES: &[&str] = &["D001", "D002", "D003", "Z001", "A001", "O001"];

/// Resolves a user-supplied rule name to its catalogue ID.
pub fn rule_id(name: &str) -> Option<&'static str> {
    RULES.iter().map(|(id, _)| *id).find(|id| *id == name)
}

/// One diagnostic: a rule violation (or pragma problem) at an exact span.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// Stable rule ID (`D001`, …).
    pub rule: &'static str,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
}

impl Finding {
    /// `file:line:col: RULE message` — the text-format diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }

    /// JSON form (field order fixed so output is byte-stable).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("file", Json::Str(self.file.clone())),
            ("line", Json::UInt(self.line as u64)),
            ("col", Json::UInt(self.col as u64)),
            ("rule", Json::Str(self.rule.to_string())),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

/// Result of linting a whole workspace.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, sorted by `(file, line, col, rule)`.
    pub findings: Vec<Finding>,
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Manifests scanned.
    pub manifests_scanned: usize,
}

impl LintReport {
    /// Sorts and dedupes findings into the canonical deterministic order.
    pub fn normalize(&mut self) {
        self.findings.sort();
        self.findings.dedup();
    }

    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The full machine-readable report. Byte-identical across runs on
    /// identical inputs: ordering is canonical and nothing time- or
    /// environment-dependent is recorded.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("simlint", Json::UInt(1)),
            ("files_scanned", Json::UInt(self.files_scanned as u64)),
            (
                "manifests_scanned",
                Json::UInt(self.manifests_scanned as u64),
            ),
            (
                "findings",
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            ),
        ])
    }

    /// Text-format report: one diagnostic line per finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_span_accurate() {
        let f = Finding {
            file: "crates/engine/src/lib.rs".into(),
            line: 7,
            col: 21,
            rule: "D001",
            message: "no".into(),
        };
        assert_eq!(f.render(), "crates/engine/src/lib.rs:7:21: D001 no");
    }

    #[test]
    fn normalize_sorts_and_dedupes() {
        let f = |file: &str, line| Finding {
            file: file.into(),
            line,
            col: 1,
            rule: "D001",
            message: String::new(),
        };
        let mut r = LintReport {
            findings: vec![f("b.rs", 2), f("a.rs", 9), f("b.rs", 2)],
            files_scanned: 2,
            manifests_scanned: 0,
        };
        r.normalize();
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.findings[0].file, "a.rs");
    }

    #[test]
    fn json_is_reparsable_and_stable() {
        let r = LintReport {
            findings: vec![Finding {
                file: "x.rs".into(),
                line: 1,
                col: 2,
                rule: "O001",
                message: "msg".into(),
            }],
            files_scanned: 1,
            manifests_scanned: 1,
        };
        let a = r.to_json().to_string();
        let b = r.to_json().to_string();
        assert_eq!(a, b);
        let parsed = Json::parse(&a).expect("report JSON reparses");
        assert_eq!(parsed.get("simlint").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn every_allowable_rule_is_in_the_catalogue() {
        for r in ALLOWABLE_RULES {
            assert!(rule_id(r).is_some(), "{r} missing from catalogue");
        }
        assert!(rule_id("D999").is_none());
    }
}
