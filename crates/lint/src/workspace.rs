//! Deterministic workspace walker and two-pass orchestration.
//!
//! Scans, in sorted order:
//!
//! * the root `Cargo.toml` and every `crates/*/Cargo.toml` (Z001);
//! * every `.rs` file under the root package's `src/` and under each
//!   `crates/*/src/` (source rules).
//!
//! `tests/`, `benches/` and `examples/` directories are *not* scanned:
//! test and example code is exempt from every rule by design, exactly like
//! `#[cfg(test)]` items inside `src/`.
//!
//! Analysis runs in two passes. First the per-file phase
//! ([`rules::analyze_file`](crate::rules::analyze_file)) — token rules,
//! pragma collection, item parse — optionally served from the on-disk
//! [`cache`](crate::cache). Then the cross-file
//! [`isolation`](crate::isolation) pass runs over *all* item sets
//! (S001–S005 need the whole type and call graph), and pragma settlement
//! closes out each file. The isolation pass is recomputed on every run —
//! caching it per file would be unsound, since it reads every file's
//! items.
//!
//! Paths are reported workspace-relative with `/` separators and the file
//! list is sorted before analysis, so the report is byte-identical across
//! runs, platforms, and cache temperatures.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::cache::{fnv1a64, Cache};
use crate::findings::{Finding, LintReport};
use crate::isolation::{run_isolation, SimFile};
use crate::manifest::analyze_manifest;
use crate::pragma::{apply_pragmas, Pragma};
use crate::rules::{analyze_file, crate_of, FileAnalysis, FileScope};

fn rel(root: &Path, path: &Path) -> String {
    let r = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in r.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

/// Collects every `.rs` file under `dir`, recursively, sorted by path.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            rust_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Sorted list of crate directories (`crates/*`) that contain a manifest.
fn crate_dirs(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Ok(Vec::new());
    }
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Default cache location for a workspace root.
pub fn default_cache_path(root: &Path) -> PathBuf {
    root.join("target").join("simlint-cache.json")
}

/// Lints the workspace rooted at `root` without touching any cache.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    lint_workspace_cached(root, None)
}

/// Lints the workspace rooted at `root`, serving the per-file phase from
/// the cache at `cache_path` when given (and writing it back after the
/// run). The report is byte-identical whether the cache is cold, warm, or
/// absent.
pub fn lint_workspace_cached(root: &Path, cache_path: Option<&Path>) -> io::Result<LintReport> {
    let mut report = LintReport::default();

    let mut manifests = Vec::new();
    if root.join("Cargo.toml").is_file() {
        manifests.push(root.join("Cargo.toml"));
    }
    for dir in crate_dirs(root)? {
        manifests.push(dir.join("Cargo.toml"));
    }
    for m in manifests {
        let src = fs::read_to_string(&m)?;
        report
            .findings
            .extend(analyze_manifest(&rel(root, &m), &src));
        report.manifests_scanned += 1;
    }

    let mut sources = Vec::new();
    rust_files(&root.join("src"), &mut sources)?;
    for dir in crate_dirs(root)? {
        rust_files(&dir.join("src"), &mut sources)?;
    }

    // Pass 1: per-file analysis, cache-served where possible.
    let mut cache = cache_path.map(Cache::load);
    let mut analyses: Vec<(String, FileAnalysis)> = Vec::new();
    for s in sources {
        let path = rel(root, &s);
        let src = fs::read_to_string(&s)?;
        let hash = fnv1a64(src.as_bytes());
        let fa = match cache.as_mut().and_then(|c| c.get(&path, hash)) {
            Some(fa) => fa,
            None => {
                let fa = analyze_file(&path, &src);
                if let Some(c) = cache.as_mut() {
                    c.put(&path, hash, &fa);
                }
                fa
            }
        };
        analyses.push((path, fa));
        report.files_scanned += 1;
    }
    if let Some(c) = &cache {
        // A failed write only costs the next run its warm start.
        let _ = c.store();
    }

    // Pass 2: the cross-file isolation rules over the merged item graph.
    let parsed_pragmas: Vec<Vec<Pragma>> = analyses
        .iter()
        .map(|(_, fa)| {
            fa.pragmas
                .iter()
                .filter_map(|p| p.as_ref().ok().cloned())
                .collect()
        })
        .collect();
    let sim_files: Vec<SimFile<'_>> = analyses
        .iter()
        .zip(&parsed_pragmas)
        .map(|((path, fa), pragmas)| SimFile {
            path,
            crate_name: crate_of(path),
            sim_lib: FileScope::classify(path).sim_lib,
            items: &fa.items,
            pragmas,
        })
        .collect();
    let iso = run_isolation(&sim_files);
    let mut iso_by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in iso.findings {
        iso_by_file.entry(f.file.clone()).or_default().push(f);
    }
    report.shared_types = iso.shared_types;

    // Pragma settlement per file.
    for (path, fa) in analyses.iter() {
        let mut raw = fa.raw.clone();
        if let Some(extra) = iso_by_file.remove(path.as_str()) {
            raw.extend(extra);
        }
        let used = iso
            .used_shared
            .get(path.as_str())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        report
            .findings
            .extend(apply_pragmas(path, fa.pragmas.clone(), raw, used));
    }

    report.normalize();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(path: &Path, body: &str) {
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, body).expect("write");
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simlint-ws-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir temp root");
        dir
    }

    #[test]
    fn walks_sorted_and_reports_relative_paths() {
        let root = temp_root("walk");
        write(
            &root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        );
        write(
            &root.join("crates/engine/Cargo.toml"),
            "[package]\nname = \"engine\"\n",
        );
        write(
            &root.join("crates/engine/src/lib.rs"),
            "use std::collections::HashMap;\n",
        );
        write(
            &root.join("crates/engine/tests/it.rs"),
            "use std::collections::HashMap;\n",
        );
        let report = lint_workspace(&root).expect("lint");
        assert_eq!(report.manifests_scanned, 2);
        // tests/ is not scanned.
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert_eq!(f.rule, "D001");
        assert_eq!(f.file, "crates/engine/src/lib.rs");
        assert_eq!((f.line, f.col), (1, 23));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn report_is_byte_identical_across_runs() {
        let root = temp_root("stable");
        write(&root.join("Cargo.toml"), "[workspace]\n");
        write(
            &root.join("crates/sm/Cargo.toml"),
            "[dependencies]\nserde = \"1.0\"\n",
        );
        write(
            &root.join("crates/sm/src/lib.rs"),
            "pub fn f() { panic!(); }\nuse std::collections::HashSet;\n",
        );
        let a = lint_workspace(&root).expect("lint").to_json().to_string();
        let b = lint_workspace(&root).expect("lint").to_json().to_string();
        assert_eq!(a, b);
        assert!(a.contains("\"Z001\"") && a.contains("\"S004\"") && a.contains("\"D001\""));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn isolation_rules_cross_crate_boundaries() {
        let root = temp_root("xcrate");
        write(&root.join("Cargo.toml"), "[workspace]\n");
        write(&root.join("crates/core/Cargo.toml"), "[package]\n");
        write(&root.join("crates/obs/Cargo.toml"), "[package]\n");
        write(
            &root.join("crates/core/src/lib.rs"),
            "pub struct SocketShard { h: Handle }\n",
        );
        // The interior-mutable field lives in a non-sim crate but is
        // reachable from SocketShard — S002 must still see it.
        write(
            &root.join("crates/obs/src/lib.rs"),
            "pub struct Handle { m: Mutex<u32> }\n",
        );
        let report = lint_workspace(&root).expect("lint");
        let s002: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "S002")
            .collect();
        assert_eq!(s002.len(), 1);
        assert_eq!(s002[0].file, "crates/obs/src/lib.rs");
        assert_eq!((s002[0].line, s002[0].col), (1, 24));

        // Registering the type shared clears the finding and fills the
        // report registry.
        write(
            &root.join("crates/obs/src/lib.rs"),
            "// simlint: shared(reason = \"snapshot order is canonical\")\n\
             pub struct Handle { m: Mutex<u32> }\n",
        );
        let report = lint_workspace(&root).expect("lint");
        assert!(report.findings.iter().all(|f| f.rule != "S002"));
        assert!(report.findings.iter().all(|f| f.rule != "P002"));
        assert_eq!(report.shared_types.len(), 1);
        assert_eq!(report.shared_types[0].type_name, "Handle");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn cold_and_warm_cache_reports_are_byte_identical() {
        let root = temp_root("cachecmp");
        write(&root.join("Cargo.toml"), "[workspace]\n");
        write(&root.join("crates/engine/Cargo.toml"), "[package]\n");
        write(
            &root.join("crates/engine/src/lib.rs"),
            "// simlint: allow(D001, reason = \"sorted drain\")\n\
             use std::collections::HashMap;\n\
             pub fn f() { g(); }\nfn g() { panic!(\"x\"); }\n\
             pub struct SocketShard { c: RefCell<u32> }\n",
        );
        let cache = root.join("target/simlint-cache.json");
        let no_cache = lint_workspace(&root).expect("lint").to_json().to_string();
        let cold = lint_workspace_cached(&root, Some(&cache))
            .expect("lint")
            .to_json()
            .to_string();
        assert!(cache.is_file(), "cache file written");
        let warm = lint_workspace_cached(&root, Some(&cache))
            .expect("lint")
            .to_json()
            .to_string();
        assert_eq!(no_cache, cold, "cold cache must not change the report");
        assert_eq!(cold, warm, "warm cache must not change the report");
        // The findings are real: S004 through the call graph, S002 on the
        // shard field, and the pragma suppressed D001.
        assert!(warm.contains("\"S004\"") && warm.contains("\"S002\""));
        assert!(!warm.contains("\"D001\""));

        // Editing the file invalidates its entry and updates the report.
        write(&root.join("crates/engine/src/lib.rs"), "pub fn f() {}\n");
        let edited = lint_workspace_cached(&root, Some(&cache))
            .expect("lint")
            .to_json()
            .to_string();
        assert!(!edited.contains("\"S004\""));
        let _ = fs::remove_dir_all(&root);
    }
}
