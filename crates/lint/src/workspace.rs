//! Deterministic workspace walker.
//!
//! Scans, in sorted order:
//!
//! * the root `Cargo.toml` and every `crates/*/Cargo.toml` (Z001);
//! * every `.rs` file under the root package's `src/` and under each
//!   `crates/*/src/` (source rules).
//!
//! `tests/`, `benches/` and `examples/` directories are *not* scanned:
//! test and example code is exempt from every rule by design, exactly like
//! `#[cfg(test)]` items inside `src/`.
//!
//! Paths are reported workspace-relative with `/` separators and the file
//! list is sorted before analysis, so the report is byte-identical across
//! runs and platforms.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::findings::LintReport;
use crate::manifest::analyze_manifest;
use crate::rules::analyze_source;

fn rel(root: &Path, path: &Path) -> String {
    let r = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in r.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

/// Collects every `.rs` file under `dir`, recursively, sorted by path.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            rust_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Sorted list of crate directories (`crates/*`) that contain a manifest.
fn crate_dirs(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Ok(Vec::new());
    }
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Lints the workspace rooted at `root` and returns the normalized report.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();

    let mut manifests = Vec::new();
    if root.join("Cargo.toml").is_file() {
        manifests.push(root.join("Cargo.toml"));
    }
    for dir in crate_dirs(root)? {
        manifests.push(dir.join("Cargo.toml"));
    }
    for m in manifests {
        let src = fs::read_to_string(&m)?;
        report
            .findings
            .extend(analyze_manifest(&rel(root, &m), &src));
        report.manifests_scanned += 1;
    }

    let mut sources = Vec::new();
    rust_files(&root.join("src"), &mut sources)?;
    for dir in crate_dirs(root)? {
        rust_files(&dir.join("src"), &mut sources)?;
    }
    for s in sources {
        let src = fs::read_to_string(&s)?;
        report.findings.extend(analyze_source(&rel(root, &s), &src));
        report.files_scanned += 1;
    }

    report.normalize();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(path: &Path, body: &str) {
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, body).expect("write");
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simlint-ws-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir temp root");
        dir
    }

    #[test]
    fn walks_sorted_and_reports_relative_paths() {
        let root = temp_root("walk");
        write(
            &root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        );
        write(
            &root.join("crates/engine/Cargo.toml"),
            "[package]\nname = \"engine\"\n",
        );
        write(
            &root.join("crates/engine/src/lib.rs"),
            "use std::collections::HashMap;\n",
        );
        write(
            &root.join("crates/engine/tests/it.rs"),
            "use std::collections::HashMap;\n",
        );
        let report = lint_workspace(&root).expect("lint");
        assert_eq!(report.manifests_scanned, 2);
        // tests/ is not scanned.
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert_eq!(f.rule, "D001");
        assert_eq!(f.file, "crates/engine/src/lib.rs");
        assert_eq!((f.line, f.col), (1, 23));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn report_is_byte_identical_across_runs() {
        let root = temp_root("stable");
        write(&root.join("Cargo.toml"), "[workspace]\n");
        write(
            &root.join("crates/sm/Cargo.toml"),
            "[dependencies]\nserde = \"1.0\"\n",
        );
        write(
            &root.join("crates/sm/src/lib.rs"),
            "fn f() { panic!(); }\nuse std::collections::HashSet;\n",
        );
        let a = lint_workspace(&root).expect("lint").to_json().to_string();
        let b = lint_workspace(&root).expect("lint").to_json().to_string();
        assert_eq!(a, b);
        assert!(a.contains("\"Z001\"") && a.contains("\"A001\"") && a.contains("\"D001\""));
        let _ = fs::remove_dir_all(&root);
    }
}
