//! The `simlint:` allow-pragma system.
//!
//! A violation is suppressed *at the site*, with a reason, by a comment of
//! the form (shown here split so this file does not pragma itself):
//!
//! ```text
//! <comment-start> simlint: allow(D001, reason = "waiters drain in insertion order")
//! ```
//!
//! Grammar, after the `simlint:` marker:
//!
//! ```text
//! pragma  := allow+
//! allow   := "allow" "(" rule ("," rule)* "," "reason" "=" string ")"
//! rule    := one of the allowable rule IDs (D001, D002, D003, Z001, A001, O001)
//! string  := '"' non-empty text '"'
//! ```
//!
//! A pragma covers findings on **its own line and the line directly below
//! it**, so it can sit at the end of the offending line or on its own line
//! above. Anything else is an error:
//!
//! * malformed grammar, unknown rule, empty reason → **P001**
//! * a pragma that suppresses nothing → **P002** (dead pragmas rot)
//!
//! There is deliberately no file-level or baseline suppression: every
//! allow is local and carries its justification.

use crate::findings::{rule_id, Finding, ALLOWABLE_RULES};

/// The marker that starts a pragma inside a comment.
pub const MARKER: &str = "simlint:";

/// One parsed allow-pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule IDs this pragma suppresses.
    pub rules: Vec<&'static str>,
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// 1-based column of the pragma comment.
    pub col: u32,
}

impl Pragma {
    /// Whether this pragma covers `finding` (same rule, same line or the
    /// line directly below the pragma).
    pub fn covers(&self, finding: &Finding) -> bool {
        self.rules.contains(&finding.rule)
            && (finding.line == self.line || finding.line == self.line + 1)
    }
}

fn p001(file: &str, line: u32, col: u32, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        col,
        rule: "P001",
        message,
    }
}

/// Parses the pragma text that follows the marker inside one comment.
/// Returns the pragma or a P001 finding.
pub fn parse_pragma(
    after_marker: &str,
    file: &str,
    line: u32,
    col: u32,
) -> Result<Pragma, Finding> {
    let bad = |msg: String| p001(file, line, col, msg);
    let mut rules: Vec<&'static str> = Vec::new();
    let mut rest = after_marker.trim();
    if rest.is_empty() {
        return Err(bad(format!(
            "pragma has no allow clause; expected `allow(RULE, reason = \"...\")` \
             with RULE one of {ALLOWABLE_RULES:?}"
        )));
    }
    while !rest.is_empty() {
        let Some(tail) = rest.strip_prefix("allow") else {
            return Err(bad(format!(
                "expected `allow(...)`, found `{}`",
                rest.chars().take(30).collect::<String>()
            )));
        };
        let tail = tail.trim_start();
        let Some(tail) = tail.strip_prefix('(') else {
            return Err(bad("expected `(` after `allow`".to_string()));
        };
        let Some(close) = tail.find(')') else {
            return Err(bad("unclosed `allow(`".to_string()));
        };
        let inner = &tail[..close];
        rest = tail[close + 1..]
            .trim_start()
            .trim_start_matches(',')
            .trim_start();

        // `RULE, RULE, reason = "..."` — the reason is the trailing quoted
        // string and may itself contain commas, so split it off before
        // splitting the rule list.
        let Some(pos) = inner.find("reason") else {
            return Err(bad(format!(
                "allow clause is missing `reason = \"...\"` (every suppression \
                 must carry its justification); clause was `allow({inner})`"
            )));
        };
        let reason = inner[pos + "reason".len()..].trim_start();
        let Some(reason) = reason.strip_prefix('=') else {
            return Err(bad("expected `=` after `reason`".to_string()));
        };
        let reason = reason.trim();
        let quoted = reason.len() > 2 && reason.starts_with('"') && reason.ends_with('"');
        if !quoted {
            return Err(bad(
                "reason must be a non-empty double-quoted string".to_string()
            ));
        }
        for part in inner[..pos].split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if !ALLOWABLE_RULES.contains(&part) {
                return Err(bad(format!(
                    "unknown or non-allowable rule `{part}`; allowable: {ALLOWABLE_RULES:?}"
                )));
            }
            let id = rule_id(part).unwrap_or("P001");
            rules.push(id);
        }
    }
    if rules.is_empty() {
        return Err(bad("allow clause names no rule".to_string()));
    }
    Ok(Pragma { rules, line, col })
}

/// Applies pragmas to raw rule findings: suppressed findings are removed,
/// pragmas that suppress nothing become P002 findings, and parse failures
/// surface as P001. Returns the surviving findings.
pub fn apply_pragmas(
    file: &str,
    pragmas: Vec<Result<Pragma, Finding>>,
    raw: Vec<Finding>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut parsed = Vec::new();
    for p in pragmas {
        match p {
            Ok(p) => parsed.push((p, false)),
            Err(f) => out.push(f),
        }
    }
    for finding in raw {
        let mut suppressed = false;
        for (p, used) in parsed.iter_mut() {
            if p.covers(&finding) {
                *used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(finding);
        }
    }
    for (p, used) in parsed {
        if !used {
            out.push(Finding {
                file: file.to_string(),
                line: p.line,
                col: p.col,
                rule: "P002",
                message: format!(
                    "pragma allows {:?} but suppresses nothing on this or the next line; \
                     remove it",
                    p.rules
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, line: u32) -> Finding {
        Finding {
            file: "f.rs".into(),
            line,
            col: 5,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn parses_single_allow_with_reason() {
        let p =
            parse_pragma("allow(D001, reason = \"ok here\")", "f.rs", 3, 9).expect("valid pragma");
        assert_eq!(p.rules, vec!["D001"]);
        assert!(p.covers(&finding("D001", 3)));
        assert!(p.covers(&finding("D001", 4)));
        assert!(!p.covers(&finding("D001", 5)));
        assert!(!p.covers(&finding("A001", 3)));
    }

    #[test]
    fn parses_multi_rule_and_multi_clause() {
        let p = parse_pragma(
            "allow(D001, A001, reason = \"x\") allow(O001, reason = \"y\")",
            "f.rs",
            1,
            1,
        )
        .expect("valid pragma");
        assert_eq!(p.rules, vec!["D001", "A001", "O001"]);
    }

    #[test]
    fn missing_reason_is_p001() {
        let err = parse_pragma("allow(D001)", "f.rs", 2, 1).expect_err("must fail");
        assert_eq!(err.rule, "P001");
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn unknown_rule_is_p001() {
        let err = parse_pragma("allow(D999, reason = \"x\")", "f.rs", 2, 1).expect_err("bad rule");
        assert_eq!(err.rule, "P001");
        let err = parse_pragma("allow(P002, reason = \"x\")", "f.rs", 2, 1).expect_err("meta rule");
        assert_eq!(err.rule, "P001");
    }

    #[test]
    fn empty_reason_is_p001() {
        let err =
            parse_pragma("allow(D001, reason = \"\")", "f.rs", 2, 1).expect_err("empty reason");
        assert_eq!(err.rule, "P001");
    }

    #[test]
    fn garbage_is_p001() {
        assert_eq!(parse_pragma("", "f", 1, 1).expect_err("e").rule, "P001");
        assert_eq!(
            parse_pragma("deny(D001)", "f", 1, 1).expect_err("e").rule,
            "P001"
        );
        assert_eq!(
            parse_pragma("allow(D001, reason = \"x\"", "f", 1, 1)
                .expect_err("e")
                .rule,
            "P001"
        );
    }

    #[test]
    fn apply_suppresses_and_reports_unused() {
        let p1 = parse_pragma("allow(D001, reason = \"x\")", "f.rs", 3, 1);
        let p2 = parse_pragma("allow(A001, reason = \"x\")", "f.rs", 90, 1);
        let out = apply_pragmas(
            "f.rs",
            vec![p1, p2],
            vec![finding("D001", 4), finding("O001", 7)],
        );
        // D001@4 suppressed; O001@7 survives; pragma@90 unused → P002.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|f| f.rule == "O001" && f.line == 7));
        assert!(out.iter().any(|f| f.rule == "P002" && f.line == 90));
    }
}
