//! The `simlint:` pragma system: site-local `allow` suppressions and the
//! `shared` type registry.
//!
//! A violation is suppressed *at the site*, with a reason, by a comment of
//! the form (shown here split so this file does not pragma itself):
//!
//! ```text
//! <comment-start> simlint: allow(D001, reason = "waiters drain in insertion order")
//! ```
//!
//! A type is registered as deliberately shared (excluded from the S002
//! shard-isolation closure) the same way:
//!
//! ```text
//! <comment-start> simlint: shared(reason = "metric sink; snapshot order is canonical")
//! ```
//!
//! Grammar, after the `simlint:` marker:
//!
//! ```text
//! pragma  := clause+
//! clause  := allow | shared
//! allow   := "allow" "(" rule ("," rule)* "," "reason" "=" string ")"
//! shared  := "shared" "(" "reason" "=" string ")"
//! rule    := one of the allowable rule IDs (see findings::ALLOWABLE_RULES)
//! string  := '"' non-empty text '"'
//! ```
//!
//! An `allow` pragma covers findings on **its own line through the end of
//! the statement that starts on its line or the line directly below** —
//! the statement extends to its terminating `;`, a field-list `,`, or the
//! close of the block it opens, so a rustfmt-split multi-line `use` or a
//! whole attributed `fn` is covered by one pragma above it. A `shared`
//! pragma attaches to the type declaration inside the same coverage
//! window. Anything else is an error:
//!
//! * malformed grammar, unknown rule, empty reason → **P001**
//! * a pragma that suppresses nothing / registers nothing → **P002**
//!
//! There is deliberately no file-level or baseline suppression: every
//! pragma is local and carries its justification.

use crate::findings::{rule_id, Finding, ALLOWABLE_RULES};

/// The marker that starts a pragma inside a comment.
pub const MARKER: &str = "simlint:";

/// One parsed pragma: `allow` clauses and/or a `shared` registration.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule IDs the `allow` clauses suppress (empty for a pure `shared`
    /// pragma).
    pub rules: Vec<&'static str>,
    /// Whether a `shared(...)` clause registers the covered type.
    pub shared: bool,
    /// The (last) reason string, kept for the shared-type registry.
    pub reason: String,
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// 1-based column of the pragma comment.
    pub col: u32,
    /// Last line the pragma covers: the end of the statement starting on
    /// `line` or `line + 1`. Defaults to `line + 1` (the historical
    /// two-line window) until the rule engine widens it from the token
    /// stream.
    pub cover_end: u32,
}

impl Pragma {
    /// Whether this pragma's `allow` clauses cover `finding` (same rule,
    /// within the covered statement).
    pub fn covers(&self, finding: &Finding) -> bool {
        self.rules.contains(&finding.rule)
            && finding.line >= self.line
            && finding.line <= self.cover_end
    }
}

fn p001(file: &str, line: u32, col: u32, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        col,
        rule: "P001",
        message,
    }
}

/// Splits a `reason = "..."` suffix off a clause body, validating the
/// quoting. Returns (text before `reason`, reason contents).
fn split_reason(inner: &str) -> Result<(&str, &str), String> {
    let Some(pos) = inner.find("reason") else {
        return Err(format!(
            "clause is missing `reason = \"...\"` (every suppression must \
             carry its justification); clause body was `{inner}`"
        ));
    };
    let tail = inner[pos + "reason".len()..].trim_start();
    let Some(tail) = tail.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let tail = tail.trim();
    if tail.len() > 2 && tail.starts_with('"') && tail.ends_with('"') {
        Ok((&inner[..pos], &tail[1..tail.len() - 1]))
    } else {
        Err("reason must be a non-empty double-quoted string".to_string())
    }
}

/// Parses the pragma text that follows the marker inside one comment.
/// Returns the pragma or a P001 finding.
pub fn parse_pragma(
    after_marker: &str,
    file: &str,
    line: u32,
    col: u32,
) -> Result<Pragma, Finding> {
    let bad = |msg: String| p001(file, line, col, msg);
    let mut rules: Vec<&'static str> = Vec::new();
    let mut shared = false;
    let mut reason = String::new();
    let mut rest = after_marker.trim();
    if rest.is_empty() {
        return Err(bad(format!(
            "pragma has no clause; expected `allow(RULE, reason = \"...\")` \
             with RULE one of {ALLOWABLE_RULES:?}, or `shared(reason = \"...\")`"
        )));
    }
    while !rest.is_empty() {
        let (is_shared, tail) = if let Some(t) = rest.strip_prefix("allow") {
            (false, t)
        } else if let Some(t) = rest.strip_prefix("shared") {
            (true, t)
        } else {
            return Err(bad(format!(
                "expected `allow(...)` or `shared(...)`, found `{}`",
                rest.chars().take(30).collect::<String>()
            )));
        };
        let tail = tail.trim_start();
        let Some(tail) = tail.strip_prefix('(') else {
            return Err(bad("expected `(` after the clause keyword".to_string()));
        };
        let Some(close) = tail.find(')') else {
            return Err(bad("unclosed clause".to_string()));
        };
        let inner = &tail[..close];
        rest = tail[close + 1..]
            .trim_start()
            .trim_start_matches(',')
            .trim_start();

        // `RULE, RULE, reason = "..."` — the reason is the trailing quoted
        // string and may itself contain commas, so split it off before
        // splitting the rule list.
        let (head, r) = split_reason(inner).map_err(&bad)?;
        reason = r.to_string();
        if is_shared {
            let head = head.trim().trim_end_matches(',').trim();
            if !head.is_empty() {
                return Err(bad(format!(
                    "`shared(...)` takes only a reason (it registers the \
                     covered type declaration), found `{head}`"
                )));
            }
            shared = true;
            continue;
        }
        let mut named = 0usize;
        for part in head.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if !ALLOWABLE_RULES.contains(&part) {
                return Err(bad(format!(
                    "unknown or non-allowable rule `{part}`; allowable: {ALLOWABLE_RULES:?}"
                )));
            }
            rules.push(rule_id(part).unwrap_or("P001"));
            named += 1;
        }
        if named == 0 {
            return Err(bad("allow clause names no rule".to_string()));
        }
    }
    Ok(Pragma {
        rules,
        shared,
        reason,
        line,
        col,
        cover_end: line + 1,
    })
}

/// Applies pragmas to raw rule findings: suppressed findings are removed,
/// pragmas that suppress nothing become P002 findings, and parse failures
/// surface as P001. `used_shared` holds `(line, col)` positions of shared
/// pragmas the isolation pass consumed (a shared clause that registered
/// nothing rots like a dead allow). Returns the surviving findings.
pub fn apply_pragmas(
    file: &str,
    pragmas: Vec<Result<Pragma, Finding>>,
    raw: Vec<Finding>,
    used_shared: &[(u32, u32)],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut parsed = Vec::new();
    for p in pragmas {
        match p {
            Ok(p) => {
                let used = p.shared && used_shared.contains(&(p.line, p.col));
                parsed.push((p, used));
            }
            Err(f) => out.push(f),
        }
    }
    for finding in raw {
        let mut suppressed = false;
        for (p, used) in parsed.iter_mut() {
            if p.covers(&finding) {
                *used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(finding);
        }
    }
    for (p, used) in parsed {
        if !used {
            let what = if p.shared && p.rules.is_empty() {
                "registers no type declaration in its covered statement".to_string()
            } else {
                format!(
                    "allows {:?} but suppresses nothing in its covered statement",
                    p.rules
                )
            };
            out.push(Finding {
                file: file.to_string(),
                line: p.line,
                col: p.col,
                rule: "P002",
                message: format!("pragma {what}; remove it"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, line: u32) -> Finding {
        Finding {
            file: "f.rs".into(),
            line,
            col: 5,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn parses_single_allow_with_reason() {
        let p =
            parse_pragma("allow(D001, reason = \"ok here\")", "f.rs", 3, 9).expect("valid pragma");
        assert_eq!(p.rules, vec!["D001"]);
        assert_eq!(p.reason, "ok here");
        assert!(!p.shared);
        assert!(p.covers(&finding("D001", 3)));
        assert!(p.covers(&finding("D001", 4)));
        assert!(!p.covers(&finding("D001", 5)));
        assert!(!p.covers(&finding("A001", 3)));
    }

    #[test]
    fn widened_cover_end_extends_statement_coverage() {
        let mut p =
            parse_pragma("allow(D001, reason = \"split use\")", "f.rs", 3, 1).expect("valid");
        p.cover_end = 7; // the rule engine widened it to the statement end
        assert!(p.covers(&finding("D001", 6)));
        assert!(p.covers(&finding("D001", 7)));
        assert!(!p.covers(&finding("D001", 8)));
        assert!(!p.covers(&finding("D001", 2)));
    }

    #[test]
    fn parses_multi_rule_and_multi_clause() {
        let p = parse_pragma(
            "allow(D001, S004, reason = \"x\") allow(O001, reason = \"y\")",
            "f.rs",
            1,
            1,
        )
        .expect("valid pragma");
        assert_eq!(p.rules, vec!["D001", "S004", "O001"]);
    }

    #[test]
    fn parses_shared_clause() {
        let p = parse_pragma(
            "shared(reason = \"metric sink, snapshot order canonical\")",
            "f.rs",
            4,
            1,
        )
        .expect("valid shared pragma");
        assert!(p.shared);
        assert!(p.rules.is_empty());
        assert_eq!(p.reason, "metric sink, snapshot order canonical");
        // A shared clause naming a rule is malformed.
        let err = parse_pragma("shared(S002, reason = \"x\")", "f.rs", 4, 1).expect_err("bad");
        assert_eq!(err.rule, "P001");
        // Missing reason is malformed.
        let err = parse_pragma("shared()", "f.rs", 4, 1).expect_err("bad");
        assert_eq!(err.rule, "P001");
    }

    #[test]
    fn missing_reason_is_p001() {
        let err = parse_pragma("allow(D001)", "f.rs", 2, 1).expect_err("must fail");
        assert_eq!(err.rule, "P001");
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn unknown_rule_is_p001() {
        let err = parse_pragma("allow(D999, reason = \"x\")", "f.rs", 2, 1).expect_err("bad rule");
        assert_eq!(err.rule, "P001");
        let err = parse_pragma("allow(P002, reason = \"x\")", "f.rs", 2, 1).expect_err("meta rule");
        assert_eq!(err.rule, "P001");
    }

    #[test]
    fn empty_reason_is_p001() {
        let err =
            parse_pragma("allow(D001, reason = \"\")", "f.rs", 2, 1).expect_err("empty reason");
        assert_eq!(err.rule, "P001");
    }

    #[test]
    fn garbage_is_p001() {
        assert_eq!(parse_pragma("", "f", 1, 1).expect_err("e").rule, "P001");
        assert_eq!(
            parse_pragma("deny(D001)", "f", 1, 1).expect_err("e").rule,
            "P001"
        );
        assert_eq!(
            parse_pragma("allow(D001, reason = \"x\"", "f", 1, 1)
                .expect_err("e")
                .rule,
            "P001"
        );
    }

    #[test]
    fn apply_suppresses_and_reports_unused() {
        let p1 = parse_pragma("allow(D001, reason = \"x\")", "f.rs", 3, 1);
        let p2 = parse_pragma("allow(S004, reason = \"x\")", "f.rs", 90, 1);
        let out = apply_pragmas(
            "f.rs",
            vec![p1, p2],
            vec![finding("D001", 4), finding("O001", 7)],
            &[],
        );
        // D001@4 suppressed; O001@7 survives; pragma@90 unused → P002.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|f| f.rule == "O001" && f.line == 7));
        assert!(out.iter().any(|f| f.rule == "P002" && f.line == 90));
    }

    #[test]
    fn shared_pragmas_rot_unless_consumed() {
        let used = parse_pragma("shared(reason = \"x\")", "f.rs", 3, 9);
        let dead = parse_pragma("shared(reason = \"y\")", "f.rs", 40, 1);
        let out = apply_pragmas("f.rs", vec![used, dead], vec![], &[(3, 9)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].rule == "P002" && out[0].line == 40);
        assert!(out[0].message.contains("registers no type"));
    }
}
