//! The rule engine: walks one file's token stream and emits findings.
//!
//! ## Scope model
//!
//! Rules are scoped by *crate role*, derived from the workspace-relative
//! path:
//!
//! | Scope | Crates | Rules |
//! |---|---|---|
//! | simulation | engine, sm, cache, mem, interconnect, faults, core, runtime, workloads | D001, D003, S001–S005 |
//! | artifact plane | bench (tables/figures flow through it) | D001, D003 |
//! | wall-clock-allowed | bench, exec, serve (timing/deadline/backoff paths) | exempt from D002 |
//! | bins (`src/bin/**`, `src/main.rs`) | any | exempt from O001 and the S-rules |
//! | everything else | all crates incl. the root facade | D002, O001 |
//!
//! Test code is exempt from every source rule: integration tests,
//! benches and examples are not scanned at all, and `#[cfg(test)]` /
//! `#[test]`-gated items inside `src/` are skipped token-exactly (an
//! attribute whose argument list mentions `test` — but not `not(test)` —
//! skips the item it is attached to).
//!
//! ## Two passes
//!
//! [`analyze_file`] runs the per-file phase: token-stream rules (D/O),
//! pragma collection with statement-range widening, and the
//! [`items`](crate::items) parse. Its [`FileAnalysis`] output is pure in
//! the file contents, which is what makes the on-disk cache sound. The
//! cross-file [`isolation`](crate::isolation) pass then runs over all
//! item sets, and [`pragma::apply_pragmas`](crate::pragma::apply_pragmas)
//! settles suppressions per file. [`analyze_source`] bundles all of that
//! for a single standalone file.

use crate::findings::Finding;
use crate::isolation::{run_isolation, SimFile};
use crate::items::{parse_items, FileItems};
use crate::lexer::{lex, TokKind, Token};
use crate::pragma::{apply_pragmas, parse_pragma, Pragma, MARKER};

/// Crates whose simulation state must stay bit-deterministic.
pub const SIM_CRATES: &[&str] = &[
    "engine",
    "sm",
    "cache",
    "mem",
    "interconnect",
    "faults",
    "core",
    "runtime",
    "workloads",
];

/// Crate a workspace-relative path belongs to (the root facade package is
/// reported as `numa-gpu`).
pub fn crate_of(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("")
    } else {
        "numa-gpu"
    }
}

/// Where a file sits in the workspace, and therefore which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// D001 (hash collections) applies.
    pub d001: bool,
    /// D002 (wall clock) applies.
    pub d002: bool,
    /// D003 (float determinism) applies.
    pub d003: bool,
    /// O001 (direct output) applies.
    pub o001: bool,
    /// The shard-isolation pack S001–S005 applies (sim-crate library
    /// code). Files outside this scope still contribute *items* to the
    /// type graph — the closure can reach types declared anywhere.
    pub sim_lib: bool,
}

impl FileScope {
    /// Classifies a workspace-relative, `/`-separated path.
    pub fn classify(path: &str) -> FileScope {
        // `tests/`, `benches/` and `examples/` trees are exempt from
        // everything (the walker skips them; classify agrees for callers
        // that hand in such a path directly).
        let exempt = path
            .split('/')
            .any(|seg| matches!(seg, "tests" | "benches" | "examples"));
        if exempt {
            return FileScope {
                d001: false,
                d002: false,
                d003: false,
                o001: false,
                sim_lib: false,
            };
        }
        let crate_name = crate_of(path);
        let is_bin = path.contains("/bin/") || path.ends_with("src/main.rs");
        let sim = SIM_CRATES.contains(&crate_name);
        FileScope {
            d001: sim || crate_name == "bench",
            // serve is a non-SIM crate: wall-clock deadlines and retry
            // backoff are its whole point, so `Instant` is permitted
            // there; nothing in serve is reachable from sim crates.
            d002: !matches!(crate_name, "bench" | "exec" | "serve"),
            d003: sim || crate_name == "bench",
            o001: !is_bin,
            sim_lib: sim && !is_bin,
        }
    }
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Marks every token belonging to a `test`-gated item (attribute included)
/// so rules skip them. Conservative on `not(test)`: such items are *not*
/// skipped, since they are compiled into the library.
pub fn mark_test_skipped(toks: &[Token]) -> Vec<bool> {
    let mut skip = vec![false; toks.len()];
    let p = |i: usize, s: &str| toks.get(i).is_some_and(|t| is_punct(t, s));
    let mut i = 0;
    while i < toks.len() {
        let inner = p(i, "#") && p(i + 1, "!") && p(i + 2, "[");
        let outer = p(i, "#") && p(i + 1, "[");
        if !(inner || outer) {
            i += 1;
            continue;
        }
        let open = if inner { i + 2 } else { i + 1 };
        let mut depth = 0usize;
        let mut j = open;
        let mut has_test = false;
        let mut has_not = false;
        let mut end_attr = None;
        while j < toks.len() {
            if p(j, "[") {
                depth += 1;
            } else if p(j, "]") {
                depth -= 1;
                if depth == 0 {
                    end_attr = Some(j);
                    break;
                }
            } else if is_ident(&toks[j], "test") {
                has_test = true;
            } else if is_ident(&toks[j], "not") {
                has_not = true;
            }
            j += 1;
        }
        let Some(end_attr) = end_attr else { break };
        if has_test && !has_not {
            if inner {
                // `#![cfg(test)]` gates the whole enclosing scope — for a
                // file-level inner attribute that is the entire file.
                for s in skip.iter_mut() {
                    *s = true;
                }
                return skip;
            }
            for s in skip.iter_mut().take(end_attr + 1).skip(i) {
                *s = true;
            }
            // Skip the attached item: through further attributes and either
            // a top-level `;` or the matching close of its first brace.
            let mut braces = 0i64;
            let mut k = end_attr + 1;
            while k < toks.len() {
                skip[k] = true;
                if p(k, "{") {
                    braces += 1;
                } else if p(k, "}") {
                    braces -= 1;
                    if braces == 0 {
                        break;
                    }
                } else if p(k, ";") && braces == 0 {
                    break;
                }
                k += 1;
            }
            i = k + 1;
        } else {
            i = end_attr + 1;
        }
    }
    skip
}

/// Extracts pragma parses from comment tokens. A pragma comment must
/// *start* with the marker once comment sigils (`/`, `*`, `!`) and
/// whitespace are stripped, so prose that merely mentions the marker is
/// ignored.
fn collect_pragmas(toks: &[Token], skip: &[bool], file: &str) -> Vec<Result<Pragma, Finding>> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.kind.is_comment() || skip[i] {
            continue;
        }
        let body = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(after) = body.strip_prefix(MARKER) else {
            continue;
        };
        let after = if t.kind == TokKind::BlockComment {
            after.trim_end().trim_end_matches("*/").trim_end()
        } else {
            after.trim_end()
        };
        out.push(parse_pragma(after.trim_start(), file, t.line, t.col));
    }
    out
}

/// Widens each pragma's coverage from the historical two-line window to
/// the full statement that *starts* on the pragma's line or the line
/// directly below: through the terminating `;`, a field-list `,`, or the
/// close of the block the statement opens. A pragma with no statement
/// starting in its window keeps the two-line default (and most likely rots
/// to P002).
fn widen_pragmas(toks: &[Token], skip: &[bool], pragmas: &mut [Result<Pragma, Finding>]) {
    let delta = |t: &Token| -> i32 {
        if t.kind != TokKind::Punct {
            return 0;
        }
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => 1,
            ")" | "]" | "}" | ">" => -1,
            "<<" => 2,
            ">>" => -2,
            _ => 0,
        }
    };
    for p in pragmas.iter_mut().filter_map(|p| p.as_mut().ok()) {
        let Some(start) = toks.iter().enumerate().position(|(i, t)| {
            !t.kind.is_comment()
                && !skip.get(i).copied().unwrap_or(false)
                && (t.line == p.line || t.line == p.line + 1)
        }) else {
            continue;
        };
        let mut depth = 0i32;
        let mut braces = 0i32;
        let mut prev_line = p.line + 1;
        let mut end = None;
        for t in toks[start..].iter().filter(|t| !t.kind.is_comment()) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    ";" | "," if depth <= 0 => {
                        end = Some(t.line);
                        break;
                    }
                    "{" => braces += 1,
                    "}" => {
                        braces -= 1;
                        if braces == 0 {
                            // Closed the block the statement opened.
                            end = Some(t.line);
                            break;
                        }
                        if braces < 0 {
                            // Closed the *enclosing* block: the statement
                            // was a trailing expression / last field.
                            end = Some(prev_line);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            depth += delta(t);
            prev_line = t.line;
        }
        p.cover_end = end.unwrap_or(prev_line).max(p.line + 1);
    }
}

struct Ctx<'a> {
    toks: &'a [Token],
    skip: &'a [bool],
    /// Indices of non-comment tokens.
    sig: Vec<usize>,
    file: &'a str,
    raw: Vec<Finding>,
}

impl<'a> Ctx<'a> {
    fn tok(&self, si: usize) -> Option<&'a Token> {
        self.sig.get(si).map(|&i| &self.toks[i])
    }

    fn active(&self, si: usize) -> bool {
        self.sig.get(si).is_some_and(|&i| !self.skip[i])
    }

    fn sig_is_punct(&self, si: usize, s: &str) -> bool {
        self.tok(si).is_some_and(|t| is_punct(t, s))
    }

    fn sig_is_ident(&self, si: usize, s: &str) -> bool {
        self.tok(si).is_some_and(|t| is_ident(t, s))
    }

    fn push(&mut self, rule: &'static str, si: usize, message: String) {
        if let Some(t) = self.tok(si) {
            self.raw.push(Finding {
                file: self.file.to_string(),
                line: t.line,
                col: t.col,
                rule,
                message,
            });
        }
    }
}

fn rule_d001(c: &mut Ctx<'_>) {
    for si in 0..c.sig.len() {
        if !c.active(si) {
            continue;
        }
        let Some(t) = c.tok(si) else { continue };
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            let alt = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            let text = t.text.clone();
            c.push(
                "D001",
                si,
                format!(
                    "`{text}` iterates in nondeterministic order in deterministic \
                     simulation code; use `{alt}` or drain through a sorted buffer"
                ),
            );
        }
    }
}

fn rule_d002(c: &mut Ctx<'_>) {
    let flagged = |t: &Token| is_ident(t, "Instant") || is_ident(t, "SystemTime");
    for si in 0..c.sig.len() {
        if !c.active(si) {
            continue;
        }
        let Some(t) = c.tok(si) else { continue };
        // `Instant::now` / `SystemTime::now` wherever the type came from.
        if flagged(t) && c.sig_is_punct(si + 1, "::") && c.sig_is_ident(si + 2, "now") {
            let text = t.text.clone();
            c.push(
                "D002",
                si,
                format!(
                    "wall-clock read `{text}::now()` outside bench/exec reporting \
                     paths; simulated time must come from the event queue"
                ),
            );
        }
        // Any `std :: time` path: flag Instant/SystemTime idents up to the
        // end of the statement (covers `use std::time::{Duration, Instant}`
        // and fully qualified types).
        if is_ident(t, "std") && c.sig_is_punct(si + 1, "::") && c.sig_is_ident(si + 2, "time") {
            let mut sj = si + 3;
            let mut steps = 0;
            while let Some(tj) = c.tok(sj) {
                if is_punct(tj, ";") || steps > 40 {
                    break;
                }
                if flagged(tj) {
                    let text = tj.text.clone();
                    c.push(
                        "D002",
                        sj,
                        format!(
                            "`std::time::{text}` outside bench/exec reporting paths; \
                             wall clock must never reach simulation state or a SimReport"
                        ),
                    );
                }
                sj += 1;
                steps += 1;
            }
        }
    }
}

fn rule_d003(c: &mut Ctx<'_>) {
    for si in 0..c.sig.len() {
        if !c.active(si) {
            continue;
        }
        let Some(t) = c.tok(si) else { continue };
        if is_punct(t, "==") || is_punct(t, "!=") {
            let prev_float = si > 0 && c.tok(si - 1).is_some_and(|p| p.kind == TokKind::Float);
            // Skip one unary minus on the right-hand side.
            let rhs = if c.sig_is_punct(si + 1, "-") {
                si + 2
            } else {
                si + 1
            };
            let next_float = c.tok(rhs).is_some_and(|n| n.kind == TokKind::Float);
            if prev_float || next_float {
                let op = t.text.clone();
                c.push(
                    "D003",
                    si,
                    format!(
                        "float compared with `{op}`; exact float equality is \
                         representation-dependent — compare against an epsilon or \
                         restructure the reduction"
                    ),
                );
            }
        }
        // `.sum::<f32|f64>()` / `.product::<f32|f64>()`.
        if is_punct(t, ".")
            && (c.sig_is_ident(si + 1, "sum") || c.sig_is_ident(si + 1, "product"))
            && c.sig_is_punct(si + 2, "::")
            && c.sig_is_punct(si + 3, "<")
            && (c.sig_is_ident(si + 4, "f32") || c.sig_is_ident(si + 4, "f64"))
        {
            let method = c.tok(si + 1).map(|t| t.text.clone()).unwrap_or_default();
            c.push(
                "D003",
                si + 1,
                format!(
                    "float accumulation via `Iterator::{method}` in a reduction path; \
                     use an explicit left fold so the summation order is part of the \
                     code, or pragma the ordering invariant"
                ),
            );
        }
    }
}

fn rule_o001(c: &mut Ctx<'_>) {
    for si in 0..c.sig.len() {
        if !c.active(si) {
            continue;
        }
        let Some(t) = c.tok(si) else { continue };
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            )
            && c.sig_is_punct(si + 1, "!")
        {
            let mac = t.text.clone();
            c.push(
                "O001",
                si,
                format!(
                    "direct `{mac}!` output in library code; route output through \
                     `exec::Reporter` or keep it in a bin"
                ),
            );
        }
    }
}

/// The per-file analysis phase: everything derivable from one file's bytes
/// alone. This is the unit the on-disk cache stores — the cross-file
/// isolation pass and pragma settlement always recompute from these.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Raw token-rule findings (pre-pragma).
    pub raw: Vec<Finding>,
    /// Parsed pragmas (parse failures carried as P001 findings), with
    /// statement-widened coverage.
    pub pragmas: Vec<Result<Pragma, Finding>>,
    /// The file's item set for the graph pass.
    pub items: FileItems,
}

/// Runs the per-file phase on one source file. `path` is workspace-relative
/// and decides which token rules apply.
pub fn analyze_file(path: &str, src: &str) -> FileAnalysis {
    let toks = lex(src);
    let skip = mark_test_skipped(&toks);
    let scope = FileScope::classify(path);
    let sig: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.kind.is_comment())
        .map(|(i, _)| i)
        .collect();
    let mut ctx = Ctx {
        toks: &toks,
        skip: &skip,
        sig,
        file: path,
        raw: Vec::new(),
    };
    if scope.d001 {
        rule_d001(&mut ctx);
    }
    if scope.d002 {
        rule_d002(&mut ctx);
    }
    if scope.d003 {
        rule_d003(&mut ctx);
    }
    if scope.o001 {
        rule_o001(&mut ctx);
    }
    let raw = std::mem::take(&mut ctx.raw);
    let mut pragmas = collect_pragmas(&toks, &skip, path);
    widen_pragmas(&toks, &skip, &mut pragmas);
    let items = parse_items(&toks, &skip);
    FileAnalysis {
        raw,
        pragmas,
        items,
    }
}

/// Lints one Rust source file standalone: per-file phase, a single-file
/// isolation pass, then pragma settlement. The workspace walker composes
/// the same pieces across files instead.
pub fn analyze_source(path: &str, src: &str) -> Vec<Finding> {
    let fa = analyze_file(path, src);
    let parsed: Vec<Pragma> = fa
        .pragmas
        .iter()
        .filter_map(|p| p.as_ref().ok().cloned())
        .collect();
    let scope = FileScope::classify(path);
    let sim = SimFile {
        path,
        crate_name: crate_of(path),
        sim_lib: scope.sim_lib,
        items: &fa.items,
        pragmas: &parsed,
    };
    let iso = run_isolation(&[sim]);
    let mut raw = fa.raw;
    raw.extend(iso.findings);
    let used = iso.used_shared.get(path).cloned().unwrap_or_default();
    let mut out = apply_pragmas(path, fa.pragmas, raw, &used);
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: &str = "crates/engine/src/lib.rs";
    const PLAIN: &str = "crates/obs/src/lib.rs";

    fn rules_at(path: &str, src: &str) -> Vec<(&'static str, u32, u32)> {
        analyze_source(path, src)
            .into_iter()
            .map(|f| (f.rule, f.line, f.col))
            .collect()
    }

    #[test]
    fn scope_classification() {
        assert!(FileScope::classify("crates/engine/src/event.rs").d001);
        assert!(FileScope::classify("crates/bench/src/runner.rs").d001);
        assert!(!FileScope::classify("crates/obs/src/lib.rs").d001);
        assert!(!FileScope::classify("crates/bench/src/lib.rs").d002);
        assert!(!FileScope::classify("crates/exec/src/reporter.rs").d002);
        assert!(FileScope::classify("crates/engine/src/lib.rs").d002);
        assert!(FileScope::classify("src/lib.rs").d002);
        // serve: wall-clock allowed (deadlines/backoff), but not a sim
        // crate — D001/D003/S-rules stay off, O001 stays on for lib code.
        let serve = FileScope::classify("crates/serve/src/daemon.rs");
        assert!(!serve.d002);
        assert!(!serve.d001);
        assert!(!serve.sim_lib);
        assert!(serve.o001);
        assert!(FileScope::classify("crates/cache/src/mshr.rs").sim_lib);
        assert!(!FileScope::classify("crates/bench/src/lib.rs").sim_lib);
        assert!(!FileScope::classify("crates/sm/src/bin/tool.rs").sim_lib);
        assert!(FileScope::classify("crates/obs/src/lib.rs").o001);
        assert!(!FileScope::classify("crates/bench/src/main.rs").o001);
        assert!(!FileScope::classify("src/bin/sweep.rs").o001);
    }

    #[test]
    fn d001_positive_and_negative() {
        let hits = rules_at(SIM, "use std::collections::HashMap;\n");
        assert_eq!(hits, vec![("D001", 1, 23)]);
        let hits = rules_at(SIM, "let s: HashSet<u32> = HashSet::new();\n");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.0 == "D001"));
        // Negative: BTree collections, out-of-scope crates, test code.
        assert!(rules_at(SIM, "use std::collections::BTreeMap;\n").is_empty());
        assert!(rules_at(PLAIN, "use std::collections::HashMap;\n").is_empty());
        assert!(rules_at(
            SIM,
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n"
        )
        .is_empty());
        // `#[cfg(not(test))]` items compile into the library: still flagged.
        assert!(!rules_at(SIM, "#[cfg(not(test))]\nuse std::collections::HashMap;\n").is_empty());
    }

    #[test]
    fn d002_positive_and_negative() {
        let hits = rules_at(PLAIN, "let t = Instant::now();\n");
        assert_eq!(hits, vec![("D002", 1, 9)]);
        let hits = rules_at(PLAIN, "use std::time::{Duration, Instant};\n");
        assert_eq!(hits, vec![("D002", 1, 27)]);
        assert!(!rules_at(PLAIN, "let t = std::time::SystemTime::now();\n").is_empty());
        // Negative: bench/exec are the reporting paths; `Duration` alone is
        // fine (it carries no clock); an `Instant` enum variant is fine.
        assert!(rules_at("crates/bench/src/lib.rs", "let t = Instant::now();\n").is_empty());
        assert!(rules_at("crates/exec/src/lib.rs", "let t = Instant::now();\n").is_empty());
        assert!(rules_at(PLAIN, "use std::time::Duration;\n").is_empty());
        assert!(rules_at(PLAIN, "let p = TracePhase::Instant;\n").is_empty());
    }

    #[test]
    fn d003_positive_and_negative() {
        let hits = rules_at(SIM, "if x == 0.5 { }\n");
        assert_eq!(hits, vec![("D003", 1, 6)]);
        assert_eq!(rules_at(SIM, "if x != -1.0 { }\n"), vec![("D003", 1, 6)]);
        assert_eq!(rules_at(SIM, "if 2.0 == y { }\n"), vec![("D003", 1, 8)]);
        let hits = rules_at(SIM, "let s = v.iter().sum::<f64>();\n");
        assert_eq!(hits, vec![("D003", 1, 18)]);
        assert_eq!(
            rules_at(SIM, "let p = v.iter().product::<f32>();\n"),
            vec![("D003", 1, 18)]
        );
        // Negative: integer comparisons and sums, explicit folds, ranges.
        assert!(rules_at(SIM, "if x == 5 { }\n").is_empty());
        assert!(rules_at(SIM, "let s = v.iter().sum::<u64>();\n").is_empty());
        assert!(rules_at(SIM, "let s = v.iter().fold(0.0, |a, x| a + x);\n").is_empty());
        assert!(rules_at(SIM, "for i in 0..8 { }\n").is_empty());
    }

    #[test]
    fn s004_fires_on_reachable_panics_only() {
        // Public fn: its panics are reachable by definition.
        assert_eq!(
            rules_at(SIM, "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n"),
            vec![("S004", 1, 37)]
        );
        assert_eq!(
            rules_at(SIM, "pub fn f() { panic!(\"boom\"); }\n"),
            vec![("S004", 1, 14)]
        );
        // Private fn reached from a public one: flagged, with the path.
        let src = "pub fn entry() { helper(); }\nfn helper() { todo!(); }\n";
        assert_eq!(rules_at(SIM, src), vec![("S004", 2, 15)]);
        // Private fn nothing public reaches: not a finding.
        assert!(rules_at(SIM, "fn dead() { panic!(); }\n").is_empty());
        // Negative: non-sim crates, test code, non-panicking cousins.
        assert!(rules_at(PLAIN, "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n").is_empty());
        assert!(rules_at(SIM, "#[test]\nfn t() { o.unwrap(); }\n").is_empty());
        assert!(rules_at(SIM, "pub fn f(o: Option<u32>) -> u32 { o.unwrap_or(3) }\n").is_empty());
        assert!(rules_at(SIM, "pub fn f() { debug_assert!(true); }\n").is_empty());
    }

    #[test]
    fn o001_positive_and_negative() {
        assert_eq!(
            rules_at(PLAIN, "println!(\"x = {x}\");\n"),
            vec![("O001", 1, 1)]
        );
        assert_eq!(
            rules_at(PLAIN, "eprintln!(\"warn\");\n"),
            vec![("O001", 1, 1)]
        );
        assert_eq!(rules_at(PLAIN, "dbg!(x);\n"), vec![("O001", 1, 1)]);
        // Negative: bins may print; test code may print; writeln! to an
        // explicit sink is the sanctioned path.
        assert!(rules_at("crates/bench/src/main.rs", "println!(\"ok\");\n").is_empty());
        assert!(rules_at("src/bin/tool.rs", "println!(\"ok\");\n").is_empty());
        assert!(rules_at(PLAIN, "#[test]\nfn t() { println!(\"dbg\"); }\n").is_empty());
        assert!(rules_at(PLAIN, "writeln!(out, \"row\").ok();\n").is_empty());
    }

    #[test]
    fn pragma_suppression_end_to_end() {
        // Same line.
        let src =
            "use std::collections::HashMap; // simlint: allow(D001, reason = \"drained sorted\")\n";
        assert!(rules_at(SIM, src).is_empty());
        // Line above.
        let src = "// simlint: allow(D001, reason = \"drained sorted\")\nuse std::collections::HashMap;\n";
        assert!(rules_at(SIM, src).is_empty());
        // Two lines above: not covered; the finding and a P002 surface.
        let src =
            "// simlint: allow(D001, reason = \"too far\")\n\nuse std::collections::HashMap;\n";
        let hits = rules_at(SIM, src);
        assert!(hits.contains(&("D001", 3, 23)));
        assert!(hits.contains(&("P002", 1, 1)));
        // Malformed pragma → P001 plus the unsuppressed finding.
        let src = "use std::collections::HashMap; // simlint: allow(D001)\n";
        let hits = rules_at(SIM, src);
        assert!(hits.iter().any(|h| h.0 == "P001"));
        assert!(hits.iter().any(|h| h.0 == "D001"));
        // Prose that merely mentions the marker is not a pragma.
        let src = "// the simlint: marker is described in DESIGN.md\nlet x = 1;\n";
        assert!(rules_at(SIM, src).is_empty());
    }

    #[test]
    fn pragma_covers_the_full_following_statement() {
        // A rustfmt-split multi-line `use`: the finding sits three lines
        // below the pragma but inside the same statement.
        let src = "// simlint: allow(D001, reason = \"drained through sorted buffer\")\n\
                   use std::collections::{\n    BTreeMap,\n    HashMap,\n};\n";
        assert!(rules_at(SIM, src).is_empty(), "statement coverage");
        // A pragma above an attributed fn covers panics through the fn body.
        let src = "// simlint: allow(S004, reason = \"table checked at startup\")\n\
                   #[inline]\npub fn pick(i: usize) -> u32 {\n    TABLE.get(i).copied().unwrap()\n}\n";
        assert!(rules_at(SIM, src).is_empty(), "fn body coverage");
        // Coverage stops at the statement end: a finding *after* it still
        // fires.
        let src = "// simlint: allow(D001, reason = \"first only\")\n\
                   use std::collections::{\n    HashMap,\n};\nuse std::collections::HashSet;\n";
        assert_eq!(rules_at(SIM, src), vec![("D001", 5, 23)]);
    }

    #[test]
    fn test_skip_handles_inner_attribute_and_items() {
        let src = "#![cfg(test)]\nuse std::collections::HashMap;\npub fn f() { o.unwrap(); }\n";
        assert!(rules_at(SIM, src).is_empty());
        // An attributed fn with nested braces is skipped exactly.
        let src = "#[test]\nfn t() {\n    if x { o.unwrap(); }\n}\npub fn real() { o.unwrap(); }\n";
        let hits = rules_at(SIM, src);
        assert_eq!(hits, vec![("S004", 5, 19)]);
        // `#[cfg(test)] mod` skips the whole module body.
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { panic!(); }\n}\npub fn f() { panic!(); }\n";
        let hits = rules_at(SIM, src);
        assert_eq!(hits, vec![("S004", 5, 14)]);
    }
}
